#!/usr/bin/env python3
"""Tamper detection: the three host attacks of §2.6, demonstrated.

A malicious host controls the whole software stack.  This example mounts
each of the paper's three attacks against a confidential boot and shows
which mechanism catches it:

1. swapping the staged kernel after the hashes were pre-encrypted
   -> caught by the boot verifier's hash check (guest aborts);
2. pre-encrypting hashes that match the malicious kernel
   -> verifier passes, but the guest owner sees a wrong launch digest;
3. loading a patched boot verifier that skips the checks
   -> the verifier binary itself is measured; wrong digest again.

Run:  python examples/tamper_detection.py
"""

from repro.core import VmConfig
from repro.core.digest_tool import compute_expected_digest
from repro.core.oob_hash import HashesFile
from repro.crypto.sha2 import sha256
from repro.formats.kernels import AWS
from repro.guest.bootverifier import BootVerifier, VerificationError, verifier_binary
from repro.guest.linuxboot import LinuxGuest
from repro.hw.platform import Machine
from repro.sev.guestowner import AttestationFailure, GuestOwner

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "tests"))
from guest.util import stage_and_launch  # noqa: E402  (test helper reused as harness)


def run_guest(machine, staged, owner):
    verified = machine.sim.run_process(BootVerifier(staged.ctx).run())
    guest = LinuxGuest(staged.ctx)
    entry = machine.sim.run_process(guest.bootstrap_loader(verified))
    machine.sim.run_process(guest.linux_boot(verified, entry))
    return machine.sim.run_process(guest.attest(owner))


def owner_for(machine, config, hashes):
    return GuestOwner(
        trusted_vcek=machine.psp.vcek.public,
        expected_digest=compute_expected_digest(config, verifier_binary(), hashes),
        secret=b"the-secret",
    )


def main() -> None:
    config = VmConfig(kernel=AWS)

    print("=== honest boot ===")
    machine = Machine()
    staged = stage_and_launch(machine, config)
    owner = owner_for(machine, config, staged.hashes)
    secret = run_guest(machine, staged, owner)
    print(f"attestation accepted, secret released: {secret!r}\n")

    print("=== attack 1: host swaps the staged kernel ===")
    machine = Machine()
    staged = stage_and_launch(machine, config, tamper_staged_kernel=True)
    owner = owner_for(machine, config, staged.hashes)
    try:
        run_guest(machine, staged, owner)
    except VerificationError as exc:
        print(f"boot verifier aborted the boot: {exc}\n")

    print("=== attack 2: host pre-encrypts hashes of the malicious kernel ===")
    honest = stage_and_launch(Machine(), config)
    tampered = bytearray(honest.kernel_blob.data)
    tampered[len(tampered) // 2] ^= 0xFF
    evil_hashes = HashesFile(
        kernel_hash=sha256(bytes(tampered), accelerated=True),
        kernel_len=honest.hashes.kernel_len,
        kernel_nominal=honest.hashes.kernel_nominal,
        initrd_hash=honest.hashes.initrd_hash,
        initrd_len=honest.hashes.initrd_len,
        initrd_nominal=honest.hashes.initrd_nominal,
    )
    machine = Machine()
    staged = stage_and_launch(
        machine, config, tamper_staged_kernel=True, hashes_override=evil_hashes
    )
    owner = owner_for(machine, config, honest.hashes)  # owner expects honest RoT
    try:
        run_guest(machine, staged, owner)
    except AttestationFailure as exc:
        print("boot verifier passed (hashes matched the malicious kernel), but:")
        print(f"guest owner rejected the report: {exc}\n")

    print("=== attack 3: host loads a patched boot verifier ===")
    honest_digest = compute_expected_digest(config, verifier_binary(), honest.hashes)
    evil_digest = compute_expected_digest(
        config, verifier_binary(seed=0x666), honest.hashes
    )
    print(f"expected launch digest : {honest_digest.hex()[:32]}...")
    print(f"malicious verifier digest: {evil_digest.hex()[:32]}...")
    print("digests differ -> the owner's comparison fails before any secret ships")


if __name__ == "__main__":
    main()
