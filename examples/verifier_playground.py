#!/usr/bin/env python3
"""Write your own boot verifier — and watch the trust machinery react.

The boot verifier can be an actual bytecode program embedded in the
measured 13 KB binary (`repro.guest.svbl`).  This example assembles
three variants and boots each against a tampered kernel:

1. the honest program — aborts the boot on the hash mismatch;
2. a "lazy" program with the checks stripped — boots the tampered
   kernel, but its launch digest exposes it to the guest owner;
3. a broken program (illegal instruction) — crashes in the guest.

Run:  python examples/verifier_playground.py
"""

import dataclasses

from repro.common import Blob
from repro.core import SEVeriFast, VmConfig
from repro.core.digest_tool import compute_expected_digest
from repro.formats.kernels import AWS
from repro.guest.bootverifier import VerificationError
from repro.guest.svbl import (
    Instr,
    Op,
    build_verifier_image,
    default_program,
    malicious_program,
)
from repro.hw.platform import Machine
from repro.sev.guestowner import AttestationFailure, GuestOwner
from repro.vmm.firecracker import FirecrackerVMM


def boot_with(program_image, tamper: bool):
    machine = Machine()
    config = VmConfig(kernel=AWS)
    sf = SEVeriFast(machine=machine)
    prepared = sf.prepare(config, machine)
    artifacts = prepared.artifacts
    if tamper:
        data = bytearray(artifacts.bzimage.data)
        data[len(data) // 2] ^= 0xFF
        artifacts = dataclasses.replace(
            artifacts, bzimage=Blob(bytes(data), artifacts.bzimage.nominal_size)
        )
    owner = GuestOwner(
        trusted_vcek=machine.psp.vcek.public,
        expected_digest=compute_expected_digest(
            config, build_verifier_image(default_program(config.layout)),
            prepared.hashes,
        ),
        secret=b"the-secret",
    )
    vmm = FirecrackerVMM(machine)
    return machine.sim.run_process(
        vmm.boot_severifast(
            config,
            artifacts,
            prepared.initrd,
            owner=owner,
            hashes=prepared.hashes,
            verifier=program_image,
        )
    )


def main() -> None:
    layout = VmConfig(kernel=AWS).layout

    print("1) honest verifier vs tampered kernel")
    honest = build_verifier_image(default_program(layout))
    try:
        boot_with(honest, tamper=True)
    except VerificationError as exc:
        print(f"   guest aborted the boot: {exc}\n")

    print("2) lazy verifier (hash checks stripped) vs tampered kernel")
    lazy = build_verifier_image(malicious_program(layout))
    try:
        result = boot_with(lazy, tamper=True)
        print(f"   kernel booted (init ran: {result.init_executed}) — but...")
    except AttestationFailure as exc:
        print(f"   guest owner refused the secret: {exc}\n")

    print("3) broken verifier (program truncated mid-flow)")
    broken = build_verifier_image(
        [Instr(Op.CPUID), Instr(Op.PVALIDATE), Instr(Op.RDHASHES, layout.hashes_addr)]
    )
    try:
        boot_with(broken, tamper=False)
    except VerificationError as exc:
        print(f"   verifier crashed: {exc}\n")

    print("4) honest verifier vs honest kernel (control)")
    result = boot_with(honest, tamper=False)
    print(f"   attested: {result.attested}, secret: {result.secret!r}")
    print(
        "\nThe program bytes live inside the measured binary: whichever\n"
        "behaviour you assemble, the launch digest pins it — change the\n"
        "program and the guest owner's expected digest stops matching."
    )


if __name__ == "__main__":
    main()
