#!/usr/bin/env python3
"""Quickstart: boot one confidential microVM with SEVeriFast.

Builds the AWS-config kernel and attestation initrd, computes the
out-of-band hashes and the expected launch digest, cold-boots an SEV-SNP
guest through the modified Firecracker, and completes remote attestation
— printing the same phase breakdown the paper's figures use.

Run:  python examples/quickstart.py
"""

from repro.core import SEVeriFast, VmConfig
from repro.formats.kernels import AWS


def main() -> None:
    sf = SEVeriFast(secret=b"postgres://user:s3cret@db/prod")
    config = VmConfig(kernel=AWS)

    print(f"kernel      : {config.kernel.name} ({config.kernel.description})")
    print(f"memory      : {config.memory_size // (1024 * 1024)} MiB, "
          f"{config.vcpus} vCPU, policy={config.sev_policy.mode.value}")

    result = sf.cold_boot(config)

    print("\n--- boot phases ---")
    for phase, duration in result.timeline.breakdown().items():
        print(f"  {phase:18s} {duration:8.2f} ms")
    print(f"  {'boot time':18s} {result.boot_ms:8.2f} ms  (VMM exec -> init)")
    print(f"  {'with attestation':18s} {result.total_ms:8.2f} ms")

    print("\n--- security ---")
    print(f"  init executed      : {result.init_executed}")
    print(f"  launch digest      : {result.launch_digest.hex()[:32]}...")
    print(f"  attested           : {result.attested}")
    print(f"  secret released    : {result.secret!r}")

    # Compare against the mainstream QEMU/OVMF stack.
    qemu_result, extras = sf.cold_boot_qemu(config)
    reduction = 1 - result.total_ms / qemu_result.total_ms
    print("\n--- vs QEMU/OVMF ---")
    print(f"  QEMU/OVMF total    : {qemu_result.total_ms:8.2f} ms "
          f"(firmware alone: {extras.ovmf_breakdown.total_ms:.0f} ms)")
    print(f"  SEVeriFast saves   : {reduction * 100:.1f} %")


if __name__ == "__main__":
    main()
