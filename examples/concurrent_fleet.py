#!/usr/bin/env python3
"""The PSP bottleneck: launching a fleet of confidential microVMs.

Reproduces the Fig. 12 experiment interactively: N guests launch at the
same instant on one machine, every SEV launch command funnels through the
single-core PSP, and average boot time grows linearly with N — while the
same fleet without SEV boots in constant time.

Run:  python examples/concurrent_fleet.py [max_vms]
"""

import sys

from repro.analysis.render import ascii_bar_chart
from repro.analysis.stats import linear_fit
from repro.core.config import VmConfig
from repro.core.severifast import SEVeriFast
from repro.formats.kernels import AWS


def main() -> None:
    max_vms = int(sys.argv[1]) if len(sys.argv) > 1 else 40
    counts = [n for n in (1, 2, 5, 10, 20, 30, 40, 50) if n <= max_vms]

    sf = SEVeriFast()
    config = VmConfig(kernel=AWS, scale=1.0 / 1024.0, attest=False)

    sev_series = []
    nonsev_series = []
    for n in counts:
        sev = sf.concurrent_boots(config, count=n, sev=True)
        nonsev = sf.concurrent_boots(config, count=n, sev=False)
        sev_series.append(sum(r.boot_ms for r in sev) / n)
        nonsev_series.append(sum(r.boot_ms for r in nonsev) / n)

    print(
        ascii_bar_chart(
            [(f"SEV x{n}", ms) for n, ms in zip(counts, sev_series)]
            + [(f"plain x{n}", ms) for n, ms in zip(counts, nonsev_series)],
            title="mean boot time vs concurrent launches",
        )
    )

    slope, intercept, r2 = linear_fit(counts, sev_series)
    single = sf.concurrent_boots(config, count=1, sev=True)[0]
    print(f"\nSEV trend: {slope:.1f} ms per extra VM (r^2 = {r2:.4f})")
    print(f"per-launch PSP occupancy: {single.psp_occupancy_ms:.1f} ms")
    print(
        "\nThe slope equals the PSP time each launch consumes: every\n"
        "LAUNCH_START / UPDATE_DATA / FINISH serializes on the single\n"
        "PSP core, so the fleet's boots stretch linearly (§6.2, Fig. 12).\n"
        "Without SEV there is no PSP on the path and the series is flat."
    )


if __name__ == "__main__":
    main()
