#!/usr/bin/env python3
"""Warm-start strategies for confidential microVMs (§7.1).

Cold boot is only half the serverless story.  This example walks the
warm-start design space the paper's discussion section maps out, and
quantifies each point with the simulator:

- keep-alive pools (functionally correct, but SEV pages cannot be
  deduplicated: pool memory scales as N x 256 MiB);
- snapshot restore with lazy copy-on-write (the non-SEV trick — the RMP
  forbids it for SNP guests);
- snapshot restore with key reuse (works for SEV, pays a full copy and a
  re-validation sweep, and weakens the trust model).

Run:  python examples/warm_start_frontier.py
"""

from repro.analysis.render import format_table
from repro.common import MiB, human_size
from repro.core.config import VmConfig
from repro.core.severifast import SEVeriFast
from repro.formats.kernels import AWS
from repro.hw.platform import Machine
from repro.serverless.snapshots import (
    RestorePolicy,
    SnapshotError,
    VmSnapshot,
    restore,
)
from repro.sev.policy import SevMode


def main() -> None:
    config = VmConfig(kernel=AWS, scale=1.0 / 1024.0, attest=False)

    # Cold boot baseline.
    machine = Machine()
    cold = SEVeriFast(machine=machine).cold_boot(config, machine=machine, attest=False)
    print(f"cold SEVeriFast boot: {cold.boot_ms:.1f} ms\n")

    # Build representative snapshots (resident set of a booted AWS guest).
    resident = cold.resident_bytes
    nominal = int(resident / config.scale)
    sev_snapshot = VmSnapshot(
        kernel_name="aws", sev_mode=SevMode.SEV_SNP,
        resident_bytes=resident, nominal_bytes=nominal, launch_digest=b"\x00" * 48,
    )
    plain_snapshot = VmSnapshot(
        kernel_name="aws", sev_mode=None,
        resident_bytes=resident, nominal_bytes=nominal, launch_digest=None,
    )

    rows = []
    for label, snapshot, policy in (
        ("plain / lazy CoW", plain_snapshot, RestorePolicy.LAZY_COW),
        ("SEV / lazy CoW", sev_snapshot, RestorePolicy.LAZY_COW),
        ("SEV / key reuse", sev_snapshot, RestorePolicy.SEV_KEY_REUSE),
        ("SEV / fresh key", sev_snapshot, RestorePolicy.SEV_FRESH_KEY),
    ):
        m = Machine()
        try:
            outcome = m.sim.run_process(restore(m, snapshot, policy))
            rows.append(
                [label, f"{outcome.restore_ms:.1f} ms",
                 human_size(outcome.private_bytes), "ok"]
            )
        except SnapshotError as exc:
            rows.append([label, "-", "-", f"refused: {exc}"])

    print(
        format_table(
            ["strategy", "restore latency", "private memory", "outcome"],
            rows,
            title=f"Restore strategies for a {human_size(nominal)} working set",
        )
    )

    # Keep-alive memory scaling (the other §7.1 constraint).
    print("\nkeep-alive pool memory (256 MiB VMs):")
    for n in (1, 4, 16):
        sev_mem = n * 256 * MiB
        plain_mem = int(256 * MiB * 0.6) + n * int(256 * MiB * 0.4)
        print(
            f"  {n:2d} warm VMs: SEV {human_size(sev_mem):>6s}   "
            f"plain (60% dedup) {human_size(plain_mem):>6s}"
        )
    print(
        "\nEvery SEV strategy either pays a full-copy restore, pins full"
        "\nper-VM memory, or weakens the key model — which is why the paper"
        "\nargues cold-start optimization is the necessary first step."
    )


if __name__ == "__main__":
    main()
