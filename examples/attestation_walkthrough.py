#!/usr/bin/env python3
"""Attestation, step by step (Fig. 1 steps 5-8, §6.1).

Walks the whole trust pipeline with real artifacts printed at each step:

1. the guest owner computes the expected launch digest with the §4.2
   digest tool (no VM involved);
2. a guest cold-boots; the PSP builds the *actual* launch digest from
   the pre-encrypted regions;
3. the PSP signs an attestation report with the chip's VCEK;
4. the guest ships the report to the owner over virtio-net;
5. the owner proves the VCEK through the ARK→ASK→VCEK certificate
   chain, compares digests, and wraps the secret to the guest's
   transport key.

Run:  python examples/attestation_walkthrough.py
"""

from repro.core import SEVeriFast, VmConfig
from repro.core.digest_tool import compute_expected_digest, preencrypted_regions
from repro.formats.kernels import AWS
from repro.guest.bootverifier import verifier_binary
from repro.hw.platform import Machine
from repro.sev.certchain import verify_chain


def main() -> None:
    machine = Machine()
    sf = SEVeriFast(machine=machine, secret=b"wrap-me-only-after-attestation")
    config = VmConfig(kernel=AWS)

    print("== step 0: what will be measured ==")
    prepared = sf.prepare(config, machine)
    for gpa, data, nominal in preencrypted_regions(
        config, verifier_binary(), prepared.hashes
    ):
        print(f"  gpa {gpa:#010x}  {nominal:>6d} B")
    expected = compute_expected_digest(config, verifier_binary(), prepared.hashes)
    print(f"  expected launch digest: {expected.hex()[:48]}...")

    print("\n== step 1: the chip's identity ==")
    for cert in machine.psp.cert_chain:
        print(f"  {cert.role.upper():4s} {cert.subject!r} issued by {cert.issuer!r}")
    vcek = verify_chain(
        machine.psp.cert_chain, machine.psp.key_hierarchy.ark_key.public
    )
    print(f"  chain OK -> VCEK x = {hex(vcek.x)[:20]}...")

    print("\n== step 2: cold boot + launch measurement ==")
    result = sf.cold_boot(config, machine=machine, prepared=prepared)
    print(f"  measured launch digest: {result.launch_digest.hex()[:48]}...")
    print(f"  digests match: {result.launch_digest == expected}")

    print("\n== step 3: the exchange ==")
    print(f"  attested        : {result.attested}")
    print(f"  secret released : {result.secret!r}")
    print(f"  owner audit log : {prepared.owner.audit_log}")

    print("\n== step 4: what the host saw ==")
    print("  guest console (host-visible, plaintext by design):")
    for line in result.console_log[:6]:
        print(f"    | {line}")
    print(
        "  ...but the released secret travelled wrapped to a key that\n"
        "  only ever existed inside encrypted guest memory."
    )


if __name__ == "__main__":
    main()
