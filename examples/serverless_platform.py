#!/usr/bin/env python3
"""Confidential serverless: a trace-driven FaaS platform comparison.

Runs the same synthetic invocation trace (Zipf-popular functions, Poisson
arrivals) against three platforms on the simulated EPYC host:

- stock Firecracker (no confidentiality),
- SEVeriFast (confidential, fast cold boot),
- QEMU/OVMF SEV (confidential, mainstream boot path),

and reports cold-start fractions and invocation start-delay percentiles —
the serverless metrics the paper's introduction motivates.

Run:  python examples/serverless_platform.py
"""

from repro.analysis.render import format_table
from repro.core.config import VmConfig
from repro.core.severifast import SEVeriFast
from repro.formats.kernels import AWS
from repro.hw.platform import Machine
from repro.serverless.platform import ServerlessPlatform
from repro.serverless.trace import synthesize_trace
from repro.vmm.firecracker import FirecrackerVMM
from repro.vmm.qemu import QemuVMM

SCALE = 1.0 / 1024.0


def run_platform(kind: str, trace):
    machine = Machine()
    config = VmConfig(kernel=AWS, scale=SCALE, attest=False)
    sf = SEVeriFast(machine=machine)
    prepared = sf.prepare(config, machine) if kind != "stock" else None

    def boot():
        if kind == "stock":
            from repro.formats.kernels import build_initrd, build_kernel

            vmm = FirecrackerVMM(machine)
            result = yield from vmm.boot_stock(
                config, build_kernel(AWS, SCALE), build_initrd(SCALE)
            )
        elif kind == "severifast":
            vmm = FirecrackerVMM(machine)
            result = yield from vmm.boot_severifast(
                config, prepared.artifacts, prepared.initrd, hashes=prepared.hashes
            )
        else:  # qemu
            vmm = QemuVMM(machine)
            result = yield from vmm.boot_sev_ovmf(
                config, prepared.artifacts, prepared.initrd
            )
        return result

    platform = ServerlessPlatform(machine.sim, boot, keepalive_ms=15_000.0)
    return platform.run(trace)


def main() -> None:
    trace = synthesize_trace(
        num_functions=12,
        horizon_ms=60_000.0,
        mean_rate_per_s=3.0,
        mean_exec_ms=80.0,
        seed=11,
    )
    print(
        f"trace: {len(trace)} invocations over {trace.horizon_ms / 1000:.0f} s, "
        f"{len(trace.functions)} functions\n"
    )

    rows = []
    for kind, label in (
        ("stock", "Firecracker (no SEV)"),
        ("severifast", "SEVeriFast (SEV-SNP)"),
        ("qemu", "QEMU/OVMF (SEV-SNP)"),
    ):
        stats = run_platform(kind, trace)
        rows.append(
            [
                label,
                f"{stats.cold_starts}/{len(stats.outcomes)}",
                f"{stats.mean_cold_boot_ms:.0f}",
                f"{stats.mean_start_delay_ms:.1f}",
                f"{stats.latency_percentile(50):.1f}",
                f"{stats.latency_percentile(95):.1f}",
                f"{stats.latency_percentile(99):.1f}",
            ]
        )

    print(
        format_table(
            ["platform", "cold starts", "mean cold boot (ms)",
             "mean delay (ms)", "p50", "p95", "p99"],
            rows,
            title="Invocation start delay by platform",
        )
    )
    print(
        "\nTakeaway: SEVeriFast brings confidential cold starts within the"
        "\nsame order of magnitude as plain microVMs, while the mainstream"
        "\nSEV stack pushes tail latency out by seconds."
    )


if __name__ == "__main__":
    main()
