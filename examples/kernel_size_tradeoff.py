#!/usr/bin/env python3
"""Exploring the paper's central trade-off: measurement vs decompression.

For each kernel configuration and each packaging (uncompressed vmlinux,
LZ4 bzImage, gzip bzImage), boots a real SEV guest and splits the cost
into measured-direct-boot time (copy + hash) and decompression time —
showing why SEVeriFast reintroduces kernel compression (§3.3, §4.4) and
where the break-even sits.

Run:  python examples/kernel_size_tradeoff.py
"""

from repro.analysis.render import format_table
from repro.core.config import KernelFormat, VmConfig
from repro.core.severifast import SEVeriFast
from repro.formats.bzimage import CompressionAlgo
from repro.formats.kernels import KERNEL_CONFIGS
from repro.hw.platform import Machine
from repro.vmm.timeline import BootPhase

SCALE = 1.0 / 1024.0


def boot(kernel, algo: CompressionAlgo | None):
    """One SEV boot; algo=None means the uncompressed vmlinux path."""
    machine = Machine()
    if algo is None:
        sf = SEVeriFast(machine=machine)
        config = VmConfig(
            kernel=kernel, kernel_format=KernelFormat.VMLINUX, scale=SCALE
        )
    else:
        sf = SEVeriFast(machine=machine, compression=algo)
        config = VmConfig(kernel=kernel, scale=SCALE)
    return sf.cold_boot(config, machine=machine, attest=False)


def main() -> None:
    rows = []
    for name, kernel in KERNEL_CONFIGS.items():
        for label, algo in (
            ("vmlinux", None),
            ("bzImage/lz4", CompressionAlgo.LZ4),
            ("bzImage/gzip", CompressionAlgo.GZIP),
        ):
            result = boot(kernel, algo)
            verify = result.timeline.duration(BootPhase.BOOT_VERIFICATION)
            decompress = result.timeline.duration(BootPhase.BOOTSTRAP_LOADER)
            rows.append(
                [
                    name,
                    label,
                    f"{verify:.1f}",
                    f"{decompress:.1f}",
                    f"{verify + decompress:.1f}",
                    f"{result.boot_ms:.1f}",
                ]
            )

    print(
        format_table(
            ["kernel", "packaging", "measure (ms)", "decompress (ms)",
             "measure+decompress", "full boot (ms)"],
            rows,
            title="Measurement vs decompression across kernel packagings",
        )
    )
    print(
        "\nLZ4 shrinks what the guest must copy+hash by ~4-7x at a"
        "\ndecompression cost small enough to win for every kernel —"
        "\ngzip compresses harder but its decompressor erases the gain."
    )


if __name__ == "__main__":
    main()
