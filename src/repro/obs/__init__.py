"""Observability: metrics registry, boot profiler, regression gate.

The tracer (:mod:`repro.sim.trace`) answers "what happened when" for a
single run; this package answers the two production questions next to
it (see docs/OBSERVABILITY.md):

- :mod:`repro.obs.metrics` — aggregable instruments (counters, gauges,
  fixed-bucket histograms) with labels, snapshot/merge, and
  deterministic Prometheus-text / JSON exporters.  Instrumented at the
  hot seams: PSP commands, engine events, memenc/cache activity,
  fault-plan and retry accounting, serverless outcomes.
- :mod:`repro.obs.profiler` — consumes a run's Tracer spans and
  produces per-boot phase attribution (self/total virtual time,
  critical path through the PSP queue, folded-stack export).
- :mod:`repro.obs.regress` — compares fresh ``BENCH_*`` runs against
  committed baselines with per-metric tolerance bands; the CI perf
  gate.
"""

from repro.obs.alerts import (
    AlertEngine,
    BurnRateRule,
    FlightRecorder,
    evaluate_trace_doc,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    default_registry,
    reset_default_registry,
    set_default_registry,
    use_registry,
)
from repro.obs.otrace import (
    TraceContext,
    derive_trace_id,
    explain,
    propagate,
    verify_failovers,
)
from repro.obs.profiler import BootProfile, profile
from repro.obs.regress import (
    RegressionReport,
    Tolerance,
    compare_documents,
    parallel_gate_bound,
    rules_for_document,
)

__all__ = [
    "AlertEngine",
    "BootProfile",
    "BurnRateRule",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "RegressionReport",
    "Tolerance",
    "TraceContext",
    "compare_documents",
    "default_registry",
    "derive_trace_id",
    "evaluate_trace_doc",
    "explain",
    "parallel_gate_bound",
    "profile",
    "propagate",
    "reset_default_registry",
    "rules_for_document",
    "set_default_registry",
    "use_registry",
    "verify_failovers",
]
