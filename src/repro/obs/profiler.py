"""Virtual-time boot profiler over Tracer spans.

The benchmarks used to hand-build their phase dicts from
:class:`~repro.vmm.timeline.BootTimeline`; this module derives the same
attribution — and more — from a run's :class:`~repro.sim.trace.Tracer`,
so one instrumented surface answers "where did this boot's time go":

- **per-boot phase attribution**: ``boot.phase`` and ``firmware.phase``
  spans on each VM track are nested by containment (``pre_encryption``
  inside ``vmm``, the OVMF PI phases inside ``firmware``) and reported
  with *total* and *self* virtual time;
- **critical path through the PSP queue**: the VMM phase is split into
  PSP queue wait, PSP command execution, and everything else, using the
  per-command ``wait_ms``/``vm`` tags :meth:`PlatformSecurityProcessor._occupy`
  records — under concurrency (Fig. 12) the wait segment is the story;
- **top-N spans** and a **flamegraph-style folded-stack export**
  (``track;parent;child  microseconds``) for external tooling.

``repro profile`` is the CLI; the Fig. 3/10 benchmarks consume
:func:`profile` instead of hand-built dicts, and
``tests/obs/test_profiler.py`` pins the profiler to the timeline
numbers within 1%.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.trace import Span, Tracer

#: span categories that form the nested per-VM phase tree
PHASE_CATEGORIES = ("boot.phase", "firmware.phase")

#: tolerance for float containment checks (virtual ms)
_EPS = 1e-9


@dataclass
class PhaseNode:
    """One phase interval in a VM's nested attribution tree."""

    name: str
    category: str
    start: float
    end: float
    children: list["PhaseNode"] = field(default_factory=list)

    @property
    def total_ms(self) -> float:
        return self.end - self.start

    @property
    def self_ms(self) -> float:
        """Total minus the time covered by child phases."""
        return self.total_ms - sum(c.total_ms for c in self.children)

    def walk(self, path: tuple[str, ...] = ()) -> Iterable[tuple[tuple[str, ...], "PhaseNode"]]:
        here = path + (self.name,)
        yield here, self
        for child in self.children:
            yield from child.walk(here)


@dataclass
class PspCommandStat:
    """Aggregate service/wait time for one PSP command type."""

    command: str
    count: int = 0
    service_ms: float = 0.0
    wait_ms: float = 0.0

    @property
    def mean_service_ms(self) -> float:
        return self.service_ms / self.count if self.count else 0.0


@dataclass
class VmProfile:
    """Phase attribution for one VM track."""

    track: str
    roots: list[PhaseNode] = field(default_factory=list)
    #: PSP command spans attributed to this VM (via the ``vm`` span tag)
    psp_service_ms: float = 0.0
    psp_wait_ms: float = 0.0
    psp_commands: int = 0

    def totals(self, category: Optional[str] = None) -> dict[str, float]:
        """Phase name -> total ms (matches ``BootTimeline.breakdown``)."""
        out: dict[str, float] = {}
        for root in self.roots:
            for _path, node in root.walk():
                if category is not None and node.category != category:
                    continue
                out[node.name] = out.get(node.name, 0.0) + node.total_ms
        return out

    def phase_ms(self) -> dict[str, float]:
        """``boot.phase`` totals only — the Fig. 10 attribution."""
        return self.totals("boot.phase")

    def firmware_ms(self) -> dict[str, float]:
        """``firmware.phase`` totals — the Fig. 3 OVMF PI breakdown."""
        return self.totals("firmware.phase")

    def critical_path(self) -> list[tuple[str, float]]:
        """The boot as ordered segments summing to its elapsed phases.

        Top-level phases appear in time order; the ``vmm`` phase is
        split into ``vmm/psp.wait`` (queueing behind other guests),
        ``vmm/psp.exec`` (commands holding the PSP), and ``vmm/other``.
        """
        segments: list[tuple[str, float]] = []
        for root in sorted(self.roots, key=lambda n: n.start):
            if root.category != "boot.phase":
                continue
            if root.name == "vmm" and self.psp_commands:
                in_vmm_service = min(self.psp_service_ms, root.total_ms)
                other = max(
                    0.0, root.total_ms - self.psp_wait_ms - in_vmm_service
                )
                segments.append(("vmm/psp.wait", self.psp_wait_ms))
                segments.append(("vmm/psp.exec", in_vmm_service))
                segments.append(("vmm/other", other))
            else:
                segments.append((root.name, root.total_ms))
        return segments


@dataclass
class BootProfile:
    """The whole run: per-VM attribution plus machine-wide PSP rollup."""

    vms: dict[str, VmProfile] = field(default_factory=dict)
    psp: dict[str, PspCommandStat] = field(default_factory=dict)
    #: the N longest closed spans in the run, any category
    _spans: list["Span"] = field(default_factory=list)

    @property
    def tracks(self) -> list[str]:
        return sorted(self.vms)

    def vm(self, track: str) -> VmProfile:
        return self.vms[track]

    def single_vm(self) -> VmProfile:
        """The only VM's profile (single-boot runs); raises otherwise."""
        if len(self.vms) != 1:
            raise ValueError(
                f"expected exactly one VM track, found {self.tracks}"
            )
        return next(iter(self.vms.values()))

    def top_spans(self, n: int = 10) -> list["Span"]:
        return sorted(
            self._spans,
            key=lambda s: (-(s.duration), s.track, s.name),
        )[:n]

    def folded(self) -> str:
        """Flamegraph folded-stack lines: ``track;path self_microseconds``.

        Self time (not total) per stack frame, in integer microseconds,
        one line per distinct stack, sorted — feed straight into
        ``flamegraph.pl`` or speedscope.
        """
        weights: dict[str, int] = {}
        for track in sorted(self.vms):
            for root in self.vms[track].roots:
                for path, node in root.walk():
                    us = int(round(node.self_ms * 1000.0))
                    if us <= 0:
                        continue
                    key = ";".join((track,) + path)
                    weights[key] = weights.get(key, 0) + us
        for command in sorted(self.psp):
            stat = self.psp[command]
            us = int(round(stat.service_ms * 1000.0))
            if us > 0:
                weights[f"psp;{command}"] = us
        return "\n".join(f"{k} {weights[k]}" for k in sorted(weights)) + (
            "\n" if weights else ""
        )

    def report(self, top: int = 10) -> str:
        """The human-readable profile (``repro profile`` output)."""
        lines = ["boot profile (virtual ms)", "========================="]
        for track in self.tracks:
            vm = self.vms[track]
            boot = sum(n.total_ms for n in vm.roots if n.category == "boot.phase")
            lines.append(f"\n[{track}]  phases total {boot:.2f} ms")
            lines.append(f"  {'phase':<30} {'total':>10} {'self':>10}")
            for root in sorted(vm.roots, key=lambda n: n.start):
                for path, node in root.walk():
                    indent = "  " * (len(path) - 1)
                    name = indent + node.name
                    lines.append(
                        f"  {name:<30} {node.total_ms:>10.2f} {node.self_ms:>10.2f}"
                    )
            path_segs = vm.critical_path()
            if path_segs:
                rendered = " -> ".join(f"{n} {ms:.2f}" for n, ms in path_segs)
                lines.append(f"  critical path: {rendered}")
            if vm.psp_commands:
                lines.append(
                    f"  psp: {vm.psp_commands} commands, "
                    f"exec {vm.psp_service_ms:.2f} ms, "
                    f"queue wait {vm.psp_wait_ms:.2f} ms"
                )
        if self.psp:
            lines.append("\n[psp commands]")
            lines.append(
                f"  {'command':<22} {'n':>5} {'exec total':>11} "
                f"{'exec mean':>10} {'wait total':>11}"
            )
            for command in sorted(
                self.psp, key=lambda c: -self.psp[c].service_ms
            ):
                stat = self.psp[command]
                lines.append(
                    f"  {command:<22} {stat.count:>5} {stat.service_ms:>11.2f} "
                    f"{stat.mean_service_ms:>10.3f} {stat.wait_ms:>11.2f}"
                )
        top_spans = self.top_spans(top)
        if top_spans:
            lines.append(f"\n[top {len(top_spans)} spans]")
            for span in top_spans:
                lines.append(
                    f"  {span.duration:>10.2f} ms  {span.category:<14} "
                    f"{span.name:<28} {span.track}"
                )
        return "\n".join(lines)


def _build_tree(spans: list["Span"]) -> list[PhaseNode]:
    """Nest same-track phase spans by interval containment."""
    nodes = [
        PhaseNode(s.name, s.category, s.start, s.end)  # type: ignore[arg-type]
        for s in sorted(spans, key=lambda s: (s.start, -(s.end or s.start)))
    ]
    roots: list[PhaseNode] = []
    stack: list[PhaseNode] = []
    for node in nodes:
        while stack and node.start >= stack[-1].end - _EPS:
            stack.pop()
        if stack and node.end <= stack[-1].end + _EPS:
            stack[-1].children.append(node)
        else:
            while stack:
                stack.pop()
            roots.append(node)
        stack.append(node)
    return roots


def profile(tracer: "Tracer") -> BootProfile:
    """Build a :class:`BootProfile` from an attached tracer's spans.

    Only closed spans participate (exports close open spans; the
    profiler instead reflects exactly what finished).
    """
    prof = BootProfile()
    closed = [s for s in tracer.spans if s.end is not None]
    prof._spans = closed

    by_track: dict[str, list] = {}
    for span in closed:
        if span.category in PHASE_CATEGORIES:
            by_track.setdefault(span.track, []).append(span)
    for track, spans in by_track.items():
        prof.vms[track] = VmProfile(track=track, roots=_build_tree(spans))

    for span in closed:
        if span.category != "psp":
            continue
        stat = prof.psp.get(span.name)
        if stat is None:
            stat = prof.psp[span.name] = PspCommandStat(command=span.name)
        wait = float(span.args.get("wait_ms", 0.0))
        stat.count += 1
        stat.service_ms += span.duration
        stat.wait_ms += wait
        vm_track = span.args.get("vm")
        if vm_track in prof.vms:
            vm = prof.vms[vm_track]
            vm.psp_commands += 1
            vm.psp_service_ms += span.duration
            vm.psp_wait_ms += wait
    return prof
