"""SLO burn-rate alerting and a flight recorder for fleet runs.

The tracer answers "what happened to *this* invocation"; this module
answers "is the fleet eating its error budget too fast".  It consumes
the per-invocation records of a fleet otrace artifact (see
:mod:`repro.obs.otrace`) and evaluates **multi-window burn-rate rules**
(the SRE-workbook shape): a rule fires when the error-budget burn rate
exceeds its threshold over a *long* window (sustained damage) **and**
over a *short* window (still happening now).  The two-window AND keeps
one ancient spike from paging forever while still catching an active
incident quickly.

Everything runs on virtual time and plain data, so alert evaluation is
a pure function of the artifact: the same seed produces byte-identical
firings (and flight-recorder dumps) at 1, 2, or 4 workers, because the
per-cell invocation records are worker-invariant.

On every firing the engine snapshots a bounded **flight recorder** —
the last :attr:`FlightRecorder.capacity` terminal invocation records
before the breach — so the JSON artifact carries the context an
operator (or a test) needs without shipping the whole run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Optional, Sequence

ALERTS_SCHEMA = "repro-fleet-alerts-v1"

#: fleet cold-start SLO used by the ``boot-latency`` rule (virtual ms);
#: the canonical small-scale fleet boots far under this, so only a
#: genuinely fat tail (PSP queueing, degraded full boots) breaches it
BOOT_SLO_MS = 400.0


@dataclass(frozen=True)
class SloEvent:
    """One SLO-relevant observation on a cell's virtual clock."""

    at_ms: float
    ok: bool
    trace_id: str = ""
    value: float = 0.0


@dataclass(frozen=True)
class BurnRateRule:
    """A multi-window burn-rate alert over a stream of SLO events.

    ``budget`` is the allowed error fraction (1 - SLO target); the burn
    rate of a window is ``error_rate / budget``, so burn 1.0 means
    "exactly on budget" and burn 10 means "spending a month of budget
    in three days".  The rule fires when **both** windows burn at or
    above ``threshold`` and the long window holds at least
    ``min_events`` events (tiny windows produce garbage rates).
    """

    name: str
    description: str = ""
    budget: float = 0.01
    long_window_ms: float = 10_000.0
    short_window_ms: float = 2_500.0
    threshold: float = 1.0
    min_events: int = 3


#: the fleet rule pack: failover pressure, restore-path health, the
#: cold-start latency SLO, and tamper detections (any tamper pages)
DEFAULT_RULES: tuple[BurnRateRule, ...] = (
    BurnRateRule(
        name="failover-burn",
        description="invocations needing failover (host loss pressure)",
        budget=0.02,
        long_window_ms=10_000.0,
        short_window_ms=2_500.0,
        threshold=1.0,
        min_events=3,
    ),
    BurnRateRule(
        name="restore-miss",
        description="cold starts that full-booted instead of restoring",
        budget=0.25,
        long_window_ms=10_000.0,
        short_window_ms=2_500.0,
        threshold=2.0,
        min_events=4,
    ),
    BurnRateRule(
        name="boot-latency",
        description=f"cold starts over the {BOOT_SLO_MS:g} ms SLO",
        budget=0.05,
        long_window_ms=10_000.0,
        short_window_ms=2_500.0,
        threshold=2.0,
        min_events=4,
    ),
    BurnRateRule(
        name="tamper-burn",
        description="tamper-aborted invocations (any is an incident)",
        budget=0.001,
        long_window_ms=20_000.0,
        short_window_ms=5_000.0,
        threshold=1.0,
        min_events=1,
    ),
)


def rule_by_name(name: str, rules: Sequence[BurnRateRule] = DEFAULT_RULES):
    for rule in rules:
        if rule.name == name:
            return rule
    raise KeyError(f"no such alert rule: {name}")


def slo_events(
    rule_name: str,
    invocations: Iterable[dict],
    *,
    boot_slo_ms: float = BOOT_SLO_MS,
) -> list[SloEvent]:
    """Project invocation records into a rule's SLO event stream.

    Events land at the invocation's terminal time (``end_ms``) — that
    is when the controller knows the outcome, hence when a real alert
    pipeline would see it.  Streams are sorted by (time, trace id) so
    evaluation order is total and deterministic.
    """
    if rule_name not in (
        "failover-burn",
        "restore-miss",
        "boot-latency",
        "tamper-burn",
    ):
        raise KeyError(f"no event projection for rule: {rule_name}")
    events: list[SloEvent] = []
    for inv in invocations:
        at = float(inv.get("end_ms", inv.get("arrival_ms", 0.0)))
        tid = inv.get("trace_id", "")
        if rule_name == "failover-burn":
            events.append(
                SloEvent(
                    at_ms=at,
                    ok=int(inv.get("failovers", 0)) == 0
                    and not inv.get("failed", False),
                    trace_id=tid,
                    value=float(inv.get("failovers", 0)),
                )
            )
        elif rule_name == "restore-miss":
            if inv.get("cold") and not inv.get("failed"):
                events.append(
                    SloEvent(
                        at_ms=at,
                        ok=bool(inv.get("restored", False)),
                        trace_id=tid,
                    )
                )
        elif rule_name == "boot-latency":
            if inv.get("cold") and not inv.get("failed"):
                boot_ms = float(inv.get("boot_ms", 0.0))
                events.append(
                    SloEvent(
                        at_ms=at,
                        ok=boot_ms <= boot_slo_ms,
                        trace_id=tid,
                        value=boot_ms,
                    )
                )
        elif rule_name == "tamper-burn":
            events.append(
                SloEvent(
                    at_ms=at,
                    ok=not inv.get("tamper_detected", False),
                    trace_id=tid,
                )
            )
    events.sort(key=lambda e: (e.at_ms, e.trace_id))
    return events


class FlightRecorder:
    """A bounded ring of terminal invocation records.

    The engine feeds it every terminal outcome in virtual-time order;
    :meth:`snapshot` returns the last ``capacity`` records — the JSON
    dump attached to each alert firing.
    """

    def __init__(self, capacity: int = 32):
        if capacity < 1:
            raise ValueError("flight recorder needs capacity >= 1")
        self.capacity = capacity
        self._ring: list[dict] = []
        self.recorded = 0

    def record(self, entry: dict) -> None:
        self.recorded += 1
        self._ring.append(entry)
        if len(self._ring) > self.capacity:
            del self._ring[0 : len(self._ring) - self.capacity]

    def snapshot(self) -> dict[str, Any]:
        return {
            "capacity": self.capacity,
            "recorded": self.recorded,
            "records": [dict(r) for r in self._ring],
        }


def _window_burn(
    events: Sequence[SloEvent], upto: int, at_ms: float, window_ms: float,
    budget: float,
) -> tuple[float, int, int]:
    """Burn rate over ``(at_ms - window_ms, at_ms]`` ending at index
    ``upto`` (inclusive); returns (burn, events, errors)."""
    lo = at_ms - window_ms
    total = errors = 0
    for i in range(upto, -1, -1):
        ev = events[i]
        if ev.at_ms <= lo:
            break
        total += 1
        if not ev.ok:
            errors += 1
    if total == 0:
        return 0.0, 0, 0
    return (errors / total) / budget, total, errors


class AlertEngine:
    """Evaluate burn-rate rules over one cell's invocation records.

    Firing semantics: walk events chronologically; when a rule's long
    *and* short windows both burn at or past threshold it fires once,
    then stays latched until the condition clears — so a sustained
    breach produces one page, and a clear-then-breach produces two.
    """

    def __init__(
        self,
        rules: Sequence[BurnRateRule] = DEFAULT_RULES,
        *,
        boot_slo_ms: float = BOOT_SLO_MS,
        recorder_capacity: int = 32,
    ):
        self.rules = tuple(rules)
        self.boot_slo_ms = boot_slo_ms
        self.recorder_capacity = recorder_capacity

    def evaluate_cell(self, cell_record: dict) -> list[dict]:
        """All firings for one cell of the otrace artifact, ordered by
        (virtual time, rule name)."""
        cell = int(cell_record.get("cell", 0))
        invocations = sorted(
            cell_record.get("invocations", []),
            key=lambda r: (
                float(r.get("end_ms", 0.0)),
                r.get("trace_id", ""),
            ),
        )
        recorder = FlightRecorder(self.recorder_capacity)
        streams = {
            rule.name: slo_events(
                rule.name, invocations, boot_slo_ms=self.boot_slo_ms
            )
            for rule in self.rules
        }
        cursor = {rule.name: 0 for rule in self.rules}
        latched = {rule.name: False for rule in self.rules}
        firings: list[dict] = []
        for inv in invocations:
            recorder.record(self._flight_entry(inv))
            at = float(inv.get("end_ms", 0.0))
            tid = inv.get("trace_id", "")
            for rule in self.rules:
                events = streams[rule.name]
                i = cursor[rule.name]
                # advance through every event at or before this terminal
                while i < len(events) and (
                    (events[i].at_ms, events[i].trace_id) <= (at, tid)
                ):
                    fired = self._step(
                        rule, events, i, latched, recorder, cell
                    )
                    if fired is not None:
                        firings.append(fired)
                    i += 1
                cursor[rule.name] = i
        firings.sort(key=lambda f: (f["at_ms"], f["rule"]))
        return firings

    def _step(
        self,
        rule: BurnRateRule,
        events: Sequence[SloEvent],
        i: int,
        latched: dict,
        recorder: FlightRecorder,
        cell: int,
    ) -> Optional[dict]:
        ev = events[i]
        burn_long, n_long, err_long = _window_burn(
            events, i, ev.at_ms, rule.long_window_ms, rule.budget
        )
        burn_short, n_short, err_short = _window_burn(
            events, i, ev.at_ms, rule.short_window_ms, rule.budget
        )
        breach = (
            n_long >= rule.min_events
            and burn_long >= rule.threshold
            and burn_short >= rule.threshold
        )
        if not breach:
            latched[rule.name] = False
            return None
        if latched[rule.name]:
            return None
        latched[rule.name] = True
        return {
            "rule": rule.name,
            "cell": cell,
            "at_ms": round(ev.at_ms, 6),
            "trace_id": ev.trace_id,
            "burn_long": round(burn_long, 6),
            "burn_short": round(burn_short, 6),
            "window_events": n_long,
            "window_errors": err_long,
            "short_events": n_short,
            "short_errors": err_short,
            "budget": rule.budget,
            "threshold": rule.threshold,
            "flight_recorder": recorder.snapshot(),
        }

    @staticmethod
    def _flight_entry(inv: dict) -> dict:
        keep = (
            "trace_id",
            "index",
            "function",
            "arrival_ms",
            "end_ms",
            "host",
            "cold",
            "restored",
            "degraded",
            "boot_ms",
            "failovers",
            "failed",
            "tamper_detected",
        )
        return {k: inv[k] for k in keep if k in inv}


def evaluate_trace_doc(
    doc: dict,
    *,
    rules: Sequence[BurnRateRule] = DEFAULT_RULES,
    boot_slo_ms: float = BOOT_SLO_MS,
    recorder_capacity: int = 32,
) -> dict[str, Any]:
    """Evaluate the rule pack over a fleet otrace artifact.

    Returns the alerts document: per-cell firings (each carrying its
    flight-recorder dump) ordered by (cell, virtual time, rule), plus
    the rule pack so the artifact is self-describing.
    """
    engine = AlertEngine(
        rules, boot_slo_ms=boot_slo_ms, recorder_capacity=recorder_capacity
    )
    firings: list[dict] = []
    for cell_record in doc.get("cells", []):
        firings.extend(engine.evaluate_cell(cell_record))
    firings.sort(key=lambda f: (f["cell"], f["at_ms"], f["rule"]))
    return {
        "schema": ALERTS_SCHEMA,
        "seed": doc.get("seed"),
        "cells": len(doc.get("cells", [])),
        "boot_slo_ms": boot_slo_ms,
        "rules": [
            {
                "name": r.name,
                "description": r.description,
                "budget": r.budget,
                "long_window_ms": r.long_window_ms,
                "short_window_ms": r.short_window_ms,
                "threshold": r.threshold,
                "min_events": r.min_events,
            }
            for r in rules
        ],
        "firings": firings,
        "fired_rules": sorted({f["rule"] for f in firings}),
    }
