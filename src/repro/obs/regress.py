"""Benchmark regression gate: fresh runs vs committed ``BENCH_*`` baselines.

``BENCH_wallclock.json`` and ``BENCH_chaos.json`` are the repo's perf
and robustness trajectory; this module turns them into a *gate*: flatten
both documents to dotted numeric paths, match each path against a rule
list of per-metric :class:`Tolerance` bands, and fail when a metric
moved the wrong way by more than its band allows.

Direction matters: ``speedup`` falling 40% is a regression, rising 40%
is an improvement; ``p99_boot_ms`` is the opposite; ``detection_rate``
may never drop at all.  Paths that are run configuration rather than
results (boot counts, seeds, cache stats) are ignored by the built-in
rule sets.

Two baseline kinds are auto-detected (:func:`rules_for_document`):

- **wallclock** (``schema: repro-perfbench-v1`` or ``-v2``): wall-clock
  rates vary machine to machine, so the default bands are generous and
  only throughput/speedup leaves are compared; the v2 parallel-fleet
  leaves get the widest bands of all, because multi-worker scaling
  depends on how many cores the host actually has;
- **chaos** (``experiment: chaos``): fully virtual and seed-driven, so
  bands are tight and the detection-rate invariant is absolute.

``repro regress --baseline BENCH_chaos.json`` regenerates the document
with the baseline's own parameters and compares; ``--current FILE``
compares two files without running anything.  Exit status is the gate.
"""

from __future__ import annotations

import fnmatch
import math
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence, Union

Number = Union[int, float]


@dataclass(frozen=True)
class Tolerance:
    """Allowed movement for one metric.

    A change is acceptable while ``|current - baseline|`` is within
    ``max(rel * |baseline|, abs_tol)`` — or while it moves in the
    *good* direction for one-sided metrics (``direction`` of
    ``higher_is_better`` / ``lower_is_better``; ``both`` treats any
    large move as a regression).

    ``floor`` is an *absolute* hard minimum on the current value,
    judged before any relative band: a metric below its floor is a
    regression no matter how the baseline moved or how wide
    ``--rel-tol`` made the band.  Floors encode one-time acceptance
    criteria (the engine microbench's 3×-over-seed throughput) that
    must never silently erode across PRs.
    """

    rel: float = 0.1
    abs_tol: float = 0.0
    direction: str = "both"
    floor: Optional[float] = None

    def __post_init__(self) -> None:
        if self.direction not in ("both", "higher_is_better", "lower_is_better"):
            raise ValueError(f"bad tolerance direction {self.direction!r}")
        if self.rel < 0 or self.abs_tol < 0:
            raise ValueError("tolerances must be non-negative")

    def allowed(self, baseline: Number) -> float:
        return max(self.rel * abs(baseline), self.abs_tol)

    def judge(self, baseline: Number, current: Number) -> str:
        """``ok`` / ``improved`` / ``regressed`` for one metric pair."""
        if self.floor is not None and current < self.floor:
            return "regressed"
        delta = current - baseline
        if abs(delta) <= self.allowed(baseline):
            return "ok"
        if self.direction == "higher_is_better":
            return "improved" if delta > 0 else "regressed"
        if self.direction == "lower_is_better":
            return "improved" if delta < 0 else "regressed"
        return "regressed"


#: a rule: (fnmatch pattern over the dotted path, tolerance or None=ignore)
Rule = tuple[str, Optional[Tolerance]]


@dataclass
class Delta:
    """One compared metric."""

    path: str
    baseline: Optional[Number]
    current: Optional[Number]
    status: str  # ok | improved | regressed | missing

    @property
    def change_pct(self) -> Optional[float]:
        if self.baseline is None or self.current is None or self.baseline == 0:
            return None
        return 100.0 * (self.current - self.baseline) / abs(self.baseline)


@dataclass
class RegressionReport:
    """The gate's verdict over every matched metric."""

    baseline_name: str
    deltas: list[Delta] = field(default_factory=list)

    @property
    def regressions(self) -> list[Delta]:
        return [d for d in self.deltas if d.status in ("regressed", "missing")]

    @property
    def improvements(self) -> list[Delta]:
        return [d for d in self.deltas if d.status == "improved"]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        """Human-readable delta table, worst news first."""
        lines = [
            f"regression gate vs {self.baseline_name}",
            "=" * (len(self.baseline_name) + 23),
        ]
        order = {"missing": 0, "regressed": 1, "improved": 2, "ok": 3}
        marker = {"missing": "??", "regressed": "!!", "improved": "++", "ok": "  "}
        for delta in sorted(
            self.deltas, key=lambda d: (order[d.status], d.path)
        ):
            base = "-" if delta.baseline is None else f"{delta.baseline:g}"
            cur = "-" if delta.current is None else f"{delta.current:g}"
            pct = delta.change_pct
            pct_s = "" if pct is None else f" ({pct:+.1f}%)"
            lines.append(
                f" {marker[delta.status]} {delta.path:<50} "
                f"{base:>12} -> {cur:>12}{pct_s}"
            )
        lines.append(
            f"\n{len(self.deltas)} metrics compared: "
            f"{len(self.regressions)} regressed/missing, "
            f"{len(self.improvements)} improved"
        )
        lines.append("gate: " + ("PASS" if self.ok else "FAIL"))
        return "\n".join(lines)


def flatten_numeric(doc: Any, prefix: str = "") -> dict[str, Number]:
    """Dotted-path view of every numeric leaf (bools excluded)."""
    out: dict[str, Number] = {}
    if isinstance(doc, dict):
        for key in doc:
            path = f"{prefix}.{key}" if prefix else str(key)
            out.update(flatten_numeric(doc[key], path))
    elif isinstance(doc, (list, tuple)):
        for i, item in enumerate(doc):
            path = f"{prefix}.{i}" if prefix else str(i)
            out.update(flatten_numeric(item, path))
    elif isinstance(doc, bool):
        pass
    elif isinstance(doc, (int, float)) and math.isfinite(doc):
        out[prefix] = doc
    return out


def match_rule(path: str, rules: Sequence[Rule]) -> Optional[Tolerance]:
    """First matching rule's tolerance; ``None`` means skip the path."""
    for pattern, tolerance in rules:
        if fnmatch.fnmatchcase(path, pattern):
            return tolerance
    return None


def compare_documents(
    baseline: dict,
    current: dict,
    rules: Sequence[Rule],
    baseline_name: str = "baseline",
) -> RegressionReport:
    """Judge ``current`` against ``baseline`` under ``rules``.

    Paths present in the baseline but absent from the current document
    count as ``missing`` (a silently dropped metric must fail the gate,
    not pass it by omission).
    """
    base_flat = flatten_numeric(baseline)
    cur_flat = flatten_numeric(current)
    report = RegressionReport(baseline_name=baseline_name)
    for path in sorted(base_flat):
        tolerance = match_rule(path, rules)
        if tolerance is None:
            continue
        base_value = base_flat[path]
        if path not in cur_flat:
            report.deltas.append(Delta(path, base_value, None, "missing"))
            continue
        cur_value = cur_flat[path]
        report.deltas.append(
            Delta(path, base_value, cur_value, tolerance.judge(base_value, cur_value))
        )
    return report


# -- built-in rule sets ------------------------------------------------------

#: the calendar-queue engine core's acceptance floor: 3x the 704,837
#: events/s recorded by the last object-core baseline.  The events_s
#: leaf may drift with the machine inside its relative band, but it may
#: never fall below this — the 10x-path win is a ratchet, not a trend.
ENGINE_EVENTS_FLOOR = 3 * 704_837.0

#: the batched guest-owner verify path's acceptance floor (ISSUE 10):
#: batched verification must stay >= 3x serial reports/s at identical
#: verdicts.  Wall-clock rates drift with the machine; the *ratio* is
#: machine-relative and ratchets like the engine floor.
ATTEST_SPEEDUP_FLOOR = 3.0

#: fleet failover success may drift within its band but never below
#: this — the ISSUE 8 acceptance criterion, ratcheted like the engine
#: floor (a chaos run that strands work on dead hosts is a regression
#: regardless of what the baseline happened to record)
FLEET_FAILOVER_FLOOR = 0.99

#: wall-clock rates differ machine to machine; compare only throughput
#: leaves, direction-aware, with deliberately generous default bands
WALLCLOCK_RULES: tuple[Rule, ...] = (
    # the fleet workload: wall-clock throughput gets the usual generous
    # band; its SLO gates (detection, failover floor, zero lost) are
    # invariants, and the rest of its leaves are run configuration
    ("workloads.fleet.invocations_s", Tolerance(rel=0.5, direction="higher_is_better")),
    ("workloads.fleet.detection_rate", Tolerance(rel=0.0, abs_tol=1e-9, direction="higher_is_better")),
    ("workloads.fleet.failover_success_rate", Tolerance(rel=0.0, abs_tol=1e-9, direction="higher_is_better", floor=FLEET_FAILOVER_FLOOR)),
    ("workloads.fleet.lost_invocations", Tolerance(rel=0.0, abs_tol=0.0, direction="lower_is_better")),
    ("workloads.fleet.p99_cold_start_virtual_ms", Tolerance(rel=0.1, direction="lower_is_better")),
    ("workloads.fleet.*", None),
    # parallel scaling is a property of the host's core count as much as
    # of the code; its bands are the widest (a 1-core runner simply
    # cannot reproduce a 4-core baseline's speedup)
    ("workloads.*.parallel_speedup", Tolerance(rel=0.75, direction="higher_is_better")),
    ("workloads.*.parallel_boots_s", Tolerance(rel=0.75, direction="higher_is_better")),
    ("workloads.*.elapsed_s", None),
    # the attestation verify series: the serial/batched wall-clock ratio
    # carries the acceptance floor; the raw rates get the generous
    # machine-to-machine bands; virtual-time leaves are deterministic
    # (jitter 0) so their bands are tight; counts are run configuration
    ("workloads.attest_throughput.speedup", Tolerance(rel=0.5, direction="higher_is_better", floor=ATTEST_SPEEDUP_FLOOR)),
    ("workloads.attest_throughput.virtual_speedup", Tolerance(rel=0.05, direction="higher_is_better")),
    ("workloads.attest_throughput.*_reports_s", Tolerance(rel=0.5, direction="higher_is_better")),
    ("workloads.attest_throughput.*_virtual_ms", Tolerance(rel=0.05, direction="lower_is_better")),
    ("workloads.attest_throughput.rejected", Tolerance(rel=0.0, abs_tol=0.0)),
    ("workloads.attest_throughput.*", None),
    # the restore series: wall-clock rates get the usual generous bands;
    # the *virtual*-time restore/boot latencies are seed-driven and vary
    # only through sample composition, so their bands are tight
    ("workloads.*.restores_s", Tolerance(rel=0.5, direction="higher_is_better")),
    ("workloads.*.wallclock_speedup_vs_boot", Tolerance(rel=0.5, direction="higher_is_better")),
    ("workloads.*.virtual_speedup_vs_boot", Tolerance(rel=0.1, direction="higher_is_better")),
    ("workloads.*_virtual_ms", Tolerance(rel=0.1, direction="lower_is_better")),
    ("workloads.serverless_restore.restore_hit_rate", Tolerance(rel=0.1, direction="higher_is_better")),
    ("workloads.serverless_restore.restored_starts", Tolerance(rel=0.1, abs_tol=2.0, direction="higher_is_better")),
    ("workloads.serverless_restore.p50_*_ms", Tolerance(rel=0.1, direction="lower_is_better")),
    ("workloads.serverless_restore.*", None),  # invocation counts are config
    ("workloads.*.speedup", Tolerance(rel=0.5, direction="higher_is_better")),
    ("workloads.*_mb_s", Tolerance(rel=0.5, direction="higher_is_better")),
    ("workloads.*events_s", Tolerance(rel=0.5, direction="higher_is_better")),
    ("workloads.*boots_s", Tolerance(rel=0.5, direction="higher_is_better")),
    ("*", None),
)

#: chaos runs are virtual-time and seed-driven: same seed, same report —
#: small bands absorb float noise, the detection invariant absorbs nothing
CHAOS_RULES: tuple[Rule, ...] = (
    ("sweep.*.faults.*", None),  # raw fault counters are config-ish detail
    # the fleet series (the `fleet` block of BENCH_chaos.json): the SLO
    # gates are invariants; structural counters are config-ish detail
    ("fleet.*.faults.*", None),
    ("fleet.detection_rate", Tolerance(rel=0.0, abs_tol=1e-9, direction="higher_is_better")),
    ("fleet.*.detection_rate", Tolerance(rel=0.0, abs_tol=1e-9, direction="higher_is_better")),
    ("fleet.undetected_tampered_boots", Tolerance(rel=0.0, abs_tol=0.0, direction="lower_is_better")),
    ("fleet.*.undetected_tampered_boots", Tolerance(rel=0.0, abs_tol=0.0, direction="lower_is_better")),
    ("fleet.failover_success_rate", Tolerance(rel=0.0, abs_tol=1e-9, direction="higher_is_better", floor=FLEET_FAILOVER_FLOOR)),
    ("fleet.*.failover_success_rate", Tolerance(rel=0.0, abs_tol=1e-9, direction="higher_is_better", floor=FLEET_FAILOVER_FLOOR)),
    ("fleet.lost_invocations", Tolerance(rel=0.0, abs_tol=0.0, direction="lower_is_better")),
    ("fleet.*.lost_invocations", Tolerance(rel=0.0, abs_tol=0.0, direction="lower_is_better")),
    ("fleet.p99_cold_start_ms", Tolerance(rel=0.1, direction="lower_is_better")),
    ("fleet.*", None),
    ("detection_rate", Tolerance(rel=0.0, abs_tol=1e-9, direction="higher_is_better")),
    ("sweep.*.detection_rate", Tolerance(rel=0.0, abs_tol=1e-9, direction="higher_is_better")),
    ("undetected_tampered_boots", Tolerance(rel=0.0, abs_tol=0.0, direction="lower_is_better")),
    ("sweep.*.undetected_tampered_boots", Tolerance(rel=0.0, abs_tol=0.0, direction="lower_is_better")),
    ("*boot_success_rate", Tolerance(rel=0.05, direction="higher_is_better")),
    ("*success_rate", Tolerance(rel=0.05, direction="higher_is_better")),
    ("*p50_boot_ms", Tolerance(rel=0.1, direction="lower_is_better")),
    ("*p99_boot_ms", Tolerance(rel=0.1, direction="lower_is_better")),
    ("*boot_retries", Tolerance(rel=0.25, abs_tol=2.0)),
    ("*tampered_boots", Tolerance(rel=0.25, abs_tol=2.0)),
    ("*cold_starts", Tolerance(rel=0.1, abs_tol=2.0)),
    ("*invocations", Tolerance(rel=0.1, abs_tol=2.0)),
    ("*", None),
)


def parallel_gate_bound(doc: dict) -> Optional[bool]:
    """Whether the document's recording host could bind the parallel gate.

    perfbench only asserts parallel scaling when ``host_cpus >= workers
    >= 2`` — a 1-core runner records a ``parallel_speedup`` below 1.0
    that no band can make meaningful.  v2 documents written since the
    fix carry the verdict as ``workloads.fig9_parallel.gate_bound``;
    older documents are judged from their recorded ``host_cpus`` /
    ``workers``.  ``None`` when the document has no parallel workload.
    """
    fig9p = doc.get("workloads", {}).get("fig9_parallel")
    if not isinstance(fig9p, dict):
        return None
    bound = fig9p.get("gate_bound")
    if isinstance(bound, bool):
        return bound
    workers = fig9p.get("workers", doc.get("workers"))
    cpus = doc.get("host_cpus")
    if workers is None or cpus is None:
        return None
    return bool(cpus >= workers >= 2)


def detect_kind(baseline: dict) -> str:
    """``wallclock`` / ``chaos`` / ``generic`` from the document shape."""
    if baseline.get("schema") in (
        "repro-perfbench-v1",
        "repro-perfbench-v2",
        "repro-perfbench-v3",
    ):
        return "wallclock"
    if baseline.get("experiment") == "chaos":
        return "chaos"
    return "generic"


def rules_for_document(
    baseline: dict, rel_tol: Optional[float] = None
) -> tuple[str, tuple[Rule, ...]]:
    """The rule set for a baseline document, optionally re-banded.

    ``rel_tol`` overrides every matched rule's relative band (the CLI's
    ``--rel-tol``); direction and ignore rules are preserved, and
    zero-band invariants (``rel == 0`` — the detection rate) can never
    be widened.  Generic documents compare every numeric leaf two-sided.
    """
    kind = detect_kind(baseline)
    if kind == "wallclock":
        rules = WALLCLOCK_RULES
        if baseline.get("schema") == "repro-perfbench-v3":
            # The v3 schema records the calendar-queue (array) engine
            # core; its acceptance floor is part of the contract.  v1/v2
            # baselines predate the array core and keep the plain band.
            rules = (
                (
                    "workloads.engine_events.events_s",
                    Tolerance(
                        rel=0.5,
                        direction="higher_is_better",
                        floor=ENGINE_EVENTS_FLOOR,
                    ),
                ),
            ) + rules
        if parallel_gate_bound(baseline) is False:
            # The baseline was recorded where the parallel gate could
            # not bind; its speedup is an artifact of the recording
            # host's core count, so a wide band over it is vacuous —
            # skip the parallel leaves outright (the fix for silently
            # accepting regressions down to 0.25x of a meaningless
            # number).
            rules = (
                ("workloads.*.parallel_speedup", None),
                ("workloads.*.parallel_boots_s", None),
            ) + rules
    elif kind == "chaos":
        rules = CHAOS_RULES
    else:
        rules = (("*", Tolerance(rel=rel_tol if rel_tol is not None else 0.1)),)
        return kind, rules
    if rel_tol is not None:
        rules = tuple(
            (
                pattern,
                tolerance
                if tolerance is None or tolerance.rel == 0.0
                else Tolerance(
                    rel=rel_tol,
                    abs_tol=tolerance.abs_tol,
                    direction=tolerance.direction,
                    floor=tolerance.floor,  # floors survive re-banding
                ),
            )
            for pattern, tolerance in rules
        )
    return kind, rules
