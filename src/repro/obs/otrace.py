"""Per-invocation distributed tracing for the fleet (``repro explain``).

The fleet layer runs every serverless invocation as one simulation
process that crosses many subsystems: the placement RPC, the scheduler
decision, a host's warm pool or snapshot store, the PSP command queue,
restore-time re-attestation, and — under chaos — failover hops and
fallbacks to a full measured boot.  The tracer records all of those as
spans, but nothing ties them back to *which invocation* they served.

This module adds that thread:

- :func:`derive_trace_id` — a deterministic per-invocation trace ID
  from ``(seed, cell, arrival index)``.  Never wall clock, so the same
  seed always yields the same IDs at any worker count.
- :class:`TraceContext` + :func:`propagate` — generator middleware that
  activates the context on the tracer around every resume of the
  invocation's process, so every span/instant recorded from inside the
  invocation's frame (PSP commands, boot phases, retry backoff, fault
  instants, restore/re-attestation steps) is stamped with
  ``args["trace_id"]``.  With no context active the tracer records
  exactly as before, and with no tracer attached nothing here runs at
  all — untraced runs stay byte-identical.
- :func:`explain` — reconstruct one invocation's causal chain from a
  fleet otrace artifact: the span tree (nested by virtual-time
  containment), the per-phase split (queue-wait vs PSP-exec vs crypto
  vs network), and annotations for every injected fault that touched
  the invocation.

Artifact format (``repro fleet --trace-out``)::

    {"schema": "repro-fleet-otrace-v1",
     "seed": <run seed>,
     "cells": [{"cell": 0, "seed": <cell seed>,
                "stream": <Tracer.export_spans()>,
                "invocations": [<invocation record>, ...]}, ...]}

Invocation records carry the outcome the controller observed (status,
host, cold/restored/degraded, failovers, boot/reattest ms) so
``repro explain`` can cross-check the span tree against the control
plane's own account.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Generator, Iterable, Optional

#: schema tag for fleet otrace artifacts
TRACE_SCHEMA = "repro-fleet-otrace-v1"

#: span categories whose virtual time is charged to the "crypto" bucket
CRYPTO_CATEGORIES = ("crypto",)
#: span categories charged to the "network" bucket
NETWORK_CATEGORIES = ("network",)


def derive_trace_id(seed: int, cell: int, index: int) -> str:
    """The deterministic trace ID for one invocation.

    Derived from the run seed, the cell, and the invocation's arrival
    index — never from wall clock — so trace IDs are stable across
    reruns and worker counts (cells are the parallel unit; the arrival
    index orders invocations within a cell).
    """
    digest = hashlib.sha256(f"otrace:{seed}:{cell}:{index}".encode()).hexdigest()
    return digest[:16]


@dataclass(frozen=True)
class TraceContext:
    """Identity of one traced invocation, active while its frame runs."""

    trace_id: str
    function: str = ""
    cell: int = 0
    index: int = 0
    arrival_ms: float = 0.0


def propagate(tracer: Any, ctx: TraceContext, gen: Generator) -> Generator:
    """Wrap a process generator so its whole frame runs under ``ctx``.

    The discrete-event engine drives a process by ``send``/``throw`` on
    its generator; everything an invocation does (``yield from`` chains
    through controller, host, VMM, PSP, snapshot store) executes inside
    that one frame.  This middleware sets ``tracer.context`` before
    every resume and restores the previous context at every suspension,
    so spans recorded by *other* processes interleaved on the same
    clock are never mis-stamped.  Interrupts (``gen.throw``) are
    forwarded so crash delivery behaves identically to an unwrapped
    process, and the inner generator's return value is preserved.
    """
    send, throw = gen.send, gen.throw
    to_send: Any = None
    to_throw: Optional[BaseException] = None
    while True:
        prev = tracer.context
        tracer.context = ctx
        try:
            if to_throw is not None:
                item = throw(to_throw)
            else:
                item = send(to_send)
        except StopIteration as stop:
            return stop.value
        finally:
            tracer.context = prev
        to_send, to_throw = None, None
        try:
            to_send = yield item
        except BaseException as exc:
            to_throw = exc


# -- explain: reconstructing one invocation's causal chain -------------------


@dataclass
class ExplainNode:
    """One span in the invocation's chain, nested by containment."""

    name: str
    category: str
    track: str
    start: float
    end: float
    args: dict[str, Any] = field(default_factory=dict)
    children: list["ExplainNode"] = field(default_factory=list)

    @property
    def total_ms(self) -> float:
        return self.end - self.start

    def walk(self, depth: int = 0) -> Iterable[tuple[int, "ExplainNode"]]:
        yield depth, self
        for child in self.children:
            yield from child.walk(depth + 1)


@dataclass
class Explanation:
    """Everything ``repro explain <trace-id>`` knows about an invocation."""

    trace_id: str
    invocation: dict[str, Any] = field(default_factory=dict)
    roots: list[ExplainNode] = field(default_factory=list)
    #: injected faults that touched this invocation: (ts, name, args)
    faults: list[tuple[float, str, dict[str, Any]]] = field(default_factory=list)
    #: other instants stamped with the trace id
    marks: list[tuple[float, str, dict[str, Any]]] = field(default_factory=list)

    @property
    def spans(self) -> list[ExplainNode]:
        return [node for root in self.roots for _d, node in root.walk()]

    def phase_split(self) -> dict[str, float]:
        """Where this invocation's virtual time went, by cost bucket.

        - ``psp.wait`` — queueing behind other guests' PSP commands
          (the per-command ``wait_ms`` tag, same source the boot
          profiler's critical path uses);
        - ``psp.exec`` — commands holding the PSP;
        - ``crypto`` — guest-owner cert-chain verification;
        - ``network`` — attestation round trips / session resumption;
        - ``backoff`` — retry/failover backoff intervals;
        - ``boot.<phase>`` — the boot timeline phases.
        """
        split: dict[str, float] = {}

        def add(key: str, ms: float) -> None:
            if ms:
                split[key] = split.get(key, 0.0) + ms

        for node in self.spans:
            if node.category == "psp":
                add("psp.wait", float(node.args.get("wait_ms", 0.0)))
                add("psp.exec", node.total_ms)
            elif node.category in CRYPTO_CATEGORIES:
                add("crypto", node.total_ms)
            elif node.category in NETWORK_CATEGORIES:
                add("network", node.total_ms)
            elif node.category == "fault":
                add("backoff", node.total_ms)
        for name, ms in self.boot_phase_ms().items():
            add(f"boot.{name}", ms)
        return split

    def boot_phase_ms(self) -> dict[str, float]:
        """``boot.phase`` totals for this invocation (profiler-comparable)."""
        out: dict[str, float] = {}
        for node in self.spans:
            if node.category == "boot.phase":
                out[node.name] = out.get(node.name, 0.0) + node.total_ms
        return out

    def boot_tracks(self) -> list[str]:
        """VM tracks this invocation booted on (one per boot attempt)."""
        seen: dict[str, None] = {}
        for node in self.spans:
            if node.category == "boot.phase":
                seen.setdefault(node.track)
        return list(seen)

    def hops(self) -> list[dict[str, Any]]:
        """The invocation's attempt sequence (placement -> run), in order."""
        return [
            dict(node.args, start_ms=node.start, duration_ms=node.total_ms)
            for node in self.spans
            if node.category == "fleet.attempt"
        ]

    def render(self, width: int = 100) -> str:
        """The ``repro explain`` text transcript."""
        inv = self.invocation
        lines = [f"trace {self.trace_id}"]
        if inv:
            head = (
                f"  invocation {inv.get('function', '?')!r}"
                f" cell={inv.get('cell', '?')} index={inv.get('index', '?')}"
                f" arrival={inv.get('arrival_ms', 0.0):.2f} ms"
            )
            lines.append(head)
            status = inv.get("status") or (
                "tamper-abort"
                if inv.get("tamper_detected")
                else ("failed" if inv.get("failed") else "ok")
            )
            detail = []
            for key in ("host", "cold", "restored", "degraded", "failovers"):
                if key in inv:
                    detail.append(f"{key}={inv[key]}")
            lines.append(f"  outcome: {status} ({', '.join(detail)})")
        if not self.roots:
            lines.append("  (no spans recorded for this trace id)")
            return "\n".join(lines)
        lines.append("  causal chain:")
        for root in sorted(self.roots, key=lambda n: (n.start, n.end)):
            for depth, node in root.walk():
                indent = "    " + "  " * depth
                annot = ""
                if "fault" in node.args:
                    annot = f"  !fault={node.args['fault']}"
                if node.category == "psp" and node.args.get("wait_ms"):
                    annot += f"  wait={float(node.args['wait_ms']):.2f}ms"
                label = f"{indent}{node.name} [{node.category}]"
                span_txt = f"{node.start:.2f}→{node.end:.2f} ({node.total_ms:.2f} ms)"
                pad = max(1, width - len(label) - len(span_txt))
                lines.append(f"{label}{' ' * pad}{span_txt}{annot}")
        split = self.phase_split()
        if split:
            lines.append("  phase split (virtual ms):")
            for key in sorted(split, key=lambda k: -split[k]):
                lines.append(f"    {key:<28} {split[key]:>10.3f}")
        if self.faults:
            lines.append("  injected faults:")
            for ts, name, args in self.faults:
                kind = args.get("kind", "?")
                lines.append(f"    @{ts:.2f} ms  {name} kind={kind}")
        return "\n".join(lines)


_EPS = 1e-9


def build_span_tree(
    spans: list[tuple[str, str, str, float, float, dict[str, Any]]],
) -> list[ExplainNode]:
    """Nest one invocation's spans by virtual-time containment.

    The invocation is a single simulation process, so its spans form a
    sequential chain punctuated by waits — interval containment across
    tracks recovers the call structure (attempt contains placement,
    boot contains its PSP commands) without any parent pointers.
    """
    nodes = [
        ExplainNode(name, category, track, start, end, dict(args))
        for name, category, track, start, end, args in sorted(
            spans, key=lambda s: (s[3], -(s[4]), s[0])
        )
    ]
    roots: list[ExplainNode] = []
    stack: list[ExplainNode] = []
    for node in nodes:
        while stack and node.start >= stack[-1].end - _EPS:
            stack.pop()
        if stack and node.end <= stack[-1].end + _EPS:
            stack[-1].children.append(node)
        else:
            while stack:
                stack.pop()
            roots.append(node)
        stack.append(node)
    return roots


def _stream_spans(stream: dict[str, Any]) -> list:
    return stream.get("spans", [])


def _stream_instants(stream: dict[str, Any]) -> list:
    return stream.get("instants", [])


def explain_stream(
    stream: dict[str, Any],
    trace_id: str,
    invocation: Optional[dict[str, Any]] = None,
) -> Explanation:
    """Build an :class:`Explanation` from one exported span stream."""
    exp = Explanation(trace_id=trace_id, invocation=dict(invocation or {}))
    picked = [
        (name, category, track, start, end, args)
        for name, category, track, start, end, args in _stream_spans(stream)
        if args.get("trace_id") == trace_id
    ]
    exp.roots = build_span_tree(picked)
    for name, track, ts, args in _stream_instants(stream):
        if args.get("trace_id") != trace_id:
            continue
        if name.startswith("fault:"):
            exp.faults.append((ts, name, dict(args)))
        else:
            exp.marks.append((ts, name, dict(args)))
    exp.faults.sort(key=lambda f: f[0])
    exp.marks.sort(key=lambda m: m[0])
    return exp


def _check_schema(doc: dict[str, Any]) -> None:
    schema = doc.get("schema")
    if schema != TRACE_SCHEMA:
        raise ValueError(f"unsupported otrace artifact schema: {schema!r}")


def iter_invocations(doc: dict[str, Any]) -> Iterable[tuple[dict, dict]]:
    """Yield ``(cell_entry, invocation_record)`` pairs from an artifact."""
    _check_schema(doc)
    for cell_entry in doc.get("cells", []):
        for inv in cell_entry.get("invocations", []):
            rec = dict(inv)
            rec.setdefault("cell", cell_entry.get("cell", 0))
            yield cell_entry, rec


def list_trace_ids(doc: dict[str, Any]) -> list[dict[str, Any]]:
    """Summarise every invocation in an artifact (``repro explain --list``)."""
    out = []
    for _cell_entry, inv in iter_invocations(doc):
        out.append(dict(inv))
    out.sort(key=lambda r: (r.get("cell", 0), r.get("index", 0)))
    return out


def explain(doc: dict[str, Any], trace_id: str) -> Explanation:
    """Reconstruct one invocation's causal chain from an artifact."""
    for cell_entry, inv in iter_invocations(doc):
        if inv.get("trace_id") == trace_id:
            return explain_stream(cell_entry.get("stream", {}), trace_id, inv)
    raise KeyError(f"trace id {trace_id!r} not found in artifact")


def verify_failovers(doc: dict[str, Any]) -> list[str]:
    """Check every failed-over invocation's trace resolves end to end.

    Returns problems (empty list = pass): each invocation that recorded
    failovers must have spans under its trace ID, at least one
    ``fleet.attempt`` hop per attempt (failovers + 1 when it finally
    succeeded), and a host-crash or fault annotation explaining *why*
    it failed over.
    """
    problems: list[str] = []
    for cell_entry, inv in iter_invocations(doc):
        failovers = int(inv.get("failovers", 0))
        if failovers <= 0:
            continue
        tid = inv.get("trace_id", "")
        exp = explain_stream(cell_entry.get("stream", {}), tid, inv)
        if not exp.roots:
            problems.append(f"{tid}: failed-over invocation has no spans")
            continue
        hops = exp.hops()
        ok = not inv.get("failed", False)
        if len(hops) < failovers + (1 if ok else 0):
            problems.append(
                f"{tid}: {failovers} failovers but only {len(hops)} "
                "attempt spans"
            )
        crashed = any(
            h.get("outcome") in ("failover", "crashed") for h in hops
        ) or bool(exp.faults)
        if not crashed:
            problems.append(
                f"{tid}: no crash/fault annotation explains the failover"
            )
    return problems
