"""A process-wide metrics registry: counters, gauges, histograms.

The simulator's tracer records *spans* — one object per interesting
interval, great for a single run, unusable for a fleet.  This module is
the aggregable half of observability: named instruments that cost an
attribute bump on the hot path and can be snapshotted, merged across
runs, and exported.

Three instrument kinds, all label-aware:

- :class:`Counter` — monotonically non-decreasing (command counts,
  bytes encrypted, faults injected);
- :class:`Gauge` — a settable level (queue depth, warm-pool size);
- :class:`Histogram` — fixed upper-bound buckets plus sum/count (PSP
  service times, boot-phase durations).  Buckets are fixed at creation
  so two runs of the same workload always bucket identically.

Labels are passed as keyword arguments and become part of the child
instrument's identity::

    reg = default_registry()
    reg.counter("psp.commands", command="LAUNCH_START").inc()
    reg.histogram("psp.service_ms", command="LAUNCH_START").observe(3.5)

Exports are **deterministic**: both :meth:`MetricsRegistry.to_prometheus_text`
and :meth:`MetricsRegistry.to_json` sort every family, child, and label
and carry no wall-clock timestamps, so two identical seeded runs dump
byte-identical text (pinned by ``tests/obs/test_exporters.py``).

A process-global default registry backs the :mod:`repro.perf` counter
shim and every built-in instrumentation seam; swap it per run with
:func:`use_registry` (the ``repro metrics`` CLI and the determinism
tests do exactly that).
"""

from __future__ import annotations

import json
import math
import re
from bisect import bisect_left
from contextlib import contextmanager
from typing import Any, Iterator, Optional, Sequence, Union

Number = Union[int, float]

#: default fixed buckets for millisecond-scale histograms (virtual or
#: wall milliseconds); spans boot phases (µs..s) through fleet horizons
DEFAULT_MS_BUCKETS: tuple[float, ...] = (
    0.01, 0.05, 0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0,
)


class MetricError(ValueError):
    """Inconsistent metric use (kind clash, bad buckets, negative inc)."""


LabelItems = tuple[tuple[str, str], ...]


def _label_items(labels: dict[str, Any]) -> LabelItems:
    if not labels:
        return ()
    return tuple((k, str(v)) for k, v in sorted(labels.items()))


def _escape_label_value(value: str) -> str:
    """Escape ``\\``, ``"`` and newlines (the Prometheus label rules)."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


_UNESCAPE = re.compile(r"\\(.)")


def _unescape_label_value(value: str) -> str:
    return _UNESCAPE.sub(lambda m: "\n" if m.group(1) == "n" else m.group(1), value)


def flat_name(name: str, labels: LabelItems = ()) -> str:
    """The canonical flattened name: ``name{k="v",...}`` (sorted labels).

    Label values are escaped (``\\`` -> ``\\\\``, ``"`` -> ``\\"``,
    newline -> ``\\n``) so any string — fault sites, image digests,
    host IDs — round-trips through :func:`parse_flat_name`.
    """
    if not labels:
        return name
    inner = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in labels)
    return f"{name}{{{inner}}}"


_FLAT_LABEL = re.compile(r'([A-Za-z0-9_.:-]+)="((?:[^"\\]|\\.)*)"')


def parse_flat_name(flat: str) -> tuple[str, LabelItems]:
    """Invert :func:`flat_name`: ``name{k="v",...}`` -> (name, items).

    Escaped label values (``\\``, ``"``, newlines) round-trip exactly,
    which is what lets a :meth:`MetricsRegistry.snapshot` cross a
    process boundary and be folded back with
    :meth:`MetricsRegistry.merge_snapshot`.
    """
    brace = flat.find("{")
    if brace < 0:
        return flat, ()
    if not flat.endswith("}"):
        raise MetricError(f"malformed flat metric name: {flat!r}")
    name = flat[:brace]
    inner = flat[brace + 1 : -1]
    items = tuple(
        (m.group(1), _unescape_label_value(m.group(2)))
        for m in _FLAT_LABEL.finditer(inner)
    )
    return name, items


def _fmt(value: Number) -> str:
    """Deterministic numeric rendering (ints stay ints)."""
    if isinstance(value, bool):  # pragma: no cover - guarded upstream
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


_PROM_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")


def prom_name(name: str) -> str:
    """Sanitize a dotted metric name into a Prometheus identifier."""
    out = _PROM_NAME_BAD.sub("_", name)
    if out and out[0].isdigit():
        out = "_" + out
    return out


#: Prometheus label values share the flat-name escaping rules.
_prom_escape = _escape_label_value


def _prom_escape_help(text: str) -> str:
    """HELP lines escape backslash and newline (but not quotes)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


# -- instruments -------------------------------------------------------------


class Counter:
    """A monotonically non-decreasing count."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise MetricError(f"counter increment must be >= 0, got {amount}")
        self.value += amount


class Gauge:
    """A level that can move both ways."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value

    def inc(self, amount: Number = 1) -> None:
        self.value += amount

    def dec(self, amount: Number = 1) -> None:
        self.value -= amount


#: exemplars kept per histogram bucket (the last N trace IDs observed)
EXEMPLAR_LIMIT = 4


class Histogram:
    """Fixed-bucket histogram: counts per upper bound, plus sum/count.

    ``bounds`` are inclusive upper bounds in ascending order; an implicit
    ``+Inf`` bucket catches the tail.  Bucket counts are *cumulative* on
    export (the Prometheus convention).

    Buckets can carry **exemplars** — the last few trace IDs that landed
    in each bucket (:meth:`observe_ex`) — so a fat tail in an exported
    histogram links directly to concrete, explainable invocations.
    Exemplars are lazily allocated and only exported when present, so
    histograms that never see one snapshot byte-identically to before.
    """

    __slots__ = ("bounds", "bucket_counts", "sum", "count", "exemplars")
    kind = "histogram"

    def __init__(self, bounds: Sequence[float]) -> None:
        bounds_t = tuple(float(b) for b in bounds)
        if not bounds_t:
            raise MetricError("histogram needs at least one bucket bound")
        if list(bounds_t) != sorted(bounds_t) or len(set(bounds_t)) != len(bounds_t):
            raise MetricError("histogram bounds must be strictly ascending")
        self.bounds = bounds_t
        self.bucket_counts = [0] * (len(bounds_t) + 1)  # +Inf tail
        self.sum: float = 0.0
        self.count: int = 0
        #: bucket index -> [[trace_id, value], ...] (last N, lazy)
        self.exemplars: Optional[dict[int, list[list[Any]]]] = None

    def observe(self, value: Number) -> None:
        # bisect_left finds the first bound >= value (the inclusive
        # upper-bound bucket); past the last bound it lands on the +Inf
        # tail index.  C-speed lookup instead of a linear Python scan.
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def observe_ex(
        self, value: Number, trace_id: str, limit: int = EXEMPLAR_LIMIT
    ) -> None:
        """Observe ``value`` and keep ``trace_id`` as a bucket exemplar."""
        idx = bisect_left(self.bounds, value)
        self.bucket_counts[idx] += 1
        self.sum += value
        self.count += 1
        if not trace_id:
            return
        if self.exemplars is None:
            self.exemplars = {}
        ring = self.exemplars.setdefault(idx, [])
        ring.append([trace_id, float(value)])
        if len(ring) > limit:
            del ring[: len(ring) - limit]

    def _le_label(self, idx: int) -> str:
        return "+Inf" if idx >= len(self.bounds) else _fmt(self.bounds[idx])

    def exemplars_by_le(self) -> dict[str, list[list[Any]]]:
        """Exemplars keyed by upper-bound label (empty when none kept)."""
        if not self.exemplars:
            return {}
        return {
            self._le_label(idx): list(self.exemplars[idx])
            for idx in sorted(self.exemplars)
        }

    def _fold_exemplars(
        self, other: dict[int, list[list[Any]]], limit: int = EXEMPLAR_LIMIT
    ) -> None:
        """Merge another histogram's exemplars, keeping the last N.

        Callers fold shards in index order, so the surviving exemplars
        are deterministic across worker counts.
        """
        if not other:
            return
        if self.exemplars is None:
            self.exemplars = {}
        for idx in sorted(other):
            ring = self.exemplars.setdefault(idx, [])
            ring.extend(other[idx])
            if len(ring) > limit:
                del ring[: len(ring) - limit]

    def observe_n(self, value: Number, n: int) -> None:
        """Record ``n`` identical observations in one bucket lookup.

        Deferred-flush call sites (resource wait times) tally duplicate
        values first; the sum accumulates ``value * n``, which may differ
        from ``n`` sequential adds by float ulps.
        """
        self.bucket_counts[bisect_left(self.bounds, value)] += n
        self.sum += value * n
        self.count += n

    def cumulative(self) -> list[tuple[str, int]]:
        """(upper-bound label, cumulative count) pairs, ending at +Inf."""
        out: list[tuple[str, int]] = []
        running = 0
        for bound, n in zip(self.bounds, self.bucket_counts):
            running += n
            out.append((_fmt(bound), running))
        out.append(("+Inf", running + self.bucket_counts[-1]))
        return out


Instrument = Union[Counter, Gauge, Histogram]


class _Family:
    """All children of one metric name (one per distinct label set)."""

    __slots__ = ("name", "kind", "help", "bounds", "children")

    def __init__(
        self, name: str, kind: str, help_: str, bounds: Optional[tuple[float, ...]]
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help_
        self.bounds = bounds
        self.children: dict[LabelItems, Instrument] = {}


# -- the registry ------------------------------------------------------------


class MetricsRegistry:
    """Owns metric families; hands out (and caches) child instruments."""

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}
        self._collectors: list = []
        self._collecting = False

    # -- collectors ----------------------------------------------------------

    def register_collector(self, fn) -> None:
        """Register a flush hook run before any read of this registry.

        Hot paths (the simulation engine's resource grants, timer
        creation) accumulate into plain Python ints/lists and only fold
        the totals into instruments when someone actually looks: every
        read-side entry point (:meth:`value`, :meth:`counter_values`,
        :meth:`snapshot`, :meth:`to_prometheus_text`, :meth:`merge`,
        :meth:`reset`) calls :meth:`collect` first, so lazily-maintained
        metrics are indistinguishable from eagerly-maintained ones.
        Collectors must be idempotent between updates.
        """
        self._collectors.append(fn)

    def collect(self) -> None:
        """Run all registered collectors (re-entrancy safe)."""
        if self._collecting or not self._collectors:
            return
        self._collecting = True
        try:
            for fn in self._collectors:
                fn()
        finally:
            self._collecting = False

    # -- instrument accessors ----------------------------------------------

    def _family(
        self,
        name: str,
        kind: str,
        help_: str,
        bounds: Optional[tuple[float, ...]] = None,
    ) -> _Family:
        family = self._families.get(name)
        if family is None:
            family = _Family(name, kind, help_, bounds)
            self._families[name] = family
        elif family.kind != kind:
            raise MetricError(
                f"metric {name!r} is a {family.kind}, requested as {kind}"
            )
        elif kind == "histogram" and bounds is not None and family.bounds != bounds:
            raise MetricError(f"metric {name!r} re-declared with different buckets")
        if help_ and not family.help:
            family.help = help_
        return family

    def counter(self, name: str, help: str = "", **labels: Any) -> Counter:
        family = self._family(name, "counter", help)
        key = _label_items(labels)
        child = family.children.get(key)
        if child is None:
            child = family.children[key] = Counter()
        return child  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "", **labels: Any) -> Gauge:
        family = self._family(name, "gauge", help)
        key = _label_items(labels)
        child = family.children.get(key)
        if child is None:
            child = family.children[key] = Gauge()
        return child  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_MS_BUCKETS,
        help: str = "",
        **labels: Any,
    ) -> Histogram:
        bounds = tuple(float(b) for b in buckets)
        family = self._family(name, "histogram", help, bounds)
        key = _label_items(labels)
        child = family.children.get(key)
        if child is None:
            child = family.children[key] = Histogram(family.bounds or bounds)
        return child  # type: ignore[return-value]

    # -- queries ------------------------------------------------------------

    def families(self) -> list[str]:
        return sorted(self._families)

    def counter_values(self) -> dict[str, Number]:
        """Flattened ``name{labels}`` -> value for every counter child.

        This is the view the :mod:`repro.perf` compat shim exposes as
        ``counters_snapshot()``.
        """
        self.collect()
        out: dict[str, Number] = {}
        for name in sorted(self._families):
            family = self._families[name]
            if family.kind != "counter":
                continue
            for key in sorted(family.children):
                out[flat_name(name, key)] = family.children[key].value
        return out

    def value(self, name: str, **labels: Any) -> Number:
        """Current value of a counter/gauge child (0 when absent)."""
        self.collect()
        family = self._families.get(name)
        if family is None or family.kind == "histogram":
            return 0
        child = family.children.get(_label_items(labels))
        return 0 if child is None else child.value

    # -- lifecycle ----------------------------------------------------------

    def reset(self) -> None:
        """Zero every instrument (families and buckets are kept)."""
        self.collect()
        for family in self._families.values():
            for child in family.children.values():
                if isinstance(child, Histogram):
                    child.bucket_counts = [0] * len(child.bucket_counts)
                    child.sum = 0.0
                    child.count = 0
                    child.exemplars = None
                else:
                    child.value = 0

    def reset_counters(self) -> None:
        """Zero counter instruments only (the perf-shim reset)."""
        for family in self._families.values():
            if family.kind != "counter":
                continue
            for child in family.children.values():
                child.value = 0  # type: ignore[union-attr]

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one (multi-run aggregation).

        Counters and histograms add; gauges take the other registry's
        value (last write wins).  Histogram bucket layouts must agree.
        """
        other.collect()
        for name, family in other._families.items():
            for key, child in family.children.items():
                labels = dict(key)
                if family.kind == "counter":
                    self.counter(name, help=family.help, **labels).inc(child.value)
                elif family.kind == "gauge":
                    self.gauge(name, help=family.help, **labels).set(child.value)
                else:
                    assert isinstance(child, Histogram)
                    mine = self.histogram(
                        name, buckets=child.bounds, help=family.help, **labels
                    )
                    if mine.bounds != child.bounds:
                        raise MetricError(
                            f"cannot merge {name!r}: bucket layouts differ"
                        )
                    for i, n in enumerate(child.bucket_counts):
                        mine.bucket_counts[i] += n
                    mine.sum += child.sum
                    mine.count += child.count
                    if child.exemplars:
                        mine._fold_exemplars(
                            {i: list(ex) for i, ex in child.exemplars.items()}
                        )

    def merge_snapshot(self, snap: dict[str, Any]) -> None:
        """Fold a :meth:`snapshot` dict into this registry.

        The plain-data twin of :meth:`merge` — snapshots are JSON-safe,
        so this is how worker processes ship their metrics back to the
        parent (``repro.parallel``).  Counters and histograms add;
        gauges take the snapshot's value (last write wins, i.e. lossy
        across shards — see docs/PARALLELISM.md).  Histogram buckets are
        de-cumulated from the exported ``[[le, n], ...]`` pairs; merging
        into an existing family requires the same bucket layout.
        """
        schema = snap.get("schema")
        if schema != "repro-metrics-v1":
            raise MetricError(f"unsupported metrics snapshot schema: {schema!r}")
        for flat, value in snap.get("counters", {}).items():
            name, items = parse_flat_name(flat)
            self.counter(name, **dict(items)).inc(value)
        for flat, value in snap.get("gauges", {}).items():
            name, items = parse_flat_name(flat)
            self.gauge(name, **dict(items)).set(value)
        for flat, data in snap.get("histograms", {}).items():
            name, items = parse_flat_name(flat)
            cumulative = data["buckets"]
            # all but the trailing +Inf entry are finite upper bounds;
            # _fmt's repr convention makes float(le) round-trip exactly
            bounds = tuple(float(le) for le, _ in cumulative[:-1])
            mine = self.histogram(name, buckets=bounds, **dict(items))
            if mine.bounds != bounds:
                raise MetricError(f"cannot merge {name!r}: bucket layouts differ")
            running = 0
            for i, (_le, cum) in enumerate(cumulative):
                mine.bucket_counts[i] += cum - running
                running = cum
            mine.sum += data["sum"]
            mine.count += data["count"]
            exemplars = data.get("exemplars")
            if exemplars:
                le_to_idx = {le: i for i, (le, _) in enumerate(cumulative)}
                mine._fold_exemplars(
                    {
                        le_to_idx[le]: [list(e) for e in ring]
                        for le, ring in exemplars.items()
                        if le in le_to_idx
                    }
                )

    # -- exporters -----------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """A plain-data, deterministically ordered copy of everything."""
        self.collect()
        counters: dict[str, Number] = {}
        gauges: dict[str, Number] = {}
        histograms: dict[str, Any] = {}
        for name in sorted(self._families):
            family = self._families[name]
            for key in sorted(family.children):
                child = family.children[key]
                flat = flat_name(name, key)
                if family.kind == "counter":
                    counters[flat] = child.value  # type: ignore[union-attr]
                elif family.kind == "gauge":
                    gauges[flat] = child.value  # type: ignore[union-attr]
                else:
                    assert isinstance(child, Histogram)
                    data: dict[str, Any] = {
                        "buckets": [[le, n] for le, n in child.cumulative()],
                        "sum": child.sum,
                        "count": child.count,
                    }
                    exemplars = child.exemplars_by_le()
                    if exemplars:
                        data["exemplars"] = exemplars
                    histograms[flat] = data
        return {
            "schema": "repro-metrics-v1",
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Deterministic JSON dump (sorted keys, no timestamps)."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True) + "\n"

    def to_prometheus_text(self) -> str:
        """The Prometheus text exposition format, deterministically ordered.

        Dotted names become underscore names; no ``# EOF`` / timestamps,
        so the output is stable across identical runs.
        """
        self.collect()
        lines: list[str] = []
        for name in sorted(self._families):
            family = self._families[name]
            pname = prom_name(name)
            if family.help:
                lines.append(f"# HELP {pname} {_prom_escape_help(family.help)}")
            lines.append(f"# TYPE {pname} {family.kind}")
            for key in sorted(family.children):
                child = family.children[key]
                if family.kind == "histogram":
                    assert isinstance(child, Histogram)
                    for idx, (le, cumulative) in enumerate(child.cumulative()):
                        label_str = ",".join(
                            [f'{k}="{_prom_escape(v)}"' for k, v in key]
                            + [f'le="{le}"']
                        )
                        line = f"{pname}_bucket{{{label_str}}} {cumulative}"
                        if child.exemplars and idx in child.exemplars:
                            # OpenMetrics-style exemplar: the most recent
                            # trace ID that landed in this bucket
                            tid, val = child.exemplars[idx][-1]
                            line += (
                                f' # {{trace_id="{_prom_escape(str(tid))}"}}'
                                f" {_fmt(val)}"
                            )
                        lines.append(line)
                    suffix = _prom_labels(key)
                    lines.append(f"{pname}_sum{suffix} {_fmt(child.sum)}")
                    lines.append(f"{pname}_count{suffix} {_fmt(child.count)}")
                else:
                    suffix = _prom_labels(key)
                    lines.append(f"{pname}{suffix} {_fmt(child.value)}")  # type: ignore[union-attr]
        return "\n".join(lines) + ("\n" if lines else "")


def _prom_labels(key: LabelItems) -> str:
    if not key:
        return ""
    return "{" + ",".join(f'{k}="{_prom_escape(v)}"' for k, v in key) + "}"


# -- the process default -----------------------------------------------------

_default_registry = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-global registry every built-in seam records into."""
    return _default_registry


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the default registry; returns the previous one."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous


def reset_default_registry() -> MetricsRegistry:
    """Install (and return) a fresh default registry.

    The test suite's autouse fixture calls this before every test so
    metric state can never leak across test ordering.
    """
    fresh = MetricsRegistry()
    set_default_registry(fresh)
    return fresh


@contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Scope the default registry to ``registry`` (per-run isolation)."""
    previous = set_default_registry(registry)
    try:
        yield registry
    finally:
        set_default_registry(previous)
