"""The worker pool: run sharded units in processes, merge the results.

Every worker gets a **fresh** default :class:`MetricsRegistry` (scoped
with ``use_registry``) and, optionally, a priming call that warms the
process-local caches (kernel builds, cert chains, prepared boots) before
its first unit — the wall-clock analogue of SEVeriFast moving work off
the critical path.  Workers ship back plain data: the unit results plus
a JSON-safe registry snapshot, folded into one registry by the parent
with :meth:`MetricsRegistry.merge_snapshot`.

Start method: ``fork`` where the platform offers it (cheap, inherits
warm caches), else ``spawn``; override with ``REPRO_MP_START=spawn`` —
the unit/prime functions are required to be module-level precisely so
they pickle by reference under spawn.

``workers=1`` never touches multiprocessing: the same shard code runs
in-process, so environments without working process pools (sandboxes,
restricted CI) degrade gracefully and produce the identical result.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.parallel.shard import ShardSpec

#: a unit function: (unit_index, unit_seed, payload) -> JSON-safe result
UnitFn = Callable[[int, int, dict], Any]

#: a priming function: (payload) -> None, run once per worker before units
PrimeFn = Callable[[dict], None]


@dataclass
class ParallelResult:
    """A merged sharded run: results in unit order plus merged metrics."""

    results: list[Any]  #: unit results, ordered by global unit index
    metrics: dict[str, Any]  #: merged registry snapshot (repro-metrics-v1)
    workers: int  #: worker processes actually used
    units: int
    elapsed_s: float  #: parent-side wall-clock for the whole run
    #: per-shard tracer span streams (repro-trace-v1), when units opted
    #: in by returning them via the ``trace`` payload flag; empty else
    trace_streams: list[dict[str, Any]] = field(default_factory=list)


def resolve_workers(requested: Optional[int]) -> int:
    """Normalize a ``--workers`` request: ``None``/0 -> 1; floor at 1."""
    if not requested or requested < 1:
        return 1
    return requested


def _start_method() -> str:
    method = os.environ.get("REPRO_MP_START")
    if method:
        return method
    if "fork" in multiprocessing.get_all_start_methods():
        return "fork"
    return "spawn"


def _run_shard(payload: tuple) -> tuple[int, list, dict, list]:
    """Execute one shard (module-level: picklable under spawn)."""
    unit_fn, prime, shard, unit_args = payload
    from repro.obs.metrics import MetricsRegistry, use_registry

    registry = MetricsRegistry()
    pairs: list[tuple[int, Any]] = []
    streams: list[tuple[int, dict]] = []
    with use_registry(registry):
        if prime is not None:
            prime(unit_args)
        for index in shard.unit_indices:
            result = unit_fn(index, shard.unit_seed(index), unit_args)
            if isinstance(result, dict) and "trace_stream" in result:
                streams.append((index, result.pop("trace_stream")))
            pairs.append((index, result))
    return shard.index, pairs, registry.snapshot(), streams


def run_sharded(
    unit_fn: UnitFn,
    num_units: int,
    *,
    seed: int = 0,
    workers: int = 1,
    unit_args: Optional[dict] = None,
    prime: Optional[PrimeFn] = None,
    start_method: Optional[str] = None,
) -> ParallelResult:
    """Run ``num_units`` independent units across ``workers`` processes.

    ``unit_fn(index, unit_seed(seed, index), unit_args)`` must be a
    module-level function returning JSON-safe data; results come back
    ordered by unit index regardless of worker scheduling.  ``prime``
    runs once per worker (cache warm-up) before its first unit.
    """
    unit_args = dict(unit_args or {})
    workers = max(1, min(resolve_workers(workers), max(num_units, 1)))
    shards = ShardSpec.plan(num_units, workers, seed)
    payloads = [(unit_fn, prime, shard, unit_args) for shard in shards]

    t0 = time.perf_counter()
    if workers == 1:
        shard_outputs = [_run_shard(payloads[0])]
    else:
        ctx = multiprocessing.get_context(start_method or _start_method())
        with ctx.Pool(processes=workers) as pool:
            shard_outputs = pool.map(_run_shard, payloads)
    elapsed = time.perf_counter() - t0

    from repro.obs.metrics import MetricsRegistry

    merged = MetricsRegistry()
    by_index: dict[int, Any] = {}
    indexed_streams: list[tuple[int, dict]] = []
    # merge in shard order (not completion order) so the merged registry
    # is deterministic for a given worker count; trace streams sort by
    # global unit index, making the merged trace layout worker-count
    # independent
    for _shard_index, pairs, snap, streams in sorted(
        shard_outputs, key=lambda out: out[0]
    ):
        merged.merge_snapshot(snap)
        indexed_streams.extend(streams)
        for index, value in pairs:
            by_index[index] = value
    return ParallelResult(
        results=[by_index[i] for i in range(num_units)],
        metrics=merged.snapshot(),
        workers=workers,
        units=num_units,
        elapsed_s=elapsed,
        trace_streams=[s for _i, s in sorted(indexed_streams)],
    )
