"""Unit functions and drivers for the built-in experiment kinds.

Each unit function is **module-level** (picklable under spawn) with the
``(index, seed, payload) -> JSON-safe dict`` shape the pool expects, and
is a pure function of its arguments in virtual time — the determinism
contract that makes ``--workers N`` a wall-clock knob, never a results
knob.  The drivers wrap :func:`repro.parallel.pool.run_sharded` with the
experiment's serial-equivalent aggregation.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Sequence

from repro.parallel.pool import ParallelResult, run_sharded

#: the chip seed shared by fleet units — the paper's single testbed host
#: (§6.1); chip-keyed caches hit across boots, digests are unaffected
FLEET_CHIP_SEED = b"repro-epyc-7313p-bench"


# -- SEVeriFast boot fleets (Fig. 9 shape) ------------------------------------


def _fleet_machine(seed: int, payload: dict):
    from repro.hw.costmodel import CostModel
    from repro.hw.platform import Machine

    return Machine(
        cost=CostModel(
            jitter_rel=payload.get("jitter", 0.03), jitter_seed=seed & 0xFFFF
        ),
        chip_seed=payload.get("chip_seed", FLEET_CHIP_SEED),
    )


def _boot_config(payload: dict):
    from repro.core.config import VmConfig
    from repro.formats.kernels import KERNEL_CONFIGS

    return VmConfig(
        kernel=KERNEL_CONFIGS[payload.get("kernel", "aws")],
        scale=payload.get("scale", 1.0 / 1024.0),
        attest=payload.get("attest", False),
    )


def prime_boot_caches(payload: dict) -> None:
    """Warm a worker's process-local caches before its first unit.

    One throwaway :meth:`SEVeriFast.prepare` builds the kernel/initrd,
    derives the cert hierarchy, and populates the prepared-boot cache —
    every subsequent unit in the worker starts from the same warm state
    a serial run reaches after its first boot.
    """
    from repro.core.severifast import SEVeriFast

    sf = SEVeriFast()
    machine = _fleet_machine(0, payload)
    sf.prepare(_boot_config(payload), machine)


def boot_unit(index: int, seed: int, payload: dict) -> dict[str, Any]:
    """One SEVeriFast cold boot on a fresh machine of the shared host."""
    from repro.core.severifast import SEVeriFast

    machine = _fleet_machine(seed, payload)
    sf = SEVeriFast()
    tracer = machine.sim.trace() if payload.get("trace") else None
    result = sf.cold_boot(_boot_config(payload), machine=machine)
    out: dict[str, Any] = {
        "index": index,
        "boot_ms": result.boot_ms,
        "digest": (result.launch_digest or b"").hex(),
        "attested": result.attested,
    }
    if tracer is not None:
        out["trace_stream"] = tracer.export_spans()
    return out


def run_boot_fleet(
    count: int,
    *,
    seed: int = 0,
    workers: int = 1,
    kernel: str = "aws",
    scale: float = 1.0 / 1024.0,
    jitter: float = 0.03,
    attest: bool = False,
    trace: bool = False,
) -> ParallelResult:
    """Boot ``count`` independent guests (the Fig. 9 fleet), sharded."""
    payload = {
        "kernel": kernel,
        "scale": scale,
        "jitter": jitter,
        "attest": attest,
        "trace": trace,
    }
    return run_sharded(
        boot_unit,
        count,
        seed=seed,
        workers=workers,
        unit_args=payload,
        prime=prime_boot_caches,
    )


# -- snapshot-restore fleets (the Fig. 9 "restore" series) --------------------


def prime_restore_caches(payload: dict) -> None:
    """Warm boot caches plus the snapshot build cache for restore units."""
    from repro.serverless.snapshots import cached_snapshot

    prime_boot_caches(payload)
    cached_snapshot(
        _boot_config(payload), payload.get("chip_seed", FLEET_CHIP_SEED)
    )


def restore_unit(index: int, seed: int, payload: dict) -> dict[str, Any]:
    """One snapshot restore (store lookup + CoW restore + re-attestation)
    on a fresh machine of the shared host."""
    from repro.serverless.snapshots import (
        SessionCache,
        SnapshotStore,
        cached_snapshot,
        restore_from_store,
    )
    from repro.sev.guestowner import GuestOwner

    machine = _fleet_machine(seed, payload)
    config = _boot_config(payload)
    chip_seed = payload.get("chip_seed", FLEET_CHIP_SEED)
    snapshot = cached_snapshot(config, chip_seed)
    store = SnapshotStore()
    digest = store.put(snapshot)
    owner = GuestOwner.with_chain(
        trusted_ark=machine.psp.key_hierarchy.ark_key.public,
        cert_chain=machine.psp.cert_chain,
        expected_digest=snapshot.launch_digest,
        secret=b"fleet-secret",
    )
    sessions = SessionCache()
    if payload.get("resume_sessions", True):
        # The image's original launch attested on this chip already.
        sessions.establish("fleet", machine.psp.chip_id, snapshot.image_digest)
    outcome = machine.sim.run_process(
        restore_from_store(
            machine,
            store,
            digest,
            owner,
            tenant="fleet",
            sessions=sessions,
        )
    )
    return {
        "index": index,
        "restore_ms": outcome.restore_ms,
        "reattest_ms": outcome.reattest_ms,
        "resumed_session": outcome.resumed_session,
        "digest": (outcome.digest or b"").hex(),
    }


def run_restore_fleet(
    count: int,
    *,
    seed: int = 0,
    workers: int = 1,
    kernel: str = "aws",
    scale: float = 1.0 / 1024.0,
    jitter: float = 0.03,
    resume_sessions: bool = True,
) -> ParallelResult:
    """Restore ``count`` independent guests from snapshot, sharded —
    the third Fig. 9 series next to slow/fast full boots."""
    payload = {
        "kernel": kernel,
        "scale": scale,
        "jitter": jitter,
        "attest": False,
        "resume_sessions": resume_sessions,
    }
    return run_sharded(
        restore_unit,
        count,
        seed=seed,
        workers=workers,
        unit_args=payload,
        prime=prime_restore_caches,
    )


# -- fleet cells --------------------------------------------------------------


def prime_fleet_caches(payload: dict) -> None:
    """Warm boot caches plus the fleet image snapshot before a worker's
    first cell (the snapshot is chip-independent; one build serves all)."""
    from repro.fleet.experiment import _build_snapshot

    prime_boot_caches(payload)
    _build_snapshot(_boot_config(payload))


def fleet_unit(index: int, seed: int, payload: dict) -> dict[str, Any]:
    """One fleet cell (N hosts, one shared clock, one fault plan).

    The cell — not the host — is the parallel unit: cross-host failover
    is a causal chain on one virtual clock, so sharding within a cell
    would change semantics.  The pool's sha256-derived per-unit ``seed``
    makes rows identical for every ``workers`` value.
    """
    from repro.fleet.experiment import run_fleet_cell

    return run_fleet_cell(
        index,
        seed,
        hosts=payload.get("hosts", 4),
        scheduler=payload.get("scheduler", "cache-affinity"),
        fault_rate=payload.get("fault_rate", 0.0),
        kernel=payload.get("kernel", "aws"),
        scale=payload.get("scale", 1.0 / 1024.0),
        functions=payload.get("functions", 6),
        horizon_s=payload.get("horizon_s", 20.0),
        rate_per_s=payload.get("rate_per_s", 2.0),
        keepalive_ms=payload.get("keepalive_ms", 4000.0),
        crash_hosts=payload.get("crash_hosts", 0),
        asid_capacity=payload.get("asid_capacity"),
        otrace=payload.get("otrace", False),
        verifier_window_ms=payload.get("verifier_window_ms"),
        verifier_workers=payload.get("verifier_workers", 1),
    )


# -- chaos sweeps -------------------------------------------------------------


def chaos_unit(index: int, seed: int, payload: dict) -> dict[str, Any]:
    """One fault rate of the chaos sweep.

    The serial sweep feeds the *run* seed (not a derived one) to every
    rate, so this unit deliberately ignores the pool's per-unit seed:
    parallel rows must be byte-identical to serial rows.
    """
    del seed  # determinism: the sweep seed is part of the payload
    from repro.faults.chaos import run_chaos_fleet

    return run_chaos_fleet(
        payload["rates"][index],
        seed=payload["seed"],
        kernel=payload.get("kernel", "aws"),
        scale=payload.get("scale", 1.0 / 1024.0),
        functions=payload.get("functions", 6),
        horizon_s=payload.get("horizon_s", 20.0),
        rate_per_s=payload.get("rate_per_s", 2.0),
        asid_capacity=payload.get("asid_capacity"),
    )


def run_chaos_sweep_parallel(
    rates: Iterable[float],
    *,
    seed: int = 1234,
    workers: int = 1,
    kernel: str = "aws",
    scale: float = 1.0 / 1024.0,
    functions: int = 6,
    horizon_s: float = 20.0,
    rate_per_s: float = 2.0,
    asid_capacity: Optional[int] = None,
) -> dict:
    """The chaos sweep with one unit per fault rate.

    Returns the exact ``BENCH_chaos.json`` document
    :func:`repro.faults.chaos.run_chaos_sweep` produces — same rows,
    same aggregate detection_rate — regardless of ``workers``.
    """
    rates_list: Sequence[float] = list(rates)
    payload = {
        "rates": list(rates_list),
        "seed": seed,
        "kernel": kernel,
        "scale": scale,
        "functions": functions,
        "horizon_s": horizon_s,
        "rate_per_s": rate_per_s,
        "asid_capacity": asid_capacity,
    }
    run = run_sharded(
        chaos_unit,
        len(rates_list),
        seed=seed,
        workers=workers,
        unit_args=payload,
    )
    rows = run.results
    tampered = sum(r["tampered_boots"] for r in rows)
    undetected = sum(r["undetected_tampered_boots"] for r in rows)
    return {
        "experiment": "chaos",
        "seed": seed,
        "kernel": kernel,
        "scale": scale,
        "functions": functions,
        "horizon_s": horizon_s,
        "rate_per_s": rate_per_s,
        "rates": list(rates_list),
        "detection_rate": 1.0 if tampered == 0 else 1.0 - undetected / tampered,
        "tampered_boots": tampered,
        "undetected_tampered_boots": undetected,
        "sweep": rows,
    }
