"""Sharding core: stable unit ordering, seed-derived per-unit streams.

The invariant everything else builds on: **a unit's seed depends only on
the run seed and the unit's global index** — never on the shard it
landed in or how many workers there are.  ``workers=1`` and
``workers=64`` therefore simulate byte-identical units, and merging in
unit order reproduces the serial result exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from hashlib import sha256


def unit_seed(seed: int, index: int, salt: str = "") -> int:
    """The RNG seed for unit ``index`` of a run seeded with ``seed``.

    Derived via SHA-256 (never Python's randomized ``hash``), so it is
    stable across processes, interpreters, and ``PYTHONHASHSEED`` —
    the property that makes parallel runs reproduce serial ones.
    """
    material = f"repro-unit:{salt}:{seed}:{index}".encode()
    return int.from_bytes(sha256(material).digest()[:8], "little")


def shard_units(num_units: int, num_shards: int) -> list[tuple[int, ...]]:
    """Round-robin unit indices across shards (stable, gap-free).

    Shard ``i`` gets units ``i, i+S, i+2S, ...`` — interleaving spreads
    any index-correlated cost (e.g. a sweep whose later units are
    heavier) evenly instead of handing one worker the expensive tail.
    """
    if num_shards < 1:
        raise ValueError(f"need at least one shard, got {num_shards}")
    if num_units < 0:
        raise ValueError(f"negative unit count: {num_units}")
    return [
        tuple(range(i, num_units, num_shards)) for i in range(num_shards)
    ]


@dataclass(frozen=True)
class ShardSpec:
    """One worker's slice of a sharded run."""

    index: int  #: this shard's position in [0, num_shards)
    num_shards: int
    seed: int  #: the run seed (shared by every shard)
    unit_indices: tuple[int, ...]  #: global unit indices, ascending

    def unit_seed(self, unit_index: int, salt: str = "") -> int:
        """Per-unit seed — worker-count independent by construction."""
        return unit_seed(self.seed, unit_index, salt)

    @classmethod
    def plan(
        cls, num_units: int, num_shards: int, seed: int
    ) -> list["ShardSpec"]:
        """The full sharding plan for a run."""
        return [
            cls(i, num_shards, seed, indices)
            for i, indices in enumerate(shard_units(num_units, num_shards))
        ]
