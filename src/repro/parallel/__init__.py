"""Deterministic parallel execution of independent simulation units.

The paper's headline experiments are sweeps of *independent* simulated
boots (Fig. 9 boots 100 guests one after another; the chaos harness runs
one fleet per fault rate) — embarrassingly parallel wall-clock work that
the reproduction used to execute on a single core.  This package shards
such units across worker processes and merges the results **bit-for-bit
reproducibly**:

- :mod:`repro.parallel.shard` — stable unit ordering and per-unit seeds
  derived from ``(run seed, unit index)`` only, so results never depend
  on the worker count;
- :mod:`repro.parallel.pool` — a spawn-safe worker pool (fork by
  default where available, ``REPRO_MP_START`` overrides) with
  per-worker cache priming and an in-process fallback at ``workers=1``;
- :mod:`repro.parallel.runners` — unit functions for the built-in
  experiment kinds: SEVeriFast boots, chaos fleets, serverless traffic.

Determinism contract: a unit's virtual-time outputs (digests, boot
latencies, detection rates) are a pure function of its index and seed.
Counters merge exactly; gauges are last-write (lossy across shards);
see docs/PARALLELISM.md.
"""

from repro.parallel.pool import ParallelResult, resolve_workers, run_sharded
from repro.parallel.shard import ShardSpec, shard_units, unit_seed

__all__ = [
    "ParallelResult",
    "ShardSpec",
    "resolve_workers",
    "run_sharded",
    "shard_units",
    "unit_seed",
]
