"""SEVeriFast reproduction.

A functional + timing simulation of *SEVeriFast: Minimizing the root of
trust for fast startup of SEV microVMs* (Holmes, Waterman, Williams —
ASPLOS 2024).  See DESIGN.md for the system inventory and the hardware
substitutions, and EXPERIMENTS.md for paper-vs-measured results.

Package map:

- :mod:`repro.core` — the SEVeriFast pipeline and public API.
- :mod:`repro.crypto` — from-scratch SHA-2, HMAC, AES/XEX, ECDSA, LZ4.
- :mod:`repro.formats` — ELF64, bzImage, CPIO, synthetic kernels.
- :mod:`repro.hw` — memory, page tables, RMP, PSP, cost model, machine.
- :mod:`repro.sev` — launch commands, measurement, attestation, owner.
- :mod:`repro.guest` — boot verifier, boot data, OVMF, Linux boot.
- :mod:`repro.vmm` — Firecracker and QEMU monitors, boot timelines.
- :mod:`repro.serverless` — invocation traces and a FaaS scheduler.
- :mod:`repro.sim` — the discrete-event engine everything runs on.
- :mod:`repro.analysis` — statistics and text rendering for benchmarks.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
