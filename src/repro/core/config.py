"""VM configuration and guest-physical memory layout.

The layout mirrors the modified Firecracker's choices: the boot verifier
replaces the kernel as the initial boot code (§4.1), boot data structures
live in low memory (Fig. 7), and the kernel/initrd are staged in shared
pages high in guest memory for the verifier to copy down (§2.5).

All addresses are guest-physical and nominal (the sparse memory model
makes unscaled addressing cheap regardless of build scale).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.common import KiB, MiB
from repro.formats.kernels import DEFAULT_SCALE, KernelConfig, AWS
from repro.sev.policy import GuestPolicy


class KernelFormat(enum.Enum):
    """Which kernel the VMM hands to the guest."""

    BZIMAGE = "bzimage"  #: compressed bzImage (the SEVeriFast design choice)
    VMLINUX = "vmlinux"  #: uncompressed ELF via the fw_cfg protocol (§5)


@dataclass(frozen=True)
class GuestLayout:
    """Where everything lives in guest-physical memory."""

    # Shared communication pages, low memory:
    ghcb_addr: int = 0x0000_7000  #: GHCB for #VC exits (SEV-ES/SNP)
    virtio_queue_addr: int = 0x0005_0000  #: virtio-blk split ring
    virtio_bounce_addr: int = 0x0006_0000  #: bounce buffers (swiotlb-style)
    net_tx_queue_addr: int = 0x0007_0000  #: virtio-net TX ring
    net_rx_queue_addr: int = 0x0007_1000  #: virtio-net RX ring
    net_tx_buffer_addr: int = 0x0007_2000  #: TX frame bounce buffer
    net_rx_buffer_addr: int = 0x0007_3000  #: RX frame bounce buffer

    # Pre-encrypted (root-of-trust) components, low memory:
    boot_params_addr: int = 0x0001_0000  #: the Linux zero page
    cmdline_addr: int = 0x0002_0000
    hashes_addr: int = 0x0003_0000  #: out-of-band kernel/initrd hashes page
    page_table_addr: int = 0x0000_A000  #: PML4 (PDPT/PD follow)
    mptable_addr: int = 0x0009_F000  #: top of conventional memory
    #: (page-aligned: LAUNCH_UPDATE_DATA operates on whole pages)
    verifier_addr: int = 0x0010_0000  #: boot verifier entry (1 MiB)

    # Shared (plain-text) staging areas, high memory:
    kernel_stage_addr: int = 0x0900_0000
    initrd_stage_addr: int = 0x0A00_0000

    # Encrypted destinations the verifier copies into:
    kernel_copy_addr: int = 0x0500_0000  #: bzImage / vmlinux encrypted copy
    kernel_load_addr: int = 0x0100_0000  #: where the vmlinux runs
    initrd_load_addr: int = 0x0D00_0000

    @classmethod
    def for_kernel(cls, kernel: "KernelConfig", memory_size: int = 256 * MiB) -> "GuestLayout":
        """Pack a layout around a kernel's nominal sizes.

        The defaults fit the paper's three configs; synthetic kernels
        from :func:`repro.formats.kernels.custom_kernel_config` can be
        bigger, so this computes non-overlapping regions from the sizes.
        """
        from repro.common import align_up

        align = 16 * MiB
        kernel_load = 0x0100_0000
        kernel_copy = align_up(kernel_load + kernel.vmlinux_size, align)
        kernel_stage = align_up(kernel_copy + kernel.vmlinux_size, align)
        initrd_stage = align_up(kernel_stage + kernel.bzimage_size, align)
        initrd_load = align_up(initrd_stage + 16 * MiB, align)
        layout = cls(
            kernel_load_addr=kernel_load,
            kernel_copy_addr=kernel_copy,
            kernel_stage_addr=kernel_stage,
            initrd_stage_addr=initrd_stage,
            initrd_load_addr=initrd_load,
        )
        layout.validate(memory_size, kernel)
        return layout

    def validate(self, memory_size: int, kernel: "KernelConfig") -> None:
        """Reject layouts whose regions collide or overflow guest memory.

        Uses the kernel's *nominal* sizes so a layout that only works at
        a reduced build scale is still rejected.
        """
        regions = [
            ("ghcb", self.ghcb_addr, 4096),
            ("virtio queue", self.virtio_queue_addr, 4096),
            ("virtio bounce", self.virtio_bounce_addr, 4096),
            ("net tx queue", self.net_tx_queue_addr, 4096),
            ("net rx queue", self.net_rx_queue_addr, 4096),
            ("net tx buffer", self.net_tx_buffer_addr, 4096),
            ("net rx buffer", self.net_rx_buffer_addr, 4096),
            ("page tables", self.page_table_addr, 3 * 4096),
            ("boot_params", self.boot_params_addr, 4096),
            ("cmdline", self.cmdline_addr, 4096),
            ("hashes", self.hashes_addr, 4096),
            ("mptable", self.mptable_addr, 4096),
            ("verifier", self.verifier_addr, 1024 * 1024),  # any shim variant
            ("vmlinux", self.kernel_load_addr, kernel.vmlinux_size),
            ("kernel copy", self.kernel_copy_addr, kernel.vmlinux_size),
            ("kernel stage", self.kernel_stage_addr, kernel.bzimage_size),
            ("initrd stage", self.initrd_stage_addr, 16 * 1024 * 1024),
            ("initrd", self.initrd_load_addr, 16 * 1024 * 1024),
        ]
        for name, start, size in regions:
            if start % 4096 != 0:
                raise ValueError(f"{name} region at {start:#x} is not page-aligned")
            if start + size > memory_size:
                raise ValueError(
                    f"{name} region [{start:#x}, {start + size:#x}) exceeds "
                    f"guest memory ({memory_size:#x})"
                )
        ordered = sorted(regions, key=lambda r: r[1])
        for (name_a, start_a, size_a), (name_b, start_b, _size_b) in zip(
            ordered, ordered[1:]
        ):
            if start_a + size_a > start_b:
                raise ValueError(
                    f"layout overlap: {name_a!r} runs into {name_b!r} "
                    f"({start_a:#x}+{size_a:#x} > {start_b:#x})"
                )


@dataclass(frozen=True)
class VmConfig:
    """One microVM's configuration (the Firecracker VM config file)."""

    kernel: KernelConfig = AWS
    kernel_format: KernelFormat = KernelFormat.BZIMAGE
    memory_size: int = 256 * MiB  #: §6.1: 256 MB per VM
    vcpus: int = 1
    cmdline: str = (
        "reboot=k panic=1 pci=off nomodule 8250.nr_uarts=0 "
        "i8042.noaux i8042.nomux i8042.nopnp i8042.dumbkbd "
        "console=ttyS0 root=/dev/vda ro init=/init random.trust_cpu=on"
    )  #: Firecracker's default ~155-byte command line (§4.2)
    sev_policy: GuestPolicy = field(default_factory=GuestPolicy)
    layout: GuestLayout = field(default_factory=GuestLayout)
    #: build scale for synthetic images (timing is nominal regardless)
    scale: float = DEFAULT_SCALE
    #: perform remote attestation after boot (off for Lupine, §6.1)
    attest: bool = True

    def __post_init__(self) -> None:
        if self.vcpus < 1:
            raise ValueError("at least one vCPU required")
        if len(self.cmdline.encode()) >= 4 * KiB:
            raise ValueError("kernel command line exceeds 4 KiB")
        self.layout.validate(self.memory_size, self.kernel)

    @property
    def cmdline_bytes(self) -> bytes:
        return self.cmdline.encode() + b"\x00"
