"""SEVeriFast's end-to-end public API.

:class:`SEVeriFast` wires the whole stack together: build the kernel and
initrd images, pre-compute the out-of-band hashes and the expected launch
digest, stand up a guest owner holding the workload secret, and run cold
boots — SEVeriFast, stock Firecracker, naive pre-encryption, or the
QEMU/OVMF baseline — on a simulated SEV-SNP machine.

Quick start::

    from repro.core import SEVeriFast, VmConfig
    from repro.formats.kernels import AWS

    sf = SEVeriFast()
    result = sf.cold_boot(VmConfig(kernel=AWS))
    print(result.boot_ms, result.attested, result.secret)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro import perf
from repro.common import Blob
from repro.core.config import KernelFormat, VmConfig
from repro.core.digest_tool import compute_expected_digest
from repro.core.oob_hash import HashesFile, hash_boot_components
from repro.formats.bzimage import CompressionAlgo
from repro.formats.kernels import KernelArtifacts, build_initrd, build_kernel
from repro.guest.bootverifier import verifier_binary
from repro.hw.platform import Machine
from repro.sev.guestowner import GuestOwner
from repro.vmm.firecracker import FirecrackerVMM
from repro.vmm.fwcfg import FwCfgDevice
from repro.vmm.qemu import QemuBootExtras, QemuVMM
from repro.vmm.timeline import BootResult

DEFAULT_SECRET = b"the-function's-database-credentials"

#: prepared-boot packages, keyed by everything that determines them: the
#: (frozen, hashable) VmConfig, the compression algorithm, the owner's
#: secret, and the platform identity (chip id pins the cert chain and
#: ARK).  §4.2/§4.3 preparation is off the critical path and pure, so a
#: Fig. 9 fleet booting one image prepares it once.
_PREPARED_CACHE = perf.LRUCache("severifast.prepared", capacity=64)

#: the machine-independent half of preparation — images, out-of-band
#: hashes, and the expected launch digest depend only on (config,
#: compression), not the chip.  Split from ``_PREPARED_CACHE`` so a
#: fleet of *distinct* hosts booting one image still shares the build
#: even though each host needs its own owner/cert-chain handshake.
_IMAGE_CACHE = perf.LRUCache("severifast.image", capacity=64)


@dataclass(frozen=True)
class PreparedBoot:
    """Everything computed off the critical path for one VM config."""

    config: VmConfig
    artifacts: KernelArtifacts
    initrd: Blob
    hashes: HashesFile
    expected_digest: bytes
    owner: GuestOwner


class SEVeriFast:
    """Facade over image building, preparation, and boot pipelines."""

    def __init__(
        self,
        machine: Optional[Machine] = None,
        compression: CompressionAlgo = CompressionAlgo.LZ4,
        secret: bytes = DEFAULT_SECRET,
    ):
        self._shared_machine = machine
        self.compression = compression
        self.secret = secret

    # -- preparation (off the critical path, §4.2/§4.3) ---------------------

    def machine(self) -> Machine:
        """The shared machine, or a fresh one per boot when none was given."""
        return self._shared_machine if self._shared_machine else Machine()

    def prepare(self, config: VmConfig, machine: Optional[Machine] = None) -> PreparedBoot:
        """Build images, hashes, expected digest, and the guest owner."""
        machine = machine or self.machine()
        cache_key = (
            config,
            self.compression.value,
            self.secret,
            machine.psp.chip_id,
            machine.psp.key_hierarchy.ark_key.public,
        )
        cached = _PREPARED_CACHE.get(cache_key)
        if cached is not None:
            return cached
        prepared = self._prepare_uncached(config, machine)
        _PREPARED_CACHE.put(cache_key, prepared)
        return prepared

    def _prepare_uncached(self, config: VmConfig, machine: Machine) -> PreparedBoot:
        artifacts, initrd, hashes, digest = self._prepare_image(config)
        # The owner trusts only AMD's root key; the chip's VCEK is proven
        # through the ARK->ASK->VCEK chain the platform ships (§6.1).
        owner = GuestOwner.with_chain(
            trusted_ark=machine.psp.key_hierarchy.ark_key.public,
            cert_chain=machine.psp.cert_chain,
            expected_digest=digest,
            secret=self.secret,
        )
        return PreparedBoot(
            config=config,
            artifacts=artifacts,
            initrd=initrd,
            hashes=hashes,
            expected_digest=digest,
            owner=owner,
        )

    def _prepare_image(
        self, config: VmConfig
    ) -> tuple[KernelArtifacts, Blob, HashesFile, bytes]:
        """The chip-independent half: images, hashes, expected digest."""
        cache_key = (config, self.compression.value)
        cached = _IMAGE_CACHE.get(cache_key)
        if cached is not None:
            return cached
        artifacts = build_kernel(config.kernel, config.scale, self.compression)
        initrd = build_initrd(config.scale)
        if config.kernel_format is KernelFormat.BZIMAGE:
            kernel_blob = artifacts.bzimage
            hashes = hash_boot_components(kernel_blob, initrd)
        else:
            fw_cfg = FwCfgDevice.from_vmlinux(
                artifacts.vmlinux.data, artifacts.vmlinux.nominal_size
            )
            hashes = hash_boot_components(
                Blob(
                    fw_cfg.protocol_hash_input(),
                    artifacts.vmlinux.nominal_size,
                    "vmlinux-protocol",
                ),
                initrd,
            )
        digest = compute_expected_digest(config, verifier_binary(), hashes)
        built = (artifacts, initrd, hashes, digest)
        _IMAGE_CACHE.put(cache_key, built)
        return built

    # -- boot pipelines ---------------------------------------------------------

    def cold_boot(
        self,
        config: VmConfig,
        machine: Optional[Machine] = None,
        prepared: Optional[PreparedBoot] = None,
        attest: Optional[bool] = None,
    ) -> BootResult:
        """One SEVeriFast cold boot (the paper's headline pipeline)."""
        machine = machine or self.machine()
        prepared = prepared or self.prepare(config, machine)
        vmm = FirecrackerVMM(machine)
        do_attest = config.attest if attest is None else attest
        owner = prepared.owner if do_attest else None
        return machine.sim.run_process(
            vmm.boot_severifast(
                config,
                prepared.artifacts,
                prepared.initrd,
                owner=owner,
                hashes=prepared.hashes,
            ),
            name=f"severifast-{config.kernel.name}",
        )

    def cold_boot_stock(
        self, config: VmConfig, machine: Optional[Machine] = None
    ) -> BootResult:
        """Stock (non-SEV) Firecracker direct boot."""
        machine = machine or self.machine()
        artifacts = build_kernel(config.kernel, config.scale, self.compression)
        initrd = build_initrd(config.scale)
        vmm = FirecrackerVMM(machine)
        return machine.sim.run_process(
            vmm.boot_stock(config, artifacts, initrd),
            name=f"stock-{config.kernel.name}",
        )

    def cold_boot_naive(
        self, config: VmConfig, machine: Optional[Machine] = None
    ) -> BootResult:
        """The §3.2 strawman: pre-encrypt the kernel/initrd themselves."""
        machine = machine or self.machine()
        prepared = self.prepare(config, machine)
        vmm = FirecrackerVMM(machine)
        return machine.sim.run_process(
            vmm.boot_naive_preencrypt(config, prepared.artifacts, prepared.initrd),
            name=f"naive-{config.kernel.name}",
        )

    def cold_boot_qemu(
        self,
        config: VmConfig,
        machine: Optional[Machine] = None,
        sev: bool = True,
        attest: Optional[bool] = None,
    ) -> tuple[BootResult, QemuBootExtras]:
        """The QEMU/OVMF baseline boot."""
        machine = machine or self.machine()
        prepared = self.prepare(config, machine)
        vmm = QemuVMM(machine)
        if sev:
            do_attest = config.attest if attest is None else attest
            owner = None
            if do_attest:
                # The guest owner's expected digest reflects *QEMU's* root
                # of trust (OVMF volume + boot data + hashes page).
                from repro.vmm.qemu import ovmf_volume, qemu_expected_digest

                volume = ovmf_volume(machine.cost.ovmf_volume_size)
                owner = GuestOwner(
                    trusted_vcek=machine.psp.vcek.public,
                    expected_digest=qemu_expected_digest(
                        config, volume, prepared.hashes
                    ),
                    secret=self.secret,
                )
            gen = vmm.boot_sev_ovmf(
                config, prepared.artifacts, prepared.initrd, owner=owner
            )
        else:
            gen = vmm.boot_nonsev_ovmf(config, prepared.artifacts, prepared.initrd)
        return machine.sim.run_process(gen, name=f"qemu-{config.kernel.name}")

    # -- concurrency (Fig. 12) -----------------------------------------------------

    def concurrent_boots(
        self,
        config: VmConfig,
        count: int,
        sev: bool = True,
        attest: bool = False,
        machine: Optional[Machine] = None,
    ) -> list[BootResult]:
        """Launch ``count`` guests at t=0 on one machine (one shared PSP)."""
        machine = machine or Machine()
        prepared = self.prepare(config, machine) if sev else None
        artifacts = build_kernel(config.kernel, config.scale, self.compression)
        initrd = build_initrd(config.scale)
        results: list[BootResult] = []

        def one_boot():
            vmm = FirecrackerVMM(machine)
            if sev:
                assert prepared is not None
                result = yield from vmm.boot_severifast(
                    config,
                    prepared.artifacts,
                    prepared.initrd,
                    owner=prepared.owner if attest else None,
                    hashes=prepared.hashes,
                )
            else:
                result = yield from vmm.boot_stock(config, artifacts, initrd)
            results.append(result)

        procs = [
            machine.sim.process(one_boot(), name=f"boot-{i}") for i in range(count)
        ]
        machine.sim.run()
        for proc in procs:
            if not proc.ok:
                raise proc.value
        return results
