"""SEVeriFast — the paper's primary contribution as a library.

Public API:

- :class:`repro.core.config.VmConfig` / :class:`repro.core.config.GuestLayout`
  — what to boot and where it lives in guest memory.
- :mod:`repro.core.oob_hash` — out-of-band kernel/initrd hashing (§4.3):
  hashes computed off the critical path, serialized to a "hashes file".
- :mod:`repro.core.digest_tool` — the guest owner's expected-measurement
  calculator (§4.2): reproduces the launch digest from the boot verifier,
  boot data structures, and the hashes file.
- :class:`repro.core.severifast.SEVeriFast` — the end-to-end pipeline:
  build images, boot through Firecracker with the SEVeriFast path, attest
  against a guest owner.

``SEVeriFast`` resolves lazily to keep the package import-cycle free
(the pipeline pulls in guest/VMM modules which in turn need
:mod:`repro.core.config`).
"""

from repro.core.config import GuestLayout, KernelFormat, VmConfig
from repro.core.oob_hash import HashesFile, hash_boot_components
from repro.core.digest_tool import compute_expected_digest

__all__ = [
    "GuestLayout",
    "HashesFile",
    "KernelFormat",
    "SEVeriFast",
    "VmConfig",
    "compute_expected_digest",
    "hash_boot_components",
]


def __getattr__(name: str):
    if name == "SEVeriFast":
        from repro.core.severifast import SEVeriFast

        return SEVeriFast
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
