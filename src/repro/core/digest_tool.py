"""The expected-launch-measurement tool (§4.2).

Pre-encrypting several small components instead of one binary blob makes
the expected launch digest harder to compute, so SEVeriFast ships a tool
that reproduces it offline.  Given the boot verifier, the out-of-band
hashes file, and the Firecracker VM configuration, the tool generates the
command line, mptable, and boot_params exactly as the VMM will, then
folds everything into the digest chain in launch order.

:func:`preencrypted_regions` is the *single source of truth* for what the
root of trust contains — the VMM pre-encrypts exactly this list, and the
guest owner's expected digest is computed from exactly this list.  Any
divergence (a malicious VMM pre-encrypting different bytes) shows up as a
digest mismatch at attestation, which is §2.6's attack 2/3 detection.
"""

from __future__ import annotations

from repro.common import Blob
from repro.core.config import VmConfig
from repro.core.oob_hash import HashesFile
from repro.guest.bootdata import build_boot_params, build_mptable
from repro.sev.measurement import expected_digest


def preencrypted_regions(
    config: VmConfig,
    verifier: Blob,
    hashes: HashesFile,
) -> list[tuple[int, bytes, int]]:
    """The (gpa, plaintext, nominal) regions forming the root of trust.

    Order matters: the digest chain is order-sensitive, and the VMM issues
    LAUNCH_UPDATE_DATA in exactly this order.
    """
    layout = config.layout
    boot_params = build_boot_params(
        cmdline_ptr=layout.cmdline_addr,
        ramdisk_image=layout.initrd_load_addr,
        ramdisk_size=hashes.initrd_len,
        memory_size=config.memory_size,
    )
    mptable = build_mptable(config.vcpus, layout.mptable_addr)
    return [
        (layout.verifier_addr, verifier.data, verifier.nominal_size),
        (layout.boot_params_addr, boot_params, len(boot_params)),
        (layout.cmdline_addr, config.cmdline_bytes, len(config.cmdline_bytes)),
        (layout.mptable_addr, mptable, len(mptable)),
        (layout.hashes_addr, hashes.to_page(), len(hashes.to_page())),
    ]


def compute_expected_digest(
    config: VmConfig,
    verifier: Blob,
    hashes: HashesFile,
) -> bytes:
    """What the guest owner expects to see in the attestation report."""
    return expected_digest(
        [(gpa, data, nominal) for gpa, data, nominal in preencrypted_regions(config, verifier, hashes)]
    )
