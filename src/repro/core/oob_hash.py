"""Out-of-band kernel/initrd hashing (§4.3).

Measured direct boot needs the kernel and initrd hashed twice — once for
the root of trust and once in the guest.  The *first* hash does not have
to happen at boot: SEVeriFast precomputes it (saving up to ~23 ms on the
critical path) and passes the VMM a hashes file.  Pre-encrypting the
hashes binds them to the launch measurement, so precomputation costs no
security.

The hashes file serializes to exactly one 4 KiB page — the unit the VMM
pre-encrypts at the layout's ``hashes_addr``.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.common import Blob, PAGE_SIZE
from repro.crypto.sha2 import sha256

_MAGIC = b"SVFH"
_FORMAT = "<4s32sQQ32sQQ"  # magic, kernel hash/len/nominal, initrd hash/len/nominal


class HashesFileError(ValueError):
    """Malformed hashes page."""


@dataclass(frozen=True)
class HashesFile:
    """Pre-computed component hashes handed to the VMM as extra arguments."""

    kernel_hash: bytes
    kernel_len: int  #: actual staged bytes
    kernel_nominal: int  #: bytes the cost model charges for
    initrd_hash: bytes
    initrd_len: int
    initrd_nominal: int

    def to_page(self) -> bytes:
        packed = struct.pack(
            _FORMAT,
            _MAGIC,
            self.kernel_hash,
            self.kernel_len,
            self.kernel_nominal,
            self.initrd_hash,
            self.initrd_len,
            self.initrd_nominal,
        )
        return packed.ljust(PAGE_SIZE, b"\x00")

    @classmethod
    def from_page(cls, page: bytes) -> "HashesFile":
        if len(page) < struct.calcsize(_FORMAT):
            raise HashesFileError("hashes page too short")
        magic, k_hash, k_len, k_nom, i_hash, i_len, i_nom = struct.unpack_from(
            _FORMAT, page, 0
        )
        if magic != _MAGIC:
            raise HashesFileError("bad hashes page magic")
        return cls(
            kernel_hash=k_hash,
            kernel_len=k_len,
            kernel_nominal=k_nom,
            initrd_hash=i_hash,
            initrd_len=i_len,
            initrd_nominal=i_nom,
        )


def hash_boot_components(kernel: Blob, initrd: Blob) -> HashesFile:
    """Compute the hashes file off the critical boot path."""
    return HashesFile(
        kernel_hash=sha256(kernel.data, accelerated=True),
        kernel_len=len(kernel.data),
        kernel_nominal=kernel.nominal_size,
        initrd_hash=sha256(initrd.data, accelerated=True),
        initrd_len=len(initrd.data),
        initrd_nominal=initrd.nominal_size,
    )
