"""Shared units and the :class:`Blob` abstraction.

The reproduction runs *functionally* on real bytes (hashes must match,
decompression must actually decode, tampering must actually be caught) but
charges *virtual time* based on the sizes the paper's components have on
real hardware.  To keep both honest at once, byte buffers travel through
the system as :class:`Blob` objects:

- ``data`` — the actual bytes the simulation operates on.  Image builders
  may build at a reduced ``scale`` (e.g. 1/64 of the paper's sizes) so the
  test suite stays fast.
- ``nominal_size`` — the size in bytes that the cost model charges for.
  At ``scale=1`` the two are equal.

Every timed operation (PSP pre-encryption, guest copy+hash, decompression)
takes its duration from ``nominal_size`` and its *result* from ``data``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB

PAGE_SIZE = 4 * KiB
HUGE_PAGE_SIZE = 2 * MiB


@dataclass(frozen=True)
class Blob:
    """A byte buffer with an independent nominal (charged) size."""

    data: bytes
    nominal_size: int = -1
    label: str = ""

    def __post_init__(self) -> None:
        if self.nominal_size < 0:
            object.__setattr__(self, "nominal_size", len(self.data))
        if self.nominal_size < len(self.data):
            raise ValueError(
                f"nominal size {self.nominal_size} smaller than actual "
                f"{len(self.data)} for blob {self.label!r}"
            )

    def __len__(self) -> int:
        return len(self.data)

    @property
    def scale(self) -> float:
        """Ratio of actual to nominal bytes (1.0 for unscaled blobs)."""
        if self.nominal_size == 0:
            return 1.0
        return len(self.data) / self.nominal_size

    def with_label(self, label: str) -> "Blob":
        return Blob(self.data, self.nominal_size, label)


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to the next multiple of ``alignment``."""
    if alignment <= 0:
        raise ValueError("alignment must be positive")
    return (value + alignment - 1) // alignment * alignment


def human_size(num_bytes: float) -> str:
    """Render a byte count the way the paper's tables do (e.g. '7.1M')."""
    for unit, factor in (("G", GiB), ("M", MiB), ("K", KiB)):
        if num_bytes >= factor:
            value = num_bytes / factor
            if value >= 10:
                return f"{value:.0f}{unit}"
            return f"{value:.1f}{unit}"
    return f"{num_bytes:.0f}B"
