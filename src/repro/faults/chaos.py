"""The chaos harness: fault-rate sweeps over a serverless fleet.

Runs a Fig. 9-style fleet (SEVeriFast cold boots on a shared machine,
trace-driven arrivals) while a :class:`~repro.faults.plan.FaultPlan`
injects PSP firmware faults, ASID pressure, staged-image corruption,
host tampering of staged pages, and sandbox spawn failures — then
reports, per fault rate:

- **boot-success rate**: cold starts that produced a running guest
  (retries count as success; exhausted retries and aborts do not);
- **detection rate**: of the boots whose memory was tampered, the
  fraction the verifier caught.  The paper's security argument is that
  this is *always* 1.0 — no tampered boot ever completes;
- **p50/p99 boot latency** of successful cold boots, showing what
  retry/backoff costs under faults.

Everything is seed-driven: the same ``seed`` produces a byte-identical
report (pinned by ``tests/integration/test_chaos.py``), which is what
makes ``make chaos`` a meaningful CI gate.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.faults.plan import FaultPlan, FaultSpec
from repro.faults.retry import RetryPolicy

#: the default sweep (0 is the control: it must match a fault-free run)
DEFAULT_RATES: tuple[float, ...] = (0.0, 0.02, 0.05, 0.1)

#: the minimum host write the tamper site targets: large enough to skip
#: virtio rings and boot data, small enough to cover staged images even
#: at the 1/1024 default scale (bzImage ~8 KiB, initrd ~14 KiB built)
TAMPER_MIN_BYTES = 8192

#: per-command retry policy for the VMM (LAUNCH_* against a flaky PSP)
LAUNCH_RETRY = RetryPolicy(max_attempts=4, base_delay_ms=2.0, multiplier=2.0)

#: whole-boot retry policy for the platform (spawn failures, fatal PSP
#: errors surface here as a fresh cold-boot attempt)
BOOT_RETRY = RetryPolicy(max_attempts=3, base_delay_ms=10.0, multiplier=2.0)


def default_plan(seed: int, rate: float) -> FaultPlan:
    """The standard chaos mix, scaled by one overall ``rate`` knob.

    PSP faults are mostly transient (busy/reset) with a 10% fatal tail;
    staged-image corruption fires at the full rate since it is the
    detection path under test; host tampering targets only writes of
    :data:`TAMPER_MIN_BYTES` or more (the staged images).
    """
    return FaultPlan(
        seed=seed,
        specs=(
            FaultSpec(
                "psp.command",
                rate * 0.5,
                kinds=(("busy", 0.6), ("reset", 0.3), ("fatal", 0.1)),
            ),
            FaultSpec("psp.activate", rate * 0.2),
            FaultSpec(
                "image.stage",
                rate,
                kinds=(("bitflip", 0.7), ("truncate", 0.3)),
            ),
            FaultSpec(
                "mem.host_tamper",
                rate * 0.3,
                kinds=(("bitflip", 1.0),),
                min_bytes=TAMPER_MIN_BYTES,
            ),
            FaultSpec("serverless.cold_boot", rate * 0.5),
            FaultSpec(
                "serverless.restore",
                rate * 0.5,
                kinds=(("lookup", 0.5), ("reattest", 0.5)),
            ),
        ),
    )


def run_chaos_fleet(
    fault_rate: float,
    seed: int = 1234,
    kernel: str = "aws",
    scale: float = 1.0 / 1024.0,
    functions: int = 6,
    horizon_s: float = 20.0,
    rate_per_s: float = 2.0,
    keepalive_ms: float = 4000.0,
    asid_capacity: int | None = None,
) -> dict:
    """One fleet run at one fault rate; returns the metrics row.

    ``asid_capacity`` shrinks the PSP's ASID namespace below the fleet's
    guest count to exercise the DEACTIVATE -> DF_FLUSH -> reuse cycle on
    top of the injected faults.
    """
    from repro.core.config import VmConfig
    from repro.core.severifast import SEVeriFast
    from repro.formats.kernels import KERNEL_CONFIGS
    from repro.hw.platform import Machine
    from repro.serverless.platform import ServerlessPlatform
    from repro.serverless.snapshots import (
        SessionCache,
        SnapshotStore,
        cached_snapshot,
        restore_from_store,
    )
    from repro.serverless.trace import synthesize_trace
    from repro.sev.guestowner import GuestOwner
    from repro.vmm.firecracker import FirecrackerVMM

    machine = Machine(chip_seed=b"repro-chaos-host")
    if asid_capacity is not None:
        machine.psp.asid_capacity = asid_capacity
    plan = machine.sim.inject(default_plan(seed, fault_rate))
    config = VmConfig(
        kernel=KERNEL_CONFIGS[kernel], scale=scale, attest=False
    )
    sf = SEVeriFast(machine=machine)
    prepared = sf.prepare(config, machine)
    vmm = FirecrackerVMM(machine, retry=LAUNCH_RETRY, release_on_exit=True)

    def boot():
        result = yield from vmm.boot_severifast(
            config,
            prepared.artifacts,
            prepared.initrd,
            hashes=prepared.hashes,
        )
        return result

    # Repeat cold starts go through the PR-6 restore path so the chaos
    # mix exercises the ``serverless.restore`` site and its fallback to
    # a full measured boot.  The snapshot is built offline on a fault-
    # free machine (the provider's image pipeline is not the system
    # under test here) under a scratch registry, so whether the build
    # cache was warm or cold never shows in the run's own metrics.
    from repro.obs.metrics import MetricsRegistry, use_registry

    with use_registry(MetricsRegistry()):
        snapshot = cached_snapshot(config, b"repro-chaos-host")
    store = SnapshotStore()
    snapshot_digest = store.put(snapshot)
    sessions = SessionCache()
    owner = GuestOwner.with_chain(
        trusted_ark=machine.psp.key_hierarchy.ark_key.public,
        cert_chain=machine.psp.cert_chain,
        expected_digest=snapshot.launch_digest,
        secret=b"chaos-function-secret",
    )
    sessions.establish("chaos", machine.psp.chip_id, snapshot.image_digest)

    def restore_factory():
        outcome = yield from restore_from_store(
            machine,
            store,
            snapshot_digest,
            owner,
            tenant="chaos",
            sessions=sessions,
        )
        return outcome

    platform = ServerlessPlatform(
        machine.sim,
        boot,
        keepalive_ms=keepalive_ms,
        restore_factory=restore_factory,
        boot_retry=BOOT_RETRY,
    )
    trace = synthesize_trace(
        num_functions=functions,
        horizon_ms=horizon_s * 1000.0,
        mean_rate_per_s=rate_per_s,
        seed=seed,
    )
    stats = platform.run(trace)

    tampered = plan.stats.get("tampered_boots", 0)
    undetected = plan.stats.get("undetected_tampered_boots", 0)
    detection_rate = 1.0 if tampered == 0 else 1.0 - undetected / tampered
    return {
        "fault_rate": fault_rate,
        "sites": plan.sites,
        "invocations": len(stats.outcomes),
        "cold_starts": stats.cold_starts,
        "restored_starts": stats.restored_starts,
        "failed_invocations": stats.failed_invocations,
        "success_rate": round(stats.success_rate, 6),
        "boot_success_rate": round(stats.boot_success_rate, 6),
        "tamper_aborts": stats.tamper_aborts,
        "boot_retries": stats.total_boot_retries,
        "tampered_boots": tampered,
        "undetected_tampered_boots": undetected,
        "detection_rate": round(detection_rate, 6),
        "p50_boot_ms": round(stats.boot_latency_percentile(50), 3),
        "p99_boot_ms": round(stats.boot_latency_percentile(99), 3),
        "faults": plan.summary(),
    }


def run_chaos_sweep(
    rates: Iterable[float] = DEFAULT_RATES,
    seed: int = 1234,
    kernel: str = "aws",
    scale: float = 1.0 / 1024.0,
    functions: int = 6,
    horizon_s: float = 20.0,
    rate_per_s: float = 2.0,
    asid_capacity: int | None = None,
) -> dict:
    """Sweep fault rates; returns the full ``BENCH_chaos.json`` document.

    Top-level ``detection_rate`` aggregates the whole sweep: 1.0 means no
    tampered boot ever completed at any fault rate.
    """
    rates_list: Sequence[float] = list(rates)
    rows = [
        run_chaos_fleet(
            fault_rate,
            seed=seed,
            kernel=kernel,
            scale=scale,
            functions=functions,
            horizon_s=horizon_s,
            rate_per_s=rate_per_s,
            asid_capacity=asid_capacity,
        )
        for fault_rate in rates_list
    ]
    tampered = sum(r["tampered_boots"] for r in rows)
    undetected = sum(r["undetected_tampered_boots"] for r in rows)
    return {
        "experiment": "chaos",
        "seed": seed,
        "kernel": kernel,
        "scale": scale,
        "functions": functions,
        "horizon_s": horizon_s,
        "rate_per_s": rate_per_s,
        "rates": list(rates_list),
        "detection_rate": 1.0 if tampered == 0 else 1.0 - undetected / tampered,
        "tampered_boots": tampered,
        "undetected_tampered_boots": undetected,
        "sweep": rows,
    }
