"""Seeded, deterministic fault schedules.

A :class:`FaultPlan` owns one :class:`random.Random` stream *per
injection site*, seeded from ``(plan seed, site name)``.  Draw order at
one site therefore never perturbs another site, and because the
discrete-event engine schedules deterministically, the same seed always
yields the same faults at the same virtual times — two chaos runs with
the same seed produce identical reports.

Injection sites instrumented across the repository:

=========================  ==================================================
``psp.command``            PSP firmware faults in
                           :meth:`~repro.hw.psp.PlatformSecurityProcessor._occupy`
                           (kinds: ``busy``, ``reset``, ``fatal``)
``psp.activate``           injected ASID pressure in ACTIVATE
``mem.host_tamper``        bit-flip on a hypervisor write to guest memory
                           (kind: ``bitflip``; honors ``min_bytes``)
``image.stage``            staged kernel/initrd corruption in the VMM
                           (kinds: ``bitflip``, ``truncate``)
``serverless.cold_boot``   the sandbox manager fails to spawn a microVM
``serverless.restore``     snapshot restore path (kinds: ``lookup``,
                           ``reattest``) — exercises the fallback to a
                           full measured boot
``host.crash``             a fleet host dies mid-run (in-flight work is
                           interrupted and failed over)
``host.psp_wedge``         a fleet host's PSP wedges: a stuck command
                           holds the single-server resource, queue depth
                           grows until the health monitor drains the host
``host.heartbeat_loss``    one heartbeat from a fleet host is dropped;
                           enough consecutive losses and the controller
                           fences the host
``fleet.placement``        the placement RPC to a chosen host fails
                           (retried under the failover ``RetryPolicy``)
=========================  ==================================================

Sites absent from the plan (or with ``rate <= 0``) consume no
randomness and add no virtual time, which is what makes an empty plan
observationally identical to no plan at all (pinned by
``tests/properties/test_fault_transparency.py``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Simulator

#: cap on the retained event log so fleet-scale runs stay bounded
MAX_RECORDED_EVENTS = 10_000


@dataclass(frozen=True)
class FaultSpec:
    """Configuration for one injection site.

    ``kinds`` maps fault kind -> relative weight; a fired fault picks a
    kind from that distribution.  ``min_bytes`` filters size-annotated
    sites (e.g. host writes) so chaos configs can target large staged
    images without corrupting every 4-byte doorbell write.  ``max_fires``
    disarms the site after N faults — handy for "fail twice, then
    succeed" tests.
    """

    site: str
    rate: float
    kinds: tuple[tuple[str, float], ...] = (("transient", 1.0),)
    min_bytes: int = 0
    max_fires: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {self.rate}")
        if not self.kinds:
            raise ValueError("a FaultSpec needs at least one kind")
        if any(weight <= 0 for _kind, weight in self.kinds):
            raise ValueError("kind weights must be positive")


@dataclass(frozen=True)
class FaultEvent:
    """One fired fault.

    ``salt`` is a per-event random integer consumers use to derive
    payload details (which bit to flip, where to truncate) without
    touching the site's RNG stream again.
    """

    site: str
    kind: str
    salt: int
    seq: int
    at_ms: float


class FaultPlan:
    """A deterministic, seed-driven schedule of faults.

    Attach to a simulator with :meth:`repro.sim.Simulator.inject`;
    instrumented subsystems then call :meth:`draw` at their injection
    sites and :meth:`note` when they detect, retry, or abort on a fault.
    ``stats`` accumulates the ``[faults]`` counters (injected / detected
    / retried / aborted plus per-site breakdowns) that the tracer
    summary and the chaos report expose.
    """

    def __init__(self, seed: int = 0, specs: Iterable[FaultSpec] = ()):
        self.seed = seed
        self._specs: dict[str, FaultSpec] = {}
        for spec in specs:
            if spec.site in self._specs:
                raise ValueError(f"duplicate FaultSpec for site {spec.site!r}")
            self._specs[spec.site] = spec
        self._streams: dict[str, random.Random] = {}
        self._fires: dict[str, int] = {}
        self._seq = 0
        self.stats: dict[str, int] = {}
        self.events: list[FaultEvent] = []
        self._sim: Optional["Simulator"] = None

    # -- wiring ----------------------------------------------------------

    def bind(self, sim: "Simulator") -> None:
        """Called by :meth:`Simulator.inject`; gives draws a clock and a
        tracer to mirror counters into."""
        self._sim = sim

    @property
    def sites(self) -> list[str]:
        """Configured sites in insertion order (deterministic: specs are
        declared in code, never discovered at runtime)."""
        return list(self._specs)

    def spec(self, site: str) -> Optional[FaultSpec]:
        return self._specs.get(site)

    def _stream(self, site: str) -> random.Random:
        rng = self._streams.get(site)
        if rng is None:
            # Seeding with a string hashes it through sha512 (seed
            # version 2): stable across processes and platforms.
            rng = random.Random(f"repro-faults:{self.seed}:{site}")
            self._streams[site] = rng
        return rng

    # -- the injection-point API ----------------------------------------

    def draw(self, site: str, *, size: Optional[int] = None) -> Optional[FaultEvent]:
        """One Bernoulli draw at ``site``; returns the fault or ``None``.

        Sites not configured in the plan return ``None`` without
        consuming randomness, so adding a site to one subsystem never
        shifts another subsystem's fault schedule.
        """
        spec = self._specs.get(site)
        if spec is None or spec.rate <= 0.0:
            return None
        if spec.max_fires is not None and self._fires.get(site, 0) >= spec.max_fires:
            return None
        if size is not None and size < spec.min_bytes:
            return None
        rng = self._stream(site)
        if rng.random() >= spec.rate:
            return None
        salt = rng.getrandbits(48)
        kind = self._pick_kind(spec, rng)
        self._fires[site] = self._fires.get(site, 0) + 1
        self._seq += 1
        now = self._sim.now if self._sim is not None else 0.0
        event = FaultEvent(site=site, kind=kind, salt=salt, seq=self._seq, at_ms=now)
        if len(self.events) < MAX_RECORDED_EVENTS:
            self.events.append(event)
        self.note("injected")
        self.note(f"injected:{site}")
        self.note(f"injected:{site}:{kind}")
        tracer = self._sim.tracer if self._sim is not None else None
        if tracer is not None:
            tracer.instant(f"fault:{site}", "faults", kind=kind, seq=self._seq)
        return event

    @staticmethod
    def _pick_kind(spec: FaultSpec, rng: random.Random) -> str:
        total = sum(weight for _kind, weight in spec.kinds)
        roll = rng.random() * total
        acc = 0.0
        for kind, weight in spec.kinds:
            acc += weight
            if roll < acc:
                return kind
        return spec.kinds[-1][0]

    # -- accounting ------------------------------------------------------

    def note(self, counter: str, n: int = 1) -> None:
        """Bump a fault counter (mirrored into an attached tracer and the
        default metrics registry as ``faults.<counter>``)."""
        value = self.stats.get(counter, 0) + n
        self.stats[counter] = value
        tracer = self._sim.tracer if self._sim is not None else None
        if tracer is not None:
            tracer.fault_note(counter, value)
        from repro.obs.metrics import default_registry

        default_registry().counter(f"faults.{counter}").inc(n)

    @property
    def injected(self) -> int:
        return self.stats.get("injected", 0)

    def summary(self) -> dict[str, int]:
        """A copy of the counters in first-bump order (for reports).

        Counter creation follows the deterministic event schedule, so
        insertion order is byte-stable across runs with identical seeds —
        unlike sorted order it also groups related counters (a site's
        ``injected:*`` family appears where the site first fired).
        """
        return dict(self.stats)


# -- deterministic payload helpers (shared by memory + VMM tampering) -----


def flip_bit(data: bytes, salt: int) -> bytes:
    """Flip one bit of ``data`` at a salt-derived position.

    Always changes the input (for non-empty data), so a hash over the
    result is guaranteed to mismatch — injected tampering can never be
    silently absorbed.
    """
    if not data:
        return data
    offset = salt % len(data)
    bit = (salt >> 24) % 8
    out = bytearray(data)
    out[offset] ^= 1 << bit
    return bytes(out)


def truncate_tail(data: bytes, salt: int) -> bytes:
    """Zero a salt-derived tail of ``data`` (same length, truncated
    content) — models a short read of the image file.

    Falls back to :func:`flip_bit` when the chosen tail is already all
    zeros, so the returned bytes always differ from the input.
    """
    if not data:
        return data
    keep_min = len(data) // 2
    keep = keep_min + salt % max(1, len(data) - keep_min)
    keep = min(keep, len(data) - 1)
    if any(data[keep:]):
        return data[:keep] + b"\x00" * (len(data) - keep)
    return flip_bit(data, salt)
