"""Retry/timeout/backoff policies for transient SEV failures.

Real hypervisors do not crash when the PSP reports BUSY or when every
ASID slot is awaiting DF_FLUSH — they recover and retry (the SEV API
spec marks several status codes explicitly retryable).  This module
packages that behaviour:

- :class:`RetryPolicy` — bounded attempts with deterministic
  exponential backoff in *virtual* milliseconds (no RNG: jittering the
  backoff would break reproducible chaos runs; contention already
  de-synchronizes retries).
- :func:`psp_command` — drive one PSP command generator under a policy,
  applying SEV-specific recovery between attempts: codes whose recovery
  is DF_FLUSH (ASID exhaustion, ``DF_FLUSH_REQUIRED``) get the flush —
  itself a timed, PSP-occupying command — before the backoff wait.

Backoff waits are recorded as ``fault``-category ``retry:<label>`` spans
on the ``faults`` track when a tracer is attached, and bump the plan's
``retried`` counter when a :class:`~repro.faults.plan.FaultPlan` is
injected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Generator, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hw.psp import PlatformSecurityProcessor
    from repro.sim.engine import Simulator


def sev_retryable(exc: BaseException) -> bool:
    """True for SEV errors whose status code the spec marks retryable."""
    code = getattr(exc, "code", None)
    return code is not None and getattr(code, "retryable", False)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff over virtual time.

    ``max_attempts`` counts total tries (1 = no retries).  Delay before
    retry ``i`` (0-based) is ``base_delay_ms * multiplier**i`` capped at
    ``max_delay_ms``.
    """

    max_attempts: int = 3
    base_delay_ms: float = 5.0
    multiplier: float = 2.0
    max_delay_ms: float = 500.0
    #: optional virtual-time budget for the whole retried operation; once
    #: ``sim.now`` has advanced past ``start + max_elapsed_ms`` no further
    #: retry is attempted and the original error propagates.  Keeps
    #: failover retries from stalling a boot past its SLO.
    max_elapsed_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_ms < 0 or self.max_delay_ms < 0:
            raise ValueError("backoff delays must be non-negative")
        if self.max_elapsed_ms is not None and self.max_elapsed_ms < 0:
            raise ValueError("max_elapsed_ms must be non-negative")

    def delay_ms(self, retry_index: int) -> float:
        return min(
            self.base_delay_ms * self.multiplier**retry_index, self.max_delay_ms
        )

    def run(
        self,
        sim: "Simulator",
        factory: Callable[[], Generator],
        *,
        label: str = "op",
        retryable: Callable[[BaseException], bool] = sev_retryable,
        recover: Optional[Callable[[BaseException], Generator]] = None,
        on_retry: Optional[Callable[[BaseException, int], None]] = None,
    ) -> Generator:
        """Run ``factory()`` as a sub-process, retrying retryable failures.

        ``factory`` is called once per attempt and must return a fresh
        generator.  ``recover(exc)`` (a generator factory) runs before
        the backoff wait — e.g. a DF_FLUSH.  Non-retryable exceptions,
        engine-internal errors, and exhausted attempts propagate.
        Value: the final attempt's value.
        """
        from repro.sim.engine import Interrupt, SimulationError

        start_ms = sim.now
        attempt = 0
        while True:
            try:
                result = yield from factory()
                return result
            except (Interrupt, SimulationError):
                raise
            except Exception as exc:
                if attempt + 1 >= self.max_attempts or not retryable(exc):
                    raise
                if self.max_elapsed_ms is not None and (
                    (sim.now - start_ms) + self.delay_ms(attempt)
                    > self.max_elapsed_ms
                ):
                    # The budget would be blown before the next attempt
                    # even starts: surface the failure we actually saw.
                    raise
                if on_retry is not None:
                    on_retry(exc, attempt)
                from repro.obs.metrics import default_registry

                default_registry().counter("retry.attempts", label=label).inc()
                plan = sim.faults
                if plan is not None:
                    plan.note("retried")
                    plan.note(f"retried:{label}")
                tracer = sim.tracer
                span = (
                    tracer.begin(
                        f"retry:{label}", "fault", "faults",
                        attempt=attempt, error=str(exc),
                    )
                    if tracer is not None
                    else None
                )
                if recover is not None:
                    yield from recover(exc)
                yield sim.timeout(self.delay_ms(attempt))
                if span is not None:
                    tracer.end(span)
                attempt += 1


def psp_command(
    sim: "Simulator",
    psp: "PlatformSecurityProcessor",
    policy: RetryPolicy,
    factory: Callable[[], Generator],
    label: str,
    on_retry: Optional[Callable[[BaseException, int], None]] = None,
) -> Generator:
    """Run a PSP command generator under ``policy`` with SEV recovery.

    Between attempts, errors whose code's recovery is DF_FLUSH (ASID
    exhaustion / ``DF_FLUSH_REQUIRED`` / ``WBINVD_REQUIRED``) first
    recycle retired ASID slots via :meth:`df_flush` — the retry then
    contends for the PSP like any other command.  Value: the command's
    value.
    """

    def recover(exc: BaseException) -> Generator:
        code = getattr(exc, "code", None)
        if code is not None and getattr(code, "needs_df_flush", False):
            yield from psp.df_flush()

    return (
        yield from policy.run(
            sim,
            factory,
            label=label,
            retryable=sev_retryable,
            recover=recover,
            on_retry=on_retry,
        )
    )
