"""Deterministic fault injection and recovery for the simulated stack.

The paper's security argument is about what happens when boot-time
verification *fails*: a tampered kernel page must abort the boot before
any guest code runs (§2.6).  This package exercises those paths at fleet
scale without giving up the repository's reproducibility guarantees:

- :class:`~repro.faults.plan.FaultPlan` — a seeded, deterministic fault
  schedule.  Subsystems consult named *injection sites* (PSP commands,
  ASID activation, host writes, image staging, serverless cold starts);
  every draw comes from a per-site RNG stream derived from the plan
  seed, never from wall-clock state, so the same seed always produces
  the same faults at the same virtual times.
- :class:`~repro.faults.retry.RetryPolicy` — bounded exponential
  backoff used by the VMM launch paths and the serverless platform,
  including SEV-specific recovery (DF_FLUSH to recycle ASID slots
  before retrying a failed LAUNCH_START).
- :mod:`~repro.faults.chaos` — the ``repro chaos`` harness: sweep fault
  rates over a Fig. 9-style serverless fleet and report boot-success
  rate, tamper-detection rate, and latency percentiles under faults.

Attach a plan with :meth:`repro.sim.Simulator.inject`.  With no plan
attached (or an empty plan), every instrumented site reduces to a single
``is None`` / ``rate <= 0`` check and the simulation is byte-identical
to one without the faults layer.
"""

from repro.faults.chaos import default_plan, run_chaos_sweep
from repro.faults.plan import FaultEvent, FaultPlan, FaultSpec
from repro.faults.retry import RetryPolicy, psp_command, sev_retryable

__all__ = [
    "FaultEvent",
    "FaultPlan",
    "FaultSpec",
    "RetryPolicy",
    "default_plan",
    "psp_command",
    "run_chaos_sweep",
    "sev_retryable",
]
