"""Simulated fleet hosts: one PSP, warm pool, and snapshot store each.

A :class:`SimHost` is the per-machine half of the supervisord-style
host-agent split (modeled on one-process-per-VM managers with a control
socket): it owns the mechanics — a :class:`~repro.hw.platform.Machine`
with its own PSP, a keepalive-bounded warm pool, a content-addressed
:class:`~repro.serverless.snapshots.SnapshotStore`, and the registry of
in-flight work — while :class:`~repro.fleet.controller.FleetController`
owns the policy (create/destroy/list/drain, placement, health, failover).

All hosts in one fleet cell share a single
:class:`~repro.sim.engine.Simulator`: cross-host failover is a causal
chain (crash -> interrupt -> re-place) that only makes sense on one
virtual clock.  Each host still has its *own* PSP resource, so the
Fig. 12 bottleneck is per-host, which is exactly what gives the
placement scheduler something to balance.

The controller's *view* of a host (:class:`HostState`) is deliberately
distinct from the host's ground truth (:attr:`SimHost.alive`): a crashed
host is dead immediately, but the controller only learns it when the
heartbeat timeout fires — until then the scheduler may still place onto
the corpse, and the placement RPC fails fast instead.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Callable, Generator, Optional

from repro.obs import metrics
from repro.serverless.snapshots import SessionCache, SnapshotStore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Process, Simulator


class HostState(enum.Enum):
    """The controller's view of a host (not its ground truth)."""

    RUNNING = "running"
    DRAINING = "draining"
    DOWN = "down"


class HostCrash:
    """Interrupt cause delivered to in-flight work when its host dies.

    Carried on :class:`~repro.sim.engine.Interrupt` so the failover path
    can distinguish "my host died under me" (re-place on a survivor)
    from any other interruption (propagate).
    """

    __slots__ = ("host_id", "reason")

    def __init__(self, host_id: str, reason: str = "crash"):
        self.host_id = host_id
        self.reason = reason

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"HostCrash({self.host_id!r}, {self.reason!r})"


class _WarmVm:
    __slots__ = ("function", "idle_since")

    def __init__(self, function: str, idle_since: float):
        self.function = function
        self.idle_since = idle_since


class SimHost:
    """One simulated machine of the fleet, behind the host-agent API."""

    def __init__(
        self,
        sim: "Simulator",
        index: int,
        config,
        *,
        cell: int = 0,
        chip_seed: Optional[bytes] = None,
        keepalive_ms: float = 4000.0,
        warm_start_ms: float = 1.0,
        launch_retry=None,
    ):
        from repro.core.severifast import SEVeriFast
        from repro.hw.platform import Machine
        from repro.vmm.firecracker import FirecrackerVMM

        self.sim = sim
        self.index = index
        self.host_id = f"c{cell}:host-{index}"
        self.config = config
        # Explicit chip seeds: auto-drawn seeds depend on process-global
        # construction order, which would make cell results depend on
        # what ran earlier in the worker — fleet runs must not.
        self.machine = Machine(
            sim=sim,
            chip_seed=chip_seed or f"repro-fleet-c{cell}-host-{index}".encode(),
            # host-labelled trace tracks (psp rows, VM tracks) keep
            # multi-host merged traces unambiguous; metrics unaffected
            label=self.host_id,
        )
        self.keepalive_ms = keepalive_ms
        self.warm_start_ms = warm_start_ms
        self.state = HostState.RUNNING
        #: ground truth, flipped by :meth:`crash` — the controller's
        #: ``state`` lags it by up to one heartbeat timeout
        self.alive = True
        self.crashed_at: Optional[float] = None
        self.last_heartbeat = 0.0
        #: set while an injected ``host.psp_wedge`` holds the PSP
        self.wedged = False
        #: the monitor auto-drained this host (so it may auto-resume)
        self.auto_drained = False
        self.store = SnapshotStore()
        self.sessions = SessionCache()
        self.max_queue_depth = 0
        self.boots = 0
        self.restores = 0
        self._pool: list[_WarmVm] = []
        self._inflight: dict[int, "Process"] = {}

        sf = SEVeriFast(machine=self.machine)
        self._prepared = sf.prepare(config, self.machine)
        self._vmm = FirecrackerVMM(
            self.machine, retry=launch_retry, release_on_exit=True
        )
        self._owner = None

    # -- identity ------------------------------------------------------------

    @property
    def expected_digest(self) -> bytes:
        return self._prepared.expected_digest

    @property
    def psp_queue_depth(self) -> int:
        """Commands queued or executing on this host's PSP."""
        resource = self.machine.psp.resource
        return resource.queue_length + resource.in_use

    @property
    def eligible(self) -> bool:
        return self.state is HostState.RUNNING

    def owner(self, expected_digest: bytes, secret: bytes):
        """The guest owner that accepts restores on this host's chip."""
        if self._owner is None:
            from repro.sev.guestowner import GuestOwner

            self._owner = GuestOwner.with_chain(
                trusted_ark=self.machine.psp.key_hierarchy.ark_key.public,
                cert_chain=self.machine.psp.cert_chain,
                expected_digest=expected_digest,
                secret=secret,
            )
        return self._owner

    # -- warm pool -----------------------------------------------------------

    def take_warm(self, function: str) -> bool:
        """Claim a live warm VM for ``function``; expired entries drop."""
        now = self.sim.now
        self._pool = [
            vm for vm in self._pool if now - vm.idle_since <= self.keepalive_ms
        ]
        for i, vm in enumerate(self._pool):
            if vm.function == function:
                del self._pool[i]
                return True
        return False

    def put_warm(self, function: str) -> None:
        if self.alive and self.state is not HostState.DOWN:
            self._pool.append(_WarmVm(function, self.sim.now))

    def warm_functions(self) -> list[str]:
        """Distinct functions with a live warm VM, pool order."""
        now = self.sim.now
        seen: dict[str, None] = {}
        for vm in self._pool:
            if now - vm.idle_since <= self.keepalive_ms:
                seen.setdefault(vm.function, None)
        return list(seen)

    @property
    def warm_count(self) -> int:
        now = self.sim.now
        return sum(
            1 for vm in self._pool if now - vm.idle_since <= self.keepalive_ms
        )

    # -- in-flight registry (interrupt targets on crash) ---------------------

    def register(self, proc: "Process") -> None:
        self._inflight[id(proc)] = proc

    def unregister(self, proc: "Process") -> None:
        self._inflight.pop(id(proc), None)

    @property
    def inflight_count(self) -> int:
        return len(self._inflight)

    # -- boot paths ----------------------------------------------------------

    def boot_cold(self) -> Generator:
        """One full measured boot attempt (spawn + launch flow).

        Mirrors the single-host platform's cold boot: the
        ``serverless.cold_boot`` site models the sandbox spawn failing
        before the VMM starts, costing one warm-start of wasted work.
        Process value: :class:`~repro.vmm.timeline.BootResult`.
        """
        from repro.serverless.platform import ColdBootError

        plan = self.sim.faults
        if plan is not None and plan.draw("serverless.cold_boot") is not None:
            yield self.sim.timeout(self.warm_start_ms)
            raise ColdBootError(
                "sandbox manager failed to spawn the microVM (injected)"
            )
        result = yield from self._vmm.boot_severifast(
            self.config,
            self._prepared.artifacts,
            self._prepared.initrd,
            hashes=self._prepared.hashes,
        )
        self.boots += 1
        return result

    def restore_snapshot(
        self, digest: bytes, owner, *, tenant: str = "fleet", verifier=None
    ) -> Generator:
        """Restore ``digest`` from this host's store (lookup -> CoW ->
        re-attestation).  Process value: RestoreOutcome.

        ``verifier`` routes the re-attestation chain proof through a
        (typically cell-shared) :class:`repro.sev.verifier.VerifierService`
        instead of the local per-report walk."""
        from repro.serverless.snapshots import restore_from_store

        outcome = yield from restore_from_store(
            self.machine,
            self.store,
            digest,
            owner,
            tenant=tenant,
            sessions=self.sessions,
            verifier=verifier,
        )
        self.restores += 1
        return outcome

    # -- failure mechanics ---------------------------------------------------

    def crash(self, reason: str = "crash") -> None:
        """Kill the host: warm pool gone, in-flight work interrupted.

        Every interrupted process receives :class:`HostCrash` as its
        interrupt cause; the controller's failover path catches it and
        re-places the work on a survivor.
        """
        if not self.alive:
            return
        self.alive = False
        self.crashed_at = self.sim.now
        self._pool.clear()
        victims = list(self._inflight.values())
        self._inflight.clear()
        cause = HostCrash(self.host_id, reason)
        for proc in victims:
            if proc.is_alive:
                proc.interrupt(cause)
        metrics.default_registry().counter(
            "fleet.host_crashes", reason=reason
        ).inc()

    def wedge(self, duration_ms: float) -> Generator:
        """An injected stuck PSP command: holds the single-server PSP
        resource for ``duration_ms`` so queue depth builds behind it —
        the signal the health monitor drains the host on."""
        resource = self.machine.psp.resource
        grant = yield resource.request()
        self.wedged = True
        try:
            yield self.sim.timeout(duration_ms)
        finally:
            self.wedged = False
            resource.release(grant)
