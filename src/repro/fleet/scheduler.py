"""Pluggable placement schedulers for the fleet controller.

All three strategies are pure functions of deterministic simulator state
(host PSP queue depths, store contents, a round-robin cursor), so
placement decisions — and therefore whole fleet runs — are reproducible
per seed.  Ties always break on host index.

- :class:`RoundRobinScheduler` — ignore load, rotate.
- :class:`LeastLoadedScheduler` — minimize PSP queue depth, the Fig. 12
  bottleneck resource.
- :class:`CacheAffinityScheduler` — prefer hosts whose snapshot store
  already holds the image digest (restores beat full boots), spilling
  to global least-loaded once the affine hosts' queues run deep.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.fleet.hosts import SimHost


class PlacementError(Exception):
    """The placement RPC failed (injected fault or stale host view)."""


class NoEligibleHostError(PlacementError):
    """Every host is down or draining."""


class Scheduler:
    """Base class: pick one host from a non-empty eligible list."""

    name = "base"

    def choose(
        self, hosts: Sequence[SimHost], function: str, digest: Optional[bytes]
    ) -> SimHost:
        raise NotImplementedError


class RoundRobinScheduler(Scheduler):
    name = "round-robin"

    def __init__(self) -> None:
        self._cursor = 0

    def choose(
        self, hosts: Sequence[SimHost], function: str, digest: Optional[bytes]
    ) -> SimHost:
        host = hosts[self._cursor % len(hosts)]
        self._cursor += 1
        return host


def _least_loaded(hosts: Sequence[SimHost]) -> SimHost:
    return min(hosts, key=lambda h: (h.psp_queue_depth, h.index))


class LeastLoadedScheduler(Scheduler):
    name = "least-loaded"

    def choose(
        self, hosts: Sequence[SimHost], function: str, digest: Optional[bytes]
    ) -> SimHost:
        return _least_loaded(hosts)


class CacheAffinityScheduler(Scheduler):
    """Affinity on image digest, with a load-aware spill.

    A host that already stores the snapshot serves the cold start as a
    CoW restore (~2x cheaper in virtual time), so it is preferred — but
    only while its PSP queue is within ``spill_depth`` of the fleet's
    least-loaded host, otherwise affinity would pile every boot onto the
    first host that ever booted the image.
    """

    name = "cache-affinity"

    def __init__(self, spill_depth: int = 2) -> None:
        self.spill_depth = spill_depth

    def choose(
        self, hosts: Sequence[SimHost], function: str, digest: Optional[bytes]
    ) -> SimHost:
        best = _least_loaded(hosts)
        if digest is None:
            return best
        affine = [h for h in hosts if digest in h.store]
        if not affine:
            return best
        candidate = _least_loaded(affine)
        if candidate.psp_queue_depth - best.psp_queue_depth > self.spill_depth:
            return best
        return candidate


#: registry for the CLI / experiment drivers
SCHEDULERS: dict[str, type[Scheduler]] = {
    RoundRobinScheduler.name: RoundRobinScheduler,
    LeastLoadedScheduler.name: LeastLoadedScheduler,
    CacheAffinityScheduler.name: CacheAffinityScheduler,
}


def make_scheduler(name: str) -> Scheduler:
    try:
        return SCHEDULERS[name]()
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r} (have: {', '.join(sorted(SCHEDULERS))})"
        ) from None
