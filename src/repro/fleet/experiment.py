"""Fleet experiment drivers: one cell, or many cells sharded.

A *cell* is one complete fleet simulation — N hosts on one shared
simulator, one controller, one fault plan, one arrival trace.  Cells are
fully independent (their own seeds, machines, and metric labels), so the
parallel unit of :func:`run_fleet` is the cell: cross-host failover needs
one virtual clock, so sharding *within* a cell would change semantics,
while sharding *across* cells is exact (the same serial == parallel
contract as every other :mod:`repro.parallel` driver).

``crash_hosts`` forces that many hosts to crash mid-horizon regardless
of the seeded ``host.crash`` draws — the deterministic "one injected
host crash" the fleet-smoke CI job asserts failover against.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.faults.chaos import (
    BOOT_RETRY,
    LAUNCH_RETRY,
    TAMPER_MIN_BYTES,
)
from repro.faults.plan import FaultPlan, FaultSpec

#: chip seed of the offline image-builder machine (snapshot contents are
#: chip-independent; one build serves every host of every cell)
FLEET_IMAGE_CHIP = b"repro-fleet-image-builder"

DEFAULT_HOSTS = 4
DEFAULT_CELLS = 2
DEFAULT_SCHEDULER = "cache-affinity"


def _build_snapshot(config):
    """Build (or fetch) the fleet image snapshot under a scratch metrics
    registry: the offline image build is a provider-side step, and its
    PSP/engine counters would otherwise land in whichever process first
    pays for the build — breaking the serial == parallel metrics
    contract for fleet runs."""
    from repro.obs.metrics import MetricsRegistry, use_registry
    from repro.serverless.snapshots import cached_snapshot

    with use_registry(MetricsRegistry()):
        return cached_snapshot(config, FLEET_IMAGE_CHIP)


def fleet_plan(seed: int, rate: float) -> FaultPlan:
    """The fleet chaos mix: the full single-host mix plus host-lifecycle
    and placement sites, all scaled by one overall ``rate`` knob."""
    return FaultPlan(
        seed=seed,
        specs=(
            FaultSpec(
                "psp.command",
                rate * 0.5,
                kinds=(("busy", 0.6), ("reset", 0.3), ("fatal", 0.1)),
            ),
            FaultSpec("psp.activate", rate * 0.2),
            FaultSpec(
                "image.stage",
                rate,
                kinds=(("bitflip", 0.7), ("truncate", 0.3)),
            ),
            FaultSpec(
                "mem.host_tamper",
                rate * 0.3,
                kinds=(("bitflip", 1.0),),
                min_bytes=TAMPER_MIN_BYTES,
            ),
            FaultSpec("serverless.cold_boot", rate * 0.5),
            FaultSpec(
                "serverless.restore",
                rate * 0.5,
                kinds=(("lookup", 0.5), ("reattest", 0.5)),
            ),
            # host-lifecycle sites: one draw per host at fleet start
            # (crash/wedge) or per beat (heartbeat loss)
            FaultSpec("host.crash", rate * 0.5),
            FaultSpec("host.psp_wedge", rate * 0.6),
            FaultSpec("host.heartbeat_loss", rate * 0.3),
            FaultSpec("fleet.placement", rate * 0.4),
        ),
    )


def run_fleet_cell(
    cell: int,
    seed: int,
    *,
    hosts: int = DEFAULT_HOSTS,
    scheduler: str = DEFAULT_SCHEDULER,
    fault_rate: float = 0.0,
    kernel: str = "aws",
    scale: float = 1.0 / 1024.0,
    functions: int = 6,
    horizon_s: float = 20.0,
    rate_per_s: float = 2.0,
    keepalive_ms: float = 4000.0,
    crash_hosts: int = 0,
    asid_capacity: Optional[int] = None,
    otrace: bool = False,
    verifier_window_ms: Optional[float] = None,
    verifier_workers: int = 1,
) -> dict[str, Any]:
    """One fleet cell at one fault rate; returns the JSON-safe row.

    With ``otrace=True`` the cell runs under an attached tracer and
    every invocation gets a deterministic trace ID (derived from seed,
    cell, and arrival index); the row grows an ``otrace`` block — the
    exported span stream plus per-invocation terminal records — that
    :mod:`repro.obs.otrace` and :mod:`repro.obs.alerts` consume.  All
    timing and every other row field is identical either way: tracing
    adds no virtual time.
    """
    from repro.core.config import VmConfig
    from repro.fleet.controller import FleetController
    from repro.fleet.hosts import HostState
    from repro.fleet.scheduler import make_scheduler
    from repro.formats.kernels import KERNEL_CONFIGS
    from repro.serverless.trace import synthesize_trace
    from repro.sim import Simulator

    config = VmConfig(kernel=KERNEL_CONFIGS[kernel], scale=scale, attest=False)
    snapshot = _build_snapshot(config)

    sim = Simulator()
    tracer = sim.trace() if otrace else None
    if tracer is not None:
        # host/cell labels ride on the exported stream so merged
        # multi-host (and multi-cell) span output stays unambiguous
        tracer.labels = {"cell": str(cell), "seed": str(seed)}
    # inject before any host exists so every instrumented path sees it
    plan = sim.inject(fleet_plan(seed, fault_rate))
    controller = FleetController(
        sim,
        config,
        make_scheduler(scheduler),
        cell=cell,
        hosts=hosts,
        snapshot=snapshot,
        keepalive_ms=keepalive_ms,
        launch_retry=LAUNCH_RETRY,
        boot_retry=BOOT_RETRY,
        crash_hosts=crash_hosts,
        otrace_seed=seed if otrace else None,
        verifier_window_ms=verifier_window_ms,
        verifier_workers=verifier_workers,
    )
    if asid_capacity is not None:
        for host in controller.hosts:
            host.machine.psp.asid_capacity = asid_capacity
    trace = synthesize_trace(
        num_functions=functions,
        horizon_ms=horizon_s * 1000.0,
        mean_rate_per_s=rate_per_s,
        seed=seed,
    )
    stats = controller.run(trace, horizon_ms=horizon_s * 1000.0)

    tampered = plan.stats.get("tampered_boots", 0)
    undetected = plan.stats.get("undetected_tampered_boots", 0)
    host_crashes = sum(1 for h in controller.hosts if h.crashed_at is not None)
    row = {
        "cell": cell,
        "seed": seed,
        "hosts": hosts,
        "scheduler": scheduler,
        "fault_rate": fault_rate,
        "sites": plan.sites,
        "invocations": len(stats.outcomes),
        "lost_invocations": stats.lost_invocations,
        "cold_starts": stats.cold_starts,
        "warm_starts": stats.warm_starts,
        "restored_starts": stats.restored_starts,
        "degraded_full_boots": stats.degraded_full_boots,
        "failed_invocations": stats.failed_invocations,
        "tamper_aborts": stats.tamper_aborts,
        "boot_retries": stats.boot_retries,
        "failovers": stats.failovers,
        "invocations_with_failover": stats.invocations_with_failover,
        "failover_successes": stats.failover_successes,
        "failover_success_rate": round(stats.failover_success_rate, 6),
        "placement_retries": stats.placement_retries,
        "host_crashes": host_crashes,
        "forced_crashes": controller.forced_crashes,
        "hosts_down": sum(
            1 for h in controller.hosts if h.state is HostState.DOWN
        ),
        "tampered_boots": tampered,
        "undetected_tampered_boots": undetected,
        "detection_rate": (
            1.0 if tampered == 0 else round(1.0 - undetected / tampered, 6)
        ),
        "p50_cold_start_ms": round(stats.cold_start_percentile(50), 3),
        "p99_cold_start_ms": round(stats.cold_start_percentile(99), 3),
        # raw samples so the parent pools exact fleet-level percentiles
        "cold_start_ms": [
            round(o.boot_ms, 6)
            for o in stats.outcomes
            if o.cold and not o.failed
        ],
        "start_delays_ms": [
            round(o.start_delay_ms, 6)
            for o in stats.outcomes
            if not o.failed
        ],
        "per_host": [
            {
                "host": h.host_id,
                "state": h.state.value,
                "boots": h.boots,
                "restores": h.restores,
                "max_psp_queue_depth": h.max_queue_depth,
            }
            for h in controller.hosts
        ],
        "faults": plan.summary(),
    }
    if tracer is not None:
        from repro.obs.otrace import derive_trace_id

        index_of = {
            derive_trace_id(seed, cell, i): i
            for i in range(len(stats.outcomes))
        }
        row["otrace"] = {
            "cell": cell,
            "seed": seed,
            "invocations": sorted(
                (
                    {
                        "trace_id": o.trace_id,
                        "index": index_of.get(o.trace_id, -1),
                        "function": o.function,
                        "arrival_ms": round(o.arrival_ms, 6),
                        "end_ms": round(o.end_ms, 6),
                        "host": o.host,
                        "cold": o.cold,
                        "restored": o.restored,
                        "degraded": o.degraded,
                        "boot_ms": round(o.boot_ms, 6),
                        "reattest_ms": round(o.reattest_ms, 6),
                        "start_delay_ms": round(o.start_delay_ms, 6),
                        "failovers": o.failovers,
                        "placement_retries": o.placement_retries,
                        "boot_retries": o.boot_retries,
                        "failed": o.failed,
                        "failure": o.failure,
                        "tamper_detected": o.tamper_detected,
                    }
                    for o in stats.outcomes
                ),
                key=lambda r: r["index"],
            ),
            "stream": tracer.export_spans(),
        }
    return row


def fleet_trace_doc(doc: dict[str, Any]) -> dict[str, Any]:
    """Assemble the otrace artifact from an ``otrace=True`` fleet doc.

    The artifact is what ``repro explain`` and ``repro alerts`` read:
    one record per cell (span stream + per-invocation terminals) under
    the versioned schema of :mod:`repro.obs.otrace`.
    """
    from repro.obs.otrace import TRACE_SCHEMA

    return {
        "schema": TRACE_SCHEMA,
        "seed": doc.get("seed"),
        "cells": [
            row["otrace"]
            for row in doc.get("cells_detail", [])
            if "otrace" in row
        ],
    }


def strip_otrace(doc: dict[str, Any]) -> dict[str, Any]:
    """Drop the (bulky) per-cell otrace blocks from a fleet doc, so the
    written fleet report stays byte-identical to an untraced run."""
    for row in doc.get("cells_detail", []):
        row.pop("otrace", None)
    return doc


def run_fleet(
    cells: int = DEFAULT_CELLS,
    *,
    seed: int = 0,
    workers: int = 1,
    hosts: int = DEFAULT_HOSTS,
    scheduler: str = DEFAULT_SCHEDULER,
    fault_rate: float = 0.0,
    kernel: str = "aws",
    scale: float = 1.0 / 1024.0,
    functions: int = 6,
    horizon_s: float = 20.0,
    rate_per_s: float = 2.0,
    keepalive_ms: float = 4000.0,
    crash_hosts: int = 0,
    otrace: bool = False,
    verifier_window_ms: Optional[float] = None,
    verifier_workers: int = 1,
) -> dict[str, Any]:
    """Run ``cells`` independent fleet cells, sharded; exact aggregate.

    Returns the ``fleet`` series document recorded in BENCH files: same
    rows and aggregates for every ``workers`` value (per-cell seeds come
    from :func:`repro.parallel.shard.unit_seed`).
    """
    from repro.analysis.stats import percentile
    from repro.obs.metrics import default_registry
    from repro.parallel.pool import run_sharded
    from repro.parallel.runners import fleet_unit, prime_fleet_caches

    payload = {
        "hosts": hosts,
        "scheduler": scheduler,
        "fault_rate": fault_rate,
        "kernel": kernel,
        "scale": scale,
        "functions": functions,
        "horizon_s": horizon_s,
        "rate_per_s": rate_per_s,
        "keepalive_ms": keepalive_ms,
        "crash_hosts": crash_hosts,
        "otrace": otrace,
        "verifier_window_ms": verifier_window_ms,
        "verifier_workers": verifier_workers,
    }
    run = run_sharded(
        fleet_unit,
        cells,
        seed=seed,
        workers=workers,
        unit_args=payload,
        prime=prime_fleet_caches,
    )
    default_registry().merge_snapshot(run.metrics)
    rows = run.results
    colds = [c for row in rows for c in row["cold_start_ms"]]
    delays = [d for row in rows for d in row["start_delays_ms"]]
    tampered = sum(r["tampered_boots"] for r in rows)
    undetected = sum(r["undetected_tampered_boots"] for r in rows)
    attempted = sum(r["invocations_with_failover"] for r in rows)
    succeeded = sum(r["failover_successes"] for r in rows)
    return {
        "experiment": "fleet",
        "seed": seed,
        "cells": cells,
        "workers": run.workers,
        "hosts": hosts,
        "scheduler": scheduler,
        "fault_rate": fault_rate,
        "crash_hosts": crash_hosts,
        "kernel": kernel,
        "scale": scale,
        "functions": functions,
        "horizon_s": horizon_s,
        "rate_per_s": rate_per_s,
        "keepalive_ms": keepalive_ms,
        "invocations": sum(r["invocations"] for r in rows),
        "lost_invocations": sum(r["lost_invocations"] for r in rows),
        "cold_starts": sum(r["cold_starts"] for r in rows),
        "warm_starts": sum(r["warm_starts"] for r in rows),
        "restored_starts": sum(r["restored_starts"] for r in rows),
        "degraded_full_boots": sum(r["degraded_full_boots"] for r in rows),
        "failed_invocations": sum(r["failed_invocations"] for r in rows),
        "tamper_aborts": sum(r["tamper_aborts"] for r in rows),
        "failovers": sum(r["failovers"] for r in rows),
        "invocations_with_failover": attempted,
        "failover_success_rate": (
            1.0 if attempted == 0 else round(succeeded / attempted, 6)
        ),
        "placement_retries": sum(r["placement_retries"] for r in rows),
        "host_crashes": sum(r["host_crashes"] for r in rows),
        "hosts_down": sum(r["hosts_down"] for r in rows),
        "tampered_boots": tampered,
        "undetected_tampered_boots": undetected,
        "detection_rate": (
            1.0 if tampered == 0 else round(1.0 - undetected / tampered, 6)
        ),
        "p50_cold_start_ms": round(percentile(colds, 50), 3) if colds else 0.0,
        "p99_cold_start_ms": round(percentile(colds, 99), 3) if colds else 0.0,
        "p50_start_delay_ms": (
            round(percentile(delays, 50), 3) if delays else 0.0
        ),
        "p99_start_delay_ms": (
            round(percentile(delays, 99), 3) if delays else 0.0
        ),
        "elapsed_s": round(run.elapsed_s, 3),
        "cells_detail": rows,
    }


def fleet_bench_summary(doc: dict[str, Any]) -> dict[str, Any]:
    """The ``fleet`` block recorded in BENCH_chaos.json: the aggregate
    gates plus per-cell rows with the bulky sample arrays dropped."""
    summary = {
        key: value for key, value in doc.items() if key != "cells_detail"
    }
    summary["cells_detail"] = [
        {
            k: v
            for k, v in row.items()
            if k not in ("cold_start_ms", "start_delays_ms", "per_host", "otrace")
        }
        for row in doc["cells_detail"]
    ]
    return summary
