"""Multi-host fleet layer: hosts, placement, health, and failover.

See docs/ROBUSTNESS.md (fleet section) for the topology, fault sites,
failover semantics, and SLO gates.
"""

from repro.fleet.controller import (
    DEFAULT_FAILOVER,
    FailoverError,
    FleetController,
    FleetOutcome,
    FleetStats,
)
from repro.fleet.experiment import (
    fleet_bench_summary,
    fleet_plan,
    run_fleet,
    run_fleet_cell,
)
from repro.fleet.hosts import HostCrash, HostState, SimHost
from repro.fleet.scheduler import (
    SCHEDULERS,
    CacheAffinityScheduler,
    LeastLoadedScheduler,
    NoEligibleHostError,
    PlacementError,
    RoundRobinScheduler,
    Scheduler,
    make_scheduler,
)

__all__ = [
    "DEFAULT_FAILOVER",
    "FailoverError",
    "FleetController",
    "FleetOutcome",
    "FleetStats",
    "HostCrash",
    "HostState",
    "SimHost",
    "SCHEDULERS",
    "CacheAffinityScheduler",
    "LeastLoadedScheduler",
    "NoEligibleHostError",
    "PlacementError",
    "RoundRobinScheduler",
    "Scheduler",
    "make_scheduler",
    "fleet_bench_summary",
    "fleet_plan",
    "run_fleet",
    "run_fleet_cell",
]
