"""The fleet controller: lifecycle, placement, health, and failover.

The policy half of the host-agent split (see
:mod:`repro.fleet.hosts`).  One controller owns N :class:`SimHost`\\ s on
a shared simulator and:

- exposes the supervisord-style lifecycle API — :meth:`create_host`,
  :meth:`destroy_host`, :meth:`list_hosts`, :meth:`drain_host` /
  :meth:`resume_host`;
- places every invocation through a pluggable
  :class:`~repro.fleet.scheduler.Scheduler`, with the
  ``fleet.placement`` fault site on the placement RPC;
- runs the health model: per-host heartbeat processes (the
  ``host.heartbeat_loss`` site drops beats) and a monitor that fences
  hosts on heartbeat timeout, drains hosts whose PSP queue runs deep
  (the ``host.psp_wedge`` site), and samples the per-host
  ``fleet.psp_queue_depth`` SLO gauge;
- fails over: work in flight on a crashed or fenced host is interrupted
  with :class:`~repro.fleet.hosts.HostCrash` and re-placed on a
  survivor under a :class:`~repro.faults.retry.RetryPolicy` (attempt-
  and ``max_elapsed_ms``-bounded), degrading to a full measured boot
  when the survivor's store lacks the snapshot ("the snapshot's home
  host is gone");
- re-places *warm* work on graceful drains by pre-warming survivors
  through the restore path.  Warm state on a *crashed* host is simply
  lost: an SEV guest's memory is (key, address)-bound to its chip
  (§7.1), so live state cannot move — only the content-addressed
  snapshot can, and the successor must re-attest.

Every invocation gets a terminal :class:`FleetOutcome` — success,
degraded success, tamper-abort, or exhausted failover — which is the
"zero lost invocations" contract the chaos gate enforces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Generator, Optional, Sequence

from repro.analysis.stats import percentile
from repro.faults.retry import RetryPolicy
from repro.fleet.hosts import HostCrash, HostState, SimHost
from repro.fleet.scheduler import (
    NoEligibleHostError,
    PlacementError,
    Scheduler,
)
from repro.guest.bootverifier import VerificationError
from repro.obs import metrics
from repro.obs.otrace import TraceContext, derive_trace_id, propagate
from repro.serverless.platform import ColdBootError
from repro.serverless.snapshots import SnapshotError, VmSnapshot
from repro.serverless.trace import InvocationTrace
from repro.sev.api import SevLaunchError
from repro.sim.engine import Interrupt, Simulator


class FailoverError(Exception):
    """An attempt died with its host; retryable under the failover policy."""


class TamperAbort(Exception):
    """The boot verifier refused a tampered boot (detection success)."""


#: default failover policy: bounded attempts *and* a virtual-time budget,
#: so a crash storm cannot stall one invocation past its SLO
DEFAULT_FAILOVER = RetryPolicy(
    max_attempts=5,
    base_delay_ms=5.0,
    multiplier=2.0,
    max_delay_ms=80.0,
    max_elapsed_ms=30_000.0,
)


@dataclass
class FleetOutcome:
    """Terminal record of one invocation."""

    function: str
    arrival_ms: float
    host: str = ""
    cold: bool = False
    restored: bool = False
    #: a repeat cold start that had to full-boot because the placed
    #: host's store lacked the snapshot (home host gone / not yet warm)
    degraded: bool = False
    boot_ms: float = 0.0
    reattest_ms: float = 0.0
    start_delay_ms: float = 0.0
    end_ms: float = 0.0
    failovers: int = 0
    placement_retries: int = 0
    boot_retries: int = 0
    failed: bool = False
    failure: str = ""
    tamper_detected: bool = False
    #: deterministic invocation trace ID (only set when the controller
    #: runs with ``otrace_seed`` and a tracer attached)
    trace_id: str = ""


@dataclass
class FleetStats:
    """Aggregated fleet run results."""

    expected: int
    outcomes: list[FleetOutcome] = field(default_factory=list)

    @property
    def lost_invocations(self) -> int:
        """Arrivals that never got a terminal outcome (must be 0)."""
        return self.expected - len(self.outcomes)

    @property
    def cold_starts(self) -> int:
        return sum(1 for o in self.outcomes if o.cold)

    @property
    def warm_starts(self) -> int:
        return sum(1 for o in self.outcomes if not o.cold and not o.failed)

    @property
    def restored_starts(self) -> int:
        return sum(1 for o in self.outcomes if o.restored)

    @property
    def degraded_full_boots(self) -> int:
        return sum(1 for o in self.outcomes if o.degraded)

    @property
    def failed_invocations(self) -> int:
        return sum(1 for o in self.outcomes if o.failed)

    @property
    def tamper_aborts(self) -> int:
        return sum(1 for o in self.outcomes if o.tamper_detected)

    @property
    def failovers(self) -> int:
        return sum(o.failovers for o in self.outcomes)

    @property
    def invocations_with_failover(self) -> int:
        return sum(1 for o in self.outcomes if o.failovers > 0)

    @property
    def failover_successes(self) -> int:
        """Failed-over invocations that reached a *good* terminal state.

        A tamper-abort after failover counts as success: the failover
        machinery delivered the work to a live host; the verifier then
        did its job.  Only exhausted/raised failover is a failure.
        """
        return sum(
            1
            for o in self.outcomes
            if o.failovers > 0 and (not o.failed or o.tamper_detected)
        )

    @property
    def failover_success_rate(self) -> float:
        attempted = self.invocations_with_failover
        return 1.0 if attempted == 0 else self.failover_successes / attempted

    @property
    def placement_retries(self) -> int:
        return sum(o.placement_retries for o in self.outcomes)

    @property
    def boot_retries(self) -> int:
        return sum(o.boot_retries for o in self.outcomes)

    def cold_start_percentile(self, q: float) -> float:
        """Fleet cold-start SLO percentile over full boots *and* restores."""
        samples = [o.boot_ms for o in self.outcomes if o.cold and not o.failed]
        return percentile(samples, q) if samples else 0.0

    def start_delay_percentile(self, q: float) -> float:
        samples = [o.start_delay_ms for o in self.outcomes if not o.failed]
        return percentile(samples, q) if samples else 0.0


class FleetController:
    """N hosts, one scheduler, one health model, one failover policy."""

    def __init__(
        self,
        sim: Simulator,
        config,
        scheduler: Scheduler,
        *,
        cell: int = 0,
        hosts: int = 4,
        snapshot: Optional[VmSnapshot] = None,
        seed_snapshot_hosts: int = 1,
        keepalive_ms: float = 4000.0,
        warm_start_ms: float = 1.0,
        launch_retry: Optional[RetryPolicy] = None,
        boot_retry: Optional[RetryPolicy] = None,
        failover: RetryPolicy = DEFAULT_FAILOVER,
        placement_rpc_ms: float = 0.25,
        heartbeat_ms: float = 250.0,
        down_after_ms: float = 900.0,
        monitor_ms: float = 250.0,
        drain_queue_depth: int = 4,
        resume_queue_depth: int = 1,
        crash_hosts: int = 0,
        tenant: str = "fleet",
        otrace_seed: Optional[int] = None,
        verifier_window_ms: Optional[float] = None,
        verifier_workers: int = 1,
        verifier_max_batch: int = 32,
    ):
        if hosts < 1:
            raise ValueError("a fleet needs at least one host")
        self.sim = sim
        self.config = config
        self.scheduler = scheduler
        self.cell = cell
        self.keepalive_ms = keepalive_ms
        self.warm_start_ms = warm_start_ms
        self.launch_retry = launch_retry
        self.boot_retry = boot_retry
        self.failover = failover
        self.placement_rpc_ms = placement_rpc_ms
        self.heartbeat_ms = heartbeat_ms
        self.down_after_ms = down_after_ms
        self.monitor_ms = monitor_ms
        self.drain_queue_depth = drain_queue_depth
        self.resume_queue_depth = resume_queue_depth
        self.crash_hosts = crash_hosts
        self.tenant = tenant
        #: when set (and a tracer is attached), every invocation gets a
        #: deterministic trace ID derived from (seed, cell, arrival
        #: index) and its whole frame runs under that trace context
        self.otrace_seed = otrace_seed
        self.hosts: list[SimHost] = []
        self.stats = FleetStats(expected=0)
        self.forced_crashes = 0
        self._snapshot = snapshot
        self._digest = snapshot.image_digest if snapshot is not None else None
        self._snapshotted: set[str] = set()
        self._running = False
        self._horizon_ms = 0.0
        #: cell-shared guest-owner verification service (opt-in): every
        #: host's re-attestation chain proof queues here, contended like
        #: the PSP, and amortized across the whole cell's chains/tenants
        self.verifier = None
        self._verifier_opts = (
            (verifier_window_ms, verifier_workers, verifier_max_batch)
            if verifier_window_ms is not None
            else None
        )
        for _ in range(hosts):
            self.create_host()
        if self._verifier_opts is not None:
            from repro.sev.verifier import VerifierService

            window, workers, max_batch = self._verifier_opts
            # One trusted AMD root for the whole fleet: ARK/ASK are
            # product-line keys, only the VCEK is chip-unique.
            self.verifier = VerifierService(
                sim,
                self.hosts[0].machine.psp.key_hierarchy.ark_key.public,
                workers=workers,
                batch_window_ms=window,
                max_batch=max_batch,
                label=f"c{cell}",
            )
        # Seed the image snapshot onto the first hosts' stores — the
        # provider's pre-publication.  Everyone else earns it after
        # their first clean full boot.
        if snapshot is not None:
            for host in self.hosts[: max(0, seed_snapshot_hosts)]:
                host.store.put(snapshot)

    # -- host-agent lifecycle API -------------------------------------------

    def create_host(self) -> SimHost:
        """Provision one more host (index = position, forever)."""
        host = SimHost(
            self.sim,
            len(self.hosts),
            self.config,
            cell=self.cell,
            keepalive_ms=self.keepalive_ms,
            warm_start_ms=self.warm_start_ms,
            launch_retry=self.launch_retry,
        )
        self.hosts.append(host)
        if self._running:
            host.last_heartbeat = self.sim.now
            self._start_heartbeat(host)
        return host

    def destroy_host(self, host_id: str) -> None:
        """Immediate decommission: in-flight work fails over."""
        host = self._host(host_id)
        host.crash(reason="destroyed")
        host.state = HostState.DOWN

    def list_hosts(self) -> list[dict]:
        """The control-socket view: one status dict per host."""
        return [
            {
                "host": h.host_id,
                "state": h.state.value,
                "alive": h.alive,
                "warm": h.warm_count,
                "inflight": h.inflight_count,
                "psp_queue_depth": h.psp_queue_depth,
                "boots": h.boots,
                "restores": h.restores,
            }
            for h in self.hosts
        ]

    def drain_host(self, host_id: str, reason: str = "manual") -> None:
        """Stop placing onto the host; in-flight work finishes; warm
        work is re-placed onto survivors through the restore path."""
        host = self._host(host_id)
        if host.state is not HostState.RUNNING:
            return
        host.state = HostState.DRAINING
        host.auto_drained = reason != "manual"
        metrics.default_registry().counter("fleet.drains", reason=reason).inc()
        self._replace_warm(host)

    def resume_host(self, host_id: str) -> None:
        host = self._host(host_id)
        if host.state is HostState.DRAINING and host.alive:
            host.state = HostState.RUNNING
            host.auto_drained = False
            metrics.default_registry().counter("fleet.undrains").inc()

    def _host(self, host_id: str) -> SimHost:
        for host in self.hosts:
            if host.host_id == host_id:
                return host
        raise KeyError(f"no such host: {host_id}")

    # -- the run -------------------------------------------------------------

    def run(
        self, trace: InvocationTrace, *, horizon_ms: Optional[float] = None
    ) -> FleetStats:
        """Drive the whole trace to completion; returns the statistics."""
        invocations = list(trace)
        self.stats = FleetStats(expected=len(invocations))
        self._horizon_ms = (
            horizon_ms
            if horizon_ms is not None
            else (max((i.arrival_ms for i in invocations), default=0.0) + 1000.0)
        )
        now = self.sim.now
        self.sim.schedule_batch(
            (max(0.0, inv.arrival_ms - now), partial(self._spawn, inv, index), None)
            for index, inv in enumerate(invocations)
        )
        self._running = True
        self._arm_host_faults()
        for host in self.hosts:
            host.last_heartbeat = self.sim.now
            self._start_heartbeat(host)
        self.sim.process(self._monitor(), name="fleet-monitor")
        self.sim.run()
        self.stats.outcomes.sort(key=lambda o: (o.arrival_ms, o.function))
        return self.stats

    @property
    def _finished(self) -> bool:
        return len(self.stats.outcomes) >= self.stats.expected

    # -- fault arming --------------------------------------------------------

    def _arm_host_faults(self) -> None:
        """One Bernoulli draw per host per site at start, with the fire
        time and (for wedges) duration derived from the event salt.

        Crashes are capped at ``len(hosts) - 1`` so at least one host
        survives — a fleet with zero capacity has no failover story to
        measure, only a trivial all-fail one.  ``crash_hosts`` forces
        the first N hosts to crash regardless of draws (the smoke tests'
        "one injected host crash").  Draws still happen for every host
        so the per-site streams stay aligned across configs.
        """
        plan = self.sim.faults
        horizon = self._horizon_ms
        crashes = 0
        max_crashes = len(self.hosts) - 1
        for host in self.hosts:
            crash_event = plan.draw("host.crash") if plan is not None else None
            forced = host.index < self.crash_hosts
            if (forced or crash_event is not None) and crashes < max_crashes:
                if crash_event is not None:
                    frac = 0.15 + 0.55 * ((crash_event.salt & 0xFFFF) / 0xFFFF)
                else:
                    # forced crashes land mid-horizon, staggered
                    frac = 0.35 + 0.08 * host.index
                self.sim.process(
                    self._crash_later(host, horizon * frac),
                    name=f"chaos-crash-{host.host_id}",
                )
                crashes += 1
                if forced and crash_event is None:
                    self.forced_crashes += 1
            wedge_event = (
                plan.draw("host.psp_wedge") if plan is not None else None
            )
            if wedge_event is not None:
                frac = 0.10 + 0.60 * ((wedge_event.salt & 0xFFFF) / 0xFFFF)
                duration = 300.0 + (wedge_event.salt >> 16) % 1200
                self.sim.process(
                    self._wedge_later(host, horizon * frac, duration),
                    name=f"chaos-wedge-{host.host_id}",
                )

    def _crash_later(self, host: SimHost, at_ms: float) -> Generator:
        yield self.sim.timeout(at_ms)
        if not self._finished and host.alive:
            host.crash()

    def _wedge_later(
        self, host: SimHost, at_ms: float, duration_ms: float
    ) -> Generator:
        yield self.sim.timeout(at_ms)
        if not self._finished and host.alive:
            yield from host.wedge(duration_ms)

    # -- health model --------------------------------------------------------

    def _start_heartbeat(self, host: SimHost) -> None:
        self.sim.process(
            self._heartbeat(host), name=f"heartbeat-{host.host_id}"
        )

    def _heartbeat(self, host: SimHost) -> Generator:
        """The host agent's liveness beacon (ground truth side)."""
        while host.alive and not self._finished:
            yield self.sim.timeout(self.heartbeat_ms)
            if not host.alive:
                break
            plan = self.sim.faults
            if plan is not None and plan.draw("host.heartbeat_loss") is not None:
                continue  # this beat got dropped on the wire
            host.last_heartbeat = self.sim.now

    def _monitor(self) -> Generator:
        """The controller's health loop (view side): sample SLO gauges,
        fence silent hosts, drain wedged ones, resume the recovered."""
        registry = metrics.default_registry()
        while not self._finished:
            yield self.sim.timeout(self.monitor_ms)
            for host in self.hosts:
                if host.state is HostState.DOWN:
                    continue
                depth = host.psp_queue_depth
                host.max_queue_depth = max(host.max_queue_depth, depth)
                registry.gauge(
                    "fleet.psp_queue_depth", host=host.host_id
                ).set(depth)
                if self.sim.now - host.last_heartbeat > self.down_after_ms:
                    self._fence(host, reason="heartbeat-timeout")
                elif (
                    host.state is HostState.RUNNING
                    and depth >= self.drain_queue_depth
                ):
                    self.drain_host(host.host_id, reason="psp-queue")
                elif (
                    host.state is HostState.DRAINING
                    and host.auto_drained
                    and depth <= self.resume_queue_depth
                ):
                    self.resume_host(host.host_id)

    def _fence(self, host: SimHost, reason: str) -> None:
        """Declare a silent host down and re-place its work.

        If the host truly crashed its in-flight work is already failing
        over; if it is alive but partitioned (consecutive heartbeat
        losses), fencing kills its work *from the controller's side* so
        exactly one copy runs on a survivor.  The last live host is
        never fenced — losing it converts a liveness blip into a total
        outage with nothing left to fail over to.
        """
        registry = metrics.default_registry()
        others_alive = any(
            h.alive for h in self.hosts if h is not host and h.state is not HostState.DOWN
        )
        if host.alive and not others_alive:
            registry.counter("fleet.fence_suppressed").inc()
            return
        if host.crashed_at is not None:
            registry.histogram("fleet.detect_ms").observe(
                self.sim.now - host.crashed_at
            )
        host.crash(reason="fenced")
        host.state = HostState.DOWN
        registry.counter("fleet.host_down", reason=reason).inc()
        self._replace_warm(host)

    # -- warm-work re-placement ---------------------------------------------

    def _replace_warm(self, host: SimHost) -> None:
        """Re-place a drained host's warm work by pre-warming survivors.

        Warm SEV state cannot migrate (ciphertext is chip-bound, §7.1);
        what moves is the content-addressed snapshot — the survivor
        restores and re-attests, then parks the VM in its pool.
        """
        registry = metrics.default_registry()
        functions = host.warm_functions()
        host._pool.clear()
        for function in functions:
            survivors = [
                h
                for h in self.hosts
                if h is not host and h.alive and h.state is HostState.RUNNING
            ]
            if not survivors or self._snapshot is None:
                registry.counter("fleet.prewarm_skipped").inc()
                continue
            target = min(
                survivors, key=lambda h: (h.psp_queue_depth, h.index)
            )
            ref: dict = {}
            ref["proc"] = self.sim.process(
                self._prewarm(target, function, ref),
                name=f"prewarm-{function}@{target.host_id}",
            )
            registry.counter("fleet.warm_replaced").inc()

    def _prewarm(self, target: SimHost, function: str, ref: dict) -> Generator:
        assert self._snapshot is not None and self._digest is not None
        proc = ref["proc"]
        target.register(proc)
        try:
            if self._digest not in target.store:
                # ship the snapshot over the network first
                yield self.sim.timeout(
                    target.machine.cost.sample(
                        target.machine.cost.copy_ms(
                            self._snapshot.resident_bytes
                        )
                    )
                )
                target.store.put(self._snapshot)
            owner = target.owner(self._snapshot.launch_digest, b"fleet-secret")
            yield from target.restore_snapshot(
                self._digest, owner, tenant=self.tenant, verifier=self.verifier
            )
        except (Interrupt, SnapshotError, SevLaunchError):
            # best-effort: a failed pre-warm just means a cold start later
            metrics.default_registry().counter("fleet.prewarm_failed").inc()
            return
        finally:
            target.unregister(proc)
        target.put_warm(function)

    # -- placement + invocation ---------------------------------------------

    def _spawn(self, inv, index: int, _event) -> None:
        ref: dict = {}
        gen = self._invoke(inv, ref)
        tracer = self.sim.tracer
        if tracer is not None and self.otrace_seed is not None:
            ctx = TraceContext(
                trace_id=derive_trace_id(self.otrace_seed, self.cell, index),
                function=inv.function,
                cell=self.cell,
                index=index,
                arrival_ms=inv.arrival_ms,
            )
            ref["ctx"] = ctx
            gen = propagate(tracer, ctx, gen)
            # stamp the process-creation span too
            prev = tracer.context
            tracer.context = ctx
            try:
                ref["proc"] = self.sim.process(gen, name=f"invoke-{inv.function}")
            finally:
                tracer.context = prev
        else:
            ref["proc"] = self.sim.process(gen, name=f"invoke-{inv.function}")

    def _eligible_hosts(self) -> list[SimHost]:
        eligible = [h for h in self.hosts if h.state is HostState.RUNNING]
        if not eligible:
            # degraded mode: a draining host beats no host
            eligible = [h for h in self.hosts if h.state is HostState.DRAINING]
        return eligible

    def _place(self, function: str, state: dict) -> Generator:
        """One placement RPC; process value: the chosen live host."""
        registry = metrics.default_registry()
        tracer = self.sim.tracer
        span = (
            tracer.begin(f"place:{function}", "fleet.placement", "fleet.placement")
            if tracer is not None
            else None
        )
        try:
            host = yield from self._place_inner(function, state, registry)
        except BaseException as exc:
            if span is not None:
                tracer.end(span, outcome=type(exc).__name__)
            raise
        if span is not None:
            tracer.end(span, host=host.host_id, scheduler=type(self.scheduler).__name__)
        return host

    def _place_inner(self, function: str, state: dict, registry) -> Generator:
        yield self.sim.timeout(self.placement_rpc_ms)
        plan = self.sim.faults
        if plan is not None and plan.draw("fleet.placement") is not None:
            state["placement_retries"] += 1
            registry.counter("fleet.placement_faults").inc()
            raise PlacementError("placement RPC failed (injected)")
        eligible = self._eligible_hosts()
        if not eligible:
            state["placement_retries"] += 1
            raise NoEligibleHostError("no eligible hosts in the fleet")
        host = self.scheduler.choose(eligible, function, self._digest)
        if not host.alive:
            # Stale view: the controller has not noticed the crash yet,
            # but the dispatch RPC to the corpse fails immediately —
            # and connection-refused is itself a health signal, so the
            # host is fenced now rather than at the heartbeat timeout
            # (otherwise every retry would re-pick the quiet, affine
            # corpse until the failover budget ran out).
            state["placement_retries"] += 1
            registry.counter("fleet.stale_placements").inc()
            self._fence(host, reason="rpc-refused")
            raise PlacementError(f"{host.host_id} unreachable")
        return host

    def _run_on(self, host: SimHost, inv, state: dict) -> Generator:
        """Serve one invocation on a chosen host (may be interrupted)."""
        registry = metrics.default_registry()
        tracer = self.sim.tracer
        state["host"] = host.host_id
        warm = host.take_warm(inv.function)
        if warm:
            yield self.sim.timeout(self.warm_start_ms)
            start_kind = "warm"
        else:
            state["cold"] = True
            start = self.sim.now
            restored = False
            can_restore = (
                self._snapshot is not None
                and inv.function in self._snapshotted
                and self._digest in host.store
            )
            if can_restore:
                owner = host.owner(
                    self._snapshot.launch_digest, b"fleet-secret"
                )
                try:
                    outcome = yield from host.restore_snapshot(
                        self._digest,
                        owner,
                        tenant=self.tenant,
                        verifier=self.verifier,
                    )
                except (SnapshotError, SevLaunchError) as exc:
                    registry.counter(
                        "fleet.restore_fallbacks",
                        reason=type(exc).__name__,
                    ).inc()
                else:
                    restored = True
                    state["restored"] = True
                    state["reattest_ms"] = outcome.reattest_ms
            if not restored:
                if (
                    self._snapshot is not None
                    and inv.function in self._snapshotted
                    and not can_restore
                ):
                    # the snapshot's home host is gone: degrade to a
                    # full measured boot instead of failing the arrival
                    state["degraded"] = True
                    registry.counter("fleet.degraded_full_boots").inc()
                result = yield from self._boot_full(host, state)
                if result.aborted:
                    raise TamperAbort(result.abort_reason or "boot aborted")
                state["boot_retries"] += result.launch_retries
                if self._snapshot is not None and self._digest not in host.store:
                    # a clean full boot of the image makes this host a
                    # restore (and cache-affinity) target from now on
                    host.store.put(self._snapshot)
            state["boot_ms"] = self.sim.now - start
            ctx = tracer.context if tracer is not None else None
            hist = registry.histogram("fleet.cold_start_ms")
            if ctx is not None:
                # exemplar: a fat-tailed bucket links straight to an
                # explainable invocation (`repro explain <trace-id>`)
                hist.observe_ex(state["boot_ms"], ctx.trace_id)
            else:
                hist.observe(state["boot_ms"])
            self._snapshotted.add(inv.function)
            start_kind = "restored" if restored else "cold"
        registry.counter("fleet.invocations", start=start_kind).inc()
        state["start_delay_ms"] = self.sim.now - inv.arrival_ms
        if tracer is not None:
            espan = tracer.begin(
                f"exec:{inv.function}",
                "fleet.exec",
                "fleet.exec",
                host=host.host_id,
                start=start_kind,
            )
            try:
                yield self.sim.timeout(inv.exec_ms)
            finally:
                tracer.end(espan)
        else:
            yield self.sim.timeout(inv.exec_ms)
        host.put_warm(inv.function)

    def _boot_full(self, host: SimHost, state: dict):
        def on_retry(_exc, _attempt):
            state["boot_retries"] += 1

        if self.boot_retry is not None:
            return self.boot_retry.run(
                self.sim,
                host.boot_cold,
                label="fleet.cold_boot",
                retryable=self._boot_retryable,
                on_retry=on_retry,
            )
        return host.boot_cold()

    @staticmethod
    def _boot_retryable(exc: BaseException) -> bool:
        from repro.faults.retry import sev_retryable

        return isinstance(exc, ColdBootError) or sev_retryable(exc)

    def _invoke(self, inv, ref: dict) -> Generator:
        registry = metrics.default_registry()
        state = {
            "host": "",
            "cold": False,
            "restored": False,
            "degraded": False,
            "boot_ms": 0.0,
            "reattest_ms": 0.0,
            "start_delay_ms": 0.0,
            "failovers": 0,
            "placement_retries": 0,
            "boot_retries": 0,
        }

        def attempt() -> Generator:
            # a fresh attempt starts from a clean per-attempt slate but
            # keeps the cross-attempt counters
            state.update(
                cold=False,
                restored=False,
                degraded=False,
                boot_ms=0.0,
                reattest_ms=0.0,
            )
            tracer = self.sim.tracer
            span = None
            if tracer is not None:
                state["attempts"] = state.get("attempts", 0) + 1
                span = tracer.begin(
                    f"attempt:{inv.function}",
                    "fleet.attempt",
                    "fleet.attempts",
                    attempt=state["attempts"],
                )
            try:
                host = yield from self._place(inv.function, state)
                if span is not None:
                    span.args["host"] = host.host_id
                proc = ref["proc"]
                host.register(proc)
                try:
                    yield from self._run_on(host, inv, state)
                except Interrupt as intr:
                    cause = intr.cause
                    if isinstance(cause, HostCrash):
                        state["failovers"] += 1
                        registry.counter("fleet.failovers").inc()
                        if span is not None:
                            span.args["crashed_host"] = cause.host_id
                        raise FailoverError(
                            f"{inv.function} lost to {cause.host_id} "
                            f"({cause.reason})"
                        ) from intr
                    raise
                finally:
                    host.unregister(proc)
            except BaseException as exc:
                if span is not None:
                    outcome = (
                        "failover"
                        if isinstance(exc, FailoverError)
                        else type(exc).__name__
                    )
                    tracer.end(span, outcome=outcome)
                raise
            if span is not None:
                tracer.end(span, outcome="ok")

        failed = False
        failure = ""
        tamper = False
        try:
            yield from self.failover.run(
                self.sim,
                attempt,
                label="fleet.failover",
                retryable=lambda e: isinstance(
                    e, (FailoverError, PlacementError)
                ),
            )
        except TamperAbort as exc:
            failed = True
            failure = str(exc)
            tamper = True
        except (
            FailoverError,
            PlacementError,
            ColdBootError,
            SevLaunchError,
            VerificationError,
        ) as exc:
            failed = True
            failure = str(exc)
            if isinstance(exc, FailoverError):
                registry.counter("fleet.failover_exhausted").inc()
        finally:
            registry.histogram("fleet.placement_retries").observe(
                state["placement_retries"]
            )
            ctx = ref.get("ctx")
            tracer = self.sim.tracer
            if tracer is not None and ctx is not None:
                # the root span of the invocation's causal chain:
                # arrival to terminal outcome, on its own track
                status = (
                    "tamper-abort"
                    if tamper
                    else ("failed" if failed else "ok")
                )
                tracer.complete(
                    f"invoke:{inv.function}",
                    "fleet.invocation",
                    "fleet.invocations",
                    inv.arrival_ms,
                    self.sim.now,
                    status=status,
                    host=state["host"],
                    failovers=state["failovers"],
                    cold=state["cold"],
                    restored=state["restored"],
                    degraded=state["degraded"],
                )
            self.stats.outcomes.append(
                FleetOutcome(
                    function=inv.function,
                    arrival_ms=inv.arrival_ms,
                    trace_id=ctx.trace_id if ctx is not None else "",
                    host=state["host"],
                    cold=state["cold"],
                    restored=state["restored"],
                    degraded=state["degraded"],
                    boot_ms=state["boot_ms"],
                    reattest_ms=state["reattest_ms"],
                    start_delay_ms=state["start_delay_ms"],
                    end_ms=self.sim.now,
                    failovers=state["failovers"],
                    placement_retries=state["placement_retries"],
                    boot_retries=state["boot_retries"],
                    failed=failed,
                    failure=failure,
                    tamper_detected=tamper,
                )
            )
