"""Command-line interface.

Mirrors the tooling the paper's artifact ships as shell scripts:

- ``boot`` — cold-boot one microVM on a chosen stack and print the phase
  breakdown (the per-run view behind Figs. 9-11).
- ``digest`` — the §4.2 expected-measurement tool: print the launch
  digest a guest owner should demand for a VM configuration.
- ``kernels`` — the Fig. 8 kernel table for the synthetic builders.
- ``sweep`` — the Fig. 12 concurrency sweep.
- ``bench`` — the Fig. 9 boot fleet, sharded across ``--workers``
  processes with byte-identical results at any worker count.

Usage::

    python -m repro.cli boot --kernel aws --stack severifast
    python -m repro.cli digest --kernel aws
    python -m repro.cli kernels
    python -m repro.cli sweep --max-vms 20
    python -m repro.cli bench --boots 100 --workers 4
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis.render import format_table
from repro.analysis.stats import linear_fit
from repro.common import human_size
from repro.core.config import KernelFormat, VmConfig
from repro.core.digest_tool import compute_expected_digest
from repro.core.severifast import SEVeriFast
from repro.formats.kernels import DEFAULT_SCALE, KERNEL_CONFIGS, build_kernel
from repro.guest.bootverifier import verifier_binary


def _add_kernel_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--kernel",
        choices=sorted(KERNEL_CONFIGS),
        default="aws",
        help="guest kernel configuration (Fig. 8)",
    )


def _config_from_args(args: argparse.Namespace) -> VmConfig:
    if getattr(args, "config", None):
        from repro.vmm.fcconfig import load_vm_config

        return load_vm_config(args.config, scale=args.scale)
    return VmConfig(
        kernel=KERNEL_CONFIGS[args.kernel],
        kernel_format=KernelFormat(args.format),
        scale=args.scale,
        attest=not getattr(args, "no_attest", False),
    )


def _cmd_boot(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    sf = SEVeriFast()
    if args.stack == "severifast":
        result = sf.cold_boot(config)
    elif args.stack == "stock":
        result = sf.cold_boot_stock(config)
    elif args.stack == "naive":
        result = sf.cold_boot_naive(config)
    else:
        result, _extras = sf.cold_boot_qemu(config)

    rows = [[phase, f"{ms:.2f}"] for phase, ms in result.timeline.breakdown().items()]
    rows.append(["boot time", f"{result.boot_ms:.2f}"])
    if result.attested:
        rows.append(["total (with attestation)", f"{result.total_ms:.2f}"])
    print(
        format_table(
            ["phase", "ms"],
            rows,
            title=f"{args.stack} boot of the {args.kernel} kernel",
        )
    )
    print(f"init executed: {result.init_executed}  attested: {result.attested}")
    if result.launch_digest:
        print(f"launch digest: {result.launch_digest.hex()}")
    return 0


def _cmd_digest(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    sf = SEVeriFast()
    prepared = sf.prepare(config)
    digest = compute_expected_digest(config, verifier_binary(), prepared.hashes)
    print(f"kernel hash : {prepared.hashes.kernel_hash.hex()}")
    print(f"initrd hash : {prepared.hashes.initrd_hash.hex()}")
    print(f"launch digest (expected): {digest.hex()}")
    return 0


def _cmd_kernels(_args: argparse.Namespace) -> int:
    rows = []
    for name, config in KERNEL_CONFIGS.items():
        artifacts = build_kernel(config, DEFAULT_SCALE)
        rows.append(
            [
                name,
                human_size(config.vmlinux_size),
                human_size(config.bzimage_size),
                f"{len(artifacts.vmlinux.data) / len(artifacts.bzimage.data):.2f}",
                config.description,
            ]
        )
    print(
        format_table(
            ["config", "vmlinux", "bzImage", "built ratio", "description"],
            rows,
            title="Guest kernels (Fig. 8)",
        )
    )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    sf = SEVeriFast()
    config = VmConfig(
        kernel=KERNEL_CONFIGS[args.kernel], scale=args.scale, attest=False
    )
    counts = [n for n in (1, 2, 5, 10, 20, 30, 40, 50) if n <= args.max_vms]
    rows = []
    means = []
    for count in counts:
        results = sf.concurrent_boots(config, count=count, sev=True)
        mean = sum(r.boot_ms for r in results) / count
        means.append(mean)
        rows.append([count, f"{mean:.1f}"])
    print(
        format_table(
            ["concurrent VMs", "mean SEV boot (ms)"],
            rows,
            title="Concurrent launches (Fig. 12)",
        )
    )
    if len(counts) >= 2:
        slope, _intercept, r2 = linear_fit(counts, means)
        print(f"trend: {slope:.1f} ms per extra VM (r^2 = {r2:.4f})")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """Boot a sharded fleet of independent guests; print the rates.

    The workhorse behind the Fig. 9 wall-clock numbers: ``--workers N``
    shards the fleet across processes via :mod:`repro.parallel` without
    changing a single output byte (same digests, same virtual-time boot
    latencies, any worker count).
    """
    import json
    import pathlib

    from repro.analysis.stats import percentile
    from repro.parallel.runners import run_boot_fleet

    run = run_boot_fleet(
        args.boots,
        seed=args.seed,
        workers=args.workers,
        kernel=args.kernel,
        scale=args.scale,
        attest=args.attest,
    )
    boot_ms = [r["boot_ms"] for r in run.results]
    digests = {r["digest"] for r in run.results}
    rows = [
        ["boots", str(run.units)],
        ["workers", str(run.workers)],
        ["elapsed (s)", f"{run.elapsed_s:.3f}"],
        ["boots/s", f"{run.units / run.elapsed_s:.2f}"],
        ["p50 boot (ms)", f"{percentile(boot_ms, 50):.2f}"],
        ["p99 boot (ms)", f"{percentile(boot_ms, 99):.2f}"],
        ["distinct digests", str(len(digests))],
    ]
    print(
        format_table(
            ["metric", "value"],
            rows,
            title=f"{args.kernel} boot fleet (seed {args.seed})",
        )
    )
    if args.out:
        doc = {
            "experiment": "boot-fleet",
            "seed": args.seed,
            "kernel": args.kernel,
            "scale": args.scale,
            "workers": run.workers,
            "boots": run.units,
            "elapsed_s": round(run.elapsed_s, 3),
            "results": run.results,
            "metrics": run.metrics,
        }
        out = pathlib.Path(args.out)
        out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        print(f"wrote {out}")
    return 0


def _cmd_serverless(args: argparse.Namespace) -> int:
    """Trace-driven FaaS comparison (the §1-2 motivation, quantified)."""
    from repro.hw.platform import Machine
    from repro.serverless.platform import ServerlessPlatform
    from repro.serverless.trace import synthesize_trace
    from repro.vmm.firecracker import FirecrackerVMM

    if args.bulk:
        return _cmd_serverless_bulk(args)

    trace = synthesize_trace(
        num_functions=args.functions,
        horizon_ms=args.horizon_s * 1000.0,
        mean_rate_per_s=args.rate,
        seed=args.seed,
    )
    rows = []
    for sev in (False, True):
        machine = Machine()
        config = VmConfig(
            kernel=KERNEL_CONFIGS[args.kernel], scale=args.scale, attest=False
        )
        sf = SEVeriFast(machine=machine)
        prepared = sf.prepare(config, machine) if sev else None

        def boot():
            vmm = FirecrackerVMM(machine)
            if sev:
                result = yield from vmm.boot_severifast(
                    config,
                    prepared.artifacts,
                    prepared.initrd,
                    hashes=prepared.hashes,
                )
            else:
                from repro.formats.kernels import build_initrd, build_kernel

                result = yield from vmm.boot_stock(
                    config,
                    build_kernel(config.kernel, config.scale),
                    build_initrd(config.scale),
                )
            return result

        platform = ServerlessPlatform(machine.sim, boot, sev=sev)
        stats = platform.run(trace)
        rows.append(
            [
                "SEVeriFast" if sev else "stock",
                f"{stats.cold_starts}/{len(stats.outcomes)}",
                f"{stats.mean_cold_boot_ms:.0f}",
                f"{stats.latency_percentile(95):.0f}",
            ]
        )
    print(
        format_table(
            ["platform", "cold starts", "mean cold boot (ms)", "p95 delay (ms)"],
            rows,
            title=f"{len(trace)} invocations over {args.horizon_s}s",
        )
    )
    return 0


def _cmd_serverless_bulk(args: argparse.Namespace) -> int:
    """Bulk traffic: independent platform segments sharded over workers."""
    import json
    import pathlib

    from repro.serverless.bulk import run_bulk_traffic

    report = run_bulk_traffic(
        args.segments,
        seed=args.seed,
        workers=args.workers,
        kernel=args.kernel,
        scale=args.scale,
        functions=args.functions,
        horizon_s=args.horizon_s,
        rate_per_s=args.rate,
        restore=args.restore,
        verifier_window_ms=args.verifier_window,
        verifier_workers=args.verifier_workers,
    )
    rows = [
        ["segments", str(report["segments"])],
        ["workers", str(report["workers"])],
        ["invocations", str(report["invocations"])],
        ["cold starts", str(report["cold_starts"])],
        ["warm starts", str(report["warm_starts"])],
        ["failed", str(report["failed_invocations"])],
        ["p50 start delay (ms)", f"{report['p50_start_delay_ms']:.1f}"],
        ["p99 start delay (ms)", f"{report['p99_start_delay_ms']:.1f}"],
        ["p50 cold boot (ms)", f"{report['p50_cold_boot_ms']:.1f}"],
        ["p99 cold boot (ms)", f"{report['p99_cold_boot_ms']:.1f}"],
        ["elapsed (s)", f"{report['elapsed_s']:.3f}"],
    ]
    if args.restore:
        rows[6:6] = [
            ["restored starts", str(report["restored_starts"])],
            ["restore hit rate", f"{report['restore_hit_rate']:.3f}"],
            ["p50 restore (ms)", f"{report['p50_restore_ms']:.1f}"],
            ["p50 re-attestation (ms)", f"{report['p50_reattest_ms']:.1f}"],
            ["restore digest ok", str(report["restore_digest_ok"])],
        ]
    print(
        format_table(
            ["metric", "value"],
            rows,
            title=(
                f"bulk serverless traffic (seed {args.seed}, "
                f"{args.horizon_s:g}s horizon per segment)"
            ),
        )
    )
    if args.out:
        out = pathlib.Path(args.out)
        out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"wrote {out}")
    if args.restore:
        # The restore-smoke gate: restores actually happened, every one
        # re-attested the digest the launch flow computed offline, and
        # restored cold starts undercut full boots.
        ok = (
            report["restored_starts"] > 0
            and report["restore_digest_ok"]
            and (
                report["p50_cold_boot_ms"] == 0.0
                or report["p50_restore_ms"] < report["p50_cold_boot_ms"]
            )
        )
        print(f"restore gate (hits > 0, digest ok, restore < full boot): "
              f"{'PASS' if ok else 'FAIL'}")
        return 0 if ok else 1
    return 0


def _fleet_series(seed: int, block: Optional[dict] = None, workers: int = 1):
    """The ``fleet`` block of BENCH_chaos.json.

    A chaos-mode fleet run at the canonical small shape (or at the
    parameters a baseline block recorded, so ``repro regress`` can
    regenerate like-for-like), summarized without the bulky sample
    arrays.
    """
    from repro.fleet.experiment import fleet_bench_summary, run_fleet

    block = block or {}
    doc = run_fleet(
        block.get("cells", 2),
        seed=block.get("seed", seed),
        workers=workers,
        hosts=block.get("hosts", 4),
        scheduler=block.get("scheduler", "cache-affinity"),
        fault_rate=block.get("fault_rate", 0.1),
        kernel=block.get("kernel", "aws"),
        scale=block.get("scale", 1.0 / 1024.0),
        functions=block.get("functions", 6),
        horizon_s=block.get("horizon_s", 20.0),
        rate_per_s=block.get("rate_per_s", 4.0),
        keepalive_ms=block.get("keepalive_ms", 4000.0),
        crash_hosts=block.get("crash_hosts", 1),
    )
    return fleet_bench_summary(doc)


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Fault-injection sweep over a serverless fleet (robustness gate).

    Exits non-zero if any tampered boot completed — the detection rate
    is the security invariant, not a statistic.
    """
    import json
    import pathlib

    kwargs = dict(
        seed=args.seed,
        kernel=args.kernel,
        scale=args.scale,
        functions=args.functions,
        horizon_s=args.horizon_s,
        rate_per_s=args.rate,
        asid_capacity=args.asid_capacity,
    )
    if args.workers > 1:
        # one fault rate per unit; rows are byte-identical to serial
        from repro.parallel.runners import run_chaos_sweep_parallel

        report = run_chaos_sweep_parallel(
            tuple(args.rates), workers=args.workers, **kwargs
        )
    else:
        from repro.faults import run_chaos_sweep

        report = run_chaos_sweep(rates=tuple(args.rates), **kwargs)
    # the fleet series rides along in the same baseline document: the
    # same robustness gate covers multi-host failover
    report["fleet"] = _fleet_series(args.seed, workers=args.workers)
    rows = [
        [
            f"{r['fault_rate']:.2f}",
            str(r["cold_starts"]),
            f"{r['boot_success_rate']:.3f}",
            f"{r['tampered_boots']}",
            f"{r['detection_rate']:.3f}",
            str(r["boot_retries"]),
            f"{r['p50_boot_ms']:.1f}",
            f"{r['p99_boot_ms']:.1f}",
        ]
        for r in report["sweep"]
    ]
    print(
        format_table(
            [
                "fault rate",
                "cold starts",
                "boot success",
                "tampered",
                "detection",
                "retries",
                "p50 boot (ms)",
                "p99 boot (ms)",
            ],
            rows,
            title=f"chaos sweep (seed {args.seed})",
        )
    )
    fleet = report["fleet"]
    print(
        f"fleet: {fleet['cells']} cells x {fleet['hosts']} hosts, "
        f"failover {fleet['failover_success_rate']:.3f}, "
        f"detection {fleet['detection_rate']:.3f}, "
        f"lost {fleet['lost_invocations']}"
    )
    out = pathlib.Path(args.out)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    failed = False
    if report["detection_rate"] < 1.0:
        print(
            f"DETECTION FAILURE: {report['undetected_tampered_boots']} "
            "tampered boot(s) completed"
        )
        failed = True
    if fleet["detection_rate"] < 1.0:
        print(
            f"FLEET DETECTION FAILURE: {fleet['undetected_tampered_boots']} "
            "tampered boot(s) completed"
        )
        failed = True
    if fleet["failover_success_rate"] < 0.99:
        print(
            "FLEET FAILOVER FAILURE: success rate "
            f"{fleet['failover_success_rate']:.3f} < 0.99"
        )
        failed = True
    if fleet["lost_invocations"] > 0:
        print(f"FLEET LOST INVOCATIONS: {fleet['lost_invocations']}")
        failed = True
    return 1 if failed else 0


def _scheduler_names() -> list:
    from repro.fleet.scheduler import SCHEDULERS

    return list(SCHEDULERS)


def _cmd_fleet(args: argparse.Namespace) -> int:
    """Multi-host fleet run with placement, health, and failover.

    Exits non-zero if any fleet-level SLO gate fails: tamper detection
    below 1.0, failover success below the floor, or a lost invocation.
    """
    import json
    import pathlib

    from repro.fleet.experiment import run_fleet

    fault_rate = args.fault_rate if args.chaos else 0.0
    trace_out = getattr(args, "trace_out", None)
    report = run_fleet(
        args.cells,
        seed=args.seed,
        workers=args.workers,
        hosts=args.hosts,
        scheduler=args.scheduler,
        fault_rate=fault_rate,
        kernel=args.kernel,
        scale=args.scale,
        functions=args.functions,
        horizon_s=args.horizon_s,
        rate_per_s=args.rate,
        keepalive_ms=args.keepalive_ms,
        crash_hosts=args.crash_hosts,
        otrace=bool(trace_out),
        verifier_window_ms=args.verifier_window,
        verifier_workers=args.verifier_workers,
    )
    if trace_out:
        from repro.fleet.experiment import fleet_trace_doc, strip_otrace

        trace_doc = fleet_trace_doc(report)
        strip_otrace(report)  # keep the fleet report identical to untraced
        trace_path = pathlib.Path(trace_out)
        trace_path.write_text(
            json.dumps(trace_doc, indent=2, sort_keys=True) + "\n"
        )
        traced = sum(len(c["invocations"]) for c in trace_doc["cells"])
        print(
            f"wrote {trace_path} ({traced} traced invocations; "
            f"inspect with `repro explain --input {trace_path} --list`)"
        )
    rows = [
        [
            str(r["cell"]),
            str(r["invocations"]),
            str(r["restored_starts"]),
            str(r["degraded_full_boots"]),
            str(r["host_crashes"]),
            str(r["invocations_with_failover"]),
            f"{r['failover_success_rate']:.3f}",
            f"{r['detection_rate']:.3f}",
            f"{r['p99_cold_start_ms']:.1f}",
        ]
        for r in report["cells_detail"]
    ]
    print(
        format_table(
            [
                "cell",
                "invocations",
                "restored",
                "degraded",
                "crashes",
                "failovers",
                "fo success",
                "detection",
                "p99 cold (ms)",
            ],
            rows,
            title=(
                f"fleet: {args.cells}x{args.hosts} hosts, "
                f"{args.scheduler}, fault rate {fault_rate} "
                f"(seed {args.seed})"
            ),
        )
    )
    if args.out:
        out = pathlib.Path(args.out)
        out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"wrote {out}")
    failed = []
    if report["detection_rate"] < 1.0:
        failed.append(
            f"DETECTION FAILURE: {report['undetected_tampered_boots']} "
            "tampered boot(s) completed"
        )
    if report["failover_success_rate"] < 0.99:
        failed.append(
            "FAILOVER FAILURE: success rate "
            f"{report['failover_success_rate']:.3f} < 0.99"
        )
    if report["lost_invocations"] > 0:
        failed.append(
            f"LOST INVOCATIONS: {report['lost_invocations']} never resolved"
        )
    for line in failed:
        print(line)
    return 1 if failed else 0


def _cmd_explain(args: argparse.Namespace) -> int:
    """Render one invocation's full causal chain from an otrace artifact.

    ``repro fleet --trace-out trace.json`` produces the artifact;
    ``repro explain <trace-id> --input trace.json`` then prints the span
    tree (placement -> attempts -> boot/restore -> PSP commands ->
    re-attestation), the per-phase virtual-time split (queue-wait vs
    PSP-exec vs crypto vs network), and every injected fault that
    touched the invocation.  ``--list`` summarises all trace IDs;
    ``--verify-failovers`` exits non-zero unless every failed-over
    invocation's chain resolves end to end.
    """
    import json
    import pathlib

    from repro.obs.otrace import explain, list_trace_ids, verify_failovers

    doc = json.loads(pathlib.Path(args.input).read_text())
    if args.list:
        rows = [
            [
                r.get("trace_id", "?"),
                str(r.get("cell", "?")),
                str(r.get("index", "?")),
                r.get("function", "?"),
                r.get("host", ""),
                str(r.get("failovers", 0)),
                (
                    "tamper-abort"
                    if r.get("tamper_detected")
                    else ("failed" if r.get("failed") else "ok")
                ),
            ]
            for r in list_trace_ids(doc)
        ]
        print(
            format_table(
                ["trace id", "cell", "idx", "function", "host", "fo", "status"],
                rows,
                title=f"{len(rows)} traced invocations",
            )
        )
        return 0
    if args.verify_failovers:
        problems = verify_failovers(doc)
        failed_over = sum(
            1
            for r in list_trace_ids(doc)
            if int(r.get("failovers", 0)) > 0
        )
        if problems:
            for p in problems:
                print(f"UNRESOLVED: {p}")
            print(f"{len(problems)} of {failed_over} failover chains broken")
            return 1
        print(f"all {failed_over} failed-over invocations resolve end to end")
        if args.trace_id is None:
            return 0
    if args.trace_id is None:
        print("explain: give a TRACE_ID, or --list / --verify-failovers")
        return 2
    try:
        exp = explain(doc, args.trace_id)
    except KeyError as exc:
        print(str(exc.args[0]) if exc.args else str(exc))
        return 1
    print(exp.render())
    return 0


def _cmd_alerts(args: argparse.Namespace) -> int:
    """Evaluate the SLO burn-rate rule pack over an otrace artifact.

    Multi-window burn-rate rules (failover pressure, restore misses,
    cold-start latency, tamper) run on virtual time, so the firings —
    and the bounded flight-recorder dump attached to each — are a pure
    function of the artifact.  ``--expect RULE`` exits non-zero unless
    that rule fired (the CI smoke assertion); ``--out`` writes the
    alerts document JSON.
    """
    import json
    import pathlib

    from repro.obs.alerts import BOOT_SLO_MS, evaluate_trace_doc

    doc = json.loads(pathlib.Path(args.input).read_text())
    boot_slo_ms = (
        args.boot_slo_ms if args.boot_slo_ms is not None else BOOT_SLO_MS
    )
    report = evaluate_trace_doc(
        doc,
        boot_slo_ms=boot_slo_ms,
        recorder_capacity=args.recorder_capacity,
    )
    firings = report["firings"]
    if firings:
        rows = [
            [
                str(f["cell"]),
                f"{f['at_ms']:.2f}",
                f["rule"],
                f"{f['burn_long']:.2f}",
                f"{f['burn_short']:.2f}",
                f"{f['window_errors']}/{f['window_events']}",
                f["trace_id"],
            ]
            for f in firings
        ]
        print(
            format_table(
                [
                    "cell",
                    "at (ms)",
                    "rule",
                    "burn long",
                    "burn short",
                    "errors",
                    "trace id",
                ],
                rows,
                title=(
                    f"{len(firings)} firing(s) over {report['cells']} "
                    f"cell(s), boot SLO {boot_slo_ms:g} ms"
                ),
            )
        )
    else:
        print(f"no firings over {report['cells']} cell(s)")
    if args.out:
        out = pathlib.Path(args.out)
        out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"wrote {out}")
    missing = [
        rule for rule in (args.expect or []) if rule not in report["fired_rules"]
    ]
    for rule in missing:
        print(f"EXPECTED RULE DID NOT FIRE: {rule}")
    return 1 if missing else 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Boot with tracing enabled; export Chrome trace JSON + a summary.

    Open the JSON in `chrome://tracing` or https://ui.perfetto.dev to
    see boot phases per VM, one span per PSP command (the Fig. 12
    serialization), and resource wait/hold intervals.
    """
    import pathlib

    from repro.hw.platform import Machine
    from repro.sim.trace import validate_chrome_trace

    machine = Machine()
    tracer = machine.sim.trace()
    sf = SEVeriFast(machine=machine)
    config = _config_from_args(args)

    if args.serverless:
        from repro.serverless.platform import ServerlessPlatform
        from repro.serverless.trace import synthesize_trace
        from repro.vmm.firecracker import FirecrackerVMM

        prepared = sf.prepare(config, machine)
        trace = synthesize_trace(
            num_functions=args.functions,
            horizon_ms=args.horizon_s * 1000.0,
            mean_rate_per_s=args.rate,
            seed=args.seed,
        )

        def boot():
            vmm = FirecrackerVMM(machine)
            result = yield from vmm.boot_severifast(
                config,
                prepared.artifacts,
                prepared.initrd,
                hashes=prepared.hashes,
            )
            return result

        platform = ServerlessPlatform(machine.sim, boot)
        platform.run(trace)
    elif args.count > 1:
        if args.stack not in ("severifast", "stock"):
            print("--count > 1 supports --stack severifast or stock")
            return 1
        sf.concurrent_boots(
            config, count=args.count, sev=args.stack == "severifast",
            machine=machine,
        )
    elif args.stack == "severifast":
        sf.cold_boot(config, machine=machine)
    elif args.stack == "stock":
        sf.cold_boot_stock(config, machine=machine)
    elif args.stack == "naive":
        sf.cold_boot_naive(config, machine=machine)
    else:
        sf.cold_boot_qemu(config, machine=machine)

    doc = tracer.to_chrome_trace()
    problems = validate_chrome_trace(doc)
    out = pathlib.Path(args.out)
    out.write_text(tracer.to_chrome_json())
    print(tracer.summary())
    print(
        f"\nwrote {len(doc['traceEvents'])} trace events to {out} "
        f"(schema: {'ok' if not problems else '; '.join(problems[:3])})"
    )
    return 0 if not problems else 1


def _run_instrumented(args: argparse.Namespace, machine) -> None:
    """The small workload behind ``repro metrics`` / ``repro profile``:
    one (or ``--count``) boots, or a synthesized serverless run."""
    sf = SEVeriFast(machine=machine)
    config = _config_from_args(args)

    if args.serverless:
        from repro.serverless.platform import ServerlessPlatform
        from repro.serverless.trace import synthesize_trace
        from repro.vmm.firecracker import FirecrackerVMM

        prepared = sf.prepare(config, machine)
        trace = synthesize_trace(
            num_functions=args.functions,
            horizon_ms=args.horizon_s * 1000.0,
            mean_rate_per_s=args.rate,
            seed=args.seed,
        )

        def boot():
            vmm = FirecrackerVMM(machine)
            result = yield from vmm.boot_severifast(
                config, prepared.artifacts, prepared.initrd, hashes=prepared.hashes
            )
            return result

        ServerlessPlatform(machine.sim, boot).run(trace)
    elif args.count > 1:
        sf.concurrent_boots(
            config, count=args.count, sev=args.stack != "stock", machine=machine
        )
    elif args.stack == "severifast":
        sf.cold_boot(config, machine=machine)
    elif args.stack == "stock":
        sf.cold_boot_stock(config, machine=machine)
    elif args.stack == "naive":
        sf.cold_boot_naive(config, machine=machine)
    else:
        sf.cold_boot_qemu(config, machine=machine)


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    _add_kernel_arg(parser)
    parser.add_argument(
        "--stack",
        choices=["severifast", "qemu", "stock", "naive"],
        default="severifast",
    )
    parser.add_argument(
        "--format", choices=[f.value for f in KernelFormat], default="bzimage"
    )
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    parser.add_argument("--no-attest", action="store_true")
    parser.add_argument(
        "--config", help="Firecracker-style JSON VM configuration file"
    )
    parser.add_argument(
        "--count", type=int, default=1, help="concurrent boots (Fig. 12 style)"
    )
    parser.add_argument(
        "--serverless", action="store_true",
        help="run a synthesized serverless workload instead of plain boots",
    )
    parser.add_argument("--functions", type=int, default=4)
    parser.add_argument("--horizon-s", type=float, default=10.0)
    parser.add_argument("--rate", type=float, default=2.0)
    parser.add_argument("--seed", type=int, default=0)


def _cmd_metrics(args: argparse.Namespace) -> int:
    """Run a workload under a fresh registry; dump the metrics.

    The run is scoped with :func:`repro.obs.use_registry`, so the dump
    covers exactly this workload — engine events, PSP commands,
    crypto/cache counters, boot phases, serverless outcomes.
    """
    import pathlib

    from repro.hw.platform import Machine
    from repro.obs import MetricsRegistry, use_registry

    with use_registry(MetricsRegistry()) as registry:
        _run_instrumented(args, Machine())
        text = (
            registry.to_json()
            if args.format_out == "json"
            else registry.to_prometheus_text()
        )
    if args.out:
        pathlib.Path(args.out).write_text(text)
        print(f"wrote {sum(1 for _ in text.splitlines())} lines to {args.out}")
    else:
        print(text, end="")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Boot with tracing; print the virtual-time profile.

    Phase attribution with self/total time, the critical path through
    the PSP queue, per-command PSP aggregates, and the longest spans.
    ``--folded FILE`` additionally writes flamegraph folded stacks.
    """
    import pathlib

    from repro.hw.platform import Machine
    from repro.obs import profile

    if args.workers > 1:
        if args.serverless:
            print("--workers > 1 profiles a boot fleet; drop --serverless")
            return 1
        # each boot traces in its own worker; the parent overlays the
        # span streams (tracks prefixed per shard) and profiles the lot
        from repro.parallel.runners import run_boot_fleet
        from repro.sim.trace import merge_span_streams

        run = run_boot_fleet(
            max(args.count, 1),
            seed=args.seed,
            workers=args.workers,
            kernel=args.kernel,
            scale=args.scale,
            attest=not args.no_attest,
            trace=True,
        )
        prof = profile(merge_span_streams(run.trace_streams, offsets="overlay"))
    else:
        machine = Machine()
        tracer = machine.sim.trace()
        _run_instrumented(args, machine)
        prof = profile(tracer)
    print(prof.report(top=args.top))
    if args.folded:
        path = pathlib.Path(args.folded)
        path.write_text(prof.folded())
        print(f"\nwrote folded stacks to {path}")
    return 0


def _cmd_regress(args: argparse.Namespace) -> int:
    """Compare a fresh benchmark run against a committed baseline.

    The baseline's own parameters drive the regeneration (chaos sweeps
    re-run ``run_chaos_sweep`` with the recorded seed/rates; wallclock
    baselines re-run ``benchmarks/perfbench.py``), so the comparison is
    like-for-like.  ``--current FILE`` skips regeneration.  Exit status
    is the gate: non-zero when any metric regressed or went missing.
    """
    import json
    import pathlib

    from repro.obs import compare_documents, rules_for_document

    baseline_path = pathlib.Path(args.baseline)
    if not baseline_path.is_file():
        print(f"no baseline at {baseline_path}")
        return 2
    baseline = json.loads(baseline_path.read_text())
    kind, rules = rules_for_document(baseline, rel_tol=args.rel_tol)

    if args.current:
        current = json.loads(pathlib.Path(args.current).read_text())
    elif kind == "chaos":
        from repro.faults import run_chaos_sweep

        rates = baseline.get("rates", [0.0, 0.05])
        if args.quick:
            # Re-run only the first two fault rates; gate against the
            # matching baseline sweep rows and the detection invariant.
            rates = rates[:2]
            reduced = {
                "experiment": "chaos",
                "detection_rate": baseline["detection_rate"],
                "sweep": baseline.get("sweep", [])[: len(rates)],
            }
            if "fleet" in baseline:
                reduced["fleet"] = baseline["fleet"]
            baseline, full_baseline = reduced, baseline
        else:
            full_baseline = baseline
        current = run_chaos_sweep(
            rates=tuple(rates),
            seed=full_baseline.get("seed", 1234),
            kernel=full_baseline.get("kernel", "aws"),
            scale=full_baseline.get("scale", 1.0 / 1024.0),
            functions=full_baseline.get("functions", 6),
            horizon_s=full_baseline.get("horizon_s", 20.0),
            rate_per_s=full_baseline.get("rate_per_s", 2.0),
        )
        if "fleet" in baseline:
            # regenerate the fleet series at the baseline's own shape
            current["fleet"] = _fleet_series(
                full_baseline.get("seed", 1234), block=baseline["fleet"]
            )
    elif kind == "wallclock":
        import importlib.util

        bench_path = pathlib.Path("benchmarks/perfbench.py")
        if not bench_path.is_file():
            print(
                f"cannot regenerate {kind!r} without {bench_path}; "
                "pass --current FILE"
            )
            return 2
        spec = importlib.util.spec_from_file_location("perfbench", bench_path)
        perfbench = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(perfbench)
        if args.quick:
            current = perfbench.run(fig9_boots=20, fig12_guests=8)
        else:
            current = perfbench.run()
    else:
        print("generic baselines need --current FILE (nothing to regenerate)")
        return 2

    report = compare_documents(
        baseline, current, rules, baseline_name=baseline_path.name
    )
    print(f"baseline kind: {kind}")
    if kind == "wallclock":
        from repro.obs.regress import parallel_gate_bound

        if parallel_gate_bound(baseline) is False:
            print(
                "note: baseline recorded where host_cpus < workers — "
                "parallel-scaling metrics are not gated"
            )
    print(report.render())
    return 0 if report.ok else 1


def _cmd_report(args: argparse.Namespace) -> int:
    """Collate benchmarks/results/*.txt into one experiment report."""
    import pathlib

    results_dir = pathlib.Path(args.results_dir)
    if not results_dir.is_dir():
        print(
            f"no results at {results_dir}; run "
            "`pytest benchmarks/ --benchmark-only` first"
        )
        return 1
    blocks = sorted(results_dir.glob("*.txt"))
    if not blocks:
        print(f"no .txt results under {results_dir}")
        return 1
    for path in blocks:
        print(f"===== {path.stem} =====")
        print(path.read_text().rstrip())
        print()
    print(f"({len(blocks)} experiments; CSVs alongside where applicable)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="SEVeriFast reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    boot = sub.add_parser("boot", help="cold-boot one microVM")
    _add_kernel_arg(boot)
    boot.add_argument(
        "--stack",
        choices=["severifast", "qemu", "stock", "naive"],
        default="severifast",
    )
    boot.add_argument(
        "--format", choices=[f.value for f in KernelFormat], default="bzimage"
    )
    boot.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    boot.add_argument("--no-attest", action="store_true")
    boot.add_argument(
        "--config", help="Firecracker-style JSON VM configuration file"
    )
    boot.set_defaults(func=_cmd_boot)

    digest = sub.add_parser("digest", help="expected-measurement tool (§4.2)")
    _add_kernel_arg(digest)
    digest.add_argument(
        "--format", choices=[f.value for f in KernelFormat], default="bzimage"
    )
    digest.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    digest.add_argument(
        "--config", help="Firecracker-style JSON VM configuration file (§4.2)"
    )
    digest.set_defaults(func=_cmd_digest)

    kernels = sub.add_parser("kernels", help="Fig. 8 kernel table")
    kernels.set_defaults(func=_cmd_kernels)

    sweep = sub.add_parser("sweep", help="Fig. 12 concurrency sweep")
    _add_kernel_arg(sweep)
    sweep.add_argument("--max-vms", type=int, default=20)
    sweep.add_argument("--scale", type=float, default=1.0 / 1024.0)
    sweep.set_defaults(func=_cmd_sweep)

    serverless = sub.add_parser(
        "serverless", help="trace-driven FaaS comparison (stock vs SEVeriFast)"
    )
    _add_kernel_arg(serverless)
    serverless.add_argument("--functions", type=int, default=8)
    serverless.add_argument("--horizon-s", type=float, default=30.0)
    serverless.add_argument("--rate", type=float, default=2.0)
    serverless.add_argument("--seed", type=int, default=0)
    serverless.add_argument("--scale", type=float, default=1.0 / 1024.0)
    serverless.add_argument(
        "--bulk", action="store_true",
        help="bulk traffic: independent platform segments, sharded",
    )
    serverless.add_argument(
        "--segments", type=int, default=8,
        help="independent traffic segments for --bulk",
    )
    serverless.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for --bulk (results are identical for any value)",
    )
    serverless.add_argument(
        "--restore", action="store_true",
        help="with --bulk: serve repeat cold starts from the snapshot "
        "store (CoW restore + re-attestation); exit status gates on "
        "restore hit rate and digest correctness",
    )
    serverless.add_argument(
        "--verifier-window", type=float, default=None, dest="verifier_window",
        help="with --bulk --restore: route re-attestation chain proofs "
        "through a batched verifier service with this batching window "
        "(ms); default keeps the standalone per-report exchange",
    )
    serverless.add_argument(
        "--verifier-workers", type=int, default=1, dest="verifier_workers",
        help="concurrent batch workers in the verifier service",
    )
    serverless.add_argument("--out", help="also write the --bulk report JSON here")
    serverless.set_defaults(func=_cmd_serverless)

    bench = sub.add_parser(
        "bench", help="boot a sharded fleet of guests; print the rates"
    )
    _add_kernel_arg(bench)
    bench.add_argument("--boots", type=int, default=20)
    bench.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (results are identical for any value)",
    )
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--scale", type=float, default=1.0 / 1024.0)
    bench.add_argument("--attest", action="store_true")
    bench.add_argument("--out", help="also write the fleet report JSON here")
    bench.set_defaults(func=_cmd_bench)

    chaos = sub.add_parser(
        "chaos", help="fault-injection sweep over a serverless fleet"
    )
    _add_kernel_arg(chaos)
    chaos.add_argument(
        "--rates", type=float, nargs="+", default=[0.0, 0.02, 0.05, 0.1],
        help="fault rates to sweep (0 is the fault-free control)",
    )
    chaos.add_argument("--seed", type=int, default=1234)
    chaos.add_argument("--functions", type=int, default=6)
    chaos.add_argument("--horizon-s", type=float, default=20.0)
    chaos.add_argument("--rate", type=float, default=2.0)
    chaos.add_argument("--scale", type=float, default=1.0 / 1024.0)
    chaos.add_argument(
        "--asid-capacity", type=int, default=None,
        help="shrink the ASID namespace to force DF_FLUSH recycling",
    )
    chaos.add_argument(
        "--workers", type=int, default=1,
        help="worker processes, one fault rate per unit "
        "(rows are byte-identical for any value)",
    )
    chaos.add_argument("--out", default="BENCH_chaos.json")
    chaos.set_defaults(func=_cmd_chaos)

    fleet = sub.add_parser(
        "fleet",
        help="multi-host fleet with placement, health, and failover",
    )
    _add_kernel_arg(fleet)
    fleet.add_argument("--hosts", type=int, default=4)
    fleet.add_argument(
        "--cells", type=int, default=2,
        help="independent fleet cells (the parallel unit)",
    )
    fleet.add_argument(
        "--scheduler", choices=sorted(_scheduler_names()),
        default="cache-affinity",
    )
    fleet.add_argument(
        "--chaos", action="store_true",
        help="arm the fleet fault mix at --fault-rate",
    )
    fleet.add_argument(
        "--fault-rate", type=float, default=0.1,
        help="overall chaos rate knob (only with --chaos)",
    )
    fleet.add_argument(
        "--crash-hosts", type=int, default=0,
        help="force this many host crashes mid-horizon (deterministic)",
    )
    fleet.add_argument("--seed", type=int, default=1234)
    fleet.add_argument("--functions", type=int, default=6)
    fleet.add_argument("--horizon-s", type=float, default=20.0)
    fleet.add_argument("--rate", type=float, default=2.0)
    fleet.add_argument("--scale", type=float, default=1.0 / 1024.0)
    fleet.add_argument("--keepalive-ms", type=float, default=4000.0)
    fleet.add_argument(
        "--workers", type=int, default=1,
        help="worker processes, one cell per unit "
        "(results are identical for any value)",
    )
    fleet.add_argument(
        "--verifier-window", type=float, default=None, dest="verifier_window",
        help="attach one batched guest-owner verifier service per cell "
        "with this batching window (ms); re-attestations queue there "
        "instead of paying the per-report chain walk",
    )
    fleet.add_argument(
        "--verifier-workers", type=int, default=1, dest="verifier_workers",
        help="concurrent batch workers per cell verifier",
    )
    fleet.add_argument("--out", default=None)
    fleet.add_argument(
        "--trace-out", default=None, dest="trace_out",
        help="run with per-invocation tracing and write the otrace "
        "artifact here (for `repro explain` / `repro alerts`)",
    )
    fleet.set_defaults(func=_cmd_fleet)

    explain = sub.add_parser(
        "explain",
        help="render one invocation's causal chain from an otrace artifact",
    )
    explain.add_argument(
        "trace_id", nargs="?", default=None,
        help="trace ID to explain (see --list)",
    )
    explain.add_argument(
        "--input", required=True,
        help="otrace artifact from `repro fleet --trace-out`",
    )
    explain.add_argument(
        "--list", action="store_true",
        help="list every traced invocation instead of explaining one",
    )
    explain.add_argument(
        "--verify-failovers", action="store_true", dest="verify_failovers",
        help="exit non-zero unless every failed-over invocation's chain "
        "resolves end to end",
    )
    explain.set_defaults(func=_cmd_explain)

    alerts = sub.add_parser(
        "alerts",
        help="evaluate SLO burn-rate rules over an otrace artifact",
    )
    alerts.add_argument(
        "--input", required=True,
        help="otrace artifact from `repro fleet --trace-out`",
    )
    alerts.add_argument(
        "--boot-slo-ms", type=float, default=None, dest="boot_slo_ms",
        help="cold-start latency SLO for the boot-latency rule",
    )
    alerts.add_argument(
        "--recorder-capacity", type=int, default=32, dest="recorder_capacity",
        help="flight-recorder ring size dumped on each firing",
    )
    alerts.add_argument(
        "--expect", action="append", default=None,
        help="exit non-zero unless this rule fired (repeatable)",
    )
    alerts.add_argument("--out", help="write the alerts document JSON here")
    alerts.set_defaults(func=_cmd_alerts)

    trace = sub.add_parser(
        "trace", help="boot with tracing; export Chrome trace JSON + summary"
    )
    _add_kernel_arg(trace)
    trace.add_argument(
        "--stack",
        choices=["severifast", "qemu", "stock", "naive"],
        default="severifast",
    )
    trace.add_argument(
        "--format", choices=[f.value for f in KernelFormat], default="bzimage"
    )
    trace.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    trace.add_argument("--no-attest", action="store_true")
    trace.add_argument(
        "--config", help="Firecracker-style JSON VM configuration file"
    )
    trace.add_argument(
        "--count", type=int, default=1, help="concurrent boots (Fig. 12 style)"
    )
    trace.add_argument(
        "--serverless", action="store_true",
        help="trace a synthesized serverless run instead of plain boots",
    )
    trace.add_argument("--functions", type=int, default=4)
    trace.add_argument("--horizon-s", type=float, default=10.0)
    trace.add_argument("--rate", type=float, default=2.0)
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--out", default="trace.json", help="output JSON path")
    trace.set_defaults(func=_cmd_trace)

    metrics_p = sub.add_parser(
        "metrics", help="run a workload; dump the metrics registry"
    )
    _add_workload_args(metrics_p)
    metrics_p.add_argument(
        "--format-out", choices=["prom", "json"], default="prom",
        dest="format_out", help="export format (Prometheus text or JSON)",
    )
    metrics_p.add_argument("--out", help="write to a file instead of stdout")
    metrics_p.set_defaults(func=_cmd_metrics)

    profile_p = sub.add_parser(
        "profile", help="boot with tracing; print the virtual-time profile"
    )
    _add_workload_args(profile_p)
    profile_p.add_argument(
        "--top", type=int, default=10, help="longest spans to list"
    )
    profile_p.add_argument(
        "--workers", type=int, default=1,
        help="profile a --count boot fleet sharded across processes "
        "(merged trace, tracks prefixed per shard)",
    )
    profile_p.add_argument(
        "--folded", help="also write flamegraph folded stacks to this file"
    )
    profile_p.set_defaults(func=_cmd_profile)

    regress = sub.add_parser(
        "regress", help="compare a fresh benchmark run against a baseline"
    )
    regress.add_argument(
        "--baseline", required=True,
        help="committed BENCH_*.json to compare against",
    )
    regress.add_argument(
        "--current", help="pre-generated current document (skips the re-run)"
    )
    regress.add_argument(
        "--rel-tol", type=float, default=None,
        help="override every rule's relative tolerance band",
    )
    regress.add_argument(
        "--quick", action="store_true",
        help="regenerate a reduced document (fewer rates / boots)",
    )
    regress.set_defaults(func=_cmd_regress)

    report = sub.add_parser(
        "report", help="collate benchmarks/results/ into one report"
    )
    report.add_argument("--results-dir", default="benchmarks/results")
    report.set_defaults(func=_cmd_report)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
