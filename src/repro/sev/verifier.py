"""The guest-owner verification service: batched report verification.

The paper's guest owner (§6.1) verifies one report at a time: walk the
ARK→ASK→VCEK chain (three ECDSA verifies), then check the report
signature.  That is fine for one launch; it is the bottleneck once the
fleet drives thousands of boots and restores through re-attestation
(ROADMAP item 4).  This module models the owner side *as a service*
under virtual time, with the three amortizations a production verifier
actually deploys:

1. **batching** — requests queue behind a configurable batching window;
   a worker drains up to ``max_batch`` of them in one service step whose
   per-report cost (:attr:`CostModel.report_verify_batched_ms`) is far
   below the scalar cost, because the batch shares the precomputed
   ECDSA tables (:func:`repro.crypto.ecdsa.verify_batch`);
2. **chain-proof amortization** — each distinct VCEK chain is walked
   exactly once per service lifetime (keyed by
   :func:`repro.sev.certchain.chain_bytes`); every later report under a
   known chain skips the walk.  The proven-chain set is *semantic*
   state, like :class:`~repro.serverless.snapshots.SnapshotStore`: it is
   never gated by ``REPRO_CACHES``, so a wall-clock switch flip cannot
   change virtual-time results;
3. **session tickets** — after the service accepts a report for a
   (tenant, chain) pair it issues a resumption ticket; a repeat tenant
   presenting the *same* chain skips the walk for a cheap ticket check
   (e-vTPM arXiv 2303.16463 §5, SNPGuard arXiv 2406.01186 §IV).

Verdicts are pure functions of (report, chain, trusted root), so they
are identical to per-report serial verification — the property test in
``tests/sev/test_verifier.py`` and the ``attest_throughput`` perfbench
series both pin that.  Workers contend on a FIFO
:class:`~repro.sim.engine.Resource` exactly like launches contend on the
PSP; one service per fleet cell is the intended deployment
(see :class:`repro.fleet.controller.FleetController`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Generator, Optional

from repro.crypto import ecdsa
from repro.hw.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.obs import metrics
from repro.sev.attestation import AttestationReport
from repro.sev.certchain import (
    Certificate,
    ChainError,
    chain_bytes,
    prove_chain,
    verify_chain,
)
from repro.sim.engine import Event, Resource, Simulator


@dataclass(frozen=True)
class VerifyVerdict:
    """Terminal record of one verification request."""

    accepted: bool
    #: ``None`` on acceptance, ``chain:<slug>`` for a chain-walk failure,
    #: ``report-signature`` for a forged report under a proven chain
    reason: Optional[str]
    #: served off a session-resumption ticket (no chain work at all)
    resumed: bool
    #: the chain verdict was amortized (proven earlier in this service's
    #: lifetime) rather than walked for this request
    chain_amortized: bool
    #: submit -> service start (batching window + worker queue)
    queue_ms: float
    #: duration of the batch service step this request rode in
    service_ms: float
    #: how many requests shared that service step
    batch_size: int


class TicketStore:
    """Session-resumption tickets: (tenant, chain bytes) → proven VCEK.

    A ticket is issued when the service *accepts* a report for a tenant
    under a chain; a later request from the same tenant presenting the
    byte-identical chain resumes — the chain verdict is already known
    good, so only the report signature needs checking.  Keying on the
    chain bytes (not just the chip) keeps verdicts identical to serial
    verification: any tampering with the presented chain misses the
    ticket and pays the full walk, which then fails exactly as the
    serial path would.
    """

    def __init__(self) -> None:
        self._tickets: dict[tuple[str, bytes], ecdsa.PublicKey] = {}

    def issue(
        self, tenant: str, chain_key: bytes, vcek: ecdsa.PublicKey
    ) -> None:
        self._tickets[(tenant, chain_key)] = vcek

    def lookup(
        self, tenant: str, chain_key: bytes
    ) -> Optional[ecdsa.PublicKey]:
        return self._tickets.get((tenant, chain_key))

    def __len__(self) -> int:
        return len(self._tickets)


class _Pending:
    """One queued verification request."""

    __slots__ = ("report", "chain", "tenant", "done", "enqueued_at")

    def __init__(
        self,
        report: AttestationReport,
        chain: tuple[Certificate, ...],
        tenant: str,
        done: Event,
        enqueued_at: float,
    ):
        self.report = report
        self.chain = chain
        self.tenant = tenant
        self.done = done
        self.enqueued_at = enqueued_at


class VerifierService:
    """A batched guest-owner verify path under virtual time.

    ``workers`` bounds concurrent batch service steps (a FIFO resource,
    contended like the PSP); ``batch_window_ms`` is how long a
    non-full batch waits for company before service begins;
    ``max_batch`` caps how many requests one service step drains.
    ``batch_window_ms=0, max_batch=1`` degenerates to an unbatched
    service that still amortizes chain proofs and tickets — the true
    per-report serial baseline is :func:`verify_report_serial`.

    Verdict-affecting state (the proven-chain map, the ticket store) is
    semantic and worker-count-independent: the same request stream gets
    the same verdicts at any ``workers`` setting; only waiting time
    changes.
    """

    def __init__(
        self,
        sim: Simulator,
        trusted_ark: ecdsa.PublicKey,
        *,
        cost: Optional[CostModel] = None,
        workers: int = 1,
        batch_window_ms: float = 2.0,
        max_batch: int = 32,
        tickets: Optional[TicketStore] = None,
        name: str = "verifier",
        label: str = "",
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if batch_window_ms < 0:
            raise ValueError("batch_window_ms must be >= 0")
        self.sim = sim
        self.trusted_ark = trusted_ark
        self.cost = cost if cost is not None else DEFAULT_COST_MODEL
        self.batch_window_ms = batch_window_ms
        self.max_batch = max_batch
        self.name = name
        self.resource = Resource(
            sim,
            capacity=workers,
            name=name,
            trace_name=f"{label}/{name}" if label else name,
        )
        self.tickets = tickets if tickets is not None else TicketStore()
        #: semantic chain-proof map: chain bytes → (ok, VCEK | (msg, slug)).
        #: Never gated by REPRO_CACHES — amortization is part of the
        #: service's virtual-time behaviour, not a wall-clock lever.
        self._proven: dict[bytes, tuple[bool, object]] = {}
        self._queue: deque[_Pending] = deque()
        self._wakeup: Optional[Event] = None
        self._dispatching = False
        self.submitted = 0
        self.completed = 0
        self._batch_seq = 0

    # -- request intake ------------------------------------------------------

    def submit(
        self,
        report: AttestationReport,
        chain: tuple[Certificate, ...],
        *,
        tenant: str = "default",
    ) -> Event:
        """Enqueue one request; the returned event fires with its
        :class:`VerifyVerdict`."""
        done = Event(self.sim, f"{self.name}.verdict")
        self._queue.append(
            _Pending(report, chain, tenant, done, self.sim.now)
        )
        self.submitted += 1
        if not self._dispatching:
            self._dispatching = True
            self.sim.process(self._dispatch(), name=f"{self.name}-dispatch")
        elif self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()
        return done

    def verify(
        self,
        report: AttestationReport,
        chain: tuple[Certificate, ...],
        *,
        tenant: str = "default",
    ) -> Generator:
        """Submit and wait; process value: :class:`VerifyVerdict`."""
        verdict = yield self.submit(report, chain, tenant=tenant)
        return verdict

    # -- introspection -------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Requests enqueued but not yet picked into a batch."""
        return len(self._queue)

    @property
    def proven_chains(self) -> int:
        return len(self._proven)

    # -- dispatch + service --------------------------------------------------

    def _dispatch(self) -> Generator:
        while True:
            if not self._queue:
                self._wakeup = Event(self.sim, f"{self.name}.wakeup")
                yield self._wakeup
                self._wakeup = None
            # A non-full batch waits the window so company can join; a
            # full one goes straight to a worker.
            if self.batch_window_ms > 0 and len(self._queue) < self.max_batch:
                yield self.sim.timeout(self.batch_window_ms)
            take = min(len(self._queue), self.max_batch)
            if take == 0:
                continue
            batch = [self._queue.popleft() for _ in range(take)]
            self._batch_seq += 1
            self.sim.process(
                self._worker(batch),
                name=f"{self.name}-batch-{self._batch_seq}",
            )

    def _worker(self, batch: list[_Pending]) -> Generator:
        grant = yield self.resource.request()
        try:
            yield from self._service(batch)
        finally:
            self.resource.release(grant)

    def _service(self, batch: list[_Pending]) -> Generator:
        registry = metrics.default_registry()
        start = self.sim.now
        cost = self.cost
        # Classify every request before charging time: the virtual cost
        # of the batch depends only on what work the batch needs, never
        # on wall-clock cache state.
        new_chains: dict[bytes, tuple[Certificate, ...]] = {}
        kinds: list[tuple[_Pending, bytes, str]] = []
        for item in batch:
            key = chain_bytes(item.chain, self.trusted_ark)
            if self.tickets.lookup(item.tenant, key) is not None:
                kind = "ticket"
            elif key in self._proven:
                kind = "amortized"
            else:
                kind = "walk"
                new_chains.setdefault(key, item.chain)
            kinds.append((item, key, kind))
        service_ms = cost.verify_batch_overhead_ms
        service_ms += len(new_chains) * cost.cert_chain_verify_ms
        for _item, _key, kind in kinds:
            if kind == "ticket":
                service_ms += cost.ticket_verify_ms
            else:
                service_ms += cost.report_verify_batched_ms
        yield self.sim.timeout(cost.sample(service_ms))
        # Walk each new chain once; the verdict lands in the semantic map
        # (prove_chain adds wall-clock caching across services — the
        # virtual cost above was already charged from the semantic map).
        for key, chain in new_chains.items():
            try:
                vcek = prove_chain(chain, self.trusted_ark)
            except ChainError as exc:
                self._proven[key] = (False, (str(exc), exc.reason))
            else:
                self._proven[key] = (True, vcek)
            registry.counter("verifier.chain_walks").inc()
        # Report signatures verify as one batch over the shared tables.
        items: list[tuple[ecdsa.PublicKey, bytes, ecdsa.Signature]] = []
        positions: list[int] = []
        prepared: list[tuple[_Pending, str, Optional[str], object]] = []
        for index, (item, key, kind) in enumerate(kinds):
            if kind == "ticket":
                vcek = self.tickets.lookup(item.tenant, key)
            else:
                ok, payload = self._proven[key]
                if not ok:
                    _msg, slug = payload
                    registry.counter(
                        "sev.chain_failures", reason=slug
                    ).inc()
                    prepared.append((item, kind, f"chain:{slug}", None))
                    continue
                vcek = payload
            items.append((vcek, item.report.body(), item.report.signature))
            positions.append(len(prepared))
            prepared.append((item, kind, None, (key, vcek)))
        sig_ok = ecdsa.verify_batch(items)
        for ok, pos in zip(sig_ok, positions):
            item, kind, _reason, extra = prepared[pos]
            if not ok:
                prepared[pos] = (item, kind, "report-signature", extra)
        elapsed = self.sim.now - start
        batch_size = len(batch)
        registry.counter("verifier.batches").inc()
        registry.histogram("verifier.batch_size").observe(batch_size)
        registry.histogram("verifier.service_ms").observe(elapsed)
        queue_hist = registry.histogram("verifier.queue_ms")
        for item, kind, reason, extra in prepared:
            accepted = reason is None
            if accepted and kind != "ticket":
                key, vcek = extra
                self.tickets.issue(item.tenant, key, vcek)
            if kind == "ticket":
                registry.counter("verifier.tickets_resumed").inc()
            elif kind == "amortized":
                registry.counter("verifier.chain_amortized").inc()
            registry.counter(
                "verifier.requests",
                outcome="accepted" if accepted else "rejected",
            ).inc()
            queue_ms = start - item.enqueued_at
            queue_hist.observe(queue_ms)
            self.completed += 1
            item.done.succeed(
                VerifyVerdict(
                    accepted=accepted,
                    reason=reason,
                    resumed=kind == "ticket",
                    chain_amortized=kind != "walk",
                    queue_ms=queue_ms,
                    service_ms=elapsed,
                    batch_size=batch_size,
                )
            )


def verify_report_serial(
    sim: Simulator,
    report: AttestationReport,
    chain: tuple[Certificate, ...],
    trusted_ark: ecdsa.PublicKey,
    *,
    cost: Optional[CostModel] = None,
) -> Generator:
    """The pre-service baseline: one full walk + scalar verify per report.

    No batching, no chain amortization, no tickets — every report pays
    :attr:`CostModel.cert_chain_verify_ms` plus
    :attr:`CostModel.report_verify_ms`, exactly what the paper's §6.1
    attestation server does per request.  Process value:
    :class:`VerifyVerdict`.  The ``attest_throughput`` benchmark measures
    this path against :class:`VerifierService` at identical verdicts.
    """
    cost = cost if cost is not None else DEFAULT_COST_MODEL
    start = sim.now
    yield sim.timeout(
        cost.sample(cost.cert_chain_verify_ms + cost.report_verify_ms)
    )
    registry = metrics.default_registry()
    try:
        vcek = verify_chain(chain, trusted_ark)
    except ChainError as exc:
        registry.counter("sev.chain_failures", reason=exc.reason).inc()
        accepted, reason = False, f"chain:{exc.reason}"
    else:
        if report.verify(vcek):
            accepted, reason = True, None
        else:
            accepted, reason = False, "report-signature"
    registry.counter(
        "verifier.serial_requests",
        outcome="accepted" if accepted else "rejected",
    ).inc()
    return VerifyVerdict(
        accepted=accepted,
        reason=reason,
        resumed=False,
        chain_amortized=False,
        queue_ms=0.0,
        service_ms=sim.now - start,
        batch_size=1,
    )
