"""The AMD key hierarchy: ARK → ASK → VCEK.

Real guest owners do not hold a pinned VCEK: they hold AMD's public Root
Key (ARK) and verify a certificate chain — ARK self-signed, the SEV
signing key (ASK) signed by the ARK, and the chip-unique VCEK signed by
the ASK — before trusting the signature on an attestation report.  The
paper's attestation server does this with AMD's ``sev-guest`` scripts
(§6.1); this module reproduces the chain with our ECDSA.

Certificates are a minimal TBS (to-be-signed) structure: subject, role,
public key, issuer — enough to exercise every verification failure mode
(wrong issuer, broken signature, role confusion, truncated chain).
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass

from repro import perf
from repro.crypto import ecdsa
from repro.sev.attestation import AttestationReport


def _default_hierarchy_capacity() -> int:
    raw = os.environ.get("REPRO_HIERARCHY_CACHE", "").strip()
    try:
        return max(1, int(raw)) if raw else 64
    except ValueError:
        return 64


#: hierarchies are deterministic in the chip seed, so every Machine built
#: on the same chip (the whole Fig. 9 fleet) shares one keygen cost.
#: Capacity must cover the fleet's distinct chips or keygen thrashes —
#: tune with ``REPRO_HIERARCHY_CACHE`` or :func:`set_hierarchy_capacity`;
#: ``cache.certchain.hierarchy.{hits,misses,evictions}`` counters on the
#: metrics registry make thrash visible instead of silent.
_HIERARCHY_CACHE = perf.LRUCache(
    "certchain.hierarchy", capacity=_default_hierarchy_capacity()
)

#: proven chains, content-addressed by the chain's own bytes: a fleet's
#: thousands of reports arrive under a handful of distinct VCEK chains,
#: so each chain pays the three-signature walk exactly once
_CHAIN_PROOF_CACHE = perf.LRUCache("certchain.proof", capacity=256)


def set_hierarchy_capacity(capacity: int) -> None:
    """Re-bound the hierarchy cache (shrinking evicts LRU chips)."""
    _HIERARCHY_CACHE.resize(capacity)


def hierarchy_cache_stats() -> dict[str, int]:
    """Occupancy and hit/miss traffic of the hierarchy keygen cache."""
    return _HIERARCHY_CACHE.stats()


class ChainError(Exception):
    """Certificate-chain validation failure.

    ``reason`` is a stable slug (``length`` / ``roles`` /
    ``untrusted-root`` / ``ark-self-signature`` / ``ask-signature`` /
    ``vcek-signature``) used as the ``sev.chain_failures{reason}``
    metric label, so fleets can tell a truncated chain from a forged one
    without parsing messages.
    """

    def __init__(self, message: str, reason: str = "invalid"):
        super().__init__(message)
        self.reason = reason


@dataclass(frozen=True)
class Certificate:
    """A signed binding of (subject, role) to a public key."""

    subject: str
    role: str  #: "ark" | "ask" | "vcek"
    public_key: ecdsa.PublicKey
    issuer: str
    signature: ecdsa.Signature

    def tbs(self) -> bytes:
        subject = self.subject.encode()
        issuer = self.issuer.encode()
        role = self.role.encode()
        return (
            struct.pack("<H", len(subject))
            + subject
            + struct.pack("<H", len(role))
            + role
            + self.public_key.to_bytes()
            + struct.pack("<H", len(issuer))
            + issuer
        )

    @classmethod
    def issue(
        cls,
        subject: str,
        role: str,
        public_key: ecdsa.PublicKey,
        issuer: str,
        issuer_key: ecdsa.SigningKey,
    ) -> "Certificate":
        unsigned = cls(
            subject=subject,
            role=role,
            public_key=public_key,
            issuer=issuer,
            signature=ecdsa.Signature(1, 1),  # placeholder, replaced below
        )
        return cls(
            subject=subject,
            role=role,
            public_key=public_key,
            issuer=issuer,
            signature=issuer_key.sign(unsigned.tbs()),
        )

    def verify_signed_by(self, issuer_public: ecdsa.PublicKey) -> bool:
        return ecdsa.verify(issuer_public, self.tbs(), self.signature)


@dataclass(frozen=True)
class AmdKeyHierarchy:
    """The three keys and their certificates for one chip."""

    ark_key: ecdsa.SigningKey
    ask_key: ecdsa.SigningKey
    vcek_key: ecdsa.SigningKey
    ark_cert: Certificate
    ask_cert: Certificate
    vcek_cert: Certificate

    @classmethod
    def generate(cls, chip_seed: bytes) -> "AmdKeyHierarchy":
        """Derive a deterministic hierarchy for a chip.

        The ARK/ASK model AMD's product-line keys; the VCEK is derived
        from the chip-unique seed, as on real parts.  The result is a
        pure function of ``chip_seed`` (frozen dataclass, deterministic
        ECDSA), so it is served content-addressed when caches are on.
        """
        cached = _HIERARCHY_CACHE.get(chip_seed)
        if cached is not None:
            return cached
        hierarchy = cls._generate_uncached(chip_seed)
        _HIERARCHY_CACHE.put(chip_seed, hierarchy)
        return hierarchy

    @classmethod
    def _generate_uncached(cls, chip_seed: bytes) -> "AmdKeyHierarchy":
        ark_key = ecdsa.SigningKey.from_seed(b"amd-ark")
        ask_key = ecdsa.SigningKey.from_seed(b"amd-ask-milan")
        vcek_key = ecdsa.SigningKey.from_seed(chip_seed)
        ark_cert = Certificate.issue(
            "AMD Root Key", "ark", ark_key.public, "AMD Root Key", ark_key
        )
        ask_cert = Certificate.issue(
            "SEV Signing Key (Milan)", "ask", ask_key.public, "AMD Root Key", ark_key
        )
        vcek_cert = Certificate.issue(
            f"VCEK {chip_seed.hex()[:16]}", "vcek", vcek_key.public,
            "SEV Signing Key (Milan)", ask_key,
        )
        return cls(
            ark_key=ark_key,
            ask_key=ask_key,
            vcek_key=vcek_key,
            ark_cert=ark_cert,
            ask_cert=ask_cert,
            vcek_cert=vcek_cert,
        )

    @property
    def chain(self) -> tuple[Certificate, Certificate, Certificate]:
        """The chain as shipped to verifiers: VCEK, ASK, ARK."""
        return (self.vcek_cert, self.ask_cert, self.ark_cert)


def verify_chain(
    chain: tuple[Certificate, ...], trusted_ark: ecdsa.PublicKey
) -> ecdsa.PublicKey:
    """Validate a VCEK→ASK→ARK chain; returns the proven VCEK public key."""
    if len(chain) != 3:
        raise ChainError(
            f"expected a 3-certificate chain, got {len(chain)}", "length"
        )
    vcek, ask, ark = chain
    if (vcek.role, ask.role, ark.role) != ("vcek", "ask", "ark"):
        raise ChainError("certificate roles out of order", "roles")
    if ark.public_key != trusted_ark:
        raise ChainError(
            "root certificate is not the trusted AMD root", "untrusted-root"
        )
    if not ark.verify_signed_by(trusted_ark):
        raise ChainError("ARK self-signature invalid", "ark-self-signature")
    if ask.issuer != ark.subject or not ask.verify_signed_by(ark.public_key):
        raise ChainError("ASK not signed by the ARK", "ask-signature")
    if vcek.issuer != ask.subject or not vcek.verify_signed_by(ask.public_key):
        raise ChainError("VCEK not signed by the ASK", "vcek-signature")
    return vcek.public_key


def chain_bytes(
    chain: tuple[Certificate, ...], trusted_ark: ecdsa.PublicKey
) -> bytes:
    """The content address of a chain *as presented to a verifier*.

    Covers every byte the walk judges — each certificate's TBS and
    signature, plus the root the verifier trusts — so two chains collide
    only if the walk would return the identical verdict for both.
    """
    parts = [trusted_ark.to_bytes()]
    for cert in chain:
        parts.append(cert.tbs())
        parts.append(cert.signature.to_bytes())
    return b"".join(parts)


def prove_chain(
    chain: tuple[Certificate, ...], trusted_ark: ecdsa.PublicKey
) -> ecdsa.PublicKey:
    """:func:`verify_chain` behind the content-addressed proof cache.

    Verdicts — proven VCEK key or the :class:`ChainError` reason — are
    cached keyed by :func:`chain_bytes`, so each distinct chain pays the
    three-ECDSA walk once and every later report under it is a lookup.
    """
    key = chain_bytes(chain, trusted_ark)
    cached = _CHAIN_PROOF_CACHE.get(key)
    if cached is not None:
        verdict, payload = cached
        if verdict:
            return payload
        raise ChainError(*payload)
    try:
        vcek_public = verify_chain(chain, trusted_ark)
    except ChainError as exc:
        _CHAIN_PROOF_CACHE.put(key, (False, (str(exc), exc.reason)))
        raise
    _CHAIN_PROOF_CACHE.put(key, (True, vcek_public))
    return vcek_public


def check_report_with_chain(
    report: AttestationReport,
    chain: tuple[Certificate, ...],
    trusted_ark: ecdsa.PublicKey,
) -> tuple[bool, str | None]:
    """End-to-end verdict plus the rejection reason.

    The reason is ``chain:<slug>`` for a chain-walk failure (also
    counted as ``sev.chain_failures{reason}``) or ``report-signature``
    for a bad report under a proven chain; ``None`` on acceptance.
    """
    from repro.obs.metrics import default_registry

    try:
        vcek_public = prove_chain(chain, trusted_ark)
    except ChainError as exc:
        default_registry().counter(
            "sev.chain_failures", reason=exc.reason
        ).inc()
        return False, f"chain:{exc.reason}"
    if not report.verify(vcek_public):
        return False, "report-signature"
    return True, None


def verify_report_with_chain(
    report: AttestationReport,
    chain: tuple[Certificate, ...],
    trusted_ark: ecdsa.PublicKey,
) -> bool:
    """End-to-end: prove the VCEK through the chain, then check the report.

    Chain-walk failures are no longer swallowed into a bare ``False``:
    the reason lands in ``sev.chain_failures{reason}`` (and callers that
    need it programmatically use :func:`check_report_with_chain`).
    """
    ok, _reason = check_report_with_chain(report, chain, trusted_ark)
    return ok
