"""Guest policy: which SEV generation a guest launches with.

The paper's experiments all run SEV-SNP (§2.2), but Firecracker support
was added for all three modes (§6.1 "support for launching SEV, SEV-ES,
and SEV-SNP guests"), and huge pages interact differently with each
(§6.1), so the mode is a first-class policy knob here too.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class SevMode(enum.Enum):
    """SEV generations, in increasing order of protection."""

    SEV = "sev"  #: memory encryption only
    SEV_ES = "sev-es"  #: + encrypted register state
    SEV_SNP = "sev-snp"  #: + RMP integrity protection

    @property
    def has_rmp(self) -> bool:
        return self is SevMode.SEV_SNP

    @property
    def encrypts_register_state(self) -> bool:
        return self in (SevMode.SEV_ES, SevMode.SEV_SNP)


@dataclass(frozen=True)
class GuestPolicy:
    """Launch policy bits carried into the attestation report."""

    mode: SevMode = SevMode.SEV_SNP
    debug_allowed: bool = False
    migration_allowed: bool = False
    #: minimum firmware API version (major, minor)
    api_version: tuple[int, int] = (1, 51)

    def to_bytes(self) -> bytes:
        flags = (self.debug_allowed << 0) | (self.migration_allowed << 1)
        mode_bits = {"sev": 0, "sev-es": 1, "sev-snp": 2}[self.mode.value]
        return bytes(
            [mode_bits, flags, self.api_version[0], self.api_version[1]]
        )
