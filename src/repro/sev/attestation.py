"""Attestation reports, signed by the chip-unique key (VCEK).

The PSP places a signed report directly in encrypted guest memory
(Fig. 1, step 6); the guest forwards it to the guest owner, who checks
the signature against AMD's key hierarchy and compares the launch digest
with the expected one.  We model the hierarchy with a single ECDSA P-256
chip key whose public half the guest owner trusts out of band.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.crypto import ecdsa

REPORT_VERSION = 2
_REPORT_DATA_LEN = 64
_MEASUREMENT_LEN = 48
_CHIP_ID_LEN = 32


class ReportError(ValueError):
    """Malformed attestation report."""


@dataclass(frozen=True)
class AttestationReport:
    """A parsed (or freshly signed) attestation report."""

    version: int
    policy: bytes  #: 4 policy bytes
    measurement: bytes  #: 48-byte launch digest
    report_data: bytes  #: 64 guest-supplied bytes (nonce, key hash...)
    chip_id: bytes  #: 32-byte platform identity
    signature: ecdsa.Signature

    def body(self) -> bytes:
        return self._encode_body(
            self.version, self.policy, self.measurement, self.report_data, self.chip_id
        )

    @staticmethod
    def _encode_body(
        version: int, policy: bytes, measurement: bytes, report_data: bytes, chip_id: bytes
    ) -> bytes:
        if len(policy) != 4:
            raise ReportError("policy must be 4 bytes")
        if len(measurement) != _MEASUREMENT_LEN:
            raise ReportError("measurement must be 48 bytes")
        if len(report_data) != _REPORT_DATA_LEN:
            raise ReportError("report_data must be 64 bytes")
        if len(chip_id) != _CHIP_ID_LEN:
            raise ReportError("chip_id must be 32 bytes")
        return (
            struct.pack("<I", version) + policy + measurement + report_data + chip_id
        )

    @classmethod
    def sign(
        cls,
        signing_key: ecdsa.SigningKey,
        policy: bytes,
        measurement: bytes,
        report_data: bytes,
        chip_id: bytes,
    ) -> "AttestationReport":
        report_data = report_data.ljust(_REPORT_DATA_LEN, b"\x00")
        body = cls._encode_body(
            REPORT_VERSION, policy, measurement, report_data, chip_id
        )
        return cls(
            version=REPORT_VERSION,
            policy=policy,
            measurement=measurement,
            report_data=report_data,
            chip_id=chip_id,
            signature=signing_key.sign(body),
        )

    def verify(self, vcek_public: ecdsa.PublicKey) -> bool:
        """Check the signature; False for any forgery or bit flip."""
        try:
            return ecdsa.verify(vcek_public, self.body(), self.signature)
        except (ValueError, ReportError):
            return False

    # -- wire format -------------------------------------------------------

    def to_bytes(self) -> bytes:
        return self.body() + self.signature.to_bytes()

    @classmethod
    def from_bytes(cls, raw: bytes) -> "AttestationReport":
        body_len = 4 + 4 + _MEASUREMENT_LEN + _REPORT_DATA_LEN + _CHIP_ID_LEN
        if len(raw) != body_len + 64:
            raise ReportError(f"report must be {body_len + 64} bytes, got {len(raw)}")
        (version,) = struct.unpack_from("<I", raw, 0)
        offset = 4
        policy = raw[offset : offset + 4]
        offset += 4
        measurement = raw[offset : offset + _MEASUREMENT_LEN]
        offset += _MEASUREMENT_LEN
        report_data = raw[offset : offset + _REPORT_DATA_LEN]
        offset += _REPORT_DATA_LEN
        chip_id = raw[offset : offset + _CHIP_ID_LEN]
        offset += _CHIP_ID_LEN
        signature = ecdsa.Signature.from_bytes(raw[offset:])
        return cls(
            version=version,
            policy=policy,
            measurement=measurement,
            report_data=report_data,
            chip_id=chip_id,
            signature=signature,
        )
