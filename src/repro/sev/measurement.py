"""The launch measurement (launch digest).

Each LAUNCH_UPDATE_DATA extends a running SHA-384 digest with the plain
text it measured and the guest-physical address it measured it at — the
chain construction the SNP ABI uses for its launch digest.  LAUNCH_FINISH
freezes the chain; the frozen digest lands in the attestation report and
is compared by the guest owner against an independently computed expected
digest (the job of :mod:`repro.core.digest_tool`).

Simplification vs. the SNP ABI (documented in DESIGN.md): the ABI extends
the digest once per 4 KiB page with several metadata fields; we extend
once per *update command* with (gpa, content hash, length).  Both are
order-sensitive, position-sensitive, content-sensitive chains, which is
the property every experiment and attack in the paper relies on.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field

from repro import perf
from repro.crypto.sha2 import sha384

_INIT = b"\x00" * 48

#: content-addressed page digests, keyed (gpa, sha256(plaintext)).  The
#: digest is key-*independent*, so every guest in a Fig. 12 fleet booting
#: the same image hits it — measurement hashing is paid once per image.
_PAGE_DIGEST_CACHE = perf.LRUCache("measurement.page_digest", capacity=8192)


def page_digest(gpa: int, plaintext: bytes) -> bytes:
    """SHA-384 of one measured region, cached content-addressed.

    With caches disabled this is exactly ``sha384(plaintext)`` — the
    cache key itself is never computed.
    """
    if not perf.caches_enabled():
        return sha384(plaintext, accelerated=True)
    content_key = hashlib.sha256(plaintext).digest()
    return _PAGE_DIGEST_CACHE.get_or_compute(
        (gpa, content_key), lambda: sha384(plaintext, accelerated=True)
    )


@dataclass
class LaunchMeasurement:
    """An extendable, then frozen, launch-digest chain."""

    digest: bytes = _INIT
    finalized: bool = False
    updates: list[tuple[int, int]] = field(default_factory=list)  #: (gpa, length)

    def extend(self, gpa: int, plaintext: bytes, nominal_size: int | None = None) -> None:
        """Fold one measured region into the chain."""
        if self.finalized:
            raise RuntimeError("launch measurement already finalized")
        length = len(plaintext) if nominal_size is None else nominal_size
        record = (
            self.digest
            + page_digest(gpa, plaintext)
            + struct.pack("<QQ", gpa, length)
        )
        # The chain step is 112 bytes; the accelerated path is pinned
        # bit-identical to the from-scratch SHA-384 by tests/crypto.
        self.digest = sha384(record, accelerated=perf.vectorized_enabled())
        self.updates.append((gpa, length))

    def finalize(self) -> bytes:
        """Freeze the chain (LAUNCH_FINISH); returns the launch digest."""
        self.finalized = True
        return self.digest

    def matches(self, expected: bytes) -> bool:
        return self.finalized and self.digest == expected

    @property
    def measured_bytes(self) -> int:
        """Total bytes folded into the root of trust (nominal)."""
        return sum(length for _gpa, length in self.updates)


def expected_digest(regions: list[tuple[int, bytes, int | None]]) -> bytes:
    """Recompute the digest offline from ``(gpa, plaintext, nominal)`` triples.

    This is what the guest owner runs on their own machine — it must agree
    byte-for-byte with the chain the PSP built, for the same inputs in the
    same order.
    """
    chain = LaunchMeasurement()
    for gpa, plaintext, nominal in regions:
        chain.extend(gpa, plaintext, nominal)
    return chain.finalize()
