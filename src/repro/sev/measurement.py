"""The launch measurement (launch digest).

Each LAUNCH_UPDATE_DATA extends a running SHA-384 digest with the plain
text it measured and the guest-physical address it measured it at — the
chain construction the SNP ABI uses for its launch digest.  LAUNCH_FINISH
freezes the chain; the frozen digest lands in the attestation report and
is compared by the guest owner against an independently computed expected
digest (the job of :mod:`repro.core.digest_tool`).

Simplification vs. the SNP ABI (documented in DESIGN.md): the ABI extends
the digest once per 4 KiB page with several metadata fields; we extend
once per *update command* with (gpa, content hash, length).  Both are
order-sensitive, position-sensitive, content-sensitive chains, which is
the property every experiment and attack in the paper relies on.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.crypto.sha2 import sha384

_INIT = b"\x00" * 48


@dataclass
class LaunchMeasurement:
    """An extendable, then frozen, launch-digest chain."""

    digest: bytes = _INIT
    finalized: bool = False
    updates: list[tuple[int, int]] = field(default_factory=list)  #: (gpa, length)

    def extend(self, gpa: int, plaintext: bytes, nominal_size: int | None = None) -> None:
        """Fold one measured region into the chain."""
        if self.finalized:
            raise RuntimeError("launch measurement already finalized")
        length = len(plaintext) if nominal_size is None else nominal_size
        record = (
            self.digest
            + sha384(plaintext, accelerated=True)
            + struct.pack("<QQ", gpa, length)
        )
        self.digest = sha384(record)
        self.updates.append((gpa, length))

    def finalize(self) -> bytes:
        """Freeze the chain (LAUNCH_FINISH); returns the launch digest."""
        self.finalized = True
        return self.digest

    def matches(self, expected: bytes) -> bool:
        return self.finalized and self.digest == expected

    @property
    def measured_bytes(self) -> int:
        """Total bytes folded into the root of trust (nominal)."""
        return sum(length for _gpa, length in self.updates)


def expected_digest(regions: list[tuple[int, bytes, int | None]]) -> bytes:
    """Recompute the digest offline from ``(gpa, plaintext, nominal)`` triples.

    This is what the guest owner runs on their own machine — it must agree
    byte-for-byte with the chain the PSP built, for the same inputs in the
    same order.
    """
    chain = LaunchMeasurement()
    for gpa, plaintext, nominal in regions:
        chain.extend(gpa, plaintext, nominal)
    return chain.finalize()
