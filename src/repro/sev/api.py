"""Per-guest SEV launch state (Fig. 1).

The hypervisor drives a strict state machine through the PSP:

``UNINIT`` → LAUNCH_START → ``LAUNCH_STARTED`` → LAUNCH_UPDATE_DATA* →
LAUNCH_FINISH → ``LAUNCH_FINISHED`` → (guest runs, requests reports)

The crucial security transition is LAUNCH_FINISH: afterwards the
hypervisor can no longer pre-encrypt guest memory (§2.4), so it cannot
sneak code into the root of trust once an attestation report exists.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field

from repro import perf
from repro.crypto.memenc import MemoryEncryptionEngine
from repro.sev.measurement import LaunchMeasurement
from repro.sev.policy import GuestPolicy


class SevLaunchError(Exception):
    """An SEV command was issued in the wrong state."""


class PageCryptoCache:
    """Content-addressed launch-page ciphertext, keyed (key, gpa, content).

    LAUNCH_UPDATE_DATA over the same plaintext at the same address under
    the same guest key always yields the same ciphertext, so repeated
    launches of one image can reuse it instead of re-running the
    encryption engine.  The key includes
    :attr:`MemoryEncryptionEngine.key_id`, so guests with distinct keys
    never share entries; byte-identical output is pinned by the property
    tests.
    """

    def __init__(self, capacity: int = 4096, max_weight: int = 64 * 1024 * 1024):
        self._cache = perf.LRUCache(
            "sev.page_crypto",
            capacity=capacity,
            max_weight=max_weight,
            weigher=len,
        )

    def encrypt(
        self, engine: MemoryEncryptionEngine, pa: int, plaintext: bytes
    ) -> bytes:
        """``engine.encrypt(pa, plaintext)``, served from cache when possible."""
        if not perf.caches_enabled():
            return engine.encrypt(pa, plaintext)
        content_key = hashlib.sha256(plaintext).digest()
        return self._cache.get_or_compute(
            (engine.key_id, pa, content_key),
            lambda: engine.encrypt(pa, plaintext),
        )


#: the process-wide cache every PSP instance shares (cleared alongside all
#: other caches by :func:`repro.perf.clear_all_caches`)
PAGE_CRYPTO_CACHE = PageCryptoCache()


class SevState(enum.Enum):
    UNINIT = "uninit"
    LAUNCH_STARTED = "launch-started"
    LAUNCH_FINISHED = "launch-finished"


@dataclass
class GuestSevContext:
    """Everything the platform tracks for one SEV guest."""

    asid: int
    policy: GuestPolicy = field(default_factory=GuestPolicy)
    state: SevState = SevState.UNINIT
    engine: MemoryEncryptionEngine | None = None
    measurement: LaunchMeasurement = field(default_factory=LaunchMeasurement)
    launch_digest: bytes | None = None
    #: accumulated PSP busy time for this guest's launch (for Fig. 10/12)
    psp_occupancy_ms: float = 0.0

    def require_state(self, expected: SevState, command: str) -> None:
        if self.state is not expected:
            raise SevLaunchError(
                f"{command} issued in state {self.state.value!r} "
                f"(requires {expected.value!r})"
            )
