"""Per-guest SEV launch state (Fig. 1).

The hypervisor drives a strict state machine through the PSP:

``UNINIT`` → LAUNCH_START → ``LAUNCH_STARTED`` → LAUNCH_UPDATE_DATA* →
LAUNCH_FINISH → ``LAUNCH_FINISHED`` → (guest runs, requests reports)

The crucial security transition is LAUNCH_FINISH: afterwards the
hypervisor can no longer pre-encrypt guest memory (§2.4), so it cannot
sneak code into the root of trust once an attestation report exists.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field

from repro import perf
from repro.crypto.memenc import MemoryEncryptionEngine
from repro.sev.measurement import LaunchMeasurement
from repro.sev.policy import GuestPolicy


class SevErrorCode(enum.IntEnum):
    """SEV API status codes (mirrors the firmware's return values).

    Numeric values follow the AMD SEV API specification's status-code
    table so logs line up with real ``ccp``/``sev-dev`` driver output.
    Retry policies (:mod:`repro.faults.retry`) and tests match on these
    codes instead of message strings; :attr:`retryable` partitions them
    into transient conditions a hypervisor should retry (possibly after a
    recovery command such as DF_FLUSH) and hard protocol errors.
    """

    INVALID_PLATFORM_STATE = 0x01
    INVALID_GUEST_STATE = 0x02
    INVALID_CONFIG = 0x04
    INVALID_LENGTH = 0x05
    POLICY_FAILURE = 0x07
    INACTIVE = 0x08
    INVALID_ADDRESS = 0x09
    BAD_MEASUREMENT = 0x0B
    ASID_OWNED = 0x0C
    INVALID_ASID = 0x0D
    WBINVD_REQUIRED = 0x0E
    DF_FLUSH_REQUIRED = 0x0F
    INVALID_GUEST = 0x10
    INVALID_COMMAND = 0x11
    ACTIVE = 0x12
    #: transient hardware error; the spec says the command may be retried
    HWERROR_PLATFORM = 0x13
    #: unsafe hardware error; the platform must not be trusted further
    HWERROR_UNSAFE = 0x14
    UNSUPPORTED = 0x15
    INVALID_PARAM = 0x16
    #: firmware ran out of a resource (we use it for ASID exhaustion)
    RESOURCE_LIMIT = 0x17
    SECURE_DATA_INVALID = 0x19
    #: command mailbox busy (SNP ring-buffer mode); retry after backoff
    BUSY = 0x22

    @property
    def retryable(self) -> bool:
        """Transient conditions worth retrying (after recovery if needed)."""
        return self in _RETRYABLE_CODES

    @property
    def needs_df_flush(self) -> bool:
        """Codes whose recovery path is DF_FLUSH (recycle ASID slots)."""
        return self in _FLUSH_CODES


_RETRYABLE_CODES = frozenset(
    {
        SevErrorCode.BUSY,
        SevErrorCode.HWERROR_PLATFORM,
        SevErrorCode.RESOURCE_LIMIT,
        SevErrorCode.DF_FLUSH_REQUIRED,
        SevErrorCode.WBINVD_REQUIRED,
    }
)
_FLUSH_CODES = frozenset(
    {
        SevErrorCode.RESOURCE_LIMIT,
        SevErrorCode.DF_FLUSH_REQUIRED,
        SevErrorCode.WBINVD_REQUIRED,
    }
)


class SevLaunchError(Exception):
    """An SEV command failed (wrong state, exhausted resource, firmware
    fault...).

    ``code`` carries the structured :class:`SevErrorCode` when the
    failure maps onto an SEV API status, so callers can branch on
    ``exc.code`` / ``exc.retryable`` instead of message strings.
    """

    def __init__(self, message: str, code: "SevErrorCode | None" = None):
        super().__init__(message)
        self.code = code

    @property
    def retryable(self) -> bool:
        return self.code is not None and self.code.retryable


class PageCryptoCache:
    """Content-addressed launch-page ciphertext, keyed (key, gpa, content).

    LAUNCH_UPDATE_DATA over the same plaintext at the same address under
    the same guest key always yields the same ciphertext, so repeated
    launches of one image can reuse it instead of re-running the
    encryption engine.  The key includes
    :attr:`MemoryEncryptionEngine.key_id`, so guests with distinct keys
    never share entries; byte-identical output is pinned by the property
    tests.
    """

    def __init__(self, capacity: int = 4096, max_weight: int = 64 * 1024 * 1024):
        self._cache = perf.LRUCache(
            "sev.page_crypto",
            capacity=capacity,
            max_weight=max_weight,
            weigher=len,
        )

    def encrypt(
        self, engine: MemoryEncryptionEngine, pa: int, plaintext: bytes
    ) -> bytes:
        """``engine.encrypt(pa, plaintext)``, served from cache when possible."""
        if not perf.caches_enabled():
            return engine.encrypt(pa, plaintext)
        content_key = hashlib.sha256(plaintext).digest()
        return self._cache.get_or_compute(
            (engine.key_id, pa, content_key),
            lambda: engine.encrypt(pa, plaintext),
        )


#: the process-wide cache every PSP instance shares (cleared alongside all
#: other caches by :func:`repro.perf.clear_all_caches`)
PAGE_CRYPTO_CACHE = PageCryptoCache()


class SevState(enum.Enum):
    UNINIT = "uninit"
    LAUNCH_STARTED = "launch-started"
    LAUNCH_FINISHED = "launch-finished"


@dataclass
class GuestSevContext:
    """Everything the platform tracks for one SEV guest."""

    asid: int
    policy: GuestPolicy = field(default_factory=GuestPolicy)
    state: SevState = SevState.UNINIT
    engine: MemoryEncryptionEngine | None = None
    measurement: LaunchMeasurement = field(default_factory=LaunchMeasurement)
    launch_digest: bytes | None = None
    #: accumulated PSP busy time for this guest's launch (for Fig. 10/12)
    psp_occupancy_ms: float = 0.0
    #: the VM's tracer/timeline track label, set by the VMM so PSP
    #: command spans can be attributed to their guest by the profiler
    track: str = ""

    def require_state(self, expected: SevState, command: str) -> None:
        if self.state is not expected:
            raise SevLaunchError(
                f"{command} issued in state {self.state.value!r} "
                f"(requires {expected.value!r})",
                code=SevErrorCode.INVALID_GUEST_STATE,
            )
