"""Per-guest SEV launch state (Fig. 1).

The hypervisor drives a strict state machine through the PSP:

``UNINIT`` → LAUNCH_START → ``LAUNCH_STARTED`` → LAUNCH_UPDATE_DATA* →
LAUNCH_FINISH → ``LAUNCH_FINISHED`` → (guest runs, requests reports)

The crucial security transition is LAUNCH_FINISH: afterwards the
hypervisor can no longer pre-encrypt guest memory (§2.4), so it cannot
sneak code into the root of trust once an attestation report exists.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.crypto.memenc import MemoryEncryptionEngine
from repro.sev.measurement import LaunchMeasurement
from repro.sev.policy import GuestPolicy


class SevLaunchError(Exception):
    """An SEV command was issued in the wrong state."""


class SevState(enum.Enum):
    UNINIT = "uninit"
    LAUNCH_STARTED = "launch-started"
    LAUNCH_FINISHED = "launch-finished"


@dataclass
class GuestSevContext:
    """Everything the platform tracks for one SEV guest."""

    asid: int
    policy: GuestPolicy = field(default_factory=GuestPolicy)
    state: SevState = SevState.UNINIT
    engine: MemoryEncryptionEngine | None = None
    measurement: LaunchMeasurement = field(default_factory=LaunchMeasurement)
    launch_digest: bytes | None = None
    #: accumulated PSP busy time for this guest's launch (for Fig. 10/12)
    psp_occupancy_ms: float = 0.0

    def require_state(self, expected: SevState, command: str) -> None:
        if self.state is not expected:
            raise SevLaunchError(
                f"{command} issued in state {self.state.value!r} "
                f"(requires {expected.value!r})"
            )
