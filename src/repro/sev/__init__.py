"""The SEV-SNP launch and attestation protocol.

- :mod:`repro.sev.policy` — guest policy bits (SEV / SEV-ES / SEV-SNP).
- :mod:`repro.sev.measurement` — the launch digest built up by
  LAUNCH_UPDATE_DATA and finalized by LAUNCH_FINISH.
- :mod:`repro.sev.api` — the hypervisor-facing launch state machine
  (Fig. 1 steps 1-4) and per-guest SEV context.
- :mod:`repro.sev.attestation` — attestation reports signed by the PSP's
  chip-unique key (Fig. 1 steps 5-6).
- :mod:`repro.sev.guestowner` — the remote guest owner: validates reports
  and releases wrapped secrets (Fig. 1 steps 7-8).
- :mod:`repro.sev.verifier` — the guest owner *at traffic*: a batched
  verification service with chain-proof caching and session tickets
  (see docs/ATTESTATION.md).
"""

from repro.sev.policy import GuestPolicy, SevMode
from repro.sev.measurement import LaunchMeasurement
from repro.sev.api import GuestSevContext, SevLaunchError, SevState
from repro.sev.attestation import AttestationReport
from repro.sev.guestowner import GuestOwner, AttestationFailure
from repro.sev.certchain import (
    AmdKeyHierarchy,
    Certificate,
    ChainError,
    check_report_with_chain,
    prove_chain,
    verify_chain,
    verify_report_with_chain,
)
from repro.sev.verifier import TicketStore, VerifierService, VerifyVerdict

__all__ = [
    "AmdKeyHierarchy",
    "AttestationFailure",
    "Certificate",
    "ChainError",
    "check_report_with_chain",
    "prove_chain",
    "verify_chain",
    "verify_report_with_chain",
    "TicketStore",
    "VerifierService",
    "VerifyVerdict",
    "AttestationReport",
    "GuestOwner",
    "GuestPolicy",
    "GuestSevContext",
    "LaunchMeasurement",
    "SevLaunchError",
    "SevMode",
    "SevState",
]
