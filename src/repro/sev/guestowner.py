"""The guest owner: remote attestation endpoint (Fig. 1 steps 7-8).

The paper emulates this with a local nginx server running AMD's scripts
(§6.1); here it is an in-process object with the same decision procedure:

1. verify the report signature against the trusted chip key;
2. compare the launch digest against the expected digest computed
   offline by the digest tool (§4.2);
3. check the freshness nonce and the policy;
4. on success, wrap the function's secret to the transport key the guest
   generated *inside encrypted memory* and send it back.

Every failure mode raises :class:`AttestationFailure` with a reason the
tests assert on — these are exactly the three host attacks of §2.6.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto import ecdsa
from repro.crypto.hmacmod import hkdf_expand, hkdf_extract, hmac_sha256
from repro.crypto.sha2 import sha256
from repro.sev.attestation import AttestationReport


class AttestationFailure(Exception):
    """The guest owner rejected an attestation report."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


@dataclass(frozen=True)
class WrappedSecret:
    """A secret wrapped to the guest's transport key."""

    ciphertext: bytes
    mac: bytes

    def unwrap(self, transport_key: bytes) -> bytes:
        key = hkdf_extract(b"guest-owner", transport_key)
        stream = hkdf_expand(key, b"secret-wrap", len(self.ciphertext))
        mac = hmac_sha256(key, self.ciphertext)
        if mac != self.mac:
            raise AttestationFailure("secret MAC mismatch")
        return bytes(a ^ b for a, b in zip(self.ciphertext, stream))


@dataclass
class GuestOwner:
    """Holds the expected measurement and the secret to release."""

    trusted_vcek: ecdsa.PublicKey
    expected_digest: bytes
    secret: bytes
    expected_policy: bytes | None = None
    #: log of validation outcomes, for tests and examples
    audit_log: list[str] = field(default_factory=list)

    @classmethod
    def with_chain(
        cls,
        trusted_ark: ecdsa.PublicKey,
        cert_chain,
        expected_digest: bytes,
        secret: bytes,
        expected_policy: bytes | None = None,
    ) -> "GuestOwner":
        """Construct from AMD's root key and a VCEK certificate chain.

        Real guest owners hold only the ARK; the platform's VCEK is
        proven through the chain (§6.1's attestation server does this
        with AMD's tooling).  Raises
        :class:`repro.sev.certchain.ChainError` if the chain is bad.
        """
        from repro.sev.certchain import prove_chain

        vcek_public = prove_chain(cert_chain, trusted_ark)
        return cls(
            trusted_vcek=vcek_public,
            expected_digest=expected_digest,
            secret=secret,
            expected_policy=expected_policy,
        )

    def validate_and_release(
        self, report: AttestationReport, nonce: bytes, transport_key: bytes
    ) -> WrappedSecret:
        """Run the full validation; returns the wrapped secret on success."""
        if not report.verify(self.trusted_vcek):
            self._reject("signature verification failed (untrusted platform)")
        if report.measurement != self.expected_digest:
            self._reject(
                "launch digest mismatch (unexpected initial guest state)"
            )
        expected_data = self.bind_report_data(nonce, transport_key)
        if report.report_data != expected_data:
            self._reject("report data mismatch (stale nonce or wrong key)")
        if self.expected_policy is not None and report.policy != self.expected_policy:
            self._reject("policy mismatch")
        self.audit_log.append("accepted")
        return self._wrap(transport_key)

    @staticmethod
    def bind_report_data(nonce: bytes, transport_key: bytes) -> bytes:
        """The 64 report-data bytes binding the nonce and transport key."""
        return (sha256(transport_key) + nonce)[:64].ljust(64, b"\x00")

    def _wrap(self, transport_key: bytes) -> WrappedSecret:
        key = hkdf_extract(b"guest-owner", transport_key)
        stream = hkdf_expand(key, b"secret-wrap", len(self.secret))
        ciphertext = bytes(a ^ b for a, b in zip(self.secret, stream))
        return WrappedSecret(ciphertext=ciphertext, mac=hmac_sha256(key, ciphertext))

    def _reject(self, reason: str) -> None:
        self.audit_log.append(f"rejected: {reason}")
        raise AttestationFailure(reason)
