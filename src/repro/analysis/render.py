"""Plain-text rendering for benchmark output (tables and bar charts).

The harness prints the same rows/series the paper's figures show; these
helpers keep that output aligned and readable in a terminal or a CI log.
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """A fixed-width table with a separator rule under the header."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


def ascii_bar_chart(
    items: Sequence[tuple[str, float]],
    width: int = 50,
    unit: str = "ms",
    title: str = "",
) -> str:
    """Horizontal bars scaled to the maximum value."""
    if not items:
        return title
    peak = max(value for _label, value in items) or 1.0
    label_width = max(len(label) for label, _value in items)
    lines = [title] if title else []
    for label, value in items:
        bar = "#" * max(1, round(value / peak * width)) if value > 0 else ""
        lines.append(f"{label.ljust(label_width)}  {bar} {value:.2f} {unit}")
    return "\n".join(lines)
