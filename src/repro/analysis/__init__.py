"""Analysis helpers: statistics, CDFs, and text rendering for the harness."""

from repro.analysis.stats import Summary, cdf_points, linear_fit, summarize
from repro.analysis.render import ascii_bar_chart, format_table
from repro.analysis.export import read_csv, write_csv

__all__ = [
    "Summary",
    "ascii_bar_chart",
    "cdf_points",
    "format_table",
    "linear_fit",
    "read_csv",
    "write_csv",
    "summarize",
]
