"""CSV export for benchmark series.

The paper's artifact drops experiment data under ``severifast/data`` and
regenerates plots from it; our harness mirrors that by writing a CSV per
experiment next to the plain-text table, so downstream plotting (outside
this offline environment) needs no re-running.
"""

from __future__ import annotations

import csv
import pathlib
from typing import Sequence


def write_csv(
    path: pathlib.Path | str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> pathlib.Path:
    """Write one experiment's series; returns the path written."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(list(headers))
        for row in rows:
            writer.writerow(list(row))
    return path


def read_csv(path: pathlib.Path | str) -> tuple[list[str], list[list[str]]]:
    """Read back (headers, rows) — used by tests to round-trip exports."""
    with pathlib.Path(path).open(newline="") as fh:
        reader = csv.reader(fh)
        rows = list(reader)
    if not rows:
        raise ValueError(f"empty CSV: {path}")
    return rows[0], rows[1:]
