"""Statistics used by the benchmark harness (means, stddev, CDFs, fits).

The paper reports averages over 100 runs with one-standard-deviation
error bars (§6.1), CDFs (Fig. 9), and a linear trend (Fig. 12); these
helpers compute exactly those.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class Summary:
    """Mean / stddev / extrema of a sample."""

    count: int
    mean: float
    stddev: float
    minimum: float
    maximum: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.2f} ± {self.stddev:.2f} ms (n={self.count})"


def summarize(samples: Sequence[float]) -> Summary:
    """Mean and population standard deviation (the paper's error bars)."""
    if not samples:
        raise ValueError("cannot summarize an empty sample")
    n = len(samples)
    mean = sum(samples) / n
    variance = sum((x - mean) ** 2 for x in samples) / n
    return Summary(
        count=n,
        mean=mean,
        stddev=math.sqrt(variance),
        minimum=min(samples),
        maximum=max(samples),
    )


def cdf_points(samples: Sequence[float]) -> list[tuple[float, float]]:
    """Empirical CDF as (value, cumulative_fraction) pairs (Fig. 9)."""
    if not samples:
        return []
    ordered = sorted(samples)
    n = len(ordered)
    return [(value, (i + 1) / n) for i, value in enumerate(ordered)]


def percentile(samples: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile.

    The canonical implementation: the chaos harness
    (:func:`repro.faults.chaos.latency_percentile`) and the serverless
    platform percentiles all route through this function, so every
    reported p50/p99 uses the same definition.
    """
    if not samples:
        raise ValueError("cannot take a percentile of an empty sample")
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, math.ceil(pct / 100.0 * len(ordered)) - 1))
    return ordered[rank]


def linear_fit(xs: Sequence[float], ys: Sequence[float]) -> tuple[float, float, float]:
    """Least-squares fit y = a*x + b; returns (slope, intercept, r^2).

    Used to quantify the Fig. 12 claim that average boot time grows
    linearly with concurrency, with slope ≈ total PSP time per launch.
    """
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need two equal-length samples of size >= 2")
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    if sxx == 0:
        raise ValueError("degenerate x sample")
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    syy = sum((y - mean_y) ** 2 for y in ys)
    if syy == 0:
        r2 = 1.0
    else:
        residual = sum((y - (slope * x + intercept)) ** 2 for x, y in zip(xs, ys))
        r2 = 1.0 - residual / syy
    return slope, intercept, r2
