"""ASCII line plots for benchmark series.

The paper's figures are line plots (Fig. 4's linear growth, Fig. 9's
CDFs, Fig. 12's diverging series); these render the same series in a
terminal so `pytest benchmarks/` output is self-contained.
"""

from __future__ import annotations

from typing import Mapping, Sequence

Point = tuple[float, float]

_MARKERS = "*o+x#@"


def ascii_line_chart(
    series: Mapping[str, Sequence[Point]],
    width: int = 64,
    height: int = 16,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render one or more (x, y) series on a shared-axis character grid."""
    points = [p for pts in series.values() for p in pts]
    if not points:
        return title
    xs = [x for x, _y in points]
    ys = [y for _x, y in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (_name, pts) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in pts:
            col = round((x - x_min) / x_span * (width - 1))
            row = height - 1 - round((y - y_min) / y_span * (height - 1))
            grid[row][col] = marker

    lines = []
    if title:
        lines.append(title)
    top_label = f"{y_max:.6g}"
    bottom_label = f"{y_min:.6g}"
    label_width = max(len(top_label), len(bottom_label), len(y_label))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_label.rjust(label_width)
        elif row_index == height - 1:
            prefix = bottom_label.rjust(label_width)
        elif row_index == height // 2 and y_label:
            prefix = y_label.rjust(label_width)
        else:
            prefix = " " * label_width
        lines.append(f"{prefix} |{''.join(row)}")
    axis = " " * label_width + " +" + "-" * width
    lines.append(axis)
    x_axis = f"{x_min:.6g}".ljust(width - 8) + f"{x_max:.6g}".rjust(8)
    lines.append(" " * (label_width + 2) + x_axis)
    if x_label:
        lines.append(" " * (label_width + 2) + x_label.center(width))
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}" for i, name in enumerate(series)
    )
    lines.append(legend)
    return "\n".join(lines)


def ascii_cdf_chart(
    samples_by_series: Mapping[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
    title: str = "",
) -> str:
    """Render empirical CDFs (Fig. 9 style): y is cumulative fraction."""
    series: dict[str, list[Point]] = {}
    for name, samples in samples_by_series.items():
        ordered = sorted(samples)
        n = len(ordered)
        series[name] = [(value, (i + 1) / n) for i, value in enumerate(ordered)]
    return ascii_line_chart(
        series,
        width=width,
        height=height,
        title=title,
        x_label="ms",
        y_label="CDF",
    )
