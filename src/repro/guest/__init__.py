"""Guest-side boot components.

- :mod:`repro.guest.context` — the bundle of per-guest state every boot
  stage operates on.
- :mod:`repro.guest.bootdata` — the boot data structures of Fig. 7
  (mptable, boot_params, cmdline) and the pre-encrypt-or-generate policy.
- :mod:`repro.guest.bootverifier` — SEVeriFast's minimal boot verifier
  (§4.1): C-bit setup, pvalidate, measured direct boot, bzImage loader,
  and the optimized fw_cfg vmlinux loader (§5).
- :mod:`repro.guest.linuxboot` — the bzImage bootstrap loader and the
  Linux kernel from entry point to ``init``, plus remote attestation.
- :mod:`repro.guest.ovmf` — the OVMF firmware model for the QEMU baseline.
- :mod:`repro.guest.svbl` — the verifier as executable bytecode: the
  measured bytes ARE the program that runs (§2.6, made literal).
- :mod:`repro.guest.shims` — td-shim/OVMF-sized comparator shims (§8).
"""

from repro.guest.context import GuestContext
from repro.guest.bootdata import (
    BOOT_STRUCTS,
    BootStructSpec,
    build_boot_params,
    build_mptable,
    parse_boot_params,
    parse_mptable,
    should_preencrypt,
)
from repro.guest.bootverifier import BootVerifier, VerificationError
from repro.guest.linuxboot import LinuxGuest
from repro.guest.ovmf import OvmfFirmware

__all__ = [
    "BOOT_STRUCTS",
    "BootStructSpec",
    "BootVerifier",
    "GuestContext",
    "LinuxGuest",
    "OvmfFirmware",
    "VerificationError",
    "build_boot_params",
    "build_mptable",
    "parse_boot_params",
    "parse_mptable",
    "should_preencrypt",
]
