"""SEVeriFast's minimal boot verifier (§4.1, §5).

The verifier is the *entire* initial guest code — a ~13 KB standalone
binary (a stripped fork of rust-hypervisor-firmware in the paper) that is
pre-encrypted into the root of trust.  It does exactly four things:

1. discover the C-bit position with two ``cpuid`` instructions;
2. build identity-mapped page tables with the C-bit set everywhere and
   ``pvalidate`` every page of guest memory;
3. perform measured direct boot: copy the kernel and initrd from shared
   staging pages into encrypted memory, re-hash them, and compare against
   the pre-encrypted out-of-band hashes;
4. load the kernel (bzImage header walk, or the fw_cfg vmlinux protocol)
   and jump to it.

Everything else — virtio, FAT, PCI, PVH, EFI — was deleted (§5), which is
what keeps pre-encryption under 9 ms (Fig. 10).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro.common import PAGE_SIZE, Blob
from repro.core.config import KernelFormat
from repro.core.oob_hash import HashesFile
from repro.crypto.sha2 import sha256
from repro.formats.bzimage import BzImage, BzImageError
from repro.guest.context import GuestContext
from repro.hw.pagetable import PageTableBuilder, cpuid_c_bit_position
from repro.vmm import debugport
from repro.vmm.fwcfg import FwCfgDevice

#: Size of the stand-alone verifier binary (§4.1: "about 13KB").
VERIFIER_SIZE = 13 * 1024
_BINARY_MAGIC = b"SVBV"


class VerificationError(Exception):
    """A boot component failed its hash check — boot is aborted."""


@dataclass(frozen=True)
class VerifiedKernel:
    """What the verifier hands to the next boot stage."""

    format: KernelFormat
    kernel_addr: int  #: encrypted bzImage copy, or vmlinux entry for ELF
    kernel_len: int
    kernel_nominal: int
    initrd_addr: int
    initrd_len: int
    initrd_nominal: int
    entry: int


def verifier_binary(seed: int = 0xB007) -> Blob:
    """The verifier 'binary': deterministic code-like bytes with a magic.

    Its exact content matters only in that it is *measured*: a different
    binary produces a different launch digest (§2.6 attack 3).
    """
    out = bytearray(_BINARY_MAGIC)
    state = seed
    while len(out) < VERIFIER_SIZE:
        state = (state * 2862933555777941757 + 3037000493) & (2**64 - 1)
        out += state.to_bytes(8, "little")
    return Blob(bytes(out[:VERIFIER_SIZE]), VERIFIER_SIZE, "boot-verifier")


class BootVerifier:
    """Executes the verifier's boot flow inside a guest context."""

    def __init__(self, ctx: GuestContext, fw_cfg: Optional[FwCfgDevice] = None):
        self.ctx = ctx
        self.fw_cfg = fw_cfg

    # -- stage 1+2: protected-memory initialization ------------------------

    def init_protected_memory(self) -> Generator:
        """C-bit discovery, page tables, pvalidate sweep."""
        ctx = self.ctx
        ctx.debug_port.ghcb_msr_write(debugport.MAGIC_VERIFIER_ENTRY)
        ctx.c_bit = cpuid_c_bit_position(sev_enabled=ctx.sev_enabled)

        # pvalidate every page first — any C-bit write to an unvalidated
        # page would raise #VC (§2.2).
        if ctx.memory.rmp is not None:
            yield ctx.sim.timeout(
                ctx.cost.sample(
                    ctx.cost.pvalidate_ms(
                        ctx.config.memory_size, ctx.machine.huge_pages
                    )
                )
            )
            ctx.memory.rmp.pvalidate_all()

        yield ctx.sim.timeout(ctx.cost.sample(ctx.cost.pagetable_setup_ms))
        builder = PageTableBuilder(
            base_pa=ctx.layout.page_table_addr, c_bit=ctx.c_bit
        )
        builder.build(
            lambda pa, data: ctx.memory.guest_write(pa, data, c_bit=ctx.sev_enabled)
        )

    # -- stage 3: measured direct boot ---------------------------------------

    def read_hashes_page(self) -> HashesFile:
        """Read the pre-encrypted out-of-band hashes (part of the RoT)."""
        page = self.ctx.memory.guest_read(
            self.ctx.layout.hashes_addr, PAGE_SIZE, c_bit=self.ctx.sev_enabled
        )
        return HashesFile.from_page(page)

    def _verify_component(
        self,
        name: str,
        stage_addr: int,
        dest_addr: int,
        length: int,
        nominal: int,
        expected_hash: bytes,
    ) -> Generator:
        """Copy one component to encrypted memory, re-hash, compare."""
        ctx = self.ctx
        yield from ctx.copy_to_encrypted(stage_addr, dest_addr, length, nominal)
        digest = yield from ctx.hash_encrypted(dest_addr, length, nominal)
        if digest != expected_hash:
            raise VerificationError(
                f"{name} hash mismatch: the host loaded a tampered component"
            )

    def measured_direct_boot(self, hashes: HashesFile) -> Generator:
        """Verify kernel + initrd; returns a :class:`VerifiedKernel`."""
        ctx = self.ctx
        layout = ctx.layout
        if ctx.config.kernel_format is KernelFormat.BZIMAGE:
            yield from self._verify_component(
                "kernel (bzImage)",
                layout.kernel_stage_addr,
                layout.kernel_copy_addr,
                hashes.kernel_len,
                hashes.kernel_nominal,
                hashes.kernel_hash,
            )
            kernel_addr = layout.kernel_copy_addr
            entry = layout.kernel_copy_addr
        else:
            entry = yield from self._vmlinux_protocol(hashes)
            kernel_addr = layout.kernel_load_addr

        yield from self._verify_component(
            "initrd",
            layout.initrd_stage_addr,
            layout.initrd_load_addr,
            hashes.initrd_len,
            hashes.initrd_nominal,
            hashes.initrd_hash,
        )
        ctx.debug_port.ghcb_msr_write(debugport.MAGIC_VERIFIER_DONE)
        return VerifiedKernel(
            format=ctx.config.kernel_format,
            kernel_addr=kernel_addr,
            kernel_len=hashes.kernel_len,
            kernel_nominal=hashes.kernel_nominal,
            initrd_addr=layout.initrd_load_addr,
            initrd_len=hashes.initrd_len,
            initrd_nominal=hashes.initrd_nominal,
            entry=entry,
        )

    def _vmlinux_protocol(self, hashes: HashesFile) -> Generator:
        """The optimized fw_cfg vmlinux load (§5).

        Each part is copied from shared pages directly to its run address
        in encrypted memory and hashed as it streams past; the combined
        hash must match the out-of-band kernel hash.  This avoids the
        extra full-kernel copy of the naive approach.
        """
        ctx = self.ctx
        if self.fw_cfg is None:
            raise VerificationError("vmlinux boot requires the fw_cfg device")
        hasher_input = bytearray()
        scratch = ctx.layout.kernel_copy_addr  # ehdr/phdr parking spot
        for label, data, nominal in self.fw_cfg.transfer_order():
            if label.startswith("segment"):
                index = int(label[len("segment") :])
                dest = self.fw_cfg.segments[index].paddr
            else:
                dest = scratch
                scratch += ((len(data) + 15) // 16 + 1) * 16
            yield ctx.sim.timeout(ctx.cost.sample(ctx.cost.copy_ms(nominal)))
            ctx.memory.guest_write(dest, data, c_bit=ctx.sev_enabled)
            yield ctx.sim.timeout(ctx.cost.sample(ctx.cost.hash_ms(nominal)))
            hasher_input += data
        digest = sha256(bytes(hasher_input), accelerated=True)
        if digest != hashes.kernel_hash:
            raise VerificationError(
                "vmlinux hash mismatch: the host loaded a tampered kernel"
            )
        return self.fw_cfg.entry

    # -- whole flow ----------------------------------------------------------

    def run(self) -> Generator:
        """The verifier's complete execution; value: VerifiedKernel.

        On a hash mismatch the verifier signals the abort on the debug
        port (the measured-abort path — the guest refuses to run the
        tampered component) before the error propagates to the VMM.
        """
        yield from self.init_protected_memory()
        hashes = self.read_hashes_page()
        try:
            verified = yield from self.measured_direct_boot(hashes)
        except VerificationError:
            self.ctx.debug_port.ghcb_msr_write(debugport.MAGIC_VERIFIER_ABORT)
            raise
        return verified


def load_bzimage_from_memory(ctx: GuestContext, kernel: VerifiedKernel) -> BzImage:
    """Parse the encrypted bzImage copy (the verifier's bzImage loader).

    The loader was modified to read from a memory region rather than a
    file (§5); parsing failures abort the boot.
    """
    raw = ctx.memory.guest_read(
        kernel.kernel_addr, kernel.kernel_len, c_bit=ctx.sev_enabled
    )
    try:
        return BzImage.from_bytes(raw)
    except BzImageError as exc:
        raise VerificationError(f"bzImage failed to parse: {exc}") from exc
