"""Per-guest state shared by all boot stages.

A :class:`GuestContext` bundles the machine, memory, SEV context, VM
configuration, timeline, and debug port, plus generator helpers for the
timed guest-CPU operations (copy to encrypted memory, hash, decompress)
so each stage charges virtual time consistently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

from repro.core.config import VmConfig
from repro.crypto.sha2 import sha256
from repro.hw.memory import GuestMemory
from repro.hw.platform import Machine
from repro.sev.api import GuestSevContext
from repro.vmm.debugport import DebugPort
from repro.vmm.timeline import BootTimeline

if False:  # typing-only import, avoids a cycle at runtime
    from repro.hw.virtio import VirtioBlockDevice


@dataclass
class GuestContext:
    """Everything a running guest can touch."""

    machine: Machine
    config: VmConfig
    memory: GuestMemory
    sev: Optional[GuestSevContext]  #: None for a non-SEV guest
    timeline: BootTimeline
    debug_port: DebugPort = field(init=False)
    #: discovered C-bit position (set by the boot verifier's cpuid probe)
    c_bit: Optional[int] = None
    #: the virtio-blk root device the VMM attached (None = no disk)
    block_device: Optional["VirtioBlockDevice"] = None
    #: the virtio-net NIC (None for kernels without networking, e.g. Lupine)
    net_device: object = None
    #: SEV launch commands retried for this guest (fault recovery)
    launch_retries: int = 0

    def __post_init__(self) -> None:
        from repro.hw.uart import Uart16550

        self.debug_port = DebugPort(self.machine.sim)
        #: the serial console device (ttyS0) the VMM always exposes
        self.uart = Uart16550()

    @property
    def sev_enabled(self) -> bool:
        return self.sev is not None

    @property
    def layout(self):
        return self.config.layout

    @property
    def sim(self):
        return self.machine.sim

    @property
    def cost(self):
        return self.machine.cost

    # -- timed guest-CPU operations ------------------------------------------

    def copy_to_encrypted(
        self, src: int, dst: int, length: int, nominal: int
    ) -> Generator:
        """Copy plain-text staged bytes into encrypted memory.

        The value of the process is the plain-text bytes copied (what the
        guest will hash next).
        """
        yield self.sim.timeout(self.cost.sample(self.cost.copy_ms(nominal)))
        data = self.memory.guest_read(src, length, c_bit=False)
        if self.sev_enabled:
            self.memory.guest_write(dst, data, c_bit=True)
        else:
            self.memory.guest_write(dst, data, c_bit=False)
        return data

    def hash_encrypted(self, pa: int, length: int, nominal: int) -> Generator:
        """SHA-256 over bytes read back from encrypted memory."""
        yield self.sim.timeout(self.cost.sample(self.cost.hash_ms(nominal)))
        data = self.memory.guest_read(pa, length, c_bit=self.sev_enabled)
        return sha256(data, accelerated=True)

    def guest_write_timed(self, pa: int, data: bytes, nominal: int) -> Generator:
        """A timed in-guest write (e.g. loading decompressed segments)."""
        yield self.sim.timeout(self.cost.sample(self.cost.copy_ms(nominal)))
        self.memory.guest_write(pa, data, c_bit=self.sev_enabled)
