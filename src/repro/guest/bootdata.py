"""Boot data structures and the pre-encrypt-or-generate policy (§4.2, Fig. 7).

A microVM kernel expects the VMM to have prepared several structures:

============  ================  ==============  =========  ===============
structure     purpose           struct size     code size  decision
============  ================  ==============  =========  ===============
mptable       CPU config        284B + 20B/CPU  ~4 KB      pre-encrypt
cmdline       kernel args       155B (≤4 KB)    n/a        pre-encrypt
boot_params   system info       4 KB            ~5 KB      pre-encrypt
page tables   paging in guest   4 KB (+2 dirs)  ~2.4 KB    generate
============  ================  ==============  =========  ===============

SEVeriFast pre-encrypts a structure only when the code to generate it in
the boot verifier would be *larger than the structure itself* — every
byte in the verifier binary is pre-encrypted too, so generating a small
structure with big code grows the root of trust instead of shrinking it.

This module builds and parses real mptable / boot_params bytes so the
simulated kernel actually consumes what the VMM pre-encrypted.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.common import PAGE_SIZE

# ---------------------------------------------------------------------------
# Fig. 7: sizes and the decision rule
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BootStructSpec:
    """One row of Fig. 7."""

    name: str
    purpose: str
    struct_size: int  #: bytes for a 1-vCPU guest
    code_size: int | None  #: generator code size; None = cannot generate
    per_cpu: int = 0

    def struct_size_for(self, vcpus: int) -> int:
        return self.struct_size + self.per_cpu * max(0, vcpus - 1)


MPTABLE_SPEC = BootStructSpec(
    "mptable", "CPU config", struct_size=304, code_size=4 * 1024, per_cpu=20
)
CMDLINE_SPEC = BootStructSpec("cmdline", "Kernel args", struct_size=155, code_size=None)
BOOT_PARAMS_SPEC = BootStructSpec(
    "boot_params", "System info", struct_size=4 * 1024, code_size=5 * 1024
)
PAGE_TABLES_SPEC = BootStructSpec(
    "page tables", "Paging in guest", struct_size=4 * 1024, code_size=2400
)

BOOT_STRUCTS: list[BootStructSpec] = [
    MPTABLE_SPEC,
    CMDLINE_SPEC,
    BOOT_PARAMS_SPEC,
    PAGE_TABLES_SPEC,
]


def should_preencrypt(spec: BootStructSpec, vcpus: int = 1) -> bool:
    """§4.2's rule: pre-encrypt iff generating costs more verifier bytes
    than the structure itself (structures nobody can generate — the
    client-supplied cmdline — must be pre-encrypted)."""
    if spec.code_size is None:
        return True
    return spec.struct_size_for(vcpus) < spec.code_size


# ---------------------------------------------------------------------------
# mptable (Intel MultiProcessor Specification, abridged)
# ---------------------------------------------------------------------------

_MP_FLOATING_MAGIC = b"_MP_"
_MP_CONFIG_MAGIC = b"PCMP"
_FPS_SIZE = 16
_CONFIG_HEADER_SIZE = 44
_CPU_ENTRY_SIZE = 20
_BASE_PADDING = 304 - _FPS_SIZE - _CONFIG_HEADER_SIZE - _CPU_ENTRY_SIZE


def _checksum(data: bytes) -> int:
    return (-sum(data)) & 0xFF


def build_mptable(vcpus: int, base_addr: int) -> bytes:
    """Build a floating pointer + config table with one entry per vCPU."""
    if vcpus < 1:
        raise ValueError("at least one CPU entry required")
    cpu_entries = b""
    for apic_id in range(vcpus):
        # type=0 (processor), apic id, apic version, flags (EN | BP for cpu0)
        flags = 0x03 if apic_id == 0 else 0x01
        cpu_entries += struct.pack(
            "<BBBBIIII", 0, apic_id, 0x14, flags, 0x00000F00, 0, 0, 0
        )
    # Bus/IOAPIC/IRQ entries abridged into deterministic padding so the
    # total matches the paper's 304 bytes for one CPU.
    padding = bytes((i * 37) & 0xFF for i in range(_BASE_PADDING))

    body = cpu_entries + padding
    header = bytearray(
        struct.pack(
            "<4sHBB8sIHHIH",
            _MP_CONFIG_MAGIC,
            _CONFIG_HEADER_SIZE + len(body),  # base table length
            4,  # spec revision
            0,  # checksum (patched below)
            b"REPROSEV",  # OEM id
            0,  # product id (truncated)
            0,  # oem table pointer
            vcpus,  # entry count (CPU entries modelled)
            0xFEE00000 & 0xFFFF,  # lapic (low half; abridged)
            0,
        ).ljust(_CONFIG_HEADER_SIZE, b"\x00")
    )
    header[7] = _checksum(bytes(header) + body)

    config_addr = base_addr + _FPS_SIZE
    fps = bytearray(
        struct.pack("<4sIBBBB", _MP_FLOATING_MAGIC, config_addr, 1, 4, 0, 0)
    )
    fps += b"\x00" * (_FPS_SIZE - len(fps))
    fps[10] = _checksum(bytes(fps))
    return bytes(fps) + bytes(header) + body


def parse_mptable(raw: bytes, base_addr: int) -> int:
    """Validate the table and return the CPU count (what Linux reads)."""
    if raw[:4] != _MP_FLOATING_MAGIC:
        raise ValueError("missing _MP_ floating pointer")
    if sum(raw[:_FPS_SIZE]) & 0xFF != 0:
        raise ValueError("floating pointer checksum mismatch")
    (config_addr,) = struct.unpack_from("<I", raw, 4)
    offset = config_addr - base_addr
    if raw[offset : offset + 4] != _MP_CONFIG_MAGIC:
        raise ValueError("missing PCMP config table")
    (length,) = struct.unpack_from("<H", raw, offset + 4)
    table = raw[offset : offset + length]
    if sum(table) & 0xFF != 0:
        raise ValueError("config table checksum mismatch")
    # Entry count lives after magic(4) + length(2) + rev(1) + checksum(1)
    # + OEM id(8) + product id(4) + OEM table pointer(2) in our packing.
    (entry_count,) = struct.unpack_from("<H", raw, offset + 22)
    return entry_count


# ---------------------------------------------------------------------------
# boot_params (the Linux "zero page", abridged to the fields we consume)
# ---------------------------------------------------------------------------

_OFF_E820_ENTRIES = 0x1E8
_OFF_HDR_SIG = 0x202
_OFF_RAMDISK_IMAGE = 0x218
_OFF_RAMDISK_SIZE = 0x21C
_OFF_CMD_LINE_PTR = 0x228
_OFF_CMDLINE_SIZE = 0x238
_OFF_E820_TABLE = 0x2D0
_E820_ENTRY_SIZE = 20

E820_RAM = 1
E820_RESERVED = 2


@dataclass(frozen=True)
class BootParams:
    """The decoded fields the simulated kernel needs."""

    cmdline_ptr: int
    ramdisk_image: int
    ramdisk_size: int
    e820: list[tuple[int, int, int]]  #: (addr, size, type)


def build_boot_params(
    cmdline_ptr: int,
    ramdisk_image: int,
    ramdisk_size: int,
    memory_size: int,
    cmdline_capacity: int = 4096,
) -> bytes:
    """Build the 4 KiB zero page the way the VMM does for direct boot."""
    page = bytearray(PAGE_SIZE)
    page[_OFF_HDR_SIG : _OFF_HDR_SIG + 4] = b"HdrS"
    struct.pack_into("<I", page, _OFF_RAMDISK_IMAGE, ramdisk_image)
    struct.pack_into("<I", page, _OFF_RAMDISK_SIZE, ramdisk_size)
    struct.pack_into("<I", page, _OFF_CMD_LINE_PTR, cmdline_ptr)
    struct.pack_into("<I", page, _OFF_CMDLINE_SIZE, cmdline_capacity)
    e820 = [
        (0x0, 0x9FC00, E820_RAM),  # conventional memory
        (0x9FC00, 0x400, E820_RESERVED),  # EBDA / mptable
        (0x100000, memory_size - 0x100000, E820_RAM),
    ]
    page[_OFF_E820_ENTRIES] = len(e820)
    for i, (addr, size, typ) in enumerate(e820):
        struct.pack_into(
            "<QQI", page, _OFF_E820_TABLE + i * _E820_ENTRY_SIZE, addr, size, typ
        )
    return bytes(page)


def parse_boot_params(page: bytes) -> BootParams:
    """Decode the zero page the way the booting kernel does."""
    if page[_OFF_HDR_SIG : _OFF_HDR_SIG + 4] != b"HdrS":
        raise ValueError("boot_params missing HdrS signature")
    (ramdisk_image,) = struct.unpack_from("<I", page, _OFF_RAMDISK_IMAGE)
    (ramdisk_size,) = struct.unpack_from("<I", page, _OFF_RAMDISK_SIZE)
    (cmdline_ptr,) = struct.unpack_from("<I", page, _OFF_CMD_LINE_PTR)
    count = page[_OFF_E820_ENTRIES]
    e820 = []
    for i in range(count):
        addr, size, typ = struct.unpack_from(
            "<QQI", page, _OFF_E820_TABLE + i * _E820_ENTRY_SIZE
        )
        e820.append((addr, size, typ))
    return BootParams(
        cmdline_ptr=cmdline_ptr,
        ramdisk_image=ramdisk_image,
        ramdisk_size=ramdisk_size,
        e820=e820,
    )
