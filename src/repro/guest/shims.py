"""Boot-shim variants: what generality costs in the root of trust (§8).

The paper contrasts its 13 KB single-purpose verifier with td-shim (a
generic TDX shim with payload flexibility, a heap allocator, ACPI table
construction, and an event logger) and with full OVMF.  Every feature a
shim carries is pre-encrypted into the root of trust, and pre-encryption
time is linear in size (Fig. 4) — so generality is paid for on every
single cold boot.

This module sizes those variants so the ablation bench can quantify the
trade-off on our cost model.  Sizes are engineering estimates in the
ranges the respective projects ship (documented per variant); the
*shape* — minimal shim ≪ generic shim ≪ firmware — is the claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common import Blob, KiB, MiB
from repro.guest.bootverifier import VERIFIER_SIZE


@dataclass(frozen=True)
class ShimVariant:
    """One point in the shim design space."""

    name: str
    size: int  #: bytes pre-encrypted into the root of trust
    features: tuple[str, ...] = ()
    description: str = ""

    def binary(self, seed: int = 0x51) -> Blob:
        """Deterministic stand-in bytes of the variant's size."""
        out = bytearray(self.name.encode()[:8].ljust(8, b"\x00"))
        state = seed ^ self.size
        while len(out) < self.size:
            state = (state * 6364136223846793005 + 1442695040888963407) & (2**64 - 1)
            out += state.to_bytes(8, "little")
        return Blob(bytes(out[: self.size]), self.size, f"shim-{self.name}")


SEVERIFAST_SHIM = ShimVariant(
    name="severifast",
    size=VERIFIER_SIZE,
    features=("measured direct boot", "bzImage loader", "pvalidate", "C-bit setup"),
    description="the paper's minimal boot verifier (§4.1)",
)

TDSHIM_LIKE = ShimVariant(
    name="td-shim-like",
    size=384 * KiB,
    features=(
        "measured direct boot",
        "multiple payload types",
        "heap allocator",
        "ACPI table builder",
        "event logger",
    ),
    description="a generic confidential-VM shim in the td-shim mould (§8)",
)

OVMF_FIRMWARE = ShimVariant(
    name="ovmf",
    size=1 * MiB,
    features=(
        "UEFI PI phases",
        "device drivers",
        "UEFI shell",
        "EFI program execution",
        "measured direct boot",
    ),
    description="the smallest supported OVMF build (§3.1)",
)

SHIM_VARIANTS: tuple[ShimVariant, ...] = (SEVERIFAST_SHIM, TDSHIM_LIKE, OVMF_FIRMWARE)
