"""SVBL — the boot verifier as executable bytecode.

The native :class:`repro.guest.bootverifier.BootVerifier` models the
verifier's *behaviour* in Python; its binary blob is opaque padding.
This module closes that gap: the verifier can instead be a real program
in a tiny domain-specific bytecode, embedded in the measured 13 KB
binary, fetched back out of **encrypted guest memory** at run time, and
interpreted instruction by instruction.

That makes the §2.6 trust argument literal:

- the bytes the PSP measured are the bytes that execute;
- a host that patches the program (say, NOP-ing out the hash checks)
  really does boot a tampered kernel — and really is caught by the guest
  owner, because the patched program has a different launch digest;
- an honest program aborts the boot itself on a hash mismatch.

The ISA is a straight-line boot DSL (no general compute — the real
verifier is similarly single-purpose):

=========  =====================================================
opcode     semantics
=========  =====================================================
CPUID      discover the C-bit position
PVALIDATE  validate all guest memory (SNP)
PGTABLES   build identity page tables at operand A
RDHASHES   load the hashes page from operand A
COPYK      copy staged kernel (A=src, B=dst)
HASHK      hash the kernel copy at A into the scratch register
CMPK       abort unless scratch == expected kernel hash
COPYI      copy staged initrd (A=src, B=dst)
HASHI      hash the initrd copy at A into the scratch register
CMPI       abort unless scratch == expected initrd hash
DONE       hand off to the kernel (A = entry address)
=========  =====================================================

Instructions are 9 bytes: opcode u8 + two u32 operands, little-endian.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass
from typing import Generator, Optional

from repro.common import Blob, PAGE_SIZE
from repro.core.config import GuestLayout, KernelFormat
from repro.core.oob_hash import HashesFile, HashesFileError
from repro.guest.bootverifier import (
    VERIFIER_SIZE,
    VerificationError,
    VerifiedKernel,
)
from repro.guest.context import GuestContext
from repro.hw.pagetable import PageTableBuilder, cpuid_c_bit_position
from repro.vmm import debugport

MAGIC = b"SVBC"
_INSTR_FMT = "<BII"
_INSTR_SIZE = struct.calcsize(_INSTR_FMT)  # 9


class Op(enum.Enum):
    CPUID = 0x01
    PVALIDATE = 0x02
    PGTABLES = 0x03
    RDHASHES = 0x04
    COPYK = 0x10
    HASHK = 0x11
    CMPK = 0x12
    COPYI = 0x20
    HASHI = 0x21
    CMPI = 0x22
    DONE = 0xFF


@dataclass(frozen=True)
class Instr:
    op: Op
    a: int = 0
    b: int = 0


def assemble(program: list[Instr]) -> bytes:
    return b"".join(
        struct.pack(_INSTR_FMT, instr.op.value, instr.a, instr.b)
        for instr in program
    )


def disassemble(code: bytes) -> list[Instr]:
    if len(code) % _INSTR_SIZE:
        raise VerificationError("verifier code is not instruction-aligned")
    program = []
    for offset in range(0, len(code), _INSTR_SIZE):
        opcode, a, b = struct.unpack_from(_INSTR_FMT, code, offset)
        try:
            program.append(Instr(Op(opcode), a, b))
        except ValueError as exc:
            raise VerificationError(
                f"illegal instruction {opcode:#04x} at {offset:#x} — "
                "the verifier crashed"
            ) from exc
    return program


def default_program(layout: GuestLayout) -> list[Instr]:
    """The honest verifier: §4.1's flow, one instruction per step."""
    return [
        Instr(Op.CPUID),
        Instr(Op.PVALIDATE),
        Instr(Op.PGTABLES, layout.page_table_addr),
        Instr(Op.RDHASHES, layout.hashes_addr),
        Instr(Op.COPYK, layout.kernel_stage_addr, layout.kernel_copy_addr),
        Instr(Op.HASHK, layout.kernel_copy_addr),
        Instr(Op.CMPK),
        Instr(Op.COPYI, layout.initrd_stage_addr, layout.initrd_load_addr),
        Instr(Op.HASHI, layout.initrd_load_addr),
        Instr(Op.CMPI),
        Instr(Op.DONE, layout.kernel_copy_addr),
    ]


def malicious_program(layout: GuestLayout) -> list[Instr]:
    """Attack 3's verifier: identical flow with the hash checks removed."""
    return [
        instr
        for instr in default_program(layout)
        if instr.op not in (Op.CMPK, Op.CMPI)
    ]


def build_verifier_image(program: list[Instr], seed: int = 0x51B7) -> Blob:
    """Pack a program into the 13 KB verifier binary.

    Layout: magic, u16 instruction count, code, deterministic padding
    (standing in for the interpreter's own machine code).
    """
    code = assemble(program)
    header = MAGIC + struct.pack("<H", len(program))
    body = header + code
    if len(body) > VERIFIER_SIZE:
        raise VerificationError("program too large for the verifier binary")
    padding = bytearray()
    state = seed
    while len(padding) < VERIFIER_SIZE - len(body):
        state = (state * 6364136223846793005 + 1442695040888963407) & (2**64 - 1)
        padding += state.to_bytes(8, "little")
    blob = body + bytes(padding[: VERIFIER_SIZE - len(body)])
    return Blob(blob, VERIFIER_SIZE, "boot-verifier-bytecode")


def parse_verifier_image(raw: bytes) -> list[Instr]:
    if raw[:4] != MAGIC:
        raise VerificationError("not a bytecode verifier image")
    (count,) = struct.unpack_from("<H", raw, 4)
    code = raw[6 : 6 + count * _INSTR_SIZE]
    if len(code) != count * _INSTR_SIZE:
        raise VerificationError("truncated verifier program")
    return disassemble(code)


class BytecodeVerifier:
    """Interprets the verifier program fetched from measured guest memory."""

    def __init__(self, ctx: GuestContext):
        if ctx.config.kernel_format is not KernelFormat.BZIMAGE:
            raise VerificationError("the bytecode verifier only loads bzImages")
        self.ctx = ctx
        self._hashes: Optional[HashesFile] = None
        self._scratch: bytes = b""

    def _fetch_program(self) -> list[Instr]:
        """Read our own (pre-encrypted, firmware-validated) text segment."""
        raw = self.ctx.memory.guest_read(
            self.ctx.layout.verifier_addr, VERIFIER_SIZE, c_bit=self.ctx.sev_enabled
        )
        return parse_verifier_image(raw)

    def run(self) -> Generator:
        """Execute; process value: :class:`VerifiedKernel`."""
        ctx = self.ctx
        ctx.debug_port.ghcb_msr_write(debugport.MAGIC_VERIFIER_ENTRY)
        program = self._fetch_program()
        entry: Optional[int] = None
        for instr in program:
            entry = yield from self._execute(instr)
            if instr.op is Op.DONE:
                break
        else:
            raise VerificationError("verifier fell off the end without DONE")
        assert self._hashes is not None, "program never read the hashes page"
        ctx.debug_port.ghcb_msr_write(debugport.MAGIC_VERIFIER_DONE)
        return VerifiedKernel(
            format=KernelFormat.BZIMAGE,
            kernel_addr=entry,
            kernel_len=self._hashes.kernel_len,
            kernel_nominal=self._hashes.kernel_nominal,
            initrd_addr=ctx.layout.initrd_load_addr,
            initrd_len=self._hashes.initrd_len,
            initrd_nominal=self._hashes.initrd_nominal,
            entry=entry,
        )

    # -- one instruction ------------------------------------------------------

    def _execute(self, instr: Instr) -> Generator:
        ctx = self.ctx
        op = instr.op
        if op is Op.CPUID:
            ctx.c_bit = cpuid_c_bit_position(sev_enabled=ctx.sev_enabled)
        elif op is Op.PVALIDATE:
            if ctx.memory.rmp is not None:
                yield ctx.sim.timeout(
                    ctx.cost.sample(
                        ctx.cost.pvalidate_ms(
                            ctx.config.memory_size, ctx.machine.huge_pages
                        )
                    )
                )
                ctx.memory.rmp.pvalidate_all()
        elif op is Op.PGTABLES:
            yield ctx.sim.timeout(ctx.cost.sample(ctx.cost.pagetable_setup_ms))
            PageTableBuilder(base_pa=instr.a, c_bit=ctx.c_bit).build(
                lambda pa, data: ctx.memory.guest_write(
                    pa, data, c_bit=ctx.sev_enabled
                )
            )
        elif op is Op.RDHASHES:
            page = ctx.memory.guest_read(instr.a, PAGE_SIZE, c_bit=ctx.sev_enabled)
            try:
                self._hashes = HashesFile.from_page(page)
            except HashesFileError as exc:
                raise VerificationError(f"hashes page unreadable: {exc}") from exc
        elif op in (Op.COPYK, Op.COPYI):
            hashes = self._require_hashes()
            length = hashes.kernel_len if op is Op.COPYK else hashes.initrd_len
            nominal = (
                hashes.kernel_nominal if op is Op.COPYK else hashes.initrd_nominal
            )
            yield from ctx.copy_to_encrypted(instr.a, instr.b, length, nominal)
        elif op in (Op.HASHK, Op.HASHI):
            hashes = self._require_hashes()
            length = hashes.kernel_len if op is Op.HASHK else hashes.initrd_len
            nominal = (
                hashes.kernel_nominal if op is Op.HASHK else hashes.initrd_nominal
            )
            self._scratch = yield from ctx.hash_encrypted(instr.a, length, nominal)
        elif op is Op.CMPK:
            if self._scratch != self._require_hashes().kernel_hash:
                raise VerificationError(
                    "kernel hash mismatch: the host loaded a tampered component"
                )
        elif op is Op.CMPI:
            if self._scratch != self._require_hashes().initrd_hash:
                raise VerificationError(
                    "initrd hash mismatch: the host loaded a tampered component"
                )
        elif op is Op.DONE:
            return instr.a
        return None

    def _require_hashes(self) -> HashesFile:
        if self._hashes is None:
            raise VerificationError("verifier used hashes before RDHASHES")
        return self._hashes
