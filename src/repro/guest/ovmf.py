"""OVMF: the UEFI firmware the QEMU baseline boots through (§2.5, §3.1).

OVMF is Platform-Initialization compliant, so an SEV boot pays for the
full PI phase sequence — SEC, PEI, DXE, BDS — before the only part SEV
actually needs (the boot verifier) runs.  Fig. 3 breaks this down and
shows the verifier is a small slice of >3 s of firmware.

The phase costs are fitted to Fig. 3; the boot-verification subflow is
*the same code* as SEVeriFast's verifier (the semantics are identical —
QEMU/OVMF measured direct boot), so the comparison isolates exactly what
the paper says it does: the redundant UEFI bootstrap and the 1 MiB
pre-encrypted firmware volume versus a 13 KB verifier.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator

from repro.guest.bootverifier import BootVerifier, VerifiedKernel
from repro.guest.context import GuestContext


@dataclass
class OvmfPhaseBreakdown:
    """Per-PI-phase durations (the Fig. 3 stack)."""

    phases: dict[str, float] = field(default_factory=dict)

    @property
    def total_ms(self) -> float:
        return sum(self.phases.values())

    @property
    def verifier_fraction(self) -> float:
        total = self.total_ms
        return self.phases.get("boot_verifier", 0.0) / total if total else 0.0


class OvmfFirmware:
    """Runs the PI phases, then the embedded boot verifier."""

    #: PI phase order (§3.1: the six phases; TSL/RT collapse into the
    #: kernel hand-off and are not separately visible in Fig. 3).
    PI_PHASES = ("sec", "pei", "dxe", "bds")

    def __init__(self, ctx: GuestContext):
        self.ctx = ctx
        self.breakdown = OvmfPhaseBreakdown()

    def _phase_cost(self, phase: str) -> float:
        cost = self.ctx.cost
        return {
            "sec": cost.ovmf_sec_ms,
            "pei": cost.ovmf_pei_ms,
            "dxe": cost.ovmf_dxe_ms,
            "bds": cost.ovmf_bds_ms,
        }[phase]

    def _record(self, phase: str, start: float) -> None:
        """Close out one PI phase: breakdown entry, debug-port mark, and a
        ``firmware.phase`` span the profiler nests under ``firmware``."""
        ctx = self.ctx
        self.breakdown.phases[phase] = ctx.sim.now - start
        ctx.timeline.mark(f"ovmf:{phase}")
        tracer = ctx.sim.tracer
        if tracer is not None:
            tracer.complete(
                phase, "firmware.phase", ctx.timeline.label, start, ctx.sim.now
            )

    def run(self) -> Generator:
        """PI phases + boot verification; value: VerifiedKernel."""
        ctx = self.ctx
        for phase in self.PI_PHASES:
            start = ctx.sim.now
            yield ctx.sim.timeout(ctx.cost.sample(self._phase_cost(phase)))
            self._record(phase, start)

        start = ctx.sim.now
        verifier = BootVerifier(ctx)
        verified: VerifiedKernel = yield from verifier.run()
        self._record("boot_verifier", start)
        return verified
