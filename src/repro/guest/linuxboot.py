"""The guest Linux kernel: bootstrap loader, kernel boot, attestation.

Covers the last three phases of the paper's boot breakdown (§6.1):

- **Bootstrap Loader** — the bzImage stub: decompress the payload (our
  LZ4/gzip codecs really run) and place the vmlinux's ELF segments at
  their run addresses in encrypted memory.
- **Linux Boot** — kernel entry to ``init``: consume boot_params, the
  command line, the mptable, and mount the initrd (a real CPIO parse of
  encrypted memory).  Under SEV-SNP this phase is ~2.3× slower (§6.2).
- **Attestation** — generate a transport key in encrypted memory, obtain
  a signed report from the PSP, and exchange it with the guest owner for
  the workload secret (Fig. 1 steps 5-8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro.core.config import KernelFormat
from repro.crypto.sha2 import sha256
from repro.formats.cpio import CpioArchive, CpioError
from repro.formats.elf import ElfFile, ElfError
from repro.guest.bootdata import parse_boot_params, parse_mptable
from repro.guest.bootverifier import (
    VerificationError,
    VerifiedKernel,
    load_bzimage_from_memory,
)
from repro.guest.context import GuestContext
from repro.sev.guestowner import GuestOwner
from repro.vmm import debugport


#: Magic the synthetic root filesystem carries in its first sector.
ROOTFS_MAGIC = b"ROOTFS42"


@dataclass
class LinuxBootInfo:
    """What the simulated kernel observed on its way to ``init``."""

    cpus: int
    cmdline: str
    initrd_files: int
    init_present: bool
    #: virtio-blk root device probed successfully (None = no disk attached)
    root_device_ok: bool | None = None
    #: files found when mounting the root filesystem (0 = not mounted)
    rootfs_files: int = 0
    #: #VC exits taken during boot (SEV-ES/SNP only)
    vc_exits: int = 0


class LinuxGuest:
    """Drives the guest kernel stages for one boot."""

    def __init__(self, ctx: GuestContext):
        self.ctx = ctx
        self._blk_driver = None

    def _block_driver(self):
        """The kernel's single virtio-blk driver instance (one queue)."""
        from repro.hw.virtio import VirtioBlkDriver

        if self._blk_driver is None:
            self._blk_driver = VirtioBlkDriver(
                memory=self.ctx.memory,
                queue_base=self.ctx.layout.virtio_queue_addr,
                buffer_base=self.ctx.layout.virtio_bounce_addr,
                shared=True,
            )
        return self._blk_driver

    # -- bootstrap loader (bzImage only) -------------------------------------

    def bootstrap_loader(self, kernel: VerifiedKernel) -> Generator:
        """Decompress and load the vmlinux; value: 64-bit entry point."""
        ctx = self.ctx
        image = load_bzimage_from_memory(ctx, kernel)
        yield ctx.sim.timeout(ctx.cost.sample(ctx.cost.bzimage_setup_ms))

        # Nominal decompressed size: rescale init_size by the blob's scale.
        scale = kernel.kernel_len / kernel.kernel_nominal if kernel.kernel_nominal else 1.0
        uncompressed_nominal = max(image.init_size, int(image.init_size / max(scale, 1e-12)))
        yield ctx.sim.timeout(
            ctx.cost.sample(
                ctx.cost.decompress_ms(image.algo.value, uncompressed_nominal)
            )
        )
        vmlinux = image.decompress_payload()
        return self._load_elf_segments(vmlinux)

    def _load_elf_segments(self, vmlinux: bytes) -> int:
        ctx = self.ctx
        try:
            elf = ElfFile.from_bytes(vmlinux)
        except ElfError as exc:
            raise VerificationError(f"decompressed kernel is not a vmlinux: {exc}")
        for seg in elf.segments:
            ctx.memory.guest_write(seg.paddr, seg.data, c_bit=ctx.sev_enabled)
            bss = seg.memsz - seg.filesz
            if bss > 0:
                ctx.memory.guest_write(
                    seg.paddr + seg.filesz, b"\x00" * bss, c_bit=ctx.sev_enabled
                )
        return elf.entry

    # -- kernel entry to init ---------------------------------------------------

    def linux_boot(self, kernel: VerifiedKernel, entry: int) -> Generator:
        """From the 64-bit entry point to executing ``init``."""
        ctx = self.ctx
        ctx.debug_port.ghcb_msr_write(debugport.MAGIC_KERNEL_ENTRY)
        c = ctx.sev_enabled

        # §6.1: every guest kernel must be compiled with SEV support to
        # run in encrypted memory at all.
        if c and not ctx.config.kernel.has_feature("AMD_MEM_ENCRYPT"):
            raise VerificationError(
                "kernel built without CONFIG_AMD_MEM_ENCRYPT cannot run "
                "under SEV (early paging setup needs the C-bit)"
            )

        # Early SNP kernel init: page-state-change the communication pages
        # to shared so the GHCB works and devices can DMA (swiotlb setup).
        if c:
            for addr in (
                ctx.layout.ghcb_addr,
                ctx.layout.virtio_queue_addr,
                ctx.layout.virtio_bounce_addr,
                ctx.layout.net_tx_queue_addr,
                ctx.layout.net_rx_queue_addr,
                ctx.layout.net_tx_buffer_addr,
                ctx.layout.net_rx_buffer_addr,
            ):
                ctx.memory.guest_share_region(addr, 4096)

        params = parse_boot_params(
            ctx.memory.guest_read(ctx.layout.boot_params_addr, 4096, c_bit=c)
        )
        raw_cmdline = ctx.memory.guest_read(params.cmdline_ptr, 4096, c_bit=c)
        cmdline = raw_cmdline.split(b"\x00", 1)[0].decode(errors="replace")

        mptable_len = 304 + 20 * max(0, ctx.config.vcpus - 1)
        cpus = parse_mptable(
            ctx.memory.guest_read(ctx.layout.mptable_addr, mptable_len, c_bit=c),
            ctx.layout.mptable_addr,
        )

        initrd_raw = ctx.memory.guest_read(
            params.ramdisk_image, params.ramdisk_size, c_bit=c
        )
        try:
            archive = CpioArchive.from_bytes(initrd_raw)
        except CpioError as exc:
            raise VerificationError(f"initrd failed to unpack: {exc}") from exc
        init_present = archive.find("init") is not None

        console = self._console()
        console.writeln(f"Linux version 6.4.0 (repro) on {ctx.config.kernel.name}")
        console.writeln(f"Command line: {cmdline}")
        if ctx.sev is not None:
            console.writeln(
                f"Memory Encryption Features active: AMD {ctx.sev.policy.mode.value.upper()}"
            )
        console.writeln(f"smp: Brought up 1 node, {cpus} CPU(s)")

        # Probe the virtio-blk root device through shared bounce buffers
        # (the swiotlb path an SEV guest must take), then mount the root
        # filesystem with real sector reads.
        root_device_ok = None
        rootfs_files = 0
        if ctx.block_device is not None:
            root_device_ok = self._probe_root_device()
            console.writeln(
                "virtio_blk virtio0: vda detected"
                if root_device_ok
                else "virtio_blk virtio0: probe FAILED"
            )
            if root_device_ok:
                rootfs_files = self._mount_root()
                if rootfs_files:
                    console.writeln(
                        "VFS: Mounted root (sfs filesystem) readonly on device vda."
                    )
        console.writeln(f"Unpacking initramfs... {len(archive.entries)} entries")

        duration = ctx.config.kernel.linux_boot_ms
        duration *= ctx.cost.linux_boot_factor(
            ctx.sev.policy.mode if ctx.sev else None
        )
        yield ctx.sim.timeout(ctx.cost.sample(duration))

        console.writeln("Run /init as init process")
        vc_exits = console.vc_exits + self._signal_init()
        return LinuxBootInfo(
            cpus=cpus,
            cmdline=cmdline,
            initrd_files=len(archive.entries),
            init_present=init_present,
            root_device_ok=root_device_ok,
            rootfs_files=rootfs_files,
            vc_exits=vc_exits,
        )

    def _mount_root(self) -> int:
        """Mount the SFS root through virtio sector reads; returns the
        file count (0 if the disk carries no recognisable filesystem)."""
        from repro.formats.sfs import SfsError, SfsReader
        from repro.hw.virtio import SECTOR_SIZE, VIRTIO_BLK_S_OK

        ctx = self.ctx
        driver = self._block_driver()

        def read_sector(index: int) -> bytes:
            status, data = driver.read(ctx.block_device, index, SECTOR_SIZE)
            if status != VIRTIO_BLK_S_OK:
                raise SfsError(f"I/O error reading sector {index}")
            return data

        try:
            reader = SfsReader(read_sector)
        except SfsError:
            return 0
        return len(reader.files)

    def _console(self):
        """The serial console; routed through the GHCB under SEV-ES/SNP."""
        from repro.hw.uart import SerialConsole

        ctx = self.ctx
        ghcb = None
        if ctx.sev is not None and ctx.sev.policy.mode.encrypts_register_state:
            from repro.hw.ghcb import GhcbProtocol

            ghcb = GhcbProtocol(memory=ctx.memory, ghcb_addr=ctx.layout.ghcb_addr)
        return SerialConsole(uart=ctx.uart, ghcb=ghcb)

    def _probe_root_device(self) -> bool:
        """Read the root filesystem's first sector via virtio-blk."""
        from repro.hw.virtio import VIRTIO_BLK_S_OK

        ctx = self.ctx
        if not ctx.config.kernel.has_feature("VIRTIO_BLK"):
            return False  # no driver compiled in: /dev/vda never appears
        driver = self._block_driver()
        status, sector0 = driver.read(ctx.block_device, sector=0, length=512)
        return status == VIRTIO_BLK_S_OK and sector0.startswith(ROOTFS_MAGIC)

    def _signal_init(self) -> int:
        """The init-exec debug event; via #VC for SEV-ES/SNP guests."""
        ctx = self.ctx
        if ctx.sev is not None and ctx.sev.policy.mode.encrypts_register_state:
            from repro.hw.ghcb import GhcbProtocol

            ghcb = GhcbProtocol(memory=ctx.memory, ghcb_addr=ctx.layout.ghcb_addr)
            ghcb.outb(0x80, debugport.MAGIC_INIT_EXEC)
            ctx.debug_port.outb(debugport.MAGIC_INIT_EXEC)
            return ghcb.total_exits
        ctx.debug_port.outb(debugport.MAGIC_INIT_EXEC)
        return 0

    # -- remote attestation -------------------------------------------------------

    def attest(self, owner: GuestOwner, nonce: Optional[bytes] = None) -> Generator:
        """Full attestation exchange; value: the released secret bytes."""
        ctx = self.ctx
        if ctx.sev is None:
            raise VerificationError("attestation requires an SEV guest")
        if not ctx.config.kernel.has_feature("SEV_GUEST"):
            raise VerificationError(
                "kernel lacks CONFIG_SEV_GUEST: no /dev/sev-guest device "
                "to request attestation reports through (§6.1)"
            )
        if nonce is None:
            nonce = sha256(b"nonce" + ctx.sev.asid.to_bytes(8, "little"))[:32]
        # Transport key generated inside encrypted guest memory (§2.6).
        transport_key = sha256(
            b"transport" + ctx.sev.asid.to_bytes(8, "little") + nonce
        )
        report_data = GuestOwner.bind_report_data(nonce, transport_key)
        report = yield from ctx.machine.psp.attestation_report(ctx.sev, report_data)
        # Network round trip + server-side validation + secret wrap.
        yield ctx.sim.timeout(ctx.cost.sample(ctx.cost.attestation_network_ms))
        if ctx.net_device is not None:
            wrapped = self._exchange_over_network(owner, report, nonce, transport_key)
        else:
            wrapped = owner.validate_and_release(report, nonce, transport_key)
        secret = wrapped.unwrap(transport_key)
        ctx.debug_port.outb(debugport.MAGIC_ATTESTATION_DONE)
        return secret

    def _exchange_over_network(self, owner, report, nonce, transport_key):
        """Ship the report to the owner through the virtio-net device.

        The frame carries the report, the nonce, and the transport key
        reference (standing in for the guest's *public* wrapping key; the
        private half never leaves encrypted memory).  The owner's answer
        is the wrapped secret or a denial.
        """
        import struct as _struct

        from repro.sev.attestation import AttestationReport
        from repro.sev.guestowner import AttestationFailure, WrappedSecret
        from repro.hw.virtionet import VirtioNetDriver

        ctx = self.ctx

        def server(frame: bytes) -> bytes:
            try:
                (report_len,) = _struct.unpack("<H", frame[:2])
                incoming = AttestationReport.from_bytes(frame[2 : 2 + report_len])
                offset = 2 + report_len
                frame_nonce = frame[offset : offset + 32]
                frame_key = frame[offset + 32 : offset + 64]
                wrapped = owner.validate_and_release(incoming, frame_nonce, frame_key)
            except AttestationFailure as exc:
                return b"NO" + str(exc).encode()
            except (ValueError, _struct.error) as exc:
                return b"NO" + f"malformed request: {exc}".encode()
            return (
                b"OK"
                + _struct.pack("<H", len(wrapped.ciphertext))
                + wrapped.ciphertext
                + wrapped.mac
            )

        ctx.net_device.endpoint = server
        driver = VirtioNetDriver(
            memory=ctx.memory,
            tx_queue_base=ctx.layout.net_tx_queue_addr,
            rx_queue_base=ctx.layout.net_rx_queue_addr,
            tx_buffer=ctx.layout.net_tx_buffer_addr,
            rx_buffer=ctx.layout.net_rx_buffer_addr,
            shared=True,
        )
        raw_report = report.to_bytes()
        request = (
            _struct.pack("<H", len(raw_report)) + raw_report + nonce + transport_key
        )
        response = driver.request(ctx.net_device, request)
        if response is None:
            raise AttestationFailure("no response from the guest owner")
        if response[:2] == b"NO":
            raise AttestationFailure(response[2:].decode(errors="replace"))
        (ct_len,) = _struct.unpack("<H", response[2:4])
        ciphertext = response[4 : 4 + ct_len]
        mac = response[4 + ct_len : 4 + ct_len + 32]
        return WrappedSecret(ciphertext=ciphertext, mac=mac)
