"""Structured tracing for the discrete-event simulation.

The paper's headline figures are observability claims: Fig. 10 breaks a
boot into phases, Fig. 12 shows launches serializing on the PSP.  This
module is the lens that makes those claims inspectable on any run: a
:class:`Tracer` attached to a :class:`~repro.sim.engine.Simulator`
records named spans against the virtual clock — process lifetimes,
``Resource`` wait/hold intervals, one span per PSP command, boot-phase
transitions, serverless invocations — plus counter time series (queue
depth, in-use slots) and point events.

Everything is keyed by *track*: a display row, mapped to a Chrome
trace-event ``tid`` on export so `chrome://tracing` / Perfetto render
each resource, VM, and process on its own line.  With no tracer attached
the instrumentation hooks throughout the repository reduce to a single
``is None`` check, so untraced runs pay nothing.

Exports:

- :meth:`Tracer.to_chrome_trace` — the Chrome trace-event JSON format
  (``ph: "X"`` complete events, ``"C"`` counters, ``"i"`` instants,
  ``"M"`` thread-name metadata), timestamps in microseconds.
- :meth:`Tracer.summary` — a flamegraph-style plain-text rollup:
  per-category/per-name totals with proportional bars, resource
  utilization, and per-VM phase breakdowns.

Categories used by the built-in instrumentation:

===============  ======================================================
``process``      one span per :class:`Process` lifetime
``resource.wait``  ``request()`` issued -> slot granted
``resource.hold``  slot granted -> ``release()``
``psp``          one span per PSP command (LAUNCH_*, DF_FLUSH, ...),
                 tagged with ASID and nominal byte count
``boot.phase``   :class:`~repro.vmm.timeline.BootTimeline` phases
``invocation``   serverless invocations, tagged cold/warm/restored
``fault``        retry backoff intervals (``retry:<label>``) on the
                 ``faults`` track; injected faults appear as instants
                 and ``faults.*`` counters, totals in ``fault_counters``
===============  ======================================================
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Simulator


@dataclass
class Span:
    """One named interval in virtual time.

    ``end`` is ``None`` while the span is open; exports close open spans
    at the current clock so a truncated run still produces valid output.
    """

    name: str
    category: str
    track: str
    start: float
    end: Optional[float] = None
    args: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else self.start) - self.start


@dataclass
class Instant:
    """A point event (e.g. a debug-port mark)."""

    name: str
    track: str
    ts: float
    args: dict[str, Any] = field(default_factory=dict)


class Tracer:
    """Collects spans/counters/instants against a simulator's clock.

    Attach with :meth:`Simulator.trace` (or assign ``sim.tracer``); every
    instrumented subsystem then records automatically.
    """

    def __init__(self, sim: "Simulator"):
        from repro import perf

        self.sim = sim
        self.spans: list[Span] = []
        self.instants: list[Instant] = []
        #: counter name -> [(ts, value), ...] time series
        self.counters: dict[str, list[tuple[float, float]]] = {}
        self._track_seq: dict[str, int] = {}
        #: active invocation trace context (duck-typed: needs a
        #: ``trace_id`` attribute).  While set, every span/instant
        #: recorded is stamped with ``args["trace_id"]`` — the hook
        #: :func:`repro.obs.otrace.propagate` uses to follow one
        #: invocation across placement, boot, PSP, and failover hops.
        #: ``None`` (the default) records exactly as before.
        self.context: Any = None
        #: stream-level labels (e.g. ``{"cell": "3"}``) attached to
        #: :meth:`export_spans` output; :func:`merge_span_streams` folds
        #: them into every merged span so multi-host fleet shards stay
        #: unambiguous.  Empty by default (and then not exported).
        self.labels: dict[str, str] = {}
        #: fault-layer counters (injected/detected/retried/aborted and
        #: per-site breakdowns), mirrored from an attached
        #: :class:`~repro.faults.plan.FaultPlan`; rendered as the
        #: ``[faults]`` summary section
        self.fault_counters: dict[str, int] = {}
        #: wall-clock perf counters at attach time, so this tracer
        #: reports only the crypto/cache activity of *its* run
        self._perf_baseline = perf.counters_snapshot()

    def perf_counters(self) -> dict[str, int]:
        """Crypto/cache counters accumulated since this tracer attached.

        Process-global ``crypto.*`` / ``cache.*`` counters (vectorized
        bytes, cache hits/misses) from the unified metrics registry,
        delta'd against the attach-time snapshot.  Other registry
        counters (``sim.*``, ``psp.*``, ...) are excluded — this section
        is specifically the wall-clock crypto/cache story; ``repro
        metrics`` exports the rest.
        """
        from repro import perf

        return {
            name: value
            for name, value in perf.counters_delta(self._perf_baseline).items()
            if name.startswith(("crypto.", "cache."))
        }

    # -- recording -----------------------------------------------------------

    def begin(
        self, name: str, category: str, track: str, **args: Any
    ) -> Span:
        """Open a span at the current virtual time."""
        ctx = self.context
        if ctx is not None and category != "resource.hold":
            # resource.hold spans for queued waiters are begun from the
            # *releasing* process's frame (see Resource._grant_traced),
            # so stamping them here would attribute the hold to the
            # wrong invocation; everything else begins in-frame.
            args.setdefault("trace_id", ctx.trace_id)
        span = Span(name, category, track, self.sim.now, None, args)
        self.spans.append(span)
        return span

    def end(self, span: Span, **args: Any) -> Span:
        """Close a span at the current virtual time."""
        span.end = self.sim.now
        if args:
            span.args.update(args)
        return span

    def complete(
        self,
        name: str,
        category: str,
        track: str,
        start: float,
        end: float,
        **args: Any,
    ) -> Span:
        """Record an already-finished span."""
        ctx = self.context
        if ctx is not None and category != "resource.hold":
            args.setdefault("trace_id", ctx.trace_id)
        span = Span(name, category, track, start, end, args)
        self.spans.append(span)
        return span

    def instant(self, name: str, track: str, **args: Any) -> None:
        ctx = self.context
        if ctx is not None:
            args.setdefault("trace_id", ctx.trace_id)
        self.instants.append(Instant(name, track, self.sim.now, args))

    def counter(self, name: str, value: float) -> None:
        """Append one sample to a counter time series."""
        self.counters.setdefault(name, []).append((self.sim.now, value))

    def fault_note(self, name: str, value: int) -> None:
        """Record the running total of one fault counter.

        Called by :meth:`FaultPlan.note`; keeps the latest total for the
        ``[faults]`` summary section and appends a ``faults.<name>``
        counter sample so fault activity is visible on the trace
        timeline.
        """
        self.fault_counters[name] = int(value)
        self.counter(f"faults.{name}", value)

    def new_track(self, prefix: str) -> str:
        """A unique display row name (``prefix#0``, ``prefix#1``, ...)."""
        seq = self._track_seq.get(prefix, 0)
        self._track_seq[prefix] = seq + 1
        return f"{prefix}#{seq}"

    # -- queries -------------------------------------------------------------

    def closed_spans(self) -> Iterator[Span]:
        for span in self.spans:
            if span.end is not None:
                yield span

    def spans_by(
        self, category: Optional[str] = None, track: Optional[str] = None
    ) -> list[Span]:
        return [
            s
            for s in self.spans
            if (category is None or s.category == category)
            and (track is None or s.track == track)
        ]

    def phase_breakdown(self, track: str) -> dict[str, float]:
        """Per-phase totals for one VM track (mirrors
        :meth:`BootTimeline.breakdown` when tracing was on)."""
        out: dict[str, float] = {}
        for span in self.spans_by(category="boot.phase", track=track):
            if span.end is None:
                continue
            out[span.name] = out.get(span.name, 0.0) + span.duration
        return out

    def resource_utilization(self) -> dict[str, float]:
        """Fraction of the traced interval each resource track was held.

        Computed from ``resource.hold`` spans as busy-time over the
        tracer's observation window (first event to ``sim.now``); a
        capacity-N resource can exceed 1.0.
        """
        window = self._window()
        if window <= 0:
            return {}
        busy: dict[str, float] = {}
        for span in self.spans_by(category="resource.hold"):
            end = span.end if span.end is not None else self.sim.now
            busy[span.track] = busy.get(span.track, 0.0) + (end - span.start)
        return {track: total / window for track, total in busy.items()}

    def queue_depth_series(self, resource_name: str) -> list[tuple[float, float]]:
        return list(self.counters.get(f"{resource_name}.queue_depth", ()))

    def _window(self) -> float:
        starts = [s.start for s in self.spans]
        for series in self.counters.values():
            if series:
                starts.append(series[0][0])
        if not starts:
            return 0.0
        return self.sim.now - min(starts)

    # -- exports -------------------------------------------------------------

    def export_spans(self) -> dict[str, Any]:
        """A JSON-safe span-stream for cross-process merging.

        The plain-data twin of the in-memory tracer: spans (open spans
        are closed at the current clock), instants, counter series, and
        fault-counter totals, plus the clock.  Worker processes in
        :mod:`repro.parallel` ship this back to the parent, which folds
        the shards with :func:`merge_span_streams`.
        """
        now = self.sim.now
        out: dict[str, Any] = {
            "schema": "repro-trace-v1",
            "now": now,
            "spans": [
                [
                    s.name,
                    s.category,
                    s.track,
                    s.start,
                    s.end if s.end is not None else now,
                    dict(s.args),
                ]
                for s in self.spans
            ],
            "instants": [
                [i.name, i.track, i.ts, dict(i.args)] for i in self.instants
            ],
            "counters": {
                name: [[ts, value] for ts, value in series]
                for name, series in self.counters.items()
            },
            "fault_counters": dict(self.fault_counters),
        }
        if self.labels:
            out["labels"] = dict(self.labels)
        return out

    def to_chrome_trace(self) -> dict[str, Any]:
        """The Chrome trace-event JSON document (as a dict).

        Virtual milliseconds become microsecond ``ts``/``dur`` fields, the
        unit `chrome://tracing` and Perfetto expect.  Tracks map to
        ``tid`` rows under a single ``pid`` with thread-name metadata.
        """
        return _chrome_trace(
            self.spans,
            self.instants,
            self.counters,
            self.sim.now,
            self.perf_counters(),
        )

    def to_chrome_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_chrome_trace(), indent=indent)

    def summary(self, width: int = 40) -> str:
        """Flamegraph-style text rollup of where virtual time went."""
        lines: list[str] = ["trace summary", "============="]
        groups: dict[tuple[str, str], tuple[int, float]] = {}
        for span in self.spans:
            end = span.end if span.end is not None else self.sim.now
            key = (span.category, span.name)
            count, total = groups.get(key, (0, 0.0))
            groups[key] = (count + 1, total + (end - span.start))
        if not groups:
            lines.append("(no spans recorded)")
            return "\n".join(lines)
        max_total = max(total for _count, total in groups.values()) or 1.0
        by_cat: dict[str, list[tuple[str, int, float]]] = {}
        for (cat, name), (count, total) in groups.items():
            by_cat.setdefault(cat, []).append((name, count, total))
        for cat in sorted(by_cat):
            lines.append(f"\n[{cat}]")
            rows = sorted(by_cat[cat], key=lambda row: -row[2])
            for name, count, total in rows:
                bar = "#" * max(1, int(round(width * total / max_total)))
                mean = total / count
                lines.append(
                    f"  {name:<28} {total:>10.2f} ms  n={count:<4} "
                    f"mean={mean:>8.2f} ms  {bar}"
                )
        util = self.resource_utilization()
        if util:
            lines.append("\n[resource utilization]")
            for track in sorted(util):
                lines.append(f"  {track:<28} {util[track] * 100:>6.1f}%")
        vm_tracks = sorted(
            {s.track for s in self.spans if s.category == "boot.phase"}
        )
        for track in vm_tracks:
            breakdown = self.phase_breakdown(track)
            if not breakdown:
                continue
            lines.append(f"\n[phases: {track}]")
            for phase, total in sorted(breakdown.items(), key=lambda kv: -kv[1]):
                lines.append(f"  {phase:<28} {total:>10.2f} ms")
        if self.fault_counters:
            lines.append("\n[faults]")
            for name in sorted(self.fault_counters):
                lines.append(f"  {name:<36} {self.fault_counters[name]:>8}")
        perf_counters = self.perf_counters()
        if perf_counters:
            lines.append("\n[crypto/cache] (wall-clock activity this run)")
            for name in sorted(perf_counters):
                lines.append(f"  {name:<36} {perf_counters[name]:>12}")
        return "\n".join(lines)


def _chrome_trace(
    spans: list[Span],
    instants: list[Instant],
    counters: dict[str, list[tuple[float, float]]],
    now: float,
    perf_counters: dict[str, int],
) -> dict[str, Any]:
    """Chrome trace-event document from raw span/instant/counter streams
    (shared by :meth:`Tracer.to_chrome_trace` and :class:`MergedTrace`)."""
    tids: dict[str, int] = {}

    def tid(track: str) -> int:
        if track not in tids:
            tids[track] = len(tids) + 1
        return tids[track]

    events: list[dict[str, Any]] = []
    for span in spans:
        end = span.end if span.end is not None else now
        events.append(
            {
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "ts": span.start * 1000.0,
                "dur": (end - span.start) * 1000.0,
                "pid": 1,
                "tid": tid(span.track),
                "args": dict(span.args),
            }
        )
    for inst in instants:
        events.append(
            {
                "name": inst.name,
                "cat": "instant",
                "ph": "i",
                "s": "t",
                "ts": inst.ts * 1000.0,
                "pid": 1,
                "tid": tid(inst.track),
                "args": dict(inst.args),
            }
        )
    for name, series in counters.items():
        for ts, value in series:
            events.append(
                {
                    "name": name,
                    "cat": "counter",
                    "ph": "C",
                    "ts": ts * 1000.0,
                    "pid": 1,
                    "args": {name: value},
                }
            )
    meta = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": track_tid,
            "args": {"name": track},
        }
        for track, track_tid in tids.items()
    ]
    return {
        "traceEvents": meta + events,
        "displayTimeUnit": "ms",
        "otherData": {
            "clock": "virtual-ms",
            "spans": len(spans),
            "producer": "repro.sim.trace",
            # Wall-clock crypto/cache activity (no virtual timestamps,
            # so it rides in otherData rather than as counter events).
            "perf_counters": perf_counters,
        },
    }


@dataclass
class MergedTrace:
    """Span streams from several shards folded into one trace.

    Duck-types the pieces of :class:`Tracer` the exports and the
    profiler consume (``spans``, ``instants``, ``counters``,
    ``fault_counters``), so ``repro.obs.profiler.profile`` and the
    Chrome export work on a merged parallel run exactly as on a serial
    tracer.
    """

    spans: list[Span] = field(default_factory=list)
    instants: list[Instant] = field(default_factory=list)
    counters: dict[str, list[tuple[float, float]]] = field(default_factory=dict)
    fault_counters: dict[str, int] = field(default_factory=dict)
    now: float = 0.0

    def to_chrome_trace(self) -> dict[str, Any]:
        return _chrome_trace(
            self.spans, self.instants, self.counters, self.now, {}
        )

    def to_chrome_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_chrome_trace(), indent=indent)


def merge_span_streams(
    streams: list[dict[str, Any]],
    offsets: Any = "concat",
    track_prefix: Optional[str] = "shard",
) -> MergedTrace:
    """Fold per-shard :meth:`Tracer.export_spans` streams into one trace.

    ``offsets`` places each shard on the merged virtual timeline:

    - ``"concat"`` (default): shard *i* starts where shard *i-1*'s clock
      ended — the timeline a single serial process would have produced
      if it had run the shards back to back;
    - ``"overlay"``: every shard starts at 0 (all shards share the
      virtual origin, the truth of what each worker simulated);
    - an explicit sequence of per-shard start offsets (virtual ms).

    With ``track_prefix`` (default ``"shard"``), shard *i*'s tracks and
    counter series are renamed ``<prefix><i>/<name>`` so same-named
    tracks from different workers stay on distinct display rows.
    Fault-counter totals add across shards.

    Streams carrying a ``labels`` dict (set via :attr:`Tracer.labels`,
    e.g. ``{"cell": "3"}`` on a fleet shard) have those labels folded
    into every merged span's and instant's args (without overwriting
    same-named args), so spans from different hosts/cells remain
    attributable after the merge.
    """
    if offsets == "concat":
        resolved: list[float] = []
        acc = 0.0
        for stream in streams:
            resolved.append(acc)
            acc += float(stream.get("now", 0.0))
    elif offsets == "overlay":
        resolved = [0.0] * len(streams)
    else:
        resolved = [float(o) for o in offsets]
        if len(resolved) != len(streams):
            raise ValueError(
                f"{len(streams)} streams but {len(resolved)} offsets"
            )
    merged = MergedTrace()
    for i, (stream, offset) in enumerate(zip(streams, resolved)):
        schema = stream.get("schema")
        if schema != "repro-trace-v1":
            raise ValueError(f"unsupported trace stream schema: {schema!r}")

        def rename(name: str) -> str:
            if track_prefix is None:
                return name
            return f"{track_prefix}{i}/{name}"

        labels = stream.get("labels") or {}
        for name, category, track, start, end, args in stream["spans"]:
            args = dict(args)
            if "vm" in args:
                # `vm` span tags are track references (PSP -> VM
                # attribution in the profiler); rename them in step.
                args["vm"] = rename(args["vm"])
            for k, v in labels.items():
                args.setdefault(k, v)
            merged.spans.append(
                Span(
                    name,
                    category,
                    rename(track),
                    start + offset,
                    None if end is None else end + offset,
                    args,
                )
            )
        for name, track, ts, args in stream["instants"]:
            args = dict(args)
            for k, v in labels.items():
                args.setdefault(k, v)
            merged.instants.append(
                Instant(name, rename(track), ts + offset, args)
            )
        for name, series in stream["counters"].items():
            merged.counters.setdefault(rename(name), []).extend(
                (ts + offset, value) for ts, value in series
            )
        for name, value in stream.get("fault_counters", {}).items():
            merged.fault_counters[name] = merged.fault_counters.get(name, 0) + int(
                value
            )
        merged.now = max(merged.now, offset + float(stream.get("now", 0.0)))
    return merged


def validate_chrome_trace(doc: Any) -> list[str]:
    """Schema-check a Chrome trace-event document; returns problems.

    An empty list means the document is structurally valid: required
    top-level keys, per-event required fields by phase type, finite
    non-negative timestamps/durations.  Used by ``make trace-smoke``.
    """
    problems: list[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    for i, evt in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(evt, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = evt.get("ph")
        if ph not in ("X", "C", "i", "M", "B", "E"):
            problems.append(f"{where}: unknown phase {ph!r}")
            continue
        if "name" not in evt or not isinstance(evt["name"], str):
            problems.append(f"{where}: missing name")
        if "pid" not in evt:
            problems.append(f"{where}: missing pid")
        if ph == "M":
            continue
        ts = evt.get("ts")
        if not isinstance(ts, (int, float)) or not math.isfinite(ts) or ts < 0:
            problems.append(f"{where}: bad ts {ts!r}")
        if ph == "X":
            dur = evt.get("dur")
            if (
                not isinstance(dur, (int, float))
                or not math.isfinite(dur)
                or dur < 0
            ):
                problems.append(f"{where}: bad dur {dur!r}")
            if "tid" not in evt:
                problems.append(f"{where}: complete event missing tid")
        if ph == "C" and not isinstance(evt.get("args"), dict):
            problems.append(f"{where}: counter missing args")
    return problems
