"""Discrete-event simulation kernel.

A small, deterministic, generator-based discrete-event engine in the style
of SimPy, built from scratch for this reproduction.  Every timed experiment
in the repository (boot pipelines, PSP contention, serverless traces) runs
on this engine so that virtual time is exact and runs are reproducible.

Public API:

- :class:`Simulator` — event loop with a virtual clock.
- :class:`Event` — one-shot event carrying a value.
- :class:`Process` — a generator driven by the simulator; also an Event.
- :class:`Resource` — FIFO resource with finite capacity (the PSP model
  uses a ``Resource(capacity=1)`` to serialize launch commands).
- :class:`Interrupt` — exception thrown into interrupted processes.
- :class:`Tracer` / :class:`Span` — structured tracing attached via
  :meth:`Simulator.trace`; exports Chrome trace-event JSON and text
  summaries (see :mod:`repro.sim.trace` and docs/TRACING.md).
"""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    Resource,
    SimulationError,
    Simulator,
)
from repro.sim.trace import Span, Tracer, validate_chrome_trace

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Process",
    "Resource",
    "SimulationError",
    "Simulator",
    "Span",
    "Tracer",
    "validate_chrome_trace",
]
