"""Generator-based discrete-event simulation engine with pluggable cores.

Processes are Python generators that ``yield`` events.  A process is
suspended until the yielded event fires, at which point it is resumed with
the event's value (``event.value`` is sent into the generator).  The engine
is fully deterministic: simultaneous events fire in scheduling order.

This is deliberately a small subset of SimPy's semantics — events, timeouts,
processes, FIFO resources, and all-of/any-of conditions — which is all the
boot-time experiments need.

Two interchangeable event cores implement the scheduler (see
docs/ENGINE.md for the design):

- **array** (default): a calendar queue — a dict of per-timestamp record
  buckets plus a small heap of distinct timestamps.  The dispatch loop
  drives process generators *directly* from flat ``(fn, proc, event)``
  records (no per-event callback object, no resume wrapper), timers are
  materialised lazily as records at registration time (``timeout()``
  itself never touches the queue), and same-timestamp records dispatch
  in insertion order, matching the classic ``(t, seq)`` heap order.
- **object**: the legacy binary-heap container (``(t, seq, ...)`` tuples,
  one ``heappush`` per record).  Kept selectable so benches can compare
  the containers; it shares the record format and the entire
  Event/Process/Resource shell with the array core, so both cores
  produce identical event orders, dispatch counts, and metrics.

Select a core with ``REPRO_ENGINE_CORE=object|array`` or explicitly with
``Simulator(core="object")``.  Cancelled deliveries (interrupted waiters)
are tombstoned in place and compacted lazily once they outnumber live
records (``sim.events_tombstoned`` counts them).
"""

from __future__ import annotations

import heapq
import os
from collections import Counter as _Tally, deque
from typing import TYPE_CHECKING, Any, Callable, Generator, Iterable, Optional

from repro.obs import metrics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.plan import FaultPlan
    from repro.sim.trace import Span, Tracer


class SimulationError(RuntimeError):
    """Raised for illegal engine operations (double trigger, bad yield...)."""


class Interrupt(Exception):
    """Thrown into a process that another process interrupts.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot event.

    An event starts *pending*; calling :meth:`succeed` (or :meth:`fail`)
    *triggers* it, scheduling all registered waiters at the current
    simulation time.  Once triggered it cannot be triggered again.

    ``__slots__`` (including the optional attributes the engine's own
    machinery attaches — resource bookkeeping, trace spans) keeps the
    per-event footprint small; events are the single most-allocated
    object in any run.  ``_callbacks`` holds a mix of waiting
    :class:`Process` objects (resumed directly by the dispatch loop) and
    plain callables (invoked with the event); it is ``None`` until the
    first waiter registers, so the common single-waiter path allocates
    exactly one list.
    """

    __slots__ = (
        "sim",
        "name",
        "value",
        "_ok",
        "_callbacks",
        # resource bookkeeping (set by Resource.request); after a grant,
        # _requested_at holds the grant time and _resource_token the
        # owning Resource (None once released)
        "_requested_at",
        "_cancel_hook",
        "_resource_token",
        # tracer spans (set by Resource when a tracer is attached)
        "_trace_wait",
        "_trace_hold",
    )

    #: timers override this with their absolute deadline; ``None`` means
    #: "not a timer" and keeps the hot-path check a single attribute read.
    _deadline: Optional[float] = None

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self.value: Any = None
        self._ok: Optional[bool] = None  # None=pending, True=ok, False=failed
        self._callbacks: Optional[list] = None

    @property
    def triggered(self) -> bool:
        d = self._deadline
        if d is not None and d > self.sim.now:
            return False  # an eager timer is observably pending until its deadline
        return self._ok is not None

    @property
    def ok(self) -> bool:
        return self._ok is True and self.triggered

    def succeed(self, value: Any = None) -> "Event":
        if self._ok is not None:
            raise SimulationError(f"event {self.name!r} already triggered")
        self._ok = True
        self.value = value
        self.sim._schedule_event(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        if self._ok is not None:
            raise SimulationError(f"event {self.name!r} already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._ok = False
        self.value = exception
        self.sim._schedule_event(self)
        return self

    def add_callback(self, callback) -> None:
        """Register a waiter: a plain callable or a :class:`Process`."""
        sim = self.sim
        d = self._deadline
        if d is not None:
            # Eager timer: deliver at the deadline (or now if it passed).
            # The implicit fire was accounted at creation (``_n_timeouts``).
            if isinstance(callback, Process):
                rec = (callback._send, callback, self)
            else:
                rec = (callback, None, self)
            sim._append_at(d if d > sim.now else sim.now, rec)
        elif self._ok is None:
            cbs = self._callbacks
            if cbs is None:
                self._callbacks = [callback]
            else:
                cbs.append(callback)
        else:
            if isinstance(callback, Process):
                rec = (
                    callback._send if self._ok else callback._throw,
                    callback,
                    self,
                )
            else:
                rec = (callback, None, self)
            sim._append_at(sim.now, rec)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending" if not self.triggered else ("ok" if self._ok else "failed")
        name = getattr(self, "name", "")
        return f"<Event {name!r} {state} at t={self.sim.now}>"


class _TimerEvent(Event):
    """A timeout.  Triggered eagerly at creation; delivered at ``_deadline``.

    ``timeout()`` never touches the event queue — the delivery record is
    inserted when a waiter registers, which collapses the classic
    fire-then-resume double dispatch into a single record (counted as one
    dispatch plus one fused fire, preserving ``sim.events_dispatched``).
    The ``name`` class attribute shadows the base slot, making the name
    read-only and saving a per-timer write.
    """

    __slots__ = ("_deadline",)
    name = "timeout"


class Process(Event):
    """A running process.  Completes (as an Event) when its generator returns.

    The generator may yield an :class:`Event` (including another Process
    or a Timeout): the process resumes with ``event.value`` when the
    event fires, or the event's exception is thrown in if the event
    failed.
    """

    __slots__ = ("_gen", "_send", "_throw", "_waiting_on", "_trace_span")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        self.sim = sim
        self.name = name or getattr(gen, "__name__", "process")
        self.value = None
        self._ok = None
        self._callbacks = None
        self._gen = gen
        self._send = gen.send
        self._throw = gen.throw
        self._trace_span = None
        if sim.tracer is not None:
            self._trace_span = sim.tracer.begin(
                self.name, "process", f"proc:{self.name}"
            )
        init = sim._init_event
        self._waiting_on = init
        sim._append_at(sim.now, (self._send, self, init))

    @property
    def is_alive(self) -> bool:
        return self._ok is None

    def _close_trace_span(self, failed: bool = False) -> None:
        span = self._trace_span
        if span is not None and span.end is None:
            span.end = self.sim.now
            if failed:
                span.args["failed"] = True

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        If the process was waiting on an event that supports cancellation
        (e.g. a queued :meth:`Resource.request`) and no other waiter
        remains, the pending request is withdrawn so the resource slot is
        not granted into a process that will never use it.  A pending
        timer delivery becomes a tombstone record, skipped (and counted)
        when its bucket is reached.
        """
        if self._ok is not None:
            raise SimulationError(f"cannot interrupt dead process {self.name!r}")
        sim = self.sim
        target = self._waiting_on
        if target is not None:
            if target._deadline is not None:
                # Waiting on a timer means its delivery record sits in a
                # bucket; it is now a tombstone.  Un-account the implicit
                # fire so dispatch counts stay contractual.
                sim._unfused += 1
                sim._note_tombstone()
            elif target._ok is None:
                cbs = target._callbacks
                if cbs:
                    try:
                        cbs.remove(self)
                    except ValueError:
                        pass
                if not cbs:
                    hook = getattr(target, "_cancel_hook", None)
                    if hook is not None:
                        hook(target)
        evt = _InitEvent(sim)
        evt._ok = False
        evt.value = Interrupt(cause)
        self._waiting_on = evt
        sim._append_at(sim.now, (self._deliver, None, evt))

    def _deliver(self, event: Event) -> None:
        """Cold-path delivery (interrupt injection, legacy callbacks).

        Mirrors the dispatch loop's inline resume logic; hot deliveries
        never come through here.
        """
        if self._ok is not None or self._waiting_on is not event:
            return
        try:
            if event._ok:
                target = self._send(event.value)
            else:
                target = self._throw(event.value)
        except StopIteration as stop:
            _finish(self, True, stop.value)
            return
        except Interrupt:
            # An uncaught interrupt kills the process silently; this mirrors
            # "the process was cancelled" semantics used by the scheduler.
            _finish(self, True, None)
            return
        except Exception as exc:
            _finish(self, False, exc)
            return
        self._waiting_on = target
        try:
            target.add_callback(self)
        except AttributeError:
            _bad_yield(self, target)


def _finish(proc: Process, ok: bool, value: Any) -> None:
    """Complete a process: close its span, trigger it, wake joiners."""
    proc._waiting_on = None
    proc._close_trace_span(failed=not ok)
    proc._ok = ok
    proc.value = value
    proc.sim._schedule_event(proc)


def _bad_yield(proc: Process, target: Any) -> None:
    if isinstance(target, Event):  # pragma: no cover - genuine engine bug
        raise
    _finish(
        proc,
        False,
        SimulationError(
            f"process {proc.name!r} yielded {target!r}, expected an Event"
        ),
    )


class _InitEvent(Event):
    """Internal pre-triggered event used to kick off / interrupt processes."""

    __slots__ = ()

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.name = "init"
        self.value = None
        self._ok = True
        self._callbacks = None


class _Condition(Event):
    """Base for AllOf/AnyOf composite events."""

    __slots__ = ("_events", "_pending")

    def __init__(self, sim: "Simulator", events: Iterable[Event], name: str):
        super().__init__(sim, name)
        self._events = list(events)
        self._pending = 0
        if not self._events:
            self.succeed([])
            return
        for evt in self._events:
            if not isinstance(evt, Event):
                raise SimulationError(f"{name} requires Events, got {evt!r}")
            self._pending += 1
            evt.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when every child event has fired.  Value: list of child values."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, events, "all_of")

    def _on_child(self, event: Event) -> None:
        if self._ok is not None:
            return
        if not event._ok:
            self.fail(event.value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([evt.value for evt in self._events])


class AnyOf(_Condition):
    """Fires when the first child event fires.  Value: (event, value)."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, events, "any_of")

    def _on_child(self, event: Event) -> None:
        if self._ok is not None:
            return
        if not event._ok:
            self.fail(event.value)
            return
        self.succeed((event, event.value))


class Resource:
    """A FIFO resource with finite capacity.

    ``request()`` returns an Event that fires when a slot is granted; the
    holder must call ``release()`` exactly once.  With ``capacity=1`` this
    models a strictly serializing device — the PSP.

    A request that will never be used (its process was interrupted while
    queued) is withdrawn with :meth:`cancel`; :meth:`Process.interrupt`
    does this automatically, so a slot is never granted into a dead
    process and leaked.  Cancellation is lazy: the queue entry is
    tombstoned in place (O(1)) and skipped at grant time; tombstones are
    compacted once they outnumber live entries.

    The request/release fast paths are closures bound in ``__init__`` —
    they capture the queue, the pending-wait buffer, and the simulator's
    current-timestep append so the per-request cost is a handful of
    attribute writes.  Released grant events are recycled through a small
    pool (their identity must not be relied on across a release).  Wait
    times are buffered and folded into the ``sim.resource.wait_ms``
    histogram by a registry collector, keeping ``observe()`` off the
    grant path.
    """

    def __init__(
        self,
        sim: "Simulator",
        capacity: int = 1,
        name: str = "resource",
        trace_name: str | None = None,
    ):
        if capacity < 1:
            raise SimulationError("resource capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        #: display name for trace spans/counter tracks only — lets many
        #: same-named resources (one "psp" per fleet host) stay on
        #: distinct rows in a merged trace while sharing one metrics
        #: label (``resource="psp"``), keeping virtual metrics identical
        #: whether or not hosts carry labels
        self.trace_name = trace_name or name
        self._request_name = f"{name}.request"
        self._in_use = 0
        self._queue: deque[Event] = deque()
        self._rtombs = 0  # tombstoned (lazily cancelled) queue entries
        # Statistics for contention analysis.
        self.total_requests = 0
        self.total_cancels = 0
        self._total_wait_time = 0.0
        self.busy_time = 0.0
        registry = metrics.default_registry()
        m_requests = registry.counter("sim.resource.requests", resource=name)
        self._m_cancels = registry.counter("sim.resource.cancels", resource=name)
        m_queue_depth = registry.gauge("sim.resource.queue_depth", resource=name)
        m_wait = registry.histogram("sim.resource.wait_ms", resource=name)
        self._m_requests = m_requests
        self._m_queue_depth = m_queue_depth
        self._m_wait_ms = m_wait

        queue = self._queue
        pending: list[float] = []
        pool: list[Event] = []
        rself = self
        req_name = self._request_name
        append_now = sim._append_now
        synced = [0]

        def flush() -> None:
            if pending:
                # waits repeat heavily (0.0 for uncontended grants, a few
                # distinct values per wave) — tally first, one bucket
                # lookup per distinct value
                observe_n = m_wait.observe_n
                total = 0.0
                for w, n in _Tally(pending).items():
                    observe_n(w, n)
                    total += w * n
                rself._total_wait_time += total
                pending.clear()
            delta = rself.total_requests - synced[0]
            if delta:
                m_requests.value += delta
                synced[0] = rself.total_requests
            m_queue_depth.value = len(queue) - rself._rtombs

        self._flush = flush
        sim._collectors.append(flush)
        registry.register_collector(flush)

        pool_pop = pool.pop
        pool_append = pool.append
        pend_append = pending.append
        cancel = self.cancel

        def request() -> Event:
            rself.total_requests += 1
            if pool:
                evt = pool_pop()
            else:
                evt = Event.__new__(Event)
                evt.sim = sim
                evt.name = req_name
                evt.value = None
                # constant for this resource's events, pooled along with
                # them — no per-request write
                evt._cancel_hook = cancel
            now = sim.now
            evt._requested_at = now
            if rself._in_use < rself.capacity:
                rself._in_use += 1
                pend_append(0.0)
                evt._resource_token = rself
                evt._ok = True
                evt.value = evt
                return evt
            evt._ok = None
            evt._callbacks = None
            queue.append(evt)
            return evt

        def release(grant: Event) -> None:
            try:
                owner = grant._resource_token
            except AttributeError:
                owner = None
            if owner is not rself:
                raise SimulationError(
                    f"release of {rself.name} without matching grant"
                )
            now = sim.now
            rself.busy_time += now - grant._requested_at
            grant._resource_token = None
            pool_append(grant)
            while queue:
                nxt = queue.popleft()
                waited = nxt._requested_at
                if waited is None:  # tombstoned (lazily cancelled) entry
                    rself._rtombs -= 1
                    continue
                pend_append(now - waited)
                nxt._requested_at = now
                nxt._resource_token = rself
                nxt._ok = True
                nxt.value = nxt
                cbs = nxt._callbacks
                if cbs is not None:
                    nxt._callbacks = None
                    for p in cbs:
                        try:
                            append_now((p._send, p, nxt))
                        except AttributeError:
                            append_now((p, None, nxt))
                return
            rself._in_use -= 1

        self._pend = pending
        self.request = request
        self.release = release
        # Tracing swaps the closures for span-emitting method variants —
        # the fast paths carry zero per-call tracer checks.
        sim._resources.append(self)
        if sim.tracer is not None:
            self._bind_traced()

    def _bind_traced(self) -> None:
        """Swap in the traced request/release paths (idempotent)."""
        self.request = self._request_traced
        self.release = self._release_traced

    # -- read-side statistics -------------------------------------------

    @property
    def total_wait_time(self) -> float:
        self._flush()
        return self._total_wait_time

    @property
    def queue_length(self) -> int:
        return len(self._queue) - self._rtombs

    @property
    def in_use(self) -> int:
        return self._in_use

    # -- cold paths ------------------------------------------------------

    def _request_traced(self) -> Event:
        """Tracer-attached request path: seed-fidelity spans/counters."""
        sim = self.sim
        self.total_requests += 1
        evt = Event(sim, self._request_name)
        evt._requested_at = sim.now
        evt._cancel_hook = self.cancel
        tracer = sim.tracer
        evt._trace_wait = tracer.begin(
            f"{self.trace_name}.wait", "resource.wait", f"{self.trace_name}.queue"
        )
        if self._in_use < self.capacity:
            self._in_use += 1
            self._pend.append(0.0)
            evt._resource_token = self
            evt._ok = True
            evt.value = evt
            self._grant_traced(evt, 0.0)
            return evt
        self._queue.append(evt)
        tracer.counter(f"{self.trace_name}.queue_depth", self.queue_length)
        return evt

    def _release_traced(self, grant: Event) -> None:
        """Tracer-attached release path (no event pooling: spans keep
        event identity meaningful)."""
        try:
            owner = grant._resource_token
        except AttributeError:
            owner = None
        if owner is not self:
            raise SimulationError(f"release of {self.name} without matching grant")
        sim = self.sim
        now = sim.now
        self.busy_time += now - grant._requested_at
        grant._resource_token = None
        tracer = sim.tracer
        hold = getattr(grant, "_trace_hold", None)
        if hold is not None:
            tracer.end(hold)
        queue = self._queue
        append_now = sim._append_now
        while queue:
            nxt = queue.popleft()
            waited = nxt._requested_at
            if waited is None:  # tombstoned (lazily cancelled) entry
                self._rtombs -= 1
                continue
            waited = now - waited
            self._pend.append(waited)
            nxt._requested_at = now
            nxt._resource_token = self
            nxt._ok = True
            nxt.value = nxt
            tracer.counter(f"{self.trace_name}.queue_depth", self.queue_length)
            self._grant_traced(nxt, waited)
            cbs = nxt._callbacks
            if cbs is not None:
                nxt._callbacks = None
                for p in cbs:
                    try:
                        append_now((p._send, p, nxt))
                    except AttributeError:
                        append_now((p, None, nxt))
            return
        self._in_use -= 1
        tracer.counter(f"{self.trace_name}.in_use", self._in_use)

    def _grant_traced(self, evt: Event, waited: float) -> None:
        tracer = self.sim.tracer
        wait_span = getattr(evt, "_trace_wait", None)
        if wait_span is not None:
            tracer.end(wait_span)
        evt._trace_hold = tracer.begin(
            f"{self.trace_name}.hold",
            "resource.hold",
            self.trace_name,
            wait_ms=waited,
        )
        tracer.counter(f"{self.trace_name}.in_use", self._in_use)

    def cancel(self, request: Event) -> None:
        """Withdraw a ``request()`` whose result will never be consumed.

        Still-queued requests are tombstoned in place; already-granted
        requests are released, handing the slot to the next waiter.  A
        request that was already released or cancelled is a no-op, so
        interrupt handling can call this without knowing how far the
        grant got.
        """
        if getattr(request, "_resource_token", None) is self:
            self.release(request)
            return
        if request._ok is not None or request._requested_at is None:
            return  # never queued, already granted+released, or cancelled
        request._requested_at = None
        self.total_cancels += 1
        self._rtombs += 1
        self._m_cancels.inc()
        self.sim._note_tombstone(engine_queue=False)
        if self._rtombs * 2 > len(self._queue):
            # in place: request/release closures capture the deque identity
            live = [e for e in self._queue if e._requested_at is not None]
            self._queue.clear()
            self._queue.extend(live)
            self._rtombs = 0
        self._m_queue_depth.set(self.queue_length)
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.counter(f"{self.trace_name}.queue_depth", self.queue_length)
            wait_span = getattr(request, "_trace_wait", None)
            if wait_span is not None:
                tracer.end(wait_span, cancelled=True)

    def use(self, duration: float) -> Generator:
        """Convenience process body: acquire, hold for ``duration``, release."""
        grant = yield self.request()
        try:
            yield self.sim.timeout(duration)
        finally:
            self.release(grant)


_VALID_CORES = ("array", "object")


def _resolve_core(core: Optional[str]) -> str:
    if core is None:
        core = os.environ.get("REPRO_ENGINE_CORE", "array")
    core = core.strip().lower()
    if core not in _VALID_CORES:
        raise SimulationError(
            f"unknown engine core {core!r}; expected one of {_VALID_CORES}"
        )
    return core


class Simulator:
    """Deterministic event loop with a floating-point virtual clock.

    Time units are **milliseconds** throughout this repository.

    ``Simulator(...)`` is a factory: it returns an :class:`ArraySimulator`
    (calendar-queue core, the default) or an :class:`ObjectSimulator`
    (legacy heap core) depending on the ``core=`` argument or the
    ``REPRO_ENGINE_CORE`` environment variable.  Both cores share this
    class's entire API and produce identical event orders and metrics.
    """

    core = "array"

    def __new__(cls, core: Optional[str] = None):
        if cls is Simulator:
            cls = ArraySimulator if _resolve_core(core) == "array" else ObjectSimulator
        return object.__new__(cls)

    def __init__(self, core: Optional[str] = None):
        self.now: float = 0.0
        registry = metrics.default_registry()
        self._m_dispatched = registry.counter("sim.events_dispatched")
        self._m_processes = registry.counter("sim.processes")
        self._m_timeouts = registry.counter("sim.timeouts")
        self._m_tombstoned = registry.counter("sim.events_tombstoned")
        #: optional :class:`~repro.sim.trace.Tracer`; ``None`` keeps every
        #: instrumentation hook in the repository a single attribute check.
        self.tracer: Optional["Tracer"] = None
        #: optional :class:`~repro.faults.plan.FaultPlan`; ``None`` keeps
        #: every injection site a single attribute check (attach with
        #: :meth:`inject`).
        self.faults: Optional["FaultPlan"] = None
        #: flush hooks (resource wait buffers, lazy counters) run on every
        #: run() exit and whenever the metrics registry is read.
        self._collectors: list[Callable[[], None]] = []
        #: resources rebind their hot paths when a tracer attaches
        self._resources: list[Resource] = []
        #: timer fires whose dispatch was fused into the delivery record
        #: and then cancelled by an interrupt; the net fused-fire count
        #: added to ``sim.events_dispatched`` (so counts match the
        #: classic fire-then-resume accounting) is
        #: ``_n_timeouts - _unfused``, which keeps ``timeout()`` down to
        #: a single counter bump on the hot path.
        self._unfused = 0
        self._tombs = 0  # live tombstones in the engine queue
        self._init_event = _InitEvent(self)
        self._n_timeouts = 0
        sself = self
        synced = [0]

        def timeout(delay: float, value: Any = None) -> Event:
            """An event that fires ``delay`` time units from now."""
            if delay < 0:
                raise SimulationError(f"negative timeout: {delay}")
            evt = _TimerEvent.__new__(_TimerEvent)
            evt.sim = sself
            evt.value = value
            evt._ok = True
            evt._callbacks = ()
            evt._deadline = sself.now + delay
            # One bump accounts both the sim.timeouts metric and the
            # implicit fire (like the pre-calendar-queue engine's
            # creation-time trigger), keeping it off the dispatch loop's
            # timer branch — see ``_unfused``.
            sself._n_timeouts += 1
            return evt

        self.timeout = timeout

        def _sync_counters() -> None:
            delta = sself._n_timeouts - synced[0]
            if delta:
                sself._m_timeouts.value += delta
                synced[0] = sself._n_timeouts

        self._collectors.append(_sync_counters)
        registry.register_collector(_sync_counters)

    def inject(self, plan: "FaultPlan") -> "FaultPlan":
        """Attach (and return) a fault plan for this simulation.

        Instrumented subsystems (PSP commands, guest memory, VMM image
        staging, serverless cold starts) consult ``sim.faults`` at their
        injection sites; the plan's per-site RNG streams plus the
        engine's deterministic scheduling make every fault schedule
        reproducible from the plan seed.
        """
        plan.bind(self)
        self.faults = plan
        return plan

    def trace(self) -> "Tracer":
        """Attach (and return) a :class:`~repro.sim.trace.Tracer`.

        Idempotent: repeated calls return the already-attached tracer.
        """
        from repro.sim.trace import Tracer

        if self.tracer is None:
            self.tracer = Tracer(self)
            for resource in self._resources:
                resource._bind_traced()
        return self.tracer

    # -- scheduling ------------------------------------------------------
    # Core subclasses implement _append_now/_append_at/_push_batch/run.

    def _append_now(self, rec: tuple) -> None:
        raise NotImplementedError

    def _append_at(self, t: float, rec: tuple) -> None:
        raise NotImplementedError

    def _push_batch(self, t: float, recs: list) -> None:
        raise NotImplementedError

    def _schedule_callback(
        self, callback: Callable[[Event], None], event: Event, delay: float = 0.0
    ) -> None:
        self._append_at(self.now + delay, (callback, None, event))

    def _schedule_event(self, event: Event, delay: float = 0.0) -> None:
        cbs = event._callbacks
        if not cbs:
            return
        event._callbacks = None
        ok = event._ok
        recs = []
        for cb in cbs:
            if isinstance(cb, Process):
                recs.append((cb._send if ok else cb._throw, cb, event))
            else:
                recs.append((cb, None, event))
        self._push_batch(self.now + delay, recs)

    def schedule_batch(
        self, items: Iterable[tuple[float, Callable[[Event], None], Event]]
    ) -> int:
        """Batch-insert ``(delay, callback, event)`` entries.

        Groups the entries by absolute timestamp and extends each
        timestamp's bucket once, instead of one queue insertion per
        entry.  Fan-out call sites (an event with many waiters, the
        serverless arrival schedule) use this to keep insertion cost
        per-timestamp rather than per-entry.  Returns the number of
        entries scheduled.
        """
        now = self.now
        groups: dict[float, list] = {}
        n = 0
        for delay, callback, event in items:
            if delay < 0:
                raise SimulationError(f"negative delay in batch: {delay}")
            groups.setdefault(now + delay, []).append((callback, None, event))
            n += 1
        for t in sorted(groups):
            self._push_batch(t, groups[t])
        return n

    def _note_tombstone(self, engine_queue: bool = True) -> None:
        self._m_tombstoned.inc()
        if engine_queue:
            self._tombs += 1
            if self._tombs * 2 > self._pending_records():
                self._compact()

    def _pending_records(self) -> int:
        raise NotImplementedError

    def _compact(self) -> None:
        raise NotImplementedError

    # -- public API ------------------------------------------------------

    def event(self, name: str = "") -> Event:
        return Event(self, name)

    def process(self, gen: Generator, name: str = "") -> Process:
        self._m_processes.inc()
        return Process(self, gen, name)

    def resource(
        self,
        capacity: int = 1,
        name: str = "resource",
        trace_name: str | None = None,
    ) -> Resource:
        return Resource(self, capacity, name, trace_name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def run(self, until: Optional[float] = None) -> float:
        raise NotImplementedError

    def run_process(self, gen: Generator, name: str = "") -> Any:
        """Run a single process to completion and return its value.

        Raises the process's exception if it failed.
        """
        proc = self.process(gen, name)
        self.run()
        if not proc.triggered:
            raise SimulationError(f"process {proc.name!r} deadlocked")
        if not proc.ok:
            raise proc.value
        return proc.value


def _is_live(rec: tuple) -> bool:
    proc = rec[1]
    return proc is None or proc._waiting_on is rec[2]


def _noop(_event: "Event") -> None:
    """Placeholder callback left behind by tombstone compaction."""


#: what compaction swaps in for a dead record.  Dead records are *not*
#: removed: the legacy heap popped them (advancing the clock and the
#: dispatch count) and callers observe both, so compaction must be
#: invisible — it only drops the generator/event references, which is
#: the memory the tombstones were pinning.  A no-op record pops exactly
#: like the dead record it replaces.
_NOOP_REC = (_noop, None, None)


class ArraySimulator(Simulator):
    """Calendar-queue core: per-timestamp record buckets + a time heap.

    ``_cur`` is the current timestep's record list.  Its identity is
    stable for the simulator's lifetime (it is refilled in place), so
    resource/process hot paths capture ``_cur.append`` once.  Records are
    ``(fn, proc, event)``: ``fn`` is the process generator's bound
    ``send``/``throw`` (called directly by the dispatch loop — no resume
    wrapper) or, when ``proc`` is None, a plain callback invoked with the
    event.  A record whose process has moved on (``_waiting_on`` no
    longer matches) is a tombstone and is skipped.
    """

    core = "array"

    def __init__(self, core: Optional[str] = None):
        super().__init__()
        self._cur: list = []  # stable identity: refilled in place, never rebound
        self._cur_idx = 0
        self._buckets: dict[float, list] = {}
        self._times: list[float] = []
        self._append_now = self._cur.append

    def _append_at(self, t: float, rec: tuple) -> None:
        if t <= self.now:
            self._cur.append(rec)
            return
        b = self._buckets.get(t)
        if b is None:
            self._buckets[t] = [rec]
            heapq.heappush(self._times, t)
        else:
            b.append(rec)

    def _push_batch(self, t: float, recs: list) -> None:
        if t <= self.now:
            self._cur.extend(recs)
            return
        b = self._buckets.get(t)
        if b is None:
            self._buckets[t] = list(recs)
            heapq.heappush(self._times, t)
        else:
            b.extend(recs)

    def _pending_records(self) -> int:
        return (
            len(self._cur)
            - self._cur_idx
            + sum(len(b) for b in self._buckets.values())
        )

    def _compact(self) -> None:
        # In place: run()'s bucket memo may alias any bucket, so the
        # lists are filtered without rebinding, and no bucket (or times
        # entry) is ever dropped — see _NOOP_REC for why dead records
        # are swapped rather than removed.
        for b in self._buckets.values():
            b[:] = [rec if _is_live(rec) else _NOOP_REC for rec in b]
        self._tombs = 0

    def run(self, until: Optional[float] = None) -> float:
        """Run until the event queue drains or the clock reaches ``until``.

        An event scheduled exactly at ``until`` still fires (the boundary
        is inclusive); only events strictly later stay queued for a
        subsequent ``run()``.  Returns the final clock value.

        This loop is the single hottest code path in the repository: it
        iterates the current bucket directly (appends during iteration
        extend the same pass), resumes generators with a pre-bound
        ``send``/``throw`` from the record, and inlines waiter
        registration — including the lazy timer insertion, with a
        one-bucket memo for the common all-timers-same-deadline pattern.
        """
        cur = self._cur
        if self._cur_idx:  # resuming after an exception mid-timestep
            del cur[: self._cur_idx]
            self._cur_idx = 0
        buckets = self._buckets
        times = self._times
        pop_t = heapq.heappop
        push_t = heapq.heappush
        cur_append = cur.append  # cur's identity is stable — alias once
        get_bucket = buckets.get
        now = self.now
        fused0 = self._n_timeouts - self._unfused
        records = 0
        count = 0
        last_t: Optional[float] = None
        last_b: Optional[list] = None
        try:
            while True:
                for fn, proc, evt in cur:
                    count += 1
                    if proc is None:
                        fn(evt)
                        continue
                    if proc._waiting_on is not evt:
                        continue  # tombstone: waiter moved on (interrupted)
                    try:
                        target = fn(evt.value)
                    except StopIteration as stop:
                        _finish(proc, True, stop.value)
                        continue
                    except Interrupt:
                        _finish(proc, True, None)
                        continue
                    except Exception as exc:
                        _finish(proc, False, exc)
                        continue
                    proc._waiting_on = target
                    try:
                        d = target._deadline
                    except AttributeError:
                        _bad_yield(proc, target)
                        continue
                    if d is not None:
                        # Timer: insert the delivery record at the deadline
                        # (the implicit fire was accounted at creation).
                        if d > now:
                            send = proc._send
                            if d == last_t:
                                last_b.append((send, proc, target))
                            else:
                                b = get_bucket(d)
                                if b is None:
                                    b = buckets[d] = []
                                    push_t(times, d)
                                b.append((send, proc, target))
                                last_t = d
                                last_b = b
                        else:
                            cur_append((proc._send, proc, target))
                    elif target._ok is None:
                        cbs = target._callbacks
                        if cbs is None:
                            target._callbacks = [proc]
                        else:
                            cbs.append(proc)
                    else:
                        cur_append(
                            (
                                proc._send if target._ok else proc._throw,
                                proc,
                                target,
                            )
                        )
                records += count
                count = 0
                del cur[:]
                if not times:
                    if until is not None and until > now:
                        now = until
                    break
                t = times[0]
                if until is not None and t > until:
                    if until > now:
                        now = until
                    break
                pop_t(times)
                if t == last_t:
                    last_t = None
                now = t
                self.now = t
                cur[:] = buckets.pop(t)
        finally:
            self.now = now
            self._cur_idx = count
            dispatched = records + count + (self._n_timeouts - self._unfused - fused0)
            if dispatched:
                self._m_dispatched.value += dispatched
            for flush in self._collectors:
                flush()
        return now


class ObjectSimulator(Simulator):
    """Legacy binary-heap core: one ``(t, seq, fn, proc, event)`` tuple per
    record, one ``heappush`` per insertion.

    Shares the Event/Process/Resource shell (and therefore the exact
    record semantics, dispatch counting, and tombstone handling) with
    :class:`ArraySimulator`; only the container differs.  The ``seq``
    tiebreaker reproduces insertion order at equal timestamps, which is
    what the array core's bucket order gives structurally.
    """

    core = "object"

    def __init__(self, core: Optional[str] = None):
        super().__init__()
        self._heap: list = []
        self._seq = 0

    def _append_now(self, rec: tuple) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (self.now, self._seq, rec[0], rec[1], rec[2]))

    def _append_at(self, t: float, rec: tuple) -> None:
        if t < self.now:
            t = self.now
        self._seq += 1
        heapq.heappush(self._heap, (t, self._seq, rec[0], rec[1], rec[2]))

    def _push_batch(self, t: float, recs: list) -> None:
        if t < self.now:
            t = self.now
        heap = self._heap
        seq = self._seq
        push = heapq.heappush
        for fn, proc, evt in recs:
            seq += 1
            push(heap, (t, seq, fn, proc, evt))
        self._seq = seq

    def _pending_records(self) -> int:
        return len(self._heap)

    def _compact(self) -> None:
        # In place: run() aliases the heap for the loop's lifetime.  Dead
        # entries keep their (t, seq) slot — swapping in a no-op record
        # preserves heap order, the clock advance, and the dispatch
        # count, while releasing the generator/event references.
        self._heap[:] = [
            entry
            if _is_live((entry[2], entry[3], entry[4]))
            else (entry[0], entry[1], _noop, None, None)
            for entry in self._heap
        ]
        self._tombs = 0

    def run(self, until: Optional[float] = None) -> float:
        """Heap-pop dispatch loop; registration logic mirrors the array core."""
        heap = self._heap
        pop = heapq.heappop
        now = self.now
        fused0 = self._n_timeouts - self._unfused
        records = 0
        try:
            while heap:
                t = heap[0][0]
                if t > now:
                    if until is not None and t > until:
                        if until > now:
                            now = until
                        break
                    now = t
                    self.now = t
                _t, _seq, fn, proc, evt = pop(heap)
                records += 1
                if proc is None:
                    fn(evt)
                    continue
                if proc._waiting_on is not evt:
                    continue
                try:
                    target = fn(evt.value)
                except StopIteration as stop:
                    _finish(proc, True, stop.value)
                    continue
                except Interrupt:
                    _finish(proc, True, None)
                    continue
                except Exception as exc:
                    _finish(proc, False, exc)
                    continue
                proc._waiting_on = target
                try:
                    d = target._deadline
                except AttributeError:
                    _bad_yield(proc, target)
                    continue
                if d is not None:
                    # The implicit fire was accounted at timer creation.
                    self._seq += 1
                    heapq.heappush(
                        heap,
                        (d if d > now else now, self._seq, proc._send, proc, target),
                    )
                elif target._ok is None:
                    cbs = target._callbacks
                    if cbs is None:
                        target._callbacks = [proc]
                    else:
                        cbs.append(proc)
                else:
                    self._seq += 1
                    heapq.heappush(
                        heap,
                        (
                            now,
                            self._seq,
                            proc._send if target._ok else proc._throw,
                            proc,
                            target,
                        ),
                    )
            else:
                if until is not None and until > now:
                    now = until
        finally:
            self.now = now
            dispatched = records + (self._n_timeouts - self._unfused - fused0)
            if dispatched:
                self._m_dispatched.value += dispatched
            for flush in self._collectors:
                flush()
        return now
