"""Generator-based discrete-event simulation engine.

Processes are Python generators that ``yield`` events.  A process is
suspended until the yielded event fires, at which point it is resumed with
the event's value (``event.value`` is sent into the generator).  The engine
is fully deterministic: simultaneous events fire in scheduling order.

This is deliberately a small subset of SimPy's semantics — events, timeouts,
processes, FIFO resources, and all-of/any-of conditions — which is all the
boot-time experiments need.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Generator, Iterable, Optional

from repro.obs import metrics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.plan import FaultPlan
    from repro.sim.trace import Span, Tracer


class SimulationError(RuntimeError):
    """Raised for illegal engine operations (double trigger, bad yield...)."""


class Interrupt(Exception):
    """Thrown into a process that another process interrupts.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot event.

    An event starts *pending*; calling :meth:`succeed` (or :meth:`fail`)
    *triggers* it, scheduling all registered callbacks at the current
    simulation time.  Once triggered it cannot be triggered again.

    ``__slots__`` (including the optional attributes the engine's own
    machinery attaches — timeout payloads, resource bookkeeping, trace
    spans) keeps the per-event footprint small; events are the single
    most-allocated object in any run.
    """

    __slots__ = (
        "sim",
        "name",
        "value",
        "_ok",
        "_callbacks",
        # timeout payload (set by Simulator.timeout)
        "_timeout_value",
        # resource bookkeeping (set by Resource.request/_grant)
        "_requested_at",
        "_cancel_hook",
        "_resource_token",
        # tracer spans (set by Resource when a tracer is attached)
        "_trace_wait",
        "_trace_hold",
    )

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self.value: Any = None
        self._ok: Optional[bool] = None  # None=pending, True=ok, False=failed
        self._callbacks: list[Callable[["Event"], None]] = []

    @property
    def triggered(self) -> bool:
        return self._ok is not None

    @property
    def ok(self) -> bool:
        return self._ok is True

    def succeed(self, value: Any = None) -> "Event":
        if self._ok is not None:
            raise SimulationError(f"event {self.name!r} already triggered")
        self._ok = True
        self.value = value
        self.sim._schedule_event(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        if self._ok is not None:
            raise SimulationError(f"event {self.name!r} already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._ok = False
        self.value = exception
        self.sim._schedule_event(self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        if self._ok is not None:
            # Already triggered: run the callback at the current time.
            self.sim._schedule_callback(callback, self)
        else:
            self._callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending" if self._ok is None else ("ok" if self._ok else "failed")
        return f"<Event {self.name!r} {state} at t={self.sim.now}>"


class Process(Event):
    """A running process.  Completes (as an Event) when its generator returns.

    The generator may yield:

    - an :class:`Event` (including another Process or a Timeout): the
      process resumes with ``event.value`` when the event fires, or the
      event's exception is thrown in if the event failed.
    """

    __slots__ = ("_gen", "_waiting_on", "_trace_span")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        super().__init__(sim, name or getattr(gen, "__name__", "process"))
        self._gen = gen
        self._waiting_on: Optional[Event] = None
        self._trace_span: Optional["Span"] = None
        if sim.tracer is not None:
            self._trace_span = sim.tracer.begin(
                self.name, "process", f"proc:{self.name}"
            )
        sim._schedule_callback(self._resume, _InitEvent(sim))

    @property
    def is_alive(self) -> bool:
        return self._ok is None

    def _close_trace_span(self, failed: bool = False) -> None:
        span = self._trace_span
        if span is not None and span.end is None:
            span.end = self.sim.now
            if failed:
                span.args["failed"] = True

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        If the process was waiting on an event that supports cancellation
        (e.g. a queued :meth:`Resource.request`) and no other waiter
        remains, the pending request is withdrawn so the resource slot is
        not granted into a process that will never use it.
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt dead process {self.name!r}")
        target = self._waiting_on
        if target is not None and target._ok is None:
            # Detach from whatever we were waiting for.
            try:
                target._callbacks.remove(self._resume)
            except ValueError:
                pass
            if not target._callbacks:
                cancel = getattr(target, "_cancel_hook", None)
                if cancel is not None:
                    cancel(target)
        self._waiting_on = None
        evt = _InitEvent(self.sim)
        evt.value = Interrupt(cause)
        evt._ok = False
        self.sim._schedule_callback(self._resume, evt)

    def _resume(self, event: Event) -> None:
        if not self.is_alive:
            return
        self._waiting_on = None
        try:
            if event._ok:
                target = self._gen.send(event.value)
            else:
                target = self._gen.throw(event.value)
        except StopIteration as stop:
            self._close_trace_span()
            self.succeed(stop.value)
            return
        except Interrupt:
            # An uncaught interrupt kills the process silently; this mirrors
            # "the process was cancelled" semantics used by the scheduler.
            self._close_trace_span()
            self.succeed(None)
            return
        except Exception as exc:
            self._close_trace_span(failed=True)
            self.fail(exc)
            return
        if not isinstance(target, Event):
            self._close_trace_span(failed=True)
            self.fail(
                SimulationError(
                    f"process {self.name!r} yielded {target!r}, expected an Event"
                )
            )
            return
        self._waiting_on = target
        target.add_callback(self._resume)


class _InitEvent(Event):
    """Internal pre-triggered event used to kick off / interrupt processes."""

    __slots__ = ()

    def __init__(self, sim: "Simulator"):
        super().__init__(sim, "init")
        self._ok = True


class _Condition(Event):
    """Base for AllOf/AnyOf composite events."""

    __slots__ = ("_events", "_pending")

    def __init__(self, sim: "Simulator", events: Iterable[Event], name: str):
        super().__init__(sim, name)
        self._events = list(events)
        self._pending = 0
        if not self._events:
            self.succeed([])
            return
        for evt in self._events:
            if not isinstance(evt, Event):
                raise SimulationError(f"{name} requires Events, got {evt!r}")
            self._pending += 1
            evt.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when every child event has fired.  Value: list of child values."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, events, "all_of")

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event.value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([evt.value for evt in self._events])


class AnyOf(_Condition):
    """Fires when the first child event fires.  Value: (event, value)."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, events, "any_of")

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event.value)
            return
        self.succeed((event, event.value))


class Resource:
    """A FIFO resource with finite capacity.

    ``request()`` returns an Event that fires when a slot is granted; the
    holder must call ``release()`` exactly once.  With ``capacity=1`` this
    models a strictly serializing device — the PSP.

    A request that will never be used (its process was interrupted while
    queued) must be withdrawn with :meth:`cancel`; :meth:`Process.interrupt`
    does this automatically, so a slot is never granted into a dead
    process and leaked.
    """

    def __init__(self, sim: "Simulator", capacity: int = 1, name: str = "resource"):
        if capacity < 1:
            raise SimulationError("resource capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._request_name = f"{name}.request"
        self._in_use = 0
        self._queue: deque[Event] = deque()
        # Statistics for contention analysis.
        self.total_requests = 0
        self.total_cancels = 0
        self.total_wait_time = 0.0
        self.busy_time = 0.0
        self._grant_times: dict[int, float] = {}
        # Registry instruments, bound once (labels by resource name so
        # every same-named resource in the process aggregates together).
        registry = metrics.default_registry()
        self._m_requests = registry.counter("sim.resource.requests", resource=name)
        self._m_cancels = registry.counter("sim.resource.cancels", resource=name)
        self._m_queue_depth = registry.gauge("sim.resource.queue_depth", resource=name)
        self._m_wait_ms = registry.histogram("sim.resource.wait_ms", resource=name)

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    @property
    def in_use(self) -> int:
        return self._in_use

    def request(self) -> Event:
        self.total_requests += 1
        self._m_requests.value += 1
        evt = Event(self.sim, self._request_name)
        evt._requested_at = self.sim.now  # type: ignore[attr-defined]
        evt._cancel_hook = self.cancel  # type: ignore[attr-defined]
        tracer = self.sim.tracer
        if tracer is not None:
            evt._trace_wait = tracer.begin(  # type: ignore[attr-defined]
                f"{self.name}.wait", "resource.wait", f"{self.name}.queue"
            )
        if self._in_use < self.capacity:
            self._in_use += 1
            self._grant(evt)
        else:
            self._queue.append(evt)
            self._m_queue_depth.value = len(self._queue)
            if tracer is not None:
                tracer.counter(f"{self.name}.queue_depth", len(self._queue))
        return evt

    def _grant(self, evt: Event) -> None:
        waited = self.sim.now - evt._requested_at  # type: ignore[attr-defined]
        self.total_wait_time += waited
        self._m_wait_ms.observe(waited)
        self._grant_times[id(evt)] = self.sim.now
        evt._resource_token = id(evt)  # type: ignore[attr-defined]
        tracer = self.sim.tracer
        if tracer is not None:
            wait_span = getattr(evt, "_trace_wait", None)
            if wait_span is not None:
                tracer.end(wait_span)
            evt._trace_hold = tracer.begin(  # type: ignore[attr-defined]
                f"{self.name}.hold", "resource.hold", self.name, wait_ms=waited
            )
            tracer.counter(f"{self.name}.in_use", self._in_use)
        evt.succeed(evt)

    def release(self, grant: Event) -> None:
        token = getattr(grant, "_resource_token", None)
        if token is None or token not in self._grant_times:
            raise SimulationError(f"release of {self.name} without matching grant")
        self.busy_time += self.sim.now - self._grant_times.pop(token)
        tracer = self.sim.tracer
        if tracer is not None:
            hold_span = getattr(grant, "_trace_hold", None)
            if hold_span is not None:
                tracer.end(hold_span)
        if self._queue:
            nxt = self._queue.popleft()
            self._m_queue_depth.value = len(self._queue)
            if tracer is not None:
                tracer.counter(f"{self.name}.queue_depth", len(self._queue))
            self._grant(nxt)
        else:
            self._in_use -= 1
            if tracer is not None:
                tracer.counter(f"{self.name}.in_use", self._in_use)

    def cancel(self, request: Event) -> None:
        """Withdraw a ``request()`` whose result will never be consumed.

        Still-queued requests are removed from the queue; already-granted
        requests are released, handing the slot to the next waiter.  A
        request that was already released or cancelled is a no-op, so
        interrupt handling can call this without knowing how far the
        grant got.
        """
        token = getattr(request, "_resource_token", None)
        if token is not None and token in self._grant_times:
            self.release(request)
            return
        try:
            self._queue.remove(request)
        except ValueError:
            return
        self.total_cancels += 1
        self._m_cancels.inc()
        self._m_queue_depth.set(len(self._queue))
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.counter(f"{self.name}.queue_depth", len(self._queue))
            wait_span = getattr(request, "_trace_wait", None)
            if wait_span is not None:
                tracer.end(wait_span, cancelled=True)

    def use(self, duration: float) -> Generator:
        """Convenience process body: acquire, hold for ``duration``, release."""
        grant = yield self.request()
        try:
            yield self.sim.timeout(duration)
        finally:
            self.release(grant)


def _fire_timeout(evt: Event) -> None:
    # Trigger at the deadline; waiters were registered while pending.
    # Module-level (not a method) so the heap entry holds a plain
    # function reference with no bound-method allocation per timeout.
    evt.succeed(evt._timeout_value)  # type: ignore[attr-defined]


class Simulator:
    """Deterministic event loop with a floating-point virtual clock.

    Time units are **milliseconds** throughout this repository.
    """

    def __init__(self):
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Callable[[Event], None], Event]] = []
        self._seq = 0
        registry = metrics.default_registry()
        self._m_dispatched = registry.counter("sim.events_dispatched")
        self._m_processes = registry.counter("sim.processes")
        self._m_timeouts = registry.counter("sim.timeouts")
        #: optional :class:`~repro.sim.trace.Tracer`; ``None`` keeps every
        #: instrumentation hook in the repository a single attribute check.
        self.tracer: Optional["Tracer"] = None
        #: optional :class:`~repro.faults.plan.FaultPlan`; ``None`` keeps
        #: every injection site a single attribute check (attach with
        #: :meth:`inject`).
        self.faults: Optional["FaultPlan"] = None

    def inject(self, plan: "FaultPlan") -> "FaultPlan":
        """Attach (and return) a fault plan for this simulation.

        Instrumented subsystems (PSP commands, guest memory, VMM image
        staging, serverless cold starts) consult ``sim.faults`` at their
        injection sites; the plan's per-site RNG streams plus the
        engine's deterministic scheduling make every fault schedule
        reproducible from the plan seed.
        """
        plan.bind(self)
        self.faults = plan
        return plan

    def trace(self) -> "Tracer":
        """Attach (and return) a :class:`~repro.sim.trace.Tracer`.

        Idempotent: repeated calls return the already-attached tracer.
        """
        from repro.sim.trace import Tracer

        if self.tracer is None:
            self.tracer = Tracer(self)
        return self.tracer

    # -- scheduling ------------------------------------------------------

    def _schedule_callback(
        self, callback: Callable[[Event], None], event: Event, delay: float = 0.0
    ) -> None:
        # Internal call sites only ever pass delay >= 0 (timeout() guards
        # the public path), so no negative check on this hot path.
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, callback, event))

    def _schedule_event(self, event: Event, delay: float = 0.0) -> None:
        callbacks = event._callbacks
        if not callbacks:
            return
        event._callbacks = []
        t = self.now + delay
        heap = self._heap
        seq = self._seq
        push = heapq.heappush
        for cb in callbacks:
            seq += 1
            push(heap, (t, seq, cb, event))
        self._seq = seq

    # -- public API ------------------------------------------------------

    def event(self, name: str = "") -> Event:
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None) -> Event:
        """An event that fires ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        evt = Event(self, "timeout")
        self._m_timeouts.value += 1
        evt._timeout_value = value  # type: ignore[attr-defined]
        self._seq += 1
        heapq.heappush(
            self._heap, (self.now + delay, self._seq, _fire_timeout, evt)
        )
        return evt

    def process(self, gen: Generator, name: str = "") -> Process:
        self._m_processes.inc()
        return Process(self, gen, name)

    def resource(self, capacity: int = 1, name: str = "resource") -> Resource:
        return Resource(self, capacity, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def run(self, until: Optional[float] = None) -> float:
        """Run until the event queue drains or the clock reaches ``until``.

        An event scheduled exactly at ``until`` still fires (the boundary
        is inclusive); only events strictly later are left in the heap for
        a subsequent ``run()``.  Returns the final clock value.

        The loop is the single hottest code path in the repository, so it
        trades a little readability for speed: locals alias the heap and
        ``heappop``, the ``until`` check is hoisted into a dedicated
        variant, and the ``sim.events_dispatched`` counter is accumulated
        locally and flushed once on exit instead of bumped per event.
        """
        heap = self._heap
        pop = heapq.heappop
        dispatched = 0
        try:
            if until is None:
                while heap:
                    t, _seq, callback, event = pop(heap)
                    if t < self.now - 1e-12:
                        raise SimulationError("event scheduled in the past")
                    self.now = t
                    dispatched += 1
                    callback(event)
            else:
                while heap:
                    t = heap[0][0]
                    if t > until:
                        self.now = until
                        return self.now
                    t, _seq, callback, event = pop(heap)
                    if t < self.now - 1e-12:
                        raise SimulationError("event scheduled in the past")
                    self.now = t
                    dispatched += 1
                    callback(event)
                self.now = max(self.now, until)
        finally:
            if dispatched:
                self._m_dispatched.value += dispatched
        return self.now

    def run_process(self, gen: Generator, name: str = "") -> Any:
        """Run a single process to completion and return its value.

        Raises the process's exception if it failed.
        """
        proc = self.process(gen, name)
        self.run()
        if not proc.triggered:
            raise SimulationError(f"process {proc.name!r} deadlocked")
        if not proc.ok:
            raise proc.value
        return proc.value
