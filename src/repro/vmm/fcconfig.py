"""Firecracker-style VM configuration files.

Firecracker is driven by a JSON configuration (machine config, boot
source, drives); the paper's digest tool consumes exactly that file plus
the kernel/initrd hashes and the boot verifier to compute the expected
measurement (§4.2).  This module parses that shape into a
:class:`repro.core.config.VmConfig`, so the CLI's ``digest`` command can
take ``--config vm.json`` like the artifact's tooling.

Recognized subset::

    {
      "machine-config": {"vcpu_count": 1, "mem_size_mib": 256},
      "boot-source": {
        "kernel_image_path": "vmlinux-aws.bz",     # basename selects the
        "boot_args": "console=ttyS0 ...",          # Fig. 8 kernel config
        "initrd_path": "initrd.cpio",
        "kernel_format": "bzimage"                  # or "vmlinux"
      },
      "sev": {"mode": "sev-snp", "attest": true}    # our extension
    }
"""

from __future__ import annotations

import json
import pathlib

from repro.common import MiB
from repro.core.config import KernelFormat, VmConfig
from repro.formats.kernels import DEFAULT_SCALE, KERNEL_CONFIGS
from repro.sev.policy import GuestPolicy, SevMode


class ConfigError(ValueError):
    """Unusable VM configuration file."""


def _kernel_from_path(path: str):
    """Pick the Fig. 8 kernel config from the image file name."""
    name = pathlib.PurePath(path).name.lower()
    for key, config in KERNEL_CONFIGS.items():
        if key in name:
            return config
    raise ConfigError(
        f"cannot infer kernel config from {path!r}; name one of "
        f"{sorted(KERNEL_CONFIGS)} in the file name"
    )


def parse_vm_config(data: dict, scale: float = DEFAULT_SCALE) -> VmConfig:
    """Build a :class:`VmConfig` from a parsed Firecracker JSON document."""
    if not isinstance(data, dict):
        raise ConfigError("top-level JSON must be an object")
    machine = data.get("machine-config", {})
    boot = data.get("boot-source")
    if not boot or "kernel_image_path" not in boot:
        raise ConfigError("boot-source.kernel_image_path is required")
    sev = data.get("sev", {})

    vcpus = int(machine.get("vcpu_count", 1))
    mem_mib = int(machine.get("mem_size_mib", 256))
    kernel = _kernel_from_path(boot["kernel_image_path"])
    try:
        kernel_format = KernelFormat(boot.get("kernel_format", "bzimage"))
    except ValueError as exc:
        raise ConfigError(str(exc)) from exc
    try:
        mode = SevMode(sev.get("mode", "sev-snp"))
    except ValueError as exc:
        raise ConfigError(str(exc)) from exc

    kwargs = {}
    if "boot_args" in boot:
        kwargs["cmdline"] = boot["boot_args"]
    try:
        return VmConfig(
            kernel=kernel,
            kernel_format=kernel_format,
            memory_size=mem_mib * MiB,
            vcpus=vcpus,
            sev_policy=GuestPolicy(mode=mode),
            scale=scale,
            attest=bool(sev.get("attest", True)),
            **kwargs,
        )
    except ValueError as exc:
        raise ConfigError(str(exc)) from exc


def load_vm_config(path: pathlib.Path | str, scale: float = DEFAULT_SCALE) -> VmConfig:
    """Read and parse a Firecracker JSON configuration file."""
    raw = pathlib.Path(path).read_text()
    try:
        data = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise ConfigError(f"invalid JSON: {exc}") from exc
    return parse_vm_config(data, scale=scale)


def dump_vm_config(config: VmConfig) -> dict:
    """Serialize a :class:`VmConfig` back to the Firecracker JSON shape."""
    return {
        "machine-config": {
            "vcpu_count": config.vcpus,
            "mem_size_mib": config.memory_size // MiB,
        },
        "boot-source": {
            "kernel_image_path": f"vmlinux-{config.kernel.name}.bin",
            "boot_args": config.cmdline,
            "initrd_path": "initrd.cpio",
            "kernel_format": config.kernel_format.value,
        },
        "sev": {
            "mode": config.sev_policy.mode.value,
            "attest": config.attest,
        },
    }
