"""The QEMU/OVMF baseline (§2.5): the mainstream way to boot SEV guests.

QEMU stages the kernel/initrd/cmdline, pre-encrypts the 1 MiB OVMF
firmware volume plus the component hashes, and enters the guest at OVMF,
which walks the full UEFI PI phase sequence before its embedded verifier
finally checks and loads the kernel (measured direct boot [36]).

The guest-side verification and Linux phases reuse exactly the modules
SEVeriFast uses, so the measured difference is what the paper attributes
it to: the firmware bootstrap and the size of the root of trust.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro.common import Blob, KiB
from repro.core.config import KernelFormat, VmConfig
from repro.core.oob_hash import HashesFile, hash_boot_components
from repro.faults.retry import RetryPolicy, psp_command
from repro.formats.kernels import KernelArtifacts
from repro.guest.bootdata import build_boot_params, build_mptable
from repro.guest.context import GuestContext
from repro.guest.linuxboot import LinuxGuest
from repro.guest.ovmf import OvmfFirmware, OvmfPhaseBreakdown
from repro.hw.platform import Machine
from repro.sev.guestowner import GuestOwner
from repro.vmm.timeline import BootPhase, BootResult, BootTimeline

#: Where the firmware volume lands in guest memory (below the kernel).
OVMF_VOLUME_ADDR = 0x0040_0000


def ovmf_volume(nominal_size: int, actual_size: int = 16 * KiB) -> Blob:
    """The OVMF firmware volume: deterministic bytes, 1 MiB nominal."""
    out = bytearray(b"_FVH")  # EFI firmware volume signature
    state = 0x0EF1
    while len(out) < actual_size:
        state = (state * 6364136223846793005 + 1) & (2**64 - 1)
        out += state.to_bytes(8, "little")
    return Blob(bytes(out[:actual_size]), nominal_size, "ovmf")


@dataclass
class QemuBootExtras:
    """QEMU-specific observability attached to a BootResult."""

    ovmf_breakdown: OvmfPhaseBreakdown


def qemu_preencrypted_regions(
    config: VmConfig, volume: Blob, hashes: HashesFile
) -> list[tuple[int, bytes, int]]:
    """QEMU/OVMF's root of trust: the firmware volume, the boot data, and
    the component hashes — in launch order.  Shared by the boot path and
    the guest owner's expected-digest computation."""
    layout = config.layout
    boot_params = build_boot_params(
        cmdline_ptr=layout.cmdline_addr,
        ramdisk_image=layout.initrd_load_addr,
        ramdisk_size=hashes.initrd_len,
        memory_size=config.memory_size,
    )
    return [
        (OVMF_VOLUME_ADDR, volume.data, volume.nominal_size),
        (layout.boot_params_addr, boot_params, len(boot_params)),
        (layout.cmdline_addr, config.cmdline_bytes, len(config.cmdline_bytes)),
        (
            layout.mptable_addr,
            build_mptable(config.vcpus, layout.mptable_addr),
            304 + 20 * (config.vcpus - 1),
        ),
        (layout.hashes_addr, hashes.to_page(), len(hashes.to_page())),
    ]


def qemu_expected_digest(config: VmConfig, volume: Blob, hashes: HashesFile) -> bytes:
    """The launch digest a guest owner expects from a QEMU/OVMF boot."""
    from repro.sev.measurement import expected_digest

    return expected_digest(
        [(gpa, data, nominal) for gpa, data, nominal in qemu_preencrypted_regions(config, volume, hashes)]
    )


@dataclass
class QemuVMM:
    """A QEMU process booting one (SEV-)SNP guest through OVMF."""

    machine: Machine
    #: retry/backoff policy for SEV launch commands (None = fail fast)
    retry: Optional[RetryPolicy] = None

    def _new_context(self, config: VmConfig, sev: bool) -> GuestContext:
        from repro.vmm.firecracker import FirecrackerVMM

        sev_ctx = self.machine.new_sev_context(config.sev_policy) if sev else None
        memory = self.machine.new_guest_memory(config.memory_size, sev_ctx)
        sim = self.machine.sim
        label = f"qemu:{config.kernel.name}" + (
            f"/asid{sev_ctx.asid}" if sev_ctx else ""
        )
        if self.machine.label:
            label = f"{self.machine.label}/{label}"
        if sim.tracer is not None:
            label = sim.tracer.new_track(label)
        if sev_ctx is not None:
            sev_ctx.track = label
        ctx = GuestContext(
            machine=self.machine,
            config=config,
            memory=memory,
            sev=sev_ctx,
            timeline=BootTimeline(sim, label=label),
        )
        ctx.block_device = FirecrackerVMM._attach_block_device(ctx)
        if config.kernel.has_network:
            ctx.net_device = FirecrackerVMM._attach_net_device(ctx)
        return ctx

    def boot_sev_ovmf(
        self,
        config: VmConfig,
        artifacts: KernelArtifacts,
        initrd: Blob,
        owner: Optional[GuestOwner] = None,
    ) -> Generator:
        """SEV-SNP boot through OVMF; value: (BootResult, QemuBootExtras)."""
        if config.kernel_format is not KernelFormat.BZIMAGE:
            raise ValueError("QEMU/OVMF measured direct boot loads a bzImage")
        ctx = self._new_context(config, sev=True)
        cost = ctx.cost
        kernel_blob = artifacts.bzimage
        volume = ovmf_volume(cost.ovmf_volume_size)
        hashes = hash_boot_components(kernel_blob, initrd)

        with ctx.timeline.phase(BootPhase.VMM):
            yield ctx.sim.timeout(cost.sample(cost.qemu_base_ms))
            yield ctx.sim.timeout(
                cost.image_read_ms(kernel_blob.nominal_size)
                + cost.image_read_ms(initrd.nominal_size)
                + cost.image_read_ms(volume.nominal_size)
            )
            # QEMU hashes the boot components at boot time (no out-of-band
            # hashing in the mainstream stack, §4.3).
            yield ctx.sim.timeout(
                cost.hash_ms(kernel_blob.nominal_size)
                + cost.hash_ms(initrd.nominal_size)
            )
            ctx.memory.host_write(ctx.layout.kernel_stage_addr, kernel_blob.data)
            ctx.memory.host_write(ctx.layout.initrd_stage_addr, initrd.data)
            regions = qemu_preencrypted_regions(config, volume, hashes)
            yield from self._sev_launch(ctx, regions)

        with ctx.timeline.phase(BootPhase.FIRMWARE):
            firmware = OvmfFirmware(ctx)
            verified = yield from firmware.run()

        guest = LinuxGuest(ctx)
        with ctx.timeline.phase(BootPhase.BOOTSTRAP_LOADER):
            entry = yield from guest.bootstrap_loader(verified)
        with ctx.timeline.phase(BootPhase.LINUX_BOOT):
            info = yield from guest.linux_boot(verified, entry)

        secret = None
        attested = False
        if owner is not None and config.attest and config.kernel.has_network:
            with ctx.timeline.phase(BootPhase.ATTESTATION):
                secret = yield from guest.attest(owner)
            attested = True

        result = BootResult(
            timeline=ctx.timeline,
            kernel_name=config.kernel.name,
            sev=True,
            init_executed=info.init_present,
            attested=attested,
            secret=secret,
            launch_digest=ctx.sev.launch_digest if ctx.sev else None,
            resident_bytes=ctx.memory.resident_bytes,
            psp_occupancy_ms=ctx.sev.psp_occupancy_ms if ctx.sev else 0.0,
            console_log=ctx.uart.lines,
            launch_retries=ctx.launch_retries,
        )
        return result, QemuBootExtras(ovmf_breakdown=firmware.breakdown)

    def boot_nonsev_ovmf(
        self, config: VmConfig, artifacts: KernelArtifacts, initrd: Blob
    ) -> Generator:
        """Non-SEV OVMF boot (the flat series of Fig. 12)."""
        ctx = self._new_context(config, sev=False)
        cost = ctx.cost
        kernel_blob = artifacts.bzimage

        with ctx.timeline.phase(BootPhase.VMM):
            yield ctx.sim.timeout(cost.sample(cost.qemu_base_ms))
            yield ctx.sim.timeout(
                cost.image_read_ms(kernel_blob.nominal_size)
                + cost.image_read_ms(initrd.nominal_size)
            )
            ctx.memory.host_write(ctx.layout.kernel_stage_addr, kernel_blob.data)
            ctx.memory.host_write(ctx.layout.initrd_stage_addr, initrd.data)
            self._write_plain_boot_data(ctx, initrd_len=len(initrd.data))
            hashes = hash_boot_components(kernel_blob, initrd)
            ctx.memory.host_write(ctx.layout.hashes_addr, hashes.to_page())

        with ctx.timeline.phase(BootPhase.FIRMWARE):
            firmware = OvmfFirmware(ctx)
            verified = yield from firmware.run()

        guest = LinuxGuest(ctx)
        with ctx.timeline.phase(BootPhase.BOOTSTRAP_LOADER):
            entry = yield from guest.bootstrap_loader(verified)
        with ctx.timeline.phase(BootPhase.LINUX_BOOT):
            info = yield from guest.linux_boot(verified, entry)
        result = BootResult(
            timeline=ctx.timeline,
            kernel_name=config.kernel.name,
            sev=False,
            init_executed=info.init_present,
            resident_bytes=ctx.memory.resident_bytes,
            console_log=ctx.uart.lines,
        )
        return result, QemuBootExtras(ovmf_breakdown=firmware.breakdown)

    def _write_plain_boot_data(self, ctx: GuestContext, initrd_len: int) -> None:
        layout = ctx.layout
        ctx.memory.host_write(
            layout.boot_params_addr,
            build_boot_params(
                cmdline_ptr=layout.cmdline_addr,
                ramdisk_image=layout.initrd_load_addr,
                ramdisk_size=initrd_len,
                memory_size=ctx.config.memory_size,
            ),
        )
        ctx.memory.host_write(layout.cmdline_addr, ctx.config.cmdline_bytes)
        ctx.memory.host_write(
            layout.mptable_addr, build_mptable(ctx.config.vcpus, layout.mptable_addr)
        )

    def _sev_launch(
        self, ctx: GuestContext, regions: list[tuple[int, bytes, int]]
    ) -> Generator:
        """Same KVM/PSP sequence as Firecracker (shared hardware path)."""
        cost = ctx.cost
        assert ctx.sev is not None
        # The RoT regions are measured: suspend the host-tamper fault
        # site here, exactly as the Firecracker path does.
        plan, ctx.memory.faults = ctx.memory.faults, None
        try:
            for gpa, data, _nominal in regions:
                ctx.memory.host_write(gpa, data)
        finally:
            ctx.memory.faults = plan
        if ctx.memory.rmp is not None:
            yield ctx.sim.timeout(cost.sample(cost.rmp_init_ms(ctx.config.memory_size)))
            ctx.memory.rmp.assign_all()
        yield ctx.sim.timeout(cost.sample(cost.page_pin_ms(ctx.config.memory_size)))
        psp = self.machine.psp
        sev = ctx.sev
        yield from self._psp_call(
            ctx, lambda: psp.launch_start(sev, ctx.config.sev_policy), "LAUNCH_START"
        )
        ctx.memory.engine = sev.engine
        with ctx.timeline.phase(BootPhase.PRE_ENCRYPTION):
            for gpa, data, nominal in regions:
                yield from self._psp_call(
                    ctx,
                    lambda gpa=gpa, data=data, nominal=nominal: psp.launch_update_data(
                        sev, ctx.memory, gpa, len(data), nominal_size=nominal
                    ),
                    "LAUNCH_UPDATE_DATA",
                )
        yield from self._psp_call(
            ctx, lambda: psp.launch_finish(sev), "LAUNCH_FINISH"
        )

    def _psp_call(self, ctx: GuestContext, factory, label: str) -> Generator:
        """One PSP command, retried under the VMM's policy (if any)."""
        if self.retry is None:
            result = yield from factory()
            return result

        def on_retry(exc: BaseException, attempt: int) -> None:
            ctx.launch_retries += 1

        result = yield from psp_command(
            self.machine.sim,
            self.machine.psp,
            self.retry,
            factory,
            label,
            on_retry=on_retry,
        )
        return result
