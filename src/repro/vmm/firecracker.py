"""The Firecracker-based microVM monitor (§5, §6).

Boot paths:

- :meth:`FirecrackerVMM.boot_stock` — the unmodified non-SEV path:
  direct boot of an uncompressed vmlinux (§2.1).  SEV support does not
  touch this path, matching the paper's claim.
- :meth:`FirecrackerVMM.boot_severifast` — the SEVeriFast path (§4):
  minimal boot verifier in the root of trust, optimized pre-encryption of
  the Fig. 7 structures, out-of-band hashes, and measured direct boot of
  an LZ4 bzImage (or a vmlinux through the fw_cfg protocol of §5).
- :meth:`FirecrackerVMM.boot_naive_preencrypt` — the §3.2 strawman:
  pre-encrypt the kernel and initrd themselves (no verifier), showing why
  direct boot is incompatible with SEV.

All paths return a process whose value is a :class:`BootResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

from repro.common import Blob, MiB
from repro.core.config import KernelFormat, VmConfig
from repro.core.digest_tool import preencrypted_regions
from repro.core.oob_hash import HashesFile, hash_boot_components
from repro.faults.plan import flip_bit, truncate_tail
from repro.faults.retry import RetryPolicy, psp_command
from repro.formats.elf import ElfFile
from repro.formats.kernels import KernelArtifacts
from repro.guest.bootverifier import (
    BootVerifier,
    VerificationError,
    VerifiedKernel,
    verifier_binary,
)
from repro.guest.context import GuestContext
from repro.guest.linuxboot import LinuxGuest
from repro.hw.platform import Machine
from repro.sev.api import GuestSevContext, SevLaunchError
from repro.sev.guestowner import GuestOwner
from repro.vmm.fwcfg import FwCfgDevice
from repro.vmm.timeline import BootPhase, BootResult, BootTimeline

#: §6.3: the stock binary is ~4.2 MB; SEV support adds ~50 KB.
BASE_BINARY_SIZE = 4_150_000
SEV_SUPPORT_DELTA = 50_000
#: §6.3: an SEV microVM adds ~16 KB of VMM-side memory over non-SEV.
SEV_RUNTIME_OVERHEAD = 16 * 1024


@dataclass
class FirecrackerVMM:
    """One Firecracker process per microVM, attached to a host machine."""

    machine: Machine
    sev_support: bool = True
    #: §4.3 ablation: hash kernel/initrd in the VMM instead of out of band.
    precomputed_hashes: bool = True
    #: retry/backoff policy for SEV launch commands (None = fail fast)
    retry: Optional[RetryPolicy] = None
    #: deactivate the guest's ASID when its boot finishes, like a
    #: serverless sandbox manager tearing down sandboxes — required for
    #: fleets that churn more guests than the ASID namespace holds
    release_on_exit: bool = False

    @property
    def binary_size(self) -> int:
        return BASE_BINARY_SIZE + (SEV_SUPPORT_DELTA if self.sev_support else 0)

    # -- shared VMM-side steps ------------------------------------------------

    def _new_context(
        self,
        config: VmConfig,
        sev: bool,
        sev_ctx: Optional[GuestSevContext] = None,
    ) -> GuestContext:
        if sev and sev_ctx is None:
            sev_ctx = self.machine.new_sev_context(config.sev_policy)
        memory = self.machine.new_guest_memory(config.memory_size, sev_ctx)
        sim = self.machine.sim
        label = f"fc:{config.kernel.name}" + (f"/asid{sev_ctx.asid}" if sev_ctx else "")
        if self.machine.label:
            label = f"{self.machine.label}/{label}"
        if sim.tracer is not None:
            label = sim.tracer.new_track(label)
        if sev_ctx is not None:
            sev_ctx.track = label
        timeline = BootTimeline(sim, label=label)
        ctx = GuestContext(
            machine=self.machine,
            config=config,
            memory=memory,
            sev=sev_ctx,
            timeline=timeline,
        )
        ctx.block_device = self._attach_block_device(ctx)
        if config.kernel.has_network:
            ctx.net_device = self._attach_net_device(ctx)
        return ctx

    def _psp_call(self, ctx: GuestContext, factory, label: str) -> Generator:
        """One PSP command, retried under the VMM's policy (if any)."""
        if self.retry is None:
            result = yield from factory()
            return result

        def on_retry(exc: BaseException, attempt: int) -> None:
            ctx.launch_retries += 1

        result = yield from psp_command(
            self.machine.sim,
            self.machine.psp,
            self.retry,
            factory,
            label,
            on_retry=on_retry,
        )
        return result

    @staticmethod
    def _attach_net_device(ctx: GuestContext):
        """Attach the virtio-net NIC (CONFIG_VIRTIO_NET kernels, §6.1)."""
        from repro.hw.virtionet import VirtioNetDevice

        return VirtioNetDevice(
            memory=ctx.memory,
            tx_queue_base=ctx.layout.net_tx_queue_addr,
            rx_queue_base=ctx.layout.net_rx_queue_addr,
        )

    @staticmethod
    def _attach_block_device(ctx: GuestContext):
        """Attach the virtio-blk root device (root=/dev/vda, §6.1).

        The disk carries a real (minimal) root filesystem the guest
        mounts through virtio sector reads.
        """
        from repro.formats.sfs import build_image
        from repro.hw.virtio import SECTOR_SIZE, VirtioBlockDevice

        image = build_image(
            {
                "sbin/launcher": b"\x7fELF launcher stub " * 40,
                "app/handler.py": b"def handler(event):\n    return {'ok': True}\n",
                "etc/hostname": b"microvm\n",
                "etc/resolv.conf": b"nameserver 10.0.0.1\n",
            },
            modes={"sbin/launcher": 0o100755},
        )
        disk = bytearray(1024 * SECTOR_SIZE)
        disk[: len(image)] = image
        return VirtioBlockDevice(
            memory=ctx.memory,
            queue_base=ctx.layout.virtio_queue_addr,
            disk=disk,
        )

    def _stage_images(
        self, ctx: GuestContext, kernel: Blob, initrd: Blob
    ) -> Generator:
        """Read images from the (warm) buffer cache and stage them."""
        cost = ctx.cost
        yield ctx.sim.timeout(
            cost.sample(
                cost.image_read_ms(kernel.nominal_size)
                + cost.image_read_ms(initrd.nominal_size)
            )
        )
        kernel_data = self._maybe_corrupt(ctx, kernel.data)
        initrd_data = self._maybe_corrupt(ctx, initrd.data)
        ctx.memory.host_write(ctx.layout.kernel_stage_addr, kernel_data)
        ctx.memory.host_write(ctx.layout.initrd_stage_addr, initrd_data)

    @staticmethod
    def _maybe_corrupt(ctx: GuestContext, data: bytes) -> bytes:
        """The ``image.stage`` fault site: corrupt an image on its way
        into the staging pages (bad buffer-cache read, truncated file).

        The out-of-band hashes are computed from the pristine images, so
        any corruption here must be caught by the verifier's measured
        direct boot — that invariant is what the chaos harness asserts.
        """
        plan = ctx.sim.faults
        if plan is None:
            return data
        event = plan.draw("image.stage", size=len(data))
        if event is None:
            return data
        ctx.memory.mark_tampered()
        if event.kind == "truncate":
            return truncate_tail(data, event.salt)
        return flip_bit(data, event.salt)

    def _hashes_for(self, kernel: Blob, initrd: Blob) -> HashesFile:
        return hash_boot_components(kernel, initrd)

    def _result(
        self, ctx: GuestContext, *, init_executed: bool, attested: bool,
        secret: bytes | None, aborted: bool = False, abort_reason: str = ""
    ) -> BootResult:
        plan = ctx.sim.faults
        if plan is not None:
            if aborted:
                plan.note("detected")
                plan.note("aborted")
            elif ctx.memory.host_tampered:
                # A tampered boot that ran to completion: the failure the
                # whole design exists to prevent.
                plan.note("undetected_tampered_boots")
        if self.release_on_exit and ctx.sev is not None:
            self.machine.psp.release(ctx.sev)
        return BootResult(
            timeline=ctx.timeline,
            kernel_name=ctx.config.kernel.name,
            sev=ctx.sev_enabled,
            init_executed=init_executed,
            attested=attested,
            secret=secret,
            launch_digest=ctx.sev.launch_digest if ctx.sev else None,
            resident_bytes=ctx.memory.resident_bytes,
            psp_occupancy_ms=ctx.sev.psp_occupancy_ms if ctx.sev else 0.0,
            console_log=ctx.uart.lines,
            aborted=aborted,
            abort_reason=abort_reason,
            launch_retries=ctx.launch_retries,
        )

    # -- stock (non-SEV) direct boot ---------------------------------------------

    def boot_stock(
        self, config: VmConfig, artifacts: KernelArtifacts, initrd: Blob
    ) -> Generator:
        """Direct boot of an uncompressed vmlinux, no SEV (§2.1)."""
        ctx = self._new_context(config, sev=False)
        cost = ctx.cost

        with ctx.timeline.phase(BootPhase.VMM):
            yield ctx.sim.timeout(cost.sample(cost.firecracker_base_ms))
            yield ctx.sim.timeout(cost.sample(cost.image_read_ms(artifacts.vmlinux.nominal_size)))
            yield ctx.sim.timeout(cost.sample(cost.image_read_ms(initrd.nominal_size)))
            elf = ElfFile.from_bytes(artifacts.vmlinux.data)
            yield ctx.sim.timeout(cost.elf_parse_ms_per_segment * len(elf.segments))
            # Load each ELF segment to where it runs, in one operation.
            scale = artifacts.vmlinux.scale
            for seg in elf.segments:
                nominal = max(len(seg.data), int(len(seg.data) / max(scale, 1e-12)))
                yield ctx.sim.timeout(cost.sample(cost.host_load_ms(nominal)))
                ctx.memory.host_write(seg.paddr, seg.data)
            ctx.memory.host_write(ctx.layout.initrd_load_addr, initrd.data)
            self._write_boot_data(ctx, initrd_len=len(initrd.data))

        verified = VerifiedKernel(
            format=KernelFormat.VMLINUX,
            kernel_addr=ctx.layout.kernel_load_addr,
            kernel_len=len(artifacts.vmlinux.data),
            kernel_nominal=artifacts.vmlinux.nominal_size,
            initrd_addr=ctx.layout.initrd_load_addr,
            initrd_len=len(initrd.data),
            initrd_nominal=initrd.nominal_size,
            entry=elf.entry,
        )
        guest = LinuxGuest(ctx)
        with ctx.timeline.phase(BootPhase.LINUX_BOOT):
            info = yield from guest.linux_boot(verified, elf.entry)
        return self._result(
            ctx, init_executed=info.init_present, attested=False, secret=None
        )

    def _write_boot_data(self, ctx: GuestContext, initrd_len: int) -> None:
        """Build and load boot_params/cmdline/mptable (non-SEV path)."""
        from repro.guest.bootdata import build_boot_params, build_mptable

        layout = ctx.layout
        ctx.memory.host_write(
            layout.boot_params_addr,
            build_boot_params(
                cmdline_ptr=layout.cmdline_addr,
                ramdisk_image=layout.initrd_load_addr,
                ramdisk_size=initrd_len,
                memory_size=ctx.config.memory_size,
            ),
        )
        ctx.memory.host_write(layout.cmdline_addr, ctx.config.cmdline_bytes)
        ctx.memory.host_write(
            layout.mptable_addr, build_mptable(ctx.config.vcpus, layout.mptable_addr)
        )

    # -- SEV launch plumbing ---------------------------------------------------------

    def _sev_launch(
        self,
        ctx: GuestContext,
        regions: list[tuple[int, bytes, int]],
    ) -> Generator:
        """KVM/PSP work: RMP init, LAUNCH_START/UPDATE*/FINISH."""
        cost = ctx.cost
        assert ctx.sev is not None
        # Load the initial plain text before KVM takes the pages away from
        # the host (RMP assignment blocks host writes afterwards).  The
        # RoT regions are *measured* by the PSP, so tampering them shifts
        # the launch digest (attestation territory, §2.6 attack 3) rather
        # than failing a verifier hash check — the ``mem.host_tamper``
        # site is suspended so chaos tampering stays on the staged-image
        # pages the verifier actually checks.
        plan, ctx.memory.faults = ctx.memory.faults, None
        try:
            for gpa, data, _nominal in regions:
                ctx.memory.host_write(gpa, data)
        finally:
            ctx.memory.faults = plan
        # KVM initializes RMP entries and pins guest pages (§6.2).
        if ctx.memory.rmp is not None:
            yield ctx.sim.timeout(cost.sample(cost.rmp_init_ms(ctx.config.memory_size)))
            ctx.memory.rmp.assign_all()
        yield ctx.sim.timeout(cost.sample(cost.page_pin_ms(ctx.config.memory_size)))

        psp = self.machine.psp
        sev = ctx.sev
        yield from self._psp_call(
            ctx,
            lambda: psp.launch_start(sev, ctx.config.sev_policy),
            "LAUNCH_START",
        )
        ctx.memory.engine = sev.engine
        with ctx.timeline.phase(BootPhase.PRE_ENCRYPTION):
            for gpa, data, nominal in regions:
                yield from self._psp_call(
                    ctx,
                    lambda gpa=gpa, data=data, nominal=nominal: psp.launch_update_data(
                        sev, ctx.memory, gpa, len(data), nominal_size=nominal
                    ),
                    "LAUNCH_UPDATE_DATA",
                )
        yield from self._psp_call(
            ctx, lambda: psp.launch_finish(sev), "LAUNCH_FINISH"
        )

    # -- the SEVeriFast path (§4) ---------------------------------------------------

    def boot_severifast(
        self,
        config: VmConfig,
        artifacts: KernelArtifacts,
        initrd: Blob,
        owner: Optional[GuestOwner] = None,
        hashes: Optional[HashesFile] = None,
        verifier: Optional[Blob] = None,
    ) -> Generator:
        """The full SEVeriFast cold boot, optionally through attestation.

        ``verifier`` substitutes a different boot-shim binary (e.g. a
        :mod:`repro.guest.shims` variant) into the root of trust; the
        guest owner's expected digest must be computed for the same blob.
        """
        if not self.sev_support:
            raise RuntimeError("this Firecracker build lacks SEV support")
        ctx = self._new_context(config, sev=True)
        cost = ctx.cost

        if config.kernel_format is KernelFormat.BZIMAGE:
            kernel_blob = artifacts.bzimage
            fw_cfg = None
        else:
            kernel_blob = artifacts.vmlinux
            fw_cfg = FwCfgDevice.from_vmlinux(
                artifacts.vmlinux.data, artifacts.vmlinux.nominal_size
            )

        with ctx.timeline.phase(BootPhase.VMM):
            yield ctx.sim.timeout(cost.sample(cost.firecracker_base_ms))
            if fw_cfg is not None:
                yield ctx.sim.timeout(
                    cost.elf_parse_ms_per_segment * len(fw_cfg.segments)
                )
            yield from self._stage_images(ctx, kernel_blob, initrd)

            if hashes is None:
                if self.precomputed_hashes:
                    hashes = self._oob_hashes(kernel_blob, initrd, fw_cfg)
                else:
                    # §4.3 ablation: hash on the critical path, in the VMM.
                    yield ctx.sim.timeout(
                        cost.hash_ms(kernel_blob.nominal_size)
                        + cost.hash_ms(initrd.nominal_size)
                    )
                    hashes = self._oob_hashes(kernel_blob, initrd, fw_cfg)

            regions = preencrypted_regions(
                config, verifier if verifier is not None else verifier_binary(), hashes
            )
            try:
                yield from self._sev_launch(ctx, regions)
            except SevLaunchError:
                # Launch died (non-retryable PSP fault or exhausted
                # retries): free the ASID so the fleet doesn't leak the
                # namespace, then let the caller handle the failure.
                self.machine.psp.release(ctx.sev)
                raise

        guest = LinuxGuest(ctx)
        with ctx.timeline.phase(BootPhase.BOOT_VERIFICATION):
            try:
                if verifier is not None and verifier.data[:4] == b"SVBC":
                    # The measured binary is an executable bytecode program:
                    # fetch it back out of encrypted memory and interpret it.
                    from repro.guest.svbl import BytecodeVerifier

                    verified = yield from BytecodeVerifier(ctx).run()
                else:
                    verified = yield from BootVerifier(ctx, fw_cfg=fw_cfg).run()
            except VerificationError as exc:
                if ctx.sim.faults is None:
                    # No fault plan: preserve the historical contract that
                    # explicit tampering raises through the simulator.
                    raise
                return self._result(
                    ctx,
                    init_executed=False,
                    attested=False,
                    secret=None,
                    aborted=True,
                    abort_reason=str(exc),
                )

        if config.kernel_format is KernelFormat.BZIMAGE:
            with ctx.timeline.phase(BootPhase.BOOTSTRAP_LOADER):
                entry = yield from guest.bootstrap_loader(verified)
        else:
            entry = verified.entry

        with ctx.timeline.phase(BootPhase.LINUX_BOOT):
            info = yield from guest.linux_boot(verified, entry)

        secret = None
        attested = False
        if owner is not None and config.attest and config.kernel.has_network:
            with ctx.timeline.phase(BootPhase.ATTESTATION):
                secret = yield from guest.attest(owner)
            attested = True

        return self._result(
            ctx, init_executed=info.init_present, attested=attested, secret=secret
        )

    def _oob_hashes(
        self, kernel: Blob, initrd: Blob, fw_cfg: Optional[FwCfgDevice]
    ) -> HashesFile:
        """Out-of-band hashes; for vmlinux the hash follows fw_cfg order."""
        if fw_cfg is None:
            return self._hashes_for(kernel, initrd)
        protocol_blob = Blob(
            fw_cfg.protocol_hash_input(), kernel.nominal_size, "vmlinux-protocol"
        )
        return self._hashes_for(protocol_blob, initrd)

    # -- the §3.2 strawman: pre-encrypt the kernel itself --------------------------------

    def boot_naive_preencrypt(
        self,
        config: VmConfig,
        artifacts: KernelArtifacts,
        initrd: Blob,
    ) -> Generator:
        """Direct boot adapted to SEV by pre-encrypting kernel + initrd.

        No verifier, no measured direct boot — the whole kernel/initrd go
        through LAUNCH_UPDATE_DATA.  Fig. 4/§3.2 show why this loses.
        """
        ctx = self._new_context(config, sev=True)
        cost = ctx.cost
        if config.kernel_format is KernelFormat.BZIMAGE:
            kernel_blob = artifacts.bzimage
        else:
            kernel_blob = artifacts.vmlinux

        with ctx.timeline.phase(BootPhase.VMM):
            yield ctx.sim.timeout(cost.sample(cost.firecracker_base_ms))
            yield ctx.sim.timeout(
                cost.image_read_ms(kernel_blob.nominal_size)
                + cost.image_read_ms(initrd.nominal_size)
            )
            hashes = self._oob_hashes(kernel_blob, initrd, None)
            from repro.guest.bootdata import build_boot_params, build_mptable

            layout = ctx.layout
            boot_params = build_boot_params(
                cmdline_ptr=layout.cmdline_addr,
                ramdisk_image=layout.initrd_load_addr,
                ramdisk_size=len(initrd.data),
                memory_size=config.memory_size,
            )
            regions = [
                (layout.kernel_copy_addr, kernel_blob.data, kernel_blob.nominal_size),
                (layout.initrd_load_addr, initrd.data, initrd.nominal_size),
                (layout.boot_params_addr, boot_params, len(boot_params)),
                (layout.cmdline_addr, config.cmdline_bytes, len(config.cmdline_bytes)),
                (
                    layout.mptable_addr,
                    build_mptable(config.vcpus, layout.mptable_addr),
                    None,
                ),
            ]
            regions = [
                (gpa, data, nominal if nominal is not None else len(data))
                for gpa, data, nominal in regions
            ]
            try:
                yield from self._sev_launch(ctx, regions)
            except SevLaunchError:
                self.machine.psp.release(ctx.sev)
                raise

        guest = LinuxGuest(ctx)
        verified = VerifiedKernel(
            format=config.kernel_format,
            kernel_addr=ctx.layout.kernel_copy_addr,
            kernel_len=len(kernel_blob.data),
            kernel_nominal=kernel_blob.nominal_size,
            initrd_addr=ctx.layout.initrd_load_addr,
            initrd_len=len(initrd.data),
            initrd_nominal=initrd.nominal_size,
            entry=ctx.layout.kernel_copy_addr,
        )
        if ctx.memory.rmp is not None:
            with ctx.timeline.phase(BootPhase.BOOT_VERIFICATION):
                # Even without a verifier the guest must pvalidate memory.
                yield ctx.sim.timeout(
                    cost.pvalidate_ms(config.memory_size, self.machine.huge_pages)
                )
                ctx.memory.rmp.pvalidate_all()

        if config.kernel_format is KernelFormat.BZIMAGE:
            with ctx.timeline.phase(BootPhase.BOOTSTRAP_LOADER):
                entry = yield from guest.bootstrap_loader(verified)
        else:
            elf = ElfFile.from_bytes(
                ctx.memory.guest_read(
                    verified.kernel_addr, verified.kernel_len, c_bit=True
                )
            )
            for seg in elf.segments:
                ctx.memory.guest_write(seg.paddr, seg.data, c_bit=True)
            entry = elf.entry

        with ctx.timeline.phase(BootPhase.LINUX_BOOT):
            info = yield from guest.linux_boot(verified, entry)
        return self._result(
            ctx, init_executed=info.init_present, attested=False, secret=None
        )
