"""Virtual machine monitors and boot instrumentation.

- :mod:`repro.vmm.timeline` — boot-phase accounting (the paper's debug-port
  methodology, §6.1) and the :class:`BootResult` returned by every boot.
- :mod:`repro.vmm.debugport` — the port-0x80 debug device.
- :mod:`repro.vmm.fwcfg` — the fw_cfg-style vmlinux transfer device (§5).
- :mod:`repro.vmm.firecracker` — the Firecracker-based microVM monitor
  with stock, SEVeriFast/bzImage, SEVeriFast/vmlinux, and naive
  pre-encrypt-everything boot paths.
- :mod:`repro.vmm.qemu` — the QEMU/OVMF baseline used throughout the
  paper's evaluation.

Attributes resolve lazily to keep the package import-cycle free (the
VMMs import :mod:`repro.core`, which imports guest modules, which need
the timeline/debug-port here).
"""

from repro.vmm.timeline import BootPhase, BootResult, BootTimeline
from repro.vmm.debugport import DebugPort

__all__ = [
    "BootPhase",
    "BootResult",
    "BootTimeline",
    "DebugPort",
    "FirecrackerVMM",
    "QemuVMM",
]


def __getattr__(name: str):
    if name == "FirecrackerVMM":
        from repro.vmm.firecracker import FirecrackerVMM

        return FirecrackerVMM
    if name == "QemuVMM":
        from repro.vmm.qemu import QemuVMM

        return QemuVMM
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
