"""Boot-phase accounting.

The paper instruments boots with a debug-port device and breaks the
overall time into four parts (§6.1): *Firecracker/QEMU* (time in the VMM
before entering the guest), *Boot Verification*, *Bootstrap Loader*
(bzImage decompression + load), and *Linux Boot* (kernel entry to init).
Pre-encryption is reported separately (Fig. 10), and attestation is
appended for end-to-end comparisons (Fig. 9).

:class:`BootTimeline` records those intervals against the simulation
clock; :class:`BootResult` is what every boot pipeline returns.
"""

from __future__ import annotations

import enum
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.obs import metrics
from repro.sim import Simulator


#: interned ``boot.phase_ms`` histogram children, keyed by phase label.
#: Every phase exit used to walk registry.histogram()'s family/label
#: lookup; boots have 6+ phase exits each and fleets run thousands of
#: boots, so the children are cached per registry (the identity check
#: keeps per-run ``use_registry`` swaps correct).
_phase_instr_registry: metrics.MetricsRegistry | None = None
_phase_instruments: dict[str, metrics.Histogram] = {}


def _phase_histogram(phase_value: str) -> metrics.Histogram:
    global _phase_instr_registry
    registry = metrics.default_registry()
    if registry is not _phase_instr_registry:
        _phase_instr_registry = registry
        _phase_instruments.clear()
    instr = _phase_instruments.get(phase_value)
    if instr is None:
        instr = _phase_instruments[phase_value] = registry.histogram(
            "boot.phase_ms", phase=phase_value
        )
    return instr


class BootPhase(enum.Enum):
    """The phases the paper's figures break boot time into."""

    VMM = "vmm"  #: Firecracker/QEMU time before entering the guest
    PRE_ENCRYPTION = "pre_encryption"  #: LAUNCH_UPDATE_DATA total (within VMM)
    FIRMWARE = "firmware"  #: OVMF PI phases (QEMU baseline only)
    BOOT_VERIFICATION = "boot_verification"
    BOOTSTRAP_LOADER = "bootstrap_loader"
    LINUX_BOOT = "linux_boot"
    ATTESTATION = "attestation"

    @property
    def on_boot_path(self) -> bool:
        """Phases that count toward "boot time" (attestation is reported
        separately; pre-encryption is a sub-interval of the VMM phase)."""
        return self not in (BootPhase.ATTESTATION, BootPhase.PRE_ENCRYPTION)


@dataclass
class PhaseRecord:
    phase: BootPhase
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class BootTimeline:
    """Phase intervals for a single boot, in virtual milliseconds.

    ``label`` names this VM's track in an attached
    :class:`~repro.sim.trace.Tracer`; when tracing is on and no label was
    given, a unique ``vm#N`` track is allocated so concurrent boots land
    on separate display rows.
    """

    sim: Simulator
    origin: float = -1.0
    label: str = ""
    records: list[PhaseRecord] = field(default_factory=list)
    events: list[tuple[float, str]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.origin < 0:
            self.origin = self.sim.now
        if not self.label:
            tracer = self.sim.tracer
            self.label = tracer.new_track("vm") if tracer is not None else "vm"

    @contextmanager
    def phase(self, phase: BootPhase) -> Iterator[None]:
        """Record a phase spanning the wrapped (virtual) interval."""
        start = self.sim.now
        tracer = self.sim.tracer
        span = (
            tracer.begin(phase.value, "boot.phase", self.label)
            if tracer is not None
            else None
        )
        try:
            yield
        finally:
            self.records.append(PhaseRecord(phase, start, self.sim.now))
            if span is not None:
                span.end = self.sim.now
            _phase_histogram(phase.value).observe(self.sim.now - start)

    def mark(self, label: str) -> None:
        """A point event (debug-port write)."""
        self.events.append((self.sim.now, label))
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.instant(label, self.label)

    # -- aggregation ---------------------------------------------------------

    def duration(self, phase: BootPhase) -> float:
        return sum(r.duration for r in self.records if r.phase is phase)

    def breakdown(self) -> dict[str, float]:
        """Phase -> total milliseconds, for the stacked-bar figures."""
        out: dict[str, float] = {}
        for record in self.records:
            out[record.phase.value] = out.get(record.phase.value, 0.0) + record.duration
        return out

    @property
    def boot_ms(self) -> float:
        """VMM-exec to init, the paper's definition of boot time (§6.1)."""
        return sum(r.duration for r in self.records if r.phase.on_boot_path)

    @property
    def total_ms(self) -> float:
        """Boot plus attestation (the Fig. 9 end-to-end metric)."""
        return self.boot_ms + self.duration(BootPhase.ATTESTATION)


@dataclass
class BootResult:
    """Everything a boot pipeline produces."""

    timeline: BootTimeline
    kernel_name: str
    sev: bool
    init_executed: bool = False
    attested: bool = False
    secret: bytes | None = None
    launch_digest: bytes | None = None
    #: guest pages actually materialized at the end of boot (§6.3)
    resident_bytes: int = 0
    #: PSP busy time consumed by this launch (Fig. 12 analysis)
    psp_occupancy_ms: float = 0.0
    #: guest serial-console output (the boot log on ttyS0)
    console_log: list[str] = field(default_factory=list)
    #: True when the verifier detected tampering and refused to boot
    #: (the measured-abort path; only produced under fault injection)
    aborted: bool = False
    #: human-readable reason for an aborted boot
    abort_reason: str = ""
    #: SEV launch commands that had to be retried for this boot
    launch_retries: int = 0

    @property
    def boot_ms(self) -> float:
        return self.timeline.boot_ms

    @property
    def total_ms(self) -> float:
        return self.timeline.total_ms
