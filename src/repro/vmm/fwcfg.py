"""The fw_cfg-style kernel-transfer device (§5).

Loading an uncompressed vmlinux through measured direct boot naively
costs an extra full-kernel copy (stage → encrypted → ELF load addresses).
The paper implements a QEMU-fw_cfg-like device instead: the *VMM* parses
the ELF and exposes the header, the program-header table, and each
loadable segment as separate items, so the verifier can copy every
segment straight from shared pages to its (encrypted) run address —
three hashes, but no second full copy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.formats.elf import ElfFile


@dataclass(frozen=True)
class FwCfgSegment:
    """One loadable segment exposed through the device."""

    paddr: int
    data: bytes
    nominal_size: int


@dataclass
class FwCfgDevice:
    """The items the VMM prepared for the verifier's vmlinux protocol."""

    ehdr: bytes
    phdrs: bytes
    segments: list[FwCfgSegment] = field(default_factory=list)
    entry: int = 0

    @classmethod
    def from_vmlinux(cls, raw: bytes, nominal_size: int) -> "FwCfgDevice":
        """VMM-side ELF parse (the guest never sees the full file)."""
        elf = ElfFile.from_bytes(raw)
        scale = len(raw) / nominal_size if nominal_size else 1.0
        segments = [
            FwCfgSegment(
                paddr=seg.paddr,
                data=seg.data,
                nominal_size=max(len(seg.data), int(len(seg.data) / scale))
                if scale > 0
                else len(seg.data),
            )
            for seg in elf.segments
        ]
        return cls(
            ehdr=elf.header_bytes(),
            phdrs=elf.phdr_bytes(),
            segments=segments,
            entry=elf.entry,
        )

    def transfer_order(self) -> list[tuple[str, bytes, int]]:
        """(label, bytes, nominal) triples in protocol order — the order
        the out-of-band kernel hash must follow."""
        items: list[tuple[str, bytes, int]] = [
            ("ehdr", self.ehdr, len(self.ehdr)),
            ("phdrs", self.phdrs, len(self.phdrs)),
        ]
        for i, seg in enumerate(self.segments):
            items.append((f"segment{i}", seg.data, seg.nominal_size))
        return items

    def protocol_hash_input(self) -> bytes:
        """Concatenation of all transferred parts, for the OOB hash."""
        return b"".join(data for _label, data, _nom in self.transfer_order())
