"""The port-0x80 debug device (§6.1 testing methodology).

The paper's modified Firecracker attaches a device listening on I/O port
0x80; the boot verifier and guest kernel execute ``outb`` at interesting
points and the VMM logs each write with a timestamp.  Under SEV-ES/SNP an
``outb`` would raise #VC before handlers are installed, so early guest
code instead writes magic values to the GHCB MSR — we model both entry
points, tagging which path delivered the event.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim import Simulator


@dataclass
class DebugPort:
    """Records (timestamp, value, via) tuples like the Firecracker log."""

    sim: Simulator
    log: list[tuple[float, int, str]] = field(default_factory=list)

    def outb(self, value: int) -> None:
        """Guest ``outb 0x80`` — available once #VC handlers exist."""
        self.log.append((self.sim.now, value & 0xFF, "outb"))

    def ghcb_msr_write(self, value: int) -> None:
        """Early-boot path: magic value via the GHCB MSR (always trapped)."""
        self.log.append((self.sim.now, value & 0xFF, "ghcb"))

    def timestamps_for(self, value: int) -> list[float]:
        return [t for t, v, _via in self.log if v == value]


#: Magic values written at boot milestones (mirrors the paper's technique).
MAGIC_VERIFIER_ENTRY = 0x10
MAGIC_VERIFIER_DONE = 0x11
#: verifier detected a hash mismatch and refused to boot (measured abort)
MAGIC_VERIFIER_ABORT = 0x1F
MAGIC_KERNEL_ENTRY = 0x20
MAGIC_INIT_EXEC = 0x21
MAGIC_ATTESTATION_DONE = 0x30
