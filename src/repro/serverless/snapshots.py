"""Snapshot/restore as the production cold-start path (§7.1).

The paper's discussion section lays out why the standard serverless
warm-start tricks fail under SEV:

- snapshot pages cannot be deduplicated or shared *between VMs*:
  identical plaintext at different physical addresses has different
  ciphertext;
- lazy/on-demand restore needs host-guest cooperation because the host
  cannot validate pages on the guest's behalf (the RMP valid bit is set
  only by ``pvalidate`` *inside* the guest);
- reusing previously attested state requires reusing the memory
  encryption key, which weakens the trust model (one key, many VMs).

This module makes those constraints executable — and then builds the one
workable point in the design space into a production path:

- :func:`take_snapshot` captures a booted guest; :func:`restore` replays
  it under a stated policy, charging the cost model for the work the
  policy implies and *refusing* the combinations the hardware forbids.
- :class:`SnapshotStore` is a content-addressed store keyed by image
  digest (the launch digest for SEV guests), so identical images share
  one stored snapshot — dedup happens at the *snapshot* level, where
  content addressing is sound, never at the ciphertext-page level, where
  §7.1 forbids it.
- :func:`reattest` models the restore-time re-attestation handshake: a
  restored guest's launch measurement is stale, so the guest owner
  demands a *fresh* report (PSP-signed, so restores contend on the PSP
  like launches), re-proves the chip's VCEK through the certificate
  chain, and — for repeat tenants — resumes an established session
  instead of redoing the full exchange.  The semantics follow the
  e-vTPM design (arXiv 2303.16463) and SNPGuard (arXiv 2406.01186).
- :func:`restore_from_store` chains lookup -> restore -> re-attestation
  into the single generator a platform's ``restore_factory`` runs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from functools import cached_property
from typing import Generator, Optional

from repro import perf
from repro.common import PAGE_SIZE
from repro.crypto.sha2 import sha256
from repro.guest.context import GuestContext
from repro.hw.platform import Machine
from repro.sev.policy import GuestPolicy, SevMode


class SnapshotError(Exception):
    """A restore policy the hardware cannot honour."""


class ReattestationError(SnapshotError):
    """The guest owner rejected a restored guest's fresh report."""


class RestorePolicy(enum.Enum):
    """How a snapshot is brought back."""

    #: Plain microVM: map the snapshot copy-on-write, fault pages in.
    LAZY_COW = "lazy-cow"
    #: SEV with the *same* guest key (weakened trust model, §7.1): the
    #: ciphertext is (key, address)-bound, and key reuse preserves both,
    #: so the snapshot can back a CoW mapping — provided the *guest*
    #: revalidates (pvalidate) everything the host remaps.
    SEV_KEY_REUSE = "sev-key-reuse"
    #: SEV with a fresh key: impossible without re-running the launch
    #: flow — the snapshot's ciphertext is unreadable under the new key.
    SEV_FRESH_KEY = "sev-fresh-key"


@dataclass(frozen=True)
class VmSnapshot:
    """A captured guest: resident pages + identity of its protection."""

    kernel_name: str
    sev_mode: SevMode | None
    resident_bytes: int  #: actual bytes captured (scaled builds)
    nominal_bytes: int  #: what a full-scale snapshot would hold
    launch_digest: bytes | None
    pages: dict[int, bytes] = field(default_factory=dict, hash=False, compare=False)

    @cached_property
    def image_digest(self) -> bytes:
        """Content address of this snapshot.

        For an SEV guest the launch digest already *is* a collision-
        resistant identity of the initial image (that is what the owner
        attests); plain snapshots hash their resident pages.
        """
        if self.launch_digest is not None:
            return self.launch_digest
        h = [self.kernel_name.encode()]
        for index, data in sorted(self.pages.items()):
            h.append(index.to_bytes(8, "little"))
            h.append(data)
        return sha256(b"".join(h))


@dataclass(frozen=True)
class RestoreOutcome:
    policy: RestorePolicy
    restore_ms: float
    #: host memory the restored VM pins beyond shared state
    private_bytes: int
    #: simulated time spent re-attesting (0 when no re-attestation ran)
    reattest_ms: float = 0.0
    #: the re-attestation resumed an established tenant session
    resumed_session: bool = False
    #: the measurement the owner accepted (None when no re-attestation)
    digest: bytes | None = None


def take_snapshot(ctx: GuestContext) -> VmSnapshot:
    """Capture a booted guest's resident pages (host-side copy).

    For an SEV guest the captured bytes are ciphertext — the snapshot is
    useless without the original key, which is exactly the property the
    restore policies below must respect.
    """
    pages = dict(ctx.memory.resident_pages())
    scale = max(
        1e-12,
        min(1.0, ctx.config.scale if ctx.config.scale > 0 else 1.0),
    )
    resident = len(pages) * PAGE_SIZE
    return VmSnapshot(
        kernel_name=ctx.config.kernel.name,
        sev_mode=ctx.sev.policy.mode if ctx.sev else None,
        resident_bytes=resident,
        nominal_bytes=int(resident / scale),
        launch_digest=ctx.sev.launch_digest if ctx.sev else None,
        pages=pages,
    )


#: Fixed VMM-side cost to arm a copy-on-write mapping.
_COW_SETUP_MS = 2.0


def restore(
    machine: Machine,
    snapshot: VmSnapshot,
    policy: RestorePolicy,
    *,
    cow: bool = True,
    touched_fraction: Optional[float] = None,
) -> Generator:
    """Restore ``snapshot`` under ``policy``; process value: RestoreOutcome.

    ``cow=True`` (the default) restores SEV_KEY_REUSE snapshots through
    a copy-on-write mapping: sound because key reuse keeps the
    (key, address) binding of the ciphertext intact, so shared read-only
    pages decrypt correctly in every restored instance; pages privatize
    on write, and the cooperating guest revalidates each remapped page
    (the per-page cost is in :attr:`CostModel.cow_fault_us_per_page`).
    ``cow=False`` models the conservative eager full copy.

    Raises :class:`SnapshotError` for combinations SEV forbids.
    """
    cost = machine.cost
    is_sev = snapshot.sev_mode is not None

    if policy is RestorePolicy.SEV_FRESH_KEY:
        raise SnapshotError(
            "snapshot ciphertext is unreadable under a fresh guest key; "
            "a fresh-key VM must cold boot through the launch flow (§7.1)"
        )
    if policy is RestorePolicy.LAZY_COW and is_sev:
        raise SnapshotError(
            "lazy CoW restore needs host-managed mappings; under SNP a "
            "host remap clears the RMP valid bit and the guest faults (#VC)"
        )
    if policy is RestorePolicy.SEV_KEY_REUSE and not is_sev:
        raise SnapshotError("key reuse is meaningless for a non-SEV snapshot")

    start = machine.sim.now
    if policy is RestorePolicy.LAZY_COW:
        yield machine.sim.timeout(cost.sample(_COW_SETUP_MS))
        # Pages stay shared with the snapshot until written.
        private = 0
    elif cow:  # SEV_KEY_REUSE over a CoW mapping
        # Arm the mapping over the whole snapshot, re-init the RMP, and
        # let the guest run its pvalidate sweep; only the working set
        # ever privatizes (copy + fault overhead + guest revalidation).
        yield machine.sim.timeout(cost.sample(cost.cow_map_ms(snapshot.nominal_bytes)))
        yield machine.sim.timeout(cost.sample(cost.rmp_init_ms(snapshot.nominal_bytes)))
        yield machine.sim.timeout(
            cost.sample(cost.pvalidate_ms(snapshot.nominal_bytes, machine.huge_pages))
        )
        fraction = (
            cost.cow_touched_fraction if touched_fraction is None else touched_fraction
        )
        fraction = min(max(fraction, 0.0), 1.0)
        private = int(snapshot.nominal_bytes * fraction)
        yield machine.sim.timeout(cost.sample(cost.cow_fault_ms(private)))
    else:  # SEV_KEY_REUSE, eager
        # Eager full copy of every snapshot page (no sharing), then RMP
        # re-init and a full pvalidate sweep in the guest.
        yield machine.sim.timeout(cost.sample(cost.copy_ms(snapshot.nominal_bytes)))
        yield machine.sim.timeout(cost.sample(cost.rmp_init_ms(snapshot.nominal_bytes)))
        yield machine.sim.timeout(
            cost.sample(cost.pvalidate_ms(snapshot.nominal_bytes, machine.huge_pages))
        )
        private = snapshot.nominal_bytes
    return RestoreOutcome(
        policy=policy,
        restore_ms=machine.sim.now - start,
        private_bytes=private,
    )


# -- the content-addressed store ----------------------------------------------


class SnapshotStore:
    """Snapshots keyed by image digest, deduplicated at the image level.

    Modeled on :class:`repro.sev.api.PageCryptoCache`'s content
    addressing, but at snapshot granularity: two functions booting the
    same image produce the same launch digest and share one stored
    snapshot.  That is the dedup §7.1 *permits* — the shared object is
    the whole (key-bound) image, not cross-VM ciphertext pages.

    Unlike the wall-clock caches in :mod:`repro.perf`, the store is part
    of the platform's *semantics* (what restores are possible), so it is
    never gated by ``REPRO_CACHES`` — a switch flip must not change
    virtual-time results.  Occupancy and traffic land in the metrics
    registry (``snapshot.store.*``).
    """

    def __init__(self) -> None:
        self._by_digest: dict[bytes, VmSnapshot] = {}

    @staticmethod
    def _registry():
        from repro.obs.metrics import default_registry

        return default_registry()

    def put(self, snapshot: VmSnapshot) -> bytes:
        """Store (or dedupe against) ``snapshot``; returns its digest."""
        digest = snapshot.image_digest
        registry = self._registry()
        if digest in self._by_digest:
            registry.counter("snapshot.store.dedup_hits").inc()
        else:
            self._by_digest[digest] = snapshot
            registry.gauge("snapshot.store.entries").set(len(self._by_digest))
            registry.gauge("snapshot.store.bytes").set(self.stored_bytes)
        return digest

    def get(self, digest: bytes) -> VmSnapshot | None:
        snapshot = self._by_digest.get(digest)
        self._registry().counter(
            "snapshot.store.lookups", result="hit" if snapshot else "miss"
        ).inc()
        return snapshot

    def lookup(self, machine: Machine, digest: bytes) -> Generator:
        """Timed store probe; process value: the snapshot.

        Charges :attr:`CostModel.snapshot_lookup_ms` and raises
        :class:`SnapshotError` when the digest is unknown.
        """
        yield machine.sim.timeout(
            machine.cost.sample(machine.cost.snapshot_lookup_ms)
        )
        snapshot = self.get(digest)
        if snapshot is None:
            raise SnapshotError(f"no snapshot stored for digest {digest.hex()[:16]}")
        return snapshot

    def __len__(self) -> int:
        return len(self._by_digest)

    def __contains__(self, digest: bytes) -> bool:
        return digest in self._by_digest

    @property
    def stored_bytes(self) -> int:
        return sum(s.resident_bytes for s in self._by_digest.values())


# -- restore-time re-attestation ----------------------------------------------


class SessionCache:
    """Established attestation sessions, for resumption on repeat restores.

    A session is keyed by (tenant, chip, image digest): once a tenant's
    owner has accepted a report from this chip for this image, later
    restores of the same image on the same chip run the abbreviated
    exchange (e-vTPM §5, SNPGuard §IV) instead of the full network round
    trip plus chain walk.
    """

    def __init__(self) -> None:
        self._sessions: set[tuple[str, bytes, bytes]] = set()

    def establish(self, tenant: str, chip_id: bytes, digest: bytes) -> None:
        self._sessions.add((tenant, chip_id, digest))

    def resumable(self, tenant: str, chip_id: bytes, digest: bytes) -> bool:
        return (tenant, chip_id, digest) in self._sessions

    def __len__(self) -> int:
        return len(self._sessions)


@dataclass(frozen=True)
class ReattestOutcome:
    reattest_ms: float
    resumed: bool
    digest: bytes


def reattest(
    machine: Machine,
    snapshot: VmSnapshot,
    owner,
    *,
    tenant: str = "default",
    sessions: SessionCache | None = None,
    verifier=None,
) -> Generator:
    """Re-attest a restored guest; process value: :class:`ReattestOutcome`.

    A restored guest's launch-time attestation is stale — the report the
    owner saw belongs to the *original* VM instance.  Before releasing
    secrets to the restored instance the owner demands a fresh report
    over a fresh nonce (e-vTPM arXiv 2303.16463; SNPGuard arXiv
    2406.01186).  The report request occupies the PSP for
    :attr:`CostModel.psp_report_ms` like any launch command, so restores
    contend with in-flight launches exactly as Fig. 12's concurrent
    boots do.  First-contact tenants then pay the full network exchange
    plus the ARK->ASK->VCEK chain walk; repeat tenants resume their
    session.  ``owner`` is a :class:`repro.sev.guestowner.GuestOwner`;
    a rejected report raises :class:`ReattestationError`.

    With a :class:`repro.sev.verifier.VerifierService` passed as
    ``verifier``, the first-contact chain walk runs *in the service*
    (queued, batched, amortized across tenants and restores) instead of
    charging the local :attr:`CostModel.cert_chain_verify_ms` constant —
    the production owner-at-traffic path.  ``verifier=None`` (the
    default) keeps the historical standalone exchange.
    """
    from repro.obs.metrics import default_registry
    from repro.sev.api import GuestSevContext, SevState
    from repro.sev.guestowner import AttestationFailure, GuestOwner

    if snapshot.sev_mode is None or snapshot.launch_digest is None:
        raise ReattestationError(
            "only SEV snapshots carry a launch measurement to re-attest"
        )
    cost = machine.cost
    psp = machine.psp
    start = machine.sim.now
    # The restored VM needs a live ASID to issue guest requests; its SEV
    # context reuses the snapshot's key and finished launch state.
    ctx = GuestSevContext(
        asid=psp.allocate_asid(),
        policy=GuestPolicy(mode=snapshot.sev_mode),
        state=SevState.LAUNCH_FINISHED,
        launch_digest=snapshot.launch_digest,
    )
    try:
        nonce = sha256(b"reattest-nonce" + ctx.asid.to_bytes(8, "little"))[:32]
        # Fresh transport key generated inside encrypted guest memory.
        transport_key = sha256(
            b"reattest-transport" + ctx.asid.to_bytes(8, "little") + nonce
        )
        report_data = GuestOwner.bind_report_data(nonce, transport_key)
        report = yield from psp.attestation_report(ctx, report_data)
        resumed = sessions is not None and sessions.resumable(
            tenant, psp.chip_id, snapshot.image_digest
        )
        tracer = machine.sim.tracer
        track = (
            f"{machine.label}/attestation" if machine.label else "attestation"
        )
        if resumed:
            if tracer is not None:
                span = tracer.begin("session_resume", "network", track)
                try:
                    yield machine.sim.timeout(
                        cost.sample(cost.reattest_resume_ms)
                    )
                finally:
                    tracer.end(span)
            else:
                yield machine.sim.timeout(cost.sample(cost.reattest_resume_ms))
        elif verifier is not None:
            # Full exchange through the verification service: the chain
            # proof queues, batches, and amortizes in the service; the
            # network round trip is unchanged.
            if tracer is not None:
                span = tracer.begin("verifier_verify", "crypto", track)
                try:
                    verdict = yield from verifier.verify(
                        report, psp.cert_chain, tenant=tenant
                    )
                finally:
                    tracer.end(span)
            else:
                verdict = yield from verifier.verify(
                    report, psp.cert_chain, tenant=tenant
                )
            if not verdict.accepted:
                default_registry().counter(
                    "sev.reattest", result="rejected"
                ).inc()
                raise ReattestationError(
                    f"re-attestation rejected: {verdict.reason}"
                )
            if tracer is not None:
                span = tracer.begin("attestation_rtt", "network", track)
                try:
                    yield machine.sim.timeout(
                        cost.sample(cost.attestation_network_ms)
                    )
                finally:
                    tracer.end(span)
            else:
                yield machine.sim.timeout(
                    cost.sample(cost.attestation_network_ms)
                )
        else:
            # Full exchange: chain walk to prove the VCEK, then the
            # owner-side round trip (§6.1's attestation server).
            if tracer is not None:
                span = tracer.begin("cert_chain_verify", "crypto", track)
                try:
                    yield machine.sim.timeout(
                        cost.sample(cost.cert_chain_verify_ms)
                    )
                finally:
                    tracer.end(span)
                span = tracer.begin("attestation_rtt", "network", track)
                try:
                    yield machine.sim.timeout(
                        cost.sample(cost.attestation_network_ms)
                    )
                finally:
                    tracer.end(span)
            else:
                yield machine.sim.timeout(
                    cost.sample(cost.cert_chain_verify_ms)
                )
                yield machine.sim.timeout(
                    cost.sample(cost.attestation_network_ms)
                )
        try:
            owner.validate_and_release(report, nonce, transport_key)
        except AttestationFailure as exc:
            default_registry().counter("sev.reattest", result="rejected").inc()
            raise ReattestationError(f"re-attestation rejected: {exc}") from exc
        if sessions is not None:
            sessions.establish(tenant, psp.chip_id, snapshot.image_digest)
    finally:
        psp.release(ctx)
    elapsed = machine.sim.now - start
    registry = default_registry()
    registry.counter(
        "sev.reattest", result="resumed" if resumed else "full"
    ).inc()
    registry.histogram("sev.reattest_ms").observe(elapsed)
    return ReattestOutcome(
        reattest_ms=elapsed, resumed=resumed, digest=report.measurement
    )


def restore_from_store(
    machine: Machine,
    store: SnapshotStore,
    digest: bytes,
    owner,
    *,
    policy: RestorePolicy = RestorePolicy.SEV_KEY_REUSE,
    tenant: str = "default",
    sessions: SessionCache | None = None,
    verifier=None,
    cow: bool = True,
    touched_fraction: Optional[float] = None,
) -> Generator:
    """The production restore path: lookup -> restore -> re-attestation.

    Process value: a :class:`RestoreOutcome` whose ``restore_ms`` covers
    the whole sequence (so a platform's ``restore_factory`` charges one
    number), with the re-attestation share split out in ``reattest_ms``.
    SEV snapshots re-attest exactly once per restore; plain snapshots
    have nothing to prove and skip the handshake.

    Injection site ``serverless.restore`` (kinds ``lookup`` /
    ``reattest``) fires here: a ``lookup`` fault models store corruption
    or eviction races (the digest probe fails), a ``reattest`` fault
    models an owner-side rejection of the fresh report.  Both surface as
    the :class:`SnapshotError` family, which the serverless platform
    degrades to a full measured boot.
    """
    start = machine.sim.now
    plan = machine.sim.faults
    fault = plan.draw("serverless.restore") if plan is not None else None
    if fault is not None:
        # The failure manifests after the (charged) store probe.
        yield machine.sim.timeout(
            machine.cost.sample(machine.cost.snapshot_lookup_ms)
        )
        if fault.kind == "reattest":
            raise ReattestationError(
                "injected re-attestation rejection on restore"
            )
        raise SnapshotError("injected snapshot lookup failure on restore")
    snapshot = yield from store.lookup(machine, digest)
    base = yield from restore(
        machine, snapshot, policy, cow=cow, touched_fraction=touched_fraction
    )
    tracer = machine.sim.tracer
    restore_track = f"{machine.label}/restore" if machine.label else "restore"
    if snapshot.sev_mode is not None:
        reat = yield from reattest(
            machine,
            snapshot,
            owner,
            tenant=tenant,
            sessions=sessions,
            verifier=verifier,
        )
        if tracer is not None:
            tracer.complete(
                f"restore:{digest.hex()[:8]}",
                "serverless.restore",
                restore_track,
                start,
                machine.sim.now,
                resumed=reat.resumed,
                reattest_ms=reat.reattest_ms,
            )
        return replace(
            base,
            restore_ms=machine.sim.now - start,
            reattest_ms=reat.reattest_ms,
            resumed_session=reat.resumed,
            digest=reat.digest,
        )
    if tracer is not None:
        tracer.complete(
            f"restore:{digest.hex()[:8]}",
            "serverless.restore",
            restore_track,
            start,
            machine.sim.now,
        )
    return replace(base, restore_ms=machine.sim.now - start)


# -- building snapshots without a live platform -------------------------------


def snapshot_cold_boot(config, machine: Machine | None = None) -> VmSnapshot:
    """Boot one SEVeriFast guest to completion and capture it.

    Stages the images, pre-encrypts the root of trust, runs the boot
    verifier and the Linux boot, and snapshots the resulting guest — the
    offline step a provider runs once per image before enabling restores.
    Deterministic for a given ``(config, chip_seed)``: jitter is a cost-
    model property and the captured bytes never depend on it.
    """
    from repro.core.config import KernelFormat
    from repro.core.digest_tool import preencrypted_regions
    from repro.core.oob_hash import hash_boot_components
    from repro.formats.kernels import build_initrd, build_kernel
    from repro.guest.bootverifier import BootVerifier, verifier_binary
    from repro.guest.linuxboot import LinuxGuest
    from repro.vmm.timeline import BootTimeline

    if config.kernel_format is not KernelFormat.BZIMAGE:
        raise SnapshotError(
            "snapshot_cold_boot stages bzImage configs; snapshot a "
            "vmlinux guest through the VMM pipeline instead"
        )
    machine = machine or Machine()
    artifacts = build_kernel(config.kernel, config.scale)
    initrd = build_initrd(config.scale)
    kernel_blob = artifacts.bzimage
    hashes = hash_boot_components(kernel_blob, initrd)

    sev_ctx = machine.new_sev_context(config.sev_policy)
    memory = machine.new_guest_memory(config.memory_size, sev_ctx)
    ctx = GuestContext(
        machine=machine,
        config=config,
        memory=memory,
        sev=sev_ctx,
        timeline=BootTimeline(machine.sim),
    )
    memory.host_write(config.layout.kernel_stage_addr, kernel_blob.data)
    memory.host_write(config.layout.initrd_stage_addr, initrd.data)
    regions = preencrypted_regions(config, verifier_binary(), hashes)
    for gpa, data, _nominal in regions:
        memory.host_write(gpa, data)
    if memory.rmp is not None:
        memory.rmp.assign_all()

    def launch():
        psp = machine.psp
        yield from psp.launch_start(sev_ctx, config.sev_policy)
        memory.engine = sev_ctx.engine
        for gpa, data, nominal in regions:
            yield from psp.launch_update_data(
                sev_ctx, memory, gpa, len(data), nominal_size=nominal
            )
        yield from psp.launch_finish(sev_ctx)

    machine.sim.run_process(launch())
    verified = machine.sim.run_process(BootVerifier(ctx).run())
    guest = LinuxGuest(ctx)
    entry = machine.sim.run_process(guest.bootstrap_loader(verified))
    machine.sim.run_process(guest.linux_boot(verified, entry))
    return take_snapshot(ctx)


#: Built snapshots per (config, chip seed) — a build cache like the
#: kernel caches (``gated=False``: the artifact is deterministic, so the
#: cache is a pure wall-clock lever even in no-accel runs).
_SNAPSHOT_CACHE = perf.LRUCache("snapshot.image", capacity=8, gated=False)


def cached_snapshot(config, chip_seed: bytes) -> VmSnapshot:
    """The per-process snapshot build cache used by fleet/bulk units."""
    return _SNAPSHOT_CACHE.get_or_compute(
        (config, chip_seed),
        lambda: snapshot_cold_boot(config, Machine(chip_seed=chip_seed)),
    )
