"""Snapshot/restore exploration for warm starts (§7.1).

The paper's discussion section lays out why the standard serverless
warm-start tricks fail under SEV:

- snapshot pages cannot be deduplicated or shared between VMs: identical
  plaintext at different physical addresses has different ciphertext;
- lazy/on-demand restore needs host-guest cooperation because the host
  cannot validate pages on the guest's behalf (the RMP valid bit is set
  only by ``pvalidate`` *inside* the guest);
- reusing previously attested state requires reusing the memory
  encryption key, which weakens the trust model (one key, many VMs).

This module makes those constraints executable: :func:`take_snapshot`
captures a booted guest; :func:`restore` replays it under a stated
policy, charging the cost model for the work the policy implies, and
*refusing* the combinations the hardware forbids.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Generator

from repro.common import PAGE_SIZE
from repro.guest.context import GuestContext
from repro.hw.platform import Machine
from repro.sev.policy import SevMode


class SnapshotError(Exception):
    """A restore policy the hardware cannot honour."""


class RestorePolicy(enum.Enum):
    """How a snapshot is brought back."""

    #: Plain microVM: map the snapshot copy-on-write, fault pages in.
    LAZY_COW = "lazy-cow"
    #: SEV with the *same* guest key (weakened trust model, §7.1): copy
    #: every page eagerly and re-validate the whole range.
    SEV_KEY_REUSE = "sev-key-reuse"
    #: SEV with a fresh key: impossible without re-running the launch
    #: flow — the snapshot's ciphertext is unreadable under the new key.
    SEV_FRESH_KEY = "sev-fresh-key"


@dataclass(frozen=True)
class VmSnapshot:
    """A captured guest: resident pages + identity of its protection."""

    kernel_name: str
    sev_mode: SevMode | None
    resident_bytes: int  #: actual bytes captured (scaled builds)
    nominal_bytes: int  #: what a full-scale snapshot would hold
    launch_digest: bytes | None
    pages: dict[int, bytes] = field(default_factory=dict, hash=False, compare=False)


@dataclass(frozen=True)
class RestoreOutcome:
    policy: RestorePolicy
    restore_ms: float
    #: host memory the restored VM pins beyond shared state
    private_bytes: int


def take_snapshot(ctx: GuestContext) -> VmSnapshot:
    """Capture a booted guest's resident pages (host-side copy).

    For an SEV guest the captured bytes are ciphertext — the snapshot is
    useless without the original key, which is exactly the property the
    restore policies below must respect.
    """
    pages = {
        index: bytes(backing) for index, backing in ctx.memory._pages.items()
    }
    scale = max(
        1e-12,
        min(1.0, ctx.config.scale if ctx.config.scale > 0 else 1.0),
    )
    resident = len(pages) * PAGE_SIZE
    return VmSnapshot(
        kernel_name=ctx.config.kernel.name,
        sev_mode=ctx.sev.policy.mode if ctx.sev else None,
        resident_bytes=resident,
        nominal_bytes=int(resident / scale),
        launch_digest=ctx.sev.launch_digest if ctx.sev else None,
        pages=pages,
    )


#: Fixed VMM-side cost to arm a copy-on-write mapping.
_COW_SETUP_MS = 2.0


def restore(
    machine: Machine, snapshot: VmSnapshot, policy: RestorePolicy
) -> Generator:
    """Restore ``snapshot`` under ``policy``; process value: RestoreOutcome.

    Raises :class:`SnapshotError` for combinations SEV forbids.
    """
    cost = machine.cost
    is_sev = snapshot.sev_mode is not None

    if policy is RestorePolicy.SEV_FRESH_KEY:
        raise SnapshotError(
            "snapshot ciphertext is unreadable under a fresh guest key; "
            "a fresh-key VM must cold boot through the launch flow (§7.1)"
        )
    if policy is RestorePolicy.LAZY_COW and is_sev:
        raise SnapshotError(
            "lazy CoW restore needs host-managed mappings; under SNP a "
            "host remap clears the RMP valid bit and the guest faults (#VC)"
        )
    if policy is RestorePolicy.SEV_KEY_REUSE and not is_sev:
        raise SnapshotError("key reuse is meaningless for a non-SEV snapshot")

    start = machine.sim.now
    if policy is RestorePolicy.LAZY_COW:
        yield machine.sim.timeout(cost.sample(_COW_SETUP_MS))
        # Pages stay shared with the snapshot until written.
        private = 0
    else:  # SEV_KEY_REUSE
        # Eager full copy of every snapshot page (no sharing possible),
        # then RMP re-init and a full pvalidate sweep in the guest.
        yield machine.sim.timeout(cost.sample(cost.copy_ms(snapshot.nominal_bytes)))
        yield machine.sim.timeout(cost.sample(cost.rmp_init_ms(snapshot.nominal_bytes)))
        yield machine.sim.timeout(
            cost.sample(cost.pvalidate_ms(snapshot.nominal_bytes, machine.huge_pages))
        )
        private = snapshot.nominal_bytes
    return RestoreOutcome(
        policy=policy,
        restore_ms=machine.sim.now - start,
        private_bytes=private,
    )
