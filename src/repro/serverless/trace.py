"""Synthetic serverless invocation traces.

Shaped after the published characterizations the paper cites ([29], [39]):
a heavy-tailed popularity distribution over functions, Poisson arrivals
per function, and short, variable execution times.  Deterministic given a
seed, so experiments are reproducible.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Invocation:
    """One function invocation request."""

    arrival_ms: float
    function: str
    exec_ms: float


@dataclass
class InvocationTrace:
    """An ordered list of invocations over a time horizon."""

    invocations: list[Invocation] = field(default_factory=list)
    horizon_ms: float = 0.0

    def __len__(self) -> int:
        return len(self.invocations)

    def __iter__(self):
        return iter(self.invocations)

    @property
    def functions(self) -> list[str]:
        return sorted({inv.function for inv in self.invocations})

    def arrivals_per_second(self) -> float:
        if self.horizon_ms <= 0:
            return 0.0
        return len(self.invocations) / (self.horizon_ms / 1000.0)


def synthesize_trace(
    num_functions: int = 10,
    horizon_ms: float = 60_000.0,
    mean_rate_per_s: float = 2.0,
    mean_exec_ms: float = 100.0,
    zipf_s: float = 1.2,
    seed: int = 0,
) -> InvocationTrace:
    """Generate a trace: Zipf-popular functions with Poisson arrivals.

    ``mean_rate_per_s`` is the aggregate arrival rate across all
    functions; per-function rates follow a Zipf(s) split, giving the
    hot-function/cold-function mix that makes keep-alive policies
    interesting.
    """
    if num_functions < 1:
        raise ValueError("need at least one function")
    rng = random.Random(seed)
    weights = [1.0 / (rank**zipf_s) for rank in range(1, num_functions + 1)]
    total_weight = sum(weights)
    invocations: list[Invocation] = []
    for index, weight in enumerate(weights):
        rate_per_ms = mean_rate_per_s * (weight / total_weight) / 1000.0
        if rate_per_ms <= 0:
            continue
        t = 0.0
        while True:
            t += rng.expovariate(rate_per_ms)
            if t >= horizon_ms:
                break
            exec_ms = max(1.0, rng.lognormvariate(math.log(mean_exec_ms), 0.6))
            invocations.append(
                Invocation(arrival_ms=t, function=f"fn-{index}", exec_ms=exec_ms)
            )
    invocations.sort(key=lambda inv: inv.arrival_ms)
    return InvocationTrace(invocations=invocations, horizon_ms=horizon_ms)
