"""Bulk serverless traffic: many independent fleet segments, sharded.

The ROADMAP north star is a platform serving heavy traffic; one
simulated :class:`ServerlessPlatform` only scales so far on one core.
This driver slices the offered load into independent *segments* — each
a complete platform instance on its own machine with its own slice of
the arrival trace — and fans them across :mod:`repro.parallel` workers.
Segments model independent hosts behind a load balancer, so there is no
cross-segment warm-pool sharing (each host keeps its own pool), and the
aggregate is exact: outcome counts add, latency percentiles are computed
over the pooled per-segment samples.

Per-segment seeds come from :func:`repro.parallel.shard.unit_seed`, so
the traffic (and therefore every aggregate) is identical for any
``workers`` value.
"""

from __future__ import annotations

from typing import Any

from repro.parallel.pool import ParallelResult, run_sharded
from repro.parallel.runners import (
    FLEET_CHIP_SEED,
    _boot_config,
    _fleet_machine,
    prime_boot_caches,
)


def bulk_unit(index: int, seed: int, payload: dict) -> dict[str, Any]:
    """One traffic segment: a full platform run on its own machine."""
    from repro.core.severifast import SEVeriFast
    from repro.serverless.platform import ServerlessPlatform
    from repro.serverless.trace import synthesize_trace
    from repro.vmm.firecracker import FirecrackerVMM

    machine = _fleet_machine(seed, payload)
    config = _boot_config(payload)
    sf = SEVeriFast()
    prepared = sf.prepare(config, machine)
    vmm = FirecrackerVMM(machine)

    def boot():
        result = yield from vmm.boot_severifast(
            config,
            prepared.artifacts,
            prepared.initrd,
            hashes=prepared.hashes,
        )
        return result

    platform = ServerlessPlatform(
        machine.sim,
        boot,
        keepalive_ms=payload.get("keepalive_ms", 4000.0),
    )
    trace = synthesize_trace(
        num_functions=payload.get("functions", 6),
        horizon_ms=payload.get("horizon_s", 20.0) * 1000.0,
        mean_rate_per_s=payload.get("rate_per_s", 2.0),
        seed=seed,
    )
    stats = platform.run(trace)
    return {
        "segment": index,
        "invocations": len(stats.outcomes),
        "cold_starts": stats.cold_starts,
        "warm_starts": stats.warm_starts,
        "failed_invocations": stats.failed_invocations,
        # raw samples, so the parent can compute exact pooled percentiles
        "start_delays_ms": [
            round(o.start_delay_ms, 6) for o in stats.outcomes
        ],
        "cold_boot_ms": [
            round(o.boot_ms, 6)
            for o in stats.outcomes
            if o.cold and not o.failed
        ],
    }


def run_bulk_traffic(
    segments: int = 8,
    *,
    seed: int = 0,
    workers: int = 1,
    kernel: str = "aws",
    scale: float = 1.0 / 1024.0,
    functions: int = 6,
    horizon_s: float = 20.0,
    rate_per_s: float = 2.0,
    keepalive_ms: float = 4000.0,
) -> dict[str, Any]:
    """Drive ``segments`` independent traffic segments; exact aggregate."""
    from repro.analysis.stats import percentile

    payload = {
        "kernel": kernel,
        "scale": scale,
        "jitter": 0.03,
        "attest": False,
        "chip_seed": FLEET_CHIP_SEED,
        "functions": functions,
        "horizon_s": horizon_s,
        "rate_per_s": rate_per_s,
        "keepalive_ms": keepalive_ms,
    }
    run: ParallelResult = run_sharded(
        bulk_unit,
        segments,
        seed=seed,
        workers=workers,
        unit_args=payload,
        prime=prime_boot_caches,
    )
    rows = run.results
    delays = [d for row in rows for d in row["start_delays_ms"]]
    boots = [b for row in rows for b in row["cold_boot_ms"]]
    invocations = sum(row["invocations"] for row in rows)
    return {
        "experiment": "serverless-bulk",
        "seed": seed,
        "segments": segments,
        "workers": run.workers,
        "kernel": kernel,
        "functions": functions,
        "horizon_s": horizon_s,
        "rate_per_s": rate_per_s,
        "invocations": invocations,
        "cold_starts": sum(row["cold_starts"] for row in rows),
        "warm_starts": sum(row["warm_starts"] for row in rows),
        "failed_invocations": sum(row["failed_invocations"] for row in rows),
        "p50_start_delay_ms": round(percentile(delays, 50), 3) if delays else 0.0,
        "p99_start_delay_ms": round(percentile(delays, 99), 3) if delays else 0.0,
        "p50_cold_boot_ms": round(percentile(boots, 50), 3) if boots else 0.0,
        "p99_cold_boot_ms": round(percentile(boots, 99), 3) if boots else 0.0,
        "elapsed_s": round(run.elapsed_s, 3),
        "segment_rows": rows,
    }
