"""Bulk serverless traffic: many independent fleet segments, sharded.

The ROADMAP north star is a platform serving heavy traffic; one
simulated :class:`ServerlessPlatform` only scales so far on one core.
This driver slices the offered load into independent *segments* — each
a complete platform instance on its own machine with its own slice of
the arrival trace — and fans them across :mod:`repro.parallel` workers.
Segments model independent hosts behind a load balancer, so there is no
cross-segment warm-pool sharing (each host keeps its own pool), and the
aggregate is exact: outcome counts add, latency percentiles are computed
over the pooled per-segment samples.

Per-segment seeds come from :func:`repro.parallel.shard.unit_seed`, so
the traffic (and therefore every aggregate) is identical for any
``workers`` value.
"""

from __future__ import annotations

from typing import Any

from repro.parallel.pool import ParallelResult, run_sharded
from repro.parallel.runners import (
    FLEET_CHIP_SEED,
    _boot_config,
    _fleet_machine,
    prime_boot_caches,
)


def prime_bulk_caches(payload: dict) -> None:
    """Warm boot caches plus the snapshot build cache (restore runs)."""
    from repro.serverless.snapshots import cached_snapshot

    prime_boot_caches(payload)
    cached_snapshot(
        _boot_config(payload), payload.get("chip_seed", FLEET_CHIP_SEED)
    )


def bulk_unit(index: int, seed: int, payload: dict) -> dict[str, Any]:
    """One traffic segment: a full platform run on its own machine."""
    from repro.core.severifast import SEVeriFast
    from repro.serverless.platform import ServerlessPlatform
    from repro.serverless.trace import synthesize_trace
    from repro.vmm.firecracker import FirecrackerVMM

    machine = _fleet_machine(seed, payload)
    config = _boot_config(payload)
    sf = SEVeriFast()
    prepared = sf.prepare(config, machine)
    vmm = FirecrackerVMM(machine)

    def boot():
        result = yield from vmm.boot_severifast(
            config,
            prepared.artifacts,
            prepared.initrd,
            hashes=prepared.hashes,
        )
        return result

    restore_factory = None
    snapshot_digest = b""
    if payload.get("restore"):
        from repro.serverless.snapshots import (
            SessionCache,
            SnapshotStore,
            cached_snapshot,
            restore_from_store,
        )
        from repro.sev.guestowner import GuestOwner

        # The provider's offline snapshot of this image (build cache:
        # identical content for every segment and worker count).
        snapshot = cached_snapshot(
            config, payload.get("chip_seed", FLEET_CHIP_SEED)
        )
        store = SnapshotStore()
        snapshot_digest = store.put(snapshot)
        sessions = SessionCache()
        owner = GuestOwner.with_chain(
            trusted_ark=machine.psp.key_hierarchy.ark_key.public,
            cert_chain=machine.psp.cert_chain,
            expected_digest=snapshot.launch_digest,
            secret=b"bulk-function-secret",
        )
        # The original launch already attested this image on this chip,
        # so in-platform restores resume the tenant's session.
        sessions.establish("bulk", machine.psp.chip_id, snapshot.image_digest)

        verifier = None
        window = payload.get("verifier_window_ms")
        if window is not None:
            from repro.sev.verifier import VerifierService

            verifier = VerifierService(
                machine.sim,
                machine.psp.key_hierarchy.ark_key.public,
                workers=payload.get("verifier_workers", 1),
                batch_window_ms=window,
            )

        def restore_factory():
            outcome = yield from restore_from_store(
                machine,
                store,
                snapshot_digest,
                owner,
                tenant="bulk",
                sessions=sessions,
                verifier=verifier,
            )
            return outcome

    platform = ServerlessPlatform(
        machine.sim,
        boot,
        keepalive_ms=payload.get("keepalive_ms", 4000.0),
        restore_factory=restore_factory,
    )
    trace = synthesize_trace(
        num_functions=payload.get("functions", 6),
        horizon_ms=payload.get("horizon_s", 20.0) * 1000.0,
        mean_rate_per_s=payload.get("rate_per_s", 2.0),
        seed=seed,
    )
    stats = platform.run(trace)
    return {
        "segment": index,
        "invocations": len(stats.outcomes),
        "cold_starts": stats.cold_starts,
        "warm_starts": stats.warm_starts,
        "restored_starts": stats.restored_starts,
        "failed_invocations": stats.failed_invocations,
        # every restore re-attested against the digest the original
        # launch flow computed offline (equal-digest correctness)
        "restore_digest_ok": all(
            snapshot_digest == prepared.expected_digest
            for o in stats.outcomes
            if o.restored
        ),
        # raw samples, so the parent can compute exact pooled percentiles
        "start_delays_ms": [
            round(o.start_delay_ms, 6) for o in stats.outcomes
        ],
        "cold_boot_ms": [
            round(o.boot_ms, 6)
            for o in stats.outcomes
            if o.cold and not o.failed and not o.restored
        ],
        "restore_ms": [
            round(o.boot_ms, 6) for o in stats.outcomes if o.restored
        ],
        "reattest_ms": [
            round(o.reattest_ms, 6) for o in stats.outcomes if o.restored
        ],
    }


def run_bulk_traffic(
    segments: int = 8,
    *,
    seed: int = 0,
    workers: int = 1,
    kernel: str = "aws",
    scale: float = 1.0 / 1024.0,
    functions: int = 6,
    horizon_s: float = 20.0,
    rate_per_s: float = 2.0,
    keepalive_ms: float = 4000.0,
    restore: bool = False,
    verifier_window_ms: float | None = None,
    verifier_workers: int = 1,
) -> dict[str, Any]:
    """Drive ``segments`` independent traffic segments; exact aggregate.

    With ``restore=True`` every segment serves repeat cold starts from a
    content-addressed snapshot store (CoW restore + re-attestation, see
    :mod:`repro.serverless.snapshots`) instead of a full launch flow.
    ``verifier_window_ms`` additionally routes each segment's
    re-attestation chain proofs through a per-segment batched
    :class:`repro.sev.verifier.VerifierService` with that batching
    window (``None`` keeps the standalone per-report exchange).
    """
    from repro.analysis.stats import percentile
    from repro.obs.metrics import default_registry

    payload = {
        "kernel": kernel,
        "scale": scale,
        "jitter": 0.03,
        "attest": False,
        "chip_seed": FLEET_CHIP_SEED,
        "functions": functions,
        "horizon_s": horizon_s,
        "rate_per_s": rate_per_s,
        "keepalive_ms": keepalive_ms,
        "restore": restore,
        "verifier_window_ms": verifier_window_ms,
        "verifier_workers": verifier_workers,
    }
    run: ParallelResult = run_sharded(
        bulk_unit,
        segments,
        seed=seed,
        workers=workers,
        unit_args=payload,
        prime=prime_bulk_caches if restore else prime_boot_caches,
    )
    # Fold the per-segment registries into the process default, so the
    # serverless.* instruments (restore/re-attestation histograms, start
    # counters) are visible to callers exactly as a serial run's would be.
    default_registry().merge_snapshot(run.metrics)
    rows = run.results
    delays = [d for row in rows for d in row["start_delays_ms"]]
    boots = [b for row in rows for b in row["cold_boot_ms"]]
    restores = [r for row in rows for r in row["restore_ms"]]
    reattests = [r for row in rows for r in row["reattest_ms"]]
    invocations = sum(row["invocations"] for row in rows)
    cold = sum(row["cold_starts"] for row in rows)
    restored = sum(row["restored_starts"] for row in rows)
    return {
        "experiment": "serverless-bulk",
        "seed": seed,
        "segments": segments,
        "workers": run.workers,
        "kernel": kernel,
        "functions": functions,
        "horizon_s": horizon_s,
        "rate_per_s": rate_per_s,
        "restore": restore,
        "invocations": invocations,
        "cold_starts": cold,
        "warm_starts": sum(row["warm_starts"] for row in rows),
        "restored_starts": restored,
        "restore_hit_rate": round(restored / cold, 6) if cold else 0.0,
        "restore_digest_ok": all(row["restore_digest_ok"] for row in rows),
        "failed_invocations": sum(row["failed_invocations"] for row in rows),
        "p50_start_delay_ms": round(percentile(delays, 50), 3) if delays else 0.0,
        "p99_start_delay_ms": round(percentile(delays, 99), 3) if delays else 0.0,
        "p50_cold_boot_ms": round(percentile(boots, 50), 3) if boots else 0.0,
        "p99_cold_boot_ms": round(percentile(boots, 99), 3) if boots else 0.0,
        "p50_restore_ms": round(percentile(restores, 50), 3) if restores else 0.0,
        "p99_restore_ms": round(percentile(restores, 99), 3) if restores else 0.0,
        "p50_reattest_ms": (
            round(percentile(reattests, 50), 3) if reattests else 0.0
        ),
        "elapsed_s": round(run.elapsed_s, 3),
        "segment_rows": rows,
    }
