"""Serverless platform substrate.

The paper's motivation (§1-2) is confidential serverless: short-lived
functions in microVMs where cold-boot latency dominates.  This package
provides the workload side of that story:

- :mod:`repro.serverless.trace` — synthetic invocation traces in the
  style of the Azure Functions characterization [39].
- :mod:`repro.serverless.platform` — a function-as-a-service scheduler
  with keep-alive (warm) pools and per-invocation cold boots on the
  simulated machine, pluggable with any of the boot pipelines.
"""

from repro.serverless.platform import (
    InvocationOutcome,
    PlatformStats,
    ServerlessPlatform,
)
from repro.serverless.snapshots import (
    RestoreOutcome,
    RestorePolicy,
    SnapshotError,
    VmSnapshot,
    restore,
    take_snapshot,
)
from repro.serverless.trace import InvocationTrace, synthesize_trace

__all__ = [
    "InvocationOutcome",
    "InvocationTrace",
    "PlatformStats",
    "RestoreOutcome",
    "RestorePolicy",
    "ServerlessPlatform",
    "SnapshotError",
    "VmSnapshot",
    "restore",
    "synthesize_trace",
    "take_snapshot",
]
