"""A function-as-a-service platform on the simulated machine.

Each invocation either reuses a warm microVM (keep-alive pool, §7.1) or
pays a cold boot through a pluggable boot pipeline — stock Firecracker,
SEVeriFast, or QEMU/OVMF — on the shared machine, so concurrent cold
starts contend on the PSP exactly as in Fig. 12.

The platform is deliberately policy-simple (fixed keep-alive window,
unbounded capacity): the paper's point is the *cold-start* cost, and this
substrate makes that cost visible under realistic arrival processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Generator, Optional

from repro.analysis.stats import percentile
from repro.faults.retry import RetryPolicy, sev_retryable
from repro.obs import metrics
from repro.guest.bootverifier import VerificationError
from repro.serverless.snapshots import ReattestationError, SnapshotError
from repro.serverless.trace import Invocation, InvocationTrace
from repro.sev.api import SevLaunchError
from repro.sim import Simulator
from repro.vmm.timeline import BootResult

BootFactory = Callable[[], Generator]


class ColdBootError(Exception):
    """The sandbox manager failed to spawn a microVM (transient)."""


@dataclass
class InvocationOutcome:
    """What happened to one invocation."""

    function: str
    arrival_ms: float
    cold: bool
    boot_ms: float  #: 0 for warm starts
    start_delay_ms: float  #: arrival -> function begins executing
    end_ms: float
    #: the cold start was served by a snapshot restore (§7.1) rather than
    #: a full boot
    restored: bool = False
    #: re-attestation share of a restored start's ``boot_ms``
    reattest_ms: float = 0.0
    #: the invocation never ran: its cold boot failed (after retries) or
    #: the boot verifier aborted a tampered boot
    failed: bool = False
    #: human-readable reason when ``failed``
    failure: str = ""
    #: cold-boot attempts beyond the first (platform-level retries)
    boot_retries: int = 0
    #: the failure was a *detected* tamper (the measured-abort path)
    tamper_detected: bool = False


@dataclass
class _WarmVm:
    function: str
    idle_since: float


@dataclass
class PlatformStats:
    """Aggregate statistics over a completed run."""

    outcomes: list[InvocationOutcome] = field(default_factory=list)

    @property
    def cold_starts(self) -> int:
        return sum(1 for o in self.outcomes if o.cold)

    @property
    def warm_starts(self) -> int:
        return len(self.outcomes) - self.cold_starts

    @property
    def cold_fraction(self) -> float:
        return self.cold_starts / len(self.outcomes) if self.outcomes else 0.0

    def latency_percentile(self, pct: float) -> float:
        """Start-delay percentile across all invocations.

        Delegates to the shared nearest-rank implementation
        (:func:`repro.analysis.stats.percentile`); 0.0 on an empty run.
        """
        if not self.outcomes:
            return 0.0
        return percentile([o.start_delay_ms for o in self.outcomes], pct)

    @property
    def mean_start_delay_ms(self) -> float:
        if not self.outcomes:
            return 0.0
        return sum(o.start_delay_ms for o in self.outcomes) / len(self.outcomes)

    @property
    def mean_cold_boot_ms(self) -> float:
        cold = [o.boot_ms for o in self.outcomes if o.cold]
        return sum(cold) / len(cold) if cold else 0.0

    @property
    def restored_starts(self) -> int:
        return sum(1 for o in self.outcomes if o.restored)

    @property
    def restore_hit_rate(self) -> float:
        """Fraction of cold starts served by snapshot restore."""
        cold = self.cold_starts
        return self.restored_starts / cold if cold else 0.0

    # -- robustness accounting (chaos harness) ----------------------------

    @property
    def failed_invocations(self) -> int:
        return sum(1 for o in self.outcomes if o.failed)

    @property
    def success_rate(self) -> float:
        """Fraction of invocations that actually ran."""
        if not self.outcomes:
            return 1.0
        return 1.0 - self.failed_invocations / len(self.outcomes)

    @property
    def boot_success_rate(self) -> float:
        """Fraction of *cold* starts that produced a running guest."""
        cold = [o for o in self.outcomes if o.cold]
        if not cold:
            return 1.0
        return sum(1 for o in cold if not o.failed) / len(cold)

    @property
    def tamper_aborts(self) -> int:
        return sum(1 for o in self.outcomes if o.tamper_detected)

    @property
    def total_boot_retries(self) -> int:
        return sum(o.boot_retries for o in self.outcomes)

    def boot_latency_percentile(self, pct: float) -> float:
        """Nearest-rank percentile of *successful* cold-boot times
        (shared implementation, see :meth:`latency_percentile`)."""
        boots = [o.boot_ms for o in self.outcomes if o.cold and not o.failed]
        if not boots:
            return 0.0
        return percentile(boots, pct)


class ServerlessPlatform:
    """Schedules a trace onto warm pools + cold boots."""

    def __init__(
        self,
        sim: Simulator,
        boot_factory: BootFactory,
        keepalive_ms: float = 10_000.0,
        warm_start_ms: float = 1.0,
        vm_memory_bytes: int = 256 * 1024 * 1024,
        sev: bool = True,
        dedup_fraction: float = 0.6,
        restore_factory: BootFactory | None = None,
        boot_retry: RetryPolicy | None = None,
    ):
        """``restore_factory``, when given, serves repeat cold starts of a
        previously booted function by snapshot restore (§7.1) instead of
        a full boot — e.g. a key-reuse restore from
        :mod:`repro.serverless.snapshots`.

        ``boot_retry`` makes cold starts robust: spawn failures
        (:class:`ColdBootError`, the ``serverless.cold_boot`` fault
        site) and retryable SEV errors re-run the whole boot under the
        policy's backoff.  A boot that still fails — or that the
        verifier aborts as tampered — degrades to a failed
        :class:`InvocationOutcome` instead of killing the fleet."""
        self.sim = sim
        self.boot_factory = boot_factory
        self.keepalive_ms = keepalive_ms
        self.warm_start_ms = warm_start_ms
        self.vm_memory_bytes = vm_memory_bytes
        self.sev = sev
        self.dedup_fraction = dedup_fraction
        self.restore_factory = restore_factory
        self.boot_retry = boot_retry
        self.stats = PlatformStats()
        self._pool: list[_WarmVm] = []
        self._snapshotted: set[str] = set()

    # -- pool management ----------------------------------------------------

    def _take_warm(self, function: str) -> Optional[_WarmVm]:
        now = self.sim.now
        self._pool = [
            vm for vm in self._pool if now - vm.idle_since <= self.keepalive_ms
        ]
        for i, vm in enumerate(self._pool):
            if vm.function == function:
                return self._pool.pop(i)
        return None

    def _return_warm(self, function: str) -> None:
        self._pool.append(_WarmVm(function=function, idle_since=self.sim.now))

    @property
    def warm_pool_size(self) -> int:
        now = self.sim.now
        return sum(
            1 for vm in self._pool if now - vm.idle_since <= self.keepalive_ms
        )

    def warm_pool_memory_bytes(self) -> int:
        """Host memory held by the keep-alive pool.

        §7.1: identical pages at different physical addresses have
        different ciphertext under SEV, so warm SEV VMs cannot be
        deduplicated — every pooled VM holds its full footprint.  Plain
        microVMs share ``dedup_fraction`` of their pages (same kernel,
        same initrd) across the pool.
        """
        n = self.warm_pool_size
        if n == 0:
            return 0
        if self.sev:
            return n * self.vm_memory_bytes
        shared = int(self.vm_memory_bytes * self.dedup_fraction)
        unique = self.vm_memory_bytes - shared
        return shared + n * unique

    # -- execution ---------------------------------------------------------------

    @staticmethod
    def _boot_retryable(exc: BaseException) -> bool:
        return isinstance(exc, ColdBootError) or sev_retryable(exc)

    def _cold_boot(self) -> Generator:
        """One cold-boot attempt, including the sandbox-manager spawn.

        The ``serverless.cold_boot`` fault site models the spawn itself
        failing (cgroup setup, jailer, tap device) before the VMM even
        starts; the attempt costs one warm-start latency of wasted work.
        """
        plan = self.sim.faults
        if plan is not None and plan.draw("serverless.cold_boot") is not None:
            yield self.sim.timeout(self.warm_start_ms)
            raise ColdBootError(
                "sandbox manager failed to spawn the microVM (injected)"
            )
        result = yield from self.boot_factory()
        if isinstance(result, tuple):  # QEMU pipelines return extras
            result = result[0]
        assert isinstance(result, BootResult)
        return result

    def _handle(self, function: str, arrival_ms: float, exec_ms: float) -> Generator:
        tracer = self.sim.tracer
        span = (
            tracer.begin(function, "invocation", f"fn:{function}", arrival_ms=arrival_ms)
            if tracer is not None
            else None
        )
        warm = self._take_warm(function)
        boot_ms = 0.0
        restored = False
        reattest_ms = 0.0
        boot_retries = 0
        failure = ""
        tamper_detected = False
        registry = metrics.default_registry()
        if warm is None and self.restore_factory is not None and function in self._snapshotted:
            start = self.sim.now
            try:
                outcome = yield from self.restore_factory()
            except (SnapshotError, SevLaunchError) as exc:
                # A restore the hardware (or the owner) refuses — or a
                # PSP fault while re-attesting — degrades to a full cold
                # boot: the function still runs, it just pays the launch
                # flow again.
                if isinstance(exc, ReattestationError):
                    reason = "reattest"
                elif isinstance(exc, SevLaunchError):
                    reason = "psp"
                else:
                    reason = "policy"
                registry.counter(
                    "serverless.restore_fallbacks", reason=reason
                ).inc()
            else:
                boot_ms = self.sim.now - start
                restored = True
                registry.histogram("serverless.restore_ms").observe(boot_ms)
                reattest_ms = getattr(outcome, "reattest_ms", 0.0)
                if reattest_ms:
                    registry.histogram("serverless.reattest_ms").observe(
                        reattest_ms
                    )
        if warm is not None:
            yield self.sim.timeout(self.warm_start_ms)
        elif restored:
            pass  # the restore above already charged its time
        else:
            start = self.sim.now

            def on_retry(exc: BaseException, attempt: int) -> None:
                nonlocal boot_retries
                boot_retries += 1

            try:
                if self.boot_retry is not None:
                    result = yield from self.boot_retry.run(
                        self.sim,
                        self._cold_boot,
                        label="cold_boot",
                        retryable=self._boot_retryable,
                        on_retry=on_retry,
                    )
                else:
                    result = yield from self._cold_boot()
            except (ColdBootError, SevLaunchError, VerificationError) as exc:
                failure = str(exc)
            else:
                if result.aborted:
                    # The verifier refused a tampered boot: the detection
                    # worked, the invocation still has no sandbox.
                    failure = result.abort_reason or "boot aborted"
                    tamper_detected = True
                boot_retries += result.launch_retries
            boot_ms = self.sim.now - start
            registry = metrics.default_registry()
            registry.histogram("serverless.cold_boot_ms").observe(boot_ms)
            if boot_retries:
                registry.counter("serverless.boot_retries").inc(boot_retries)
            if failure:
                registry.counter(
                    "serverless.failed",
                    reason="tamper" if tamper_detected else "boot_error",
                ).inc()
                plan = self.sim.faults
                if plan is not None:
                    plan.note("failed_invocations")
                if span is not None:
                    tracer.end(
                        span, start="cold", failed=True, failure=failure,
                        boot_ms=boot_ms,
                    )
                registry.counter("serverless.invocations", start="cold").inc()
                self.stats.outcomes.append(
                    InvocationOutcome(
                        function=function,
                        arrival_ms=arrival_ms,
                        cold=True,
                        boot_ms=boot_ms,
                        start_delay_ms=self.sim.now - arrival_ms,
                        end_ms=self.sim.now,
                        failed=True,
                        failure=failure,
                        boot_retries=boot_retries,
                        tamper_detected=tamper_detected,
                    )
                )
                return
            self._snapshotted.add(function)
        metrics.default_registry().counter(
            "serverless.invocations",
            start=("warm" if warm is not None else "restored" if restored else "cold"),
        ).inc()
        start_delay = self.sim.now - arrival_ms
        yield self.sim.timeout(exec_ms)
        self._return_warm(function)
        if span is not None:
            tracer.end(
                span,
                start=("warm" if warm is not None else "restored" if restored else "cold"),
                boot_ms=boot_ms,
                start_delay_ms=start_delay,
            )
        self.stats.outcomes.append(
            InvocationOutcome(
                function=function,
                arrival_ms=arrival_ms,
                cold=warm is None,
                boot_ms=boot_ms,
                start_delay_ms=start_delay,
                end_ms=self.sim.now,
                restored=restored,
                reattest_ms=reattest_ms,
                boot_retries=boot_retries,
            )
        )

    def _spawn_invocation(self, inv: Invocation, _event) -> None:
        self.sim.process(
            self._handle(inv.function, inv.arrival_ms, inv.exec_ms),
            name=f"invoke-{inv.function}",
        )

    def run(self, trace: InvocationTrace) -> PlatformStats:
        """Run the whole trace to completion; returns the statistics.

        The whole arrival schedule is batch-inserted up front
        (:meth:`~repro.sim.engine.Simulator.schedule_batch` groups
        same-millisecond arrivals into one bucket insertion) instead of
        running a dispatcher process that re-enters the event loop once
        per invocation.  Same-time arrivals spawn in trace order, which
        is the order the dispatcher spawned them.
        """
        now = self.sim.now
        self.sim.schedule_batch(
            (max(0.0, inv.arrival_ms - now), partial(self._spawn_invocation, inv), None)
            for inv in trace
        )
        self.sim.run()
        self.stats.outcomes.sort(key=lambda o: o.arrival_ms)
        return self.stats
