"""Wall-clock performance substrate: switches, counters, bounded caches.

The simulator's *virtual-time* results are sacred — every optimization in
this repository must leave launch digests, ciphertext, and timelines
byte-identical.  What is fair game is *wall-clock* cost: the pure-Python
reference crypto can be dispatched to vectorized/batched implementations,
and deterministic artifacts (built kernels, page ciphertext, launch
digests, certificate chains) can be cached content-addressed across
boots.  This module is the shared substrate those optimizations hang off:

- **switches** — :func:`configure` / :func:`scoped` toggle the vectorized
  crypto paths and the content-addressed caches globally; environment
  variables ``REPRO_VECTORIZE=0`` / ``REPRO_CACHES=0`` disable them for a
  whole run (see docs/PERFORMANCE.md).  Both default to on.
- **counters** — a *compatibility shim* over the unified metrics
  registry in :mod:`repro.obs.metrics`.  :func:`incr`,
  :func:`counters_snapshot`, :func:`counters_delta`, and
  :func:`reset_counters` keep their historical signatures and names
  (``crypto.*``, ``cache.*`` — the PERFORMANCE.md numbers and the
  tracer's ``[crypto/cache]`` section are unchanged), but the values
  now live in :func:`repro.obs.metrics.default_registry`, so
  ``repro metrics`` exports them alongside every other instrument.
  New code should use the registry directly (see docs/API.md for the
  deprecation note).
- **caches** — :class:`LRUCache`, a bounded mapping that counts hits and
  misses into the counter registry and registers itself so
  :func:`clear_all_caches` and :func:`cache_stats` see every cache in
  the process.

Everything here is wall-clock machinery: with the switches off the
simulation produces bit-identical output, just slower — the property
tests under ``tests/properties`` pin exactly that.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Optional


def _env_flag(name: str, default: bool) -> bool:
    raw = os.environ.get(name)
    if raw is None:
        return default
    return raw.strip().lower() not in ("0", "false", "no", "off", "")


_vectorized = _env_flag("REPRO_VECTORIZE", True)
_caches = _env_flag("REPRO_CACHES", True)


def vectorized_enabled() -> bool:
    """Whether batched/accelerated crypto dispatch is on."""
    return _vectorized


def caches_enabled() -> bool:
    """Whether the content-addressed artifact caches are on."""
    return _caches


def configure(
    vectorized: Optional[bool] = None, caches: Optional[bool] = None
) -> None:
    """Flip the global switches (``None`` leaves a switch unchanged)."""
    global _vectorized, _caches
    if vectorized is not None:
        _vectorized = bool(vectorized)
    if caches is not None:
        _caches = bool(caches)


@contextmanager
def scoped(
    vectorized: Optional[bool] = None, caches: Optional[bool] = None
) -> Iterator[None]:
    """Temporarily override the switches (tests, benchmarks)."""
    saved = (_vectorized, _caches)
    try:
        configure(vectorized, caches)
        yield
    finally:
        configure(*saved)


# -- counters (compat shim over repro.obs.metrics) ---------------------------


def incr(name: str, amount: int = 1) -> None:
    """Bump a process-global monotonic counter.

    Deprecated spelling of
    ``default_registry().counter(name).inc(amount)``; kept so the
    crypto/cache call sites and their historical names stay stable.
    """
    from repro.obs.metrics import default_registry

    default_registry().counter(name).inc(amount)


def counter_value(name: str) -> int:
    """Current value of one unlabeled counter (0 when absent)."""
    from repro.obs.metrics import default_registry

    return int(default_registry().value(name))


def counters_snapshot() -> dict[str, int]:
    """A point-in-time copy of every counter (for delta accounting).

    Labeled counters from other subsystems appear flattened as
    ``name{k="v"}`` keys; the delta arithmetic is key-agnostic.
    """
    from repro.obs.metrics import default_registry

    return {k: int(v) for k, v in default_registry().counter_values().items()}


def counters_delta(baseline: dict[str, int]) -> dict[str, int]:
    """Counters that moved since ``baseline``, as positive deltas."""
    out: dict[str, int] = {}
    for name, value in counters_snapshot().items():
        delta = value - baseline.get(name, 0)
        if delta:
            out[name] = delta
    return out


def reset_counters() -> None:
    """Zero every counter in the default registry."""
    from repro.obs.metrics import default_registry

    default_registry().reset_counters()


# -- bounded LRU caches ------------------------------------------------------

#: every live cache, so tests/benchmarks can clear the world at once
_cache_registry: list["LRUCache"] = []


class LRUCache:
    """A bounded LRU mapping with hit/miss counters.

    ``capacity`` bounds the entry count; ``max_weight`` (with ``weigher``)
    additionally bounds total weight — used byte-bounded for ciphertext
    and keystream caches.  Lookups count into the global counter registry
    as ``cache.<name>.hits`` / ``cache.<name>.misses``.

    ``gated=True`` (the default) makes the cache honor the global caches
    switch: with caches disabled it neither serves nor stores, so a
    disabled run behaves exactly like an empty-cache run.  The build
    caches that predate this layer use ``gated=False``.
    """

    def __init__(
        self,
        name: str,
        capacity: int = 256,
        max_weight: Optional[int] = None,
        weigher: Optional[Callable[[Any], int]] = None,
        gated: bool = True,
    ):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.name = name
        self.capacity = capacity
        self.max_weight = max_weight
        self.weigher = weigher
        self.gated = gated
        self._data: OrderedDict[Any, Any] = OrderedDict()
        self._weight = 0
        _cache_registry.append(self)

    # -- switch handling ---------------------------------------------------

    def _active(self) -> bool:
        return caches_enabled() if self.gated else True

    # -- mapping operations ------------------------------------------------

    def get(self, key: Any, default: Any = None) -> Any:
        if not self._active():
            return default
        try:
            value = self._data[key]
        except KeyError:
            incr(f"cache.{self.name}.misses")
            return default
        self._data.move_to_end(key)
        incr(f"cache.{self.name}.hits")
        return value

    def put(self, key: Any, value: Any) -> None:
        if not self._active():
            return
        if key in self._data:
            self._weight -= self._weigh(self._data[key])
            del self._data[key]
        else:
            incr(f"cache.{self.name}.insertions")
        self._data[key] = value
        self._weight += self._weigh(value)
        self._evict()

    def get_or_compute(self, key: Any, compute: Callable[[], Any]) -> Any:
        """Serve ``key`` or compute, store, and return it.

        With caches disabled this is exactly ``compute()``.
        """
        sentinel = object()
        value = self.get(key, sentinel)
        if value is sentinel:
            value = compute()
            self.put(key, value)
        return value

    def clear(self) -> None:
        if self._data:
            incr(f"cache.{self.name}.removals", len(self._data))
        self._data.clear()
        self._weight = 0

    def resize(self, capacity: int) -> None:
        """Re-bound the cache, evicting LRU entries if it shrank.

        Capacity is operational tuning (a fleet with more distinct chips
        than the default hierarchy-cache capacity would thrash), so it
        is adjustable at runtime without losing the hot entries.
        """
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self._evict()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Any) -> bool:
        return key in self._data

    # -- internals ---------------------------------------------------------

    def _weigh(self, value: Any) -> int:
        if self.weigher is None:
            return 0
        return self.weigher(value)

    def _evict(self) -> None:
        while len(self._data) > self.capacity:
            self._pop_oldest()
        if self.max_weight is not None:
            while self._weight > self.max_weight and len(self._data) > 1:
                self._pop_oldest()

    def _pop_oldest(self) -> None:
        _key, value = self._data.popitem(last=False)
        self._weight -= self._weigh(value)
        incr(f"cache.{self.name}.evictions")

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict[str, int]:
        return {
            "entries": len(self._data),
            "weight": self._weight,
            "hits": counter_value(f"cache.{self.name}.hits"),
            "misses": counter_value(f"cache.{self.name}.misses"),
            "evictions": counter_value(f"cache.{self.name}.evictions"),
            "insertions": counter_value(f"cache.{self.name}.insertions"),
            "removals": counter_value(f"cache.{self.name}.removals"),
        }


def clear_all_caches() -> None:
    """Empty every registered cache (tests and cold-start benchmarks)."""
    for cache in _cache_registry:
        cache.clear()


def cache_stats() -> dict[str, dict[str, int]]:
    """Per-cache statistics for every registered cache."""
    return {cache.name: cache.stats() for cache in _cache_registry}


_MERGED_STAT_KINDS = ("hits", "misses", "evictions", "insertions", "removals")


def merged_cache_stats(registry=None) -> dict[str, dict[str, int]]:
    """Per-cache statistics derived purely from the counter registry.

    :meth:`LRUCache.stats` mixes two sources: hit/miss counters (which
    survive a ``merge_snapshot`` fold of worker registries) and
    ``len(self._data)`` (which is process-local, so a parent that merged
    worker metrics reports the *workers'* hits against its *own* — often
    empty — cache contents; the BENCH_wallclock.json ``entries: 0,
    hits: 128`` inconsistency).  Here every field comes from additive
    counters, so after any sequence of merges

        ``entries == insertions - evictions - removals``

    is the total resident count across every contributing process, and
    ``entries <= misses`` holds whenever a cache only inserts after a
    counted miss (every cache in this repository: they all use
    get-then-put or :meth:`LRUCache.get_or_compute`).
    """
    from repro.obs.metrics import default_registry

    reg = default_registry() if registry is None else registry
    out: dict[str, dict[str, int]] = {}
    for flat, value in reg.counter_values().items():
        if not flat.startswith("cache.") or "{" in flat:
            continue
        cache_name, _, kind = flat[len("cache.") :].rpartition(".")
        if not cache_name or kind not in _MERGED_STAT_KINDS:
            continue
        stats = out.setdefault(cache_name, dict.fromkeys(_MERGED_STAT_KINDS, 0))
        stats[kind] = int(value)
    for stats in out.values():
        stats["entries"] = max(
            0, stats["insertions"] - stats["evictions"] - stats["removals"]
        )
    return out
