"""Wall-clock performance substrate: switches, counters, bounded caches.

The simulator's *virtual-time* results are sacred — every optimization in
this repository must leave launch digests, ciphertext, and timelines
byte-identical.  What is fair game is *wall-clock* cost: the pure-Python
reference crypto can be dispatched to vectorized/batched implementations,
and deterministic artifacts (built kernels, page ciphertext, launch
digests, certificate chains) can be cached content-addressed across
boots.  This module is the shared substrate those optimizations hang off:

- **switches** — :func:`configure` / :func:`scoped` toggle the vectorized
  crypto paths and the content-addressed caches globally; environment
  variables ``REPRO_VECTORIZE=0`` / ``REPRO_CACHES=0`` disable them for a
  whole run (see docs/PERFORMANCE.md).  Both default to on.
- **counters** — a process-global monotonic counter registry
  (:func:`incr`, :func:`counters_snapshot`).  The tracer snapshots these
  at attach time and reports the delta, so ``repro trace`` shows crypto
  and cache activity per traced run.
- **caches** — :class:`LRUCache`, a bounded mapping that counts hits and
  misses into the counter registry and registers itself so
  :func:`clear_all_caches` and :func:`cache_stats` see every cache in
  the process.

Everything here is wall-clock machinery: with the switches off the
simulation produces bit-identical output, just slower — the property
tests under ``tests/properties`` pin exactly that.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Optional


def _env_flag(name: str, default: bool) -> bool:
    raw = os.environ.get(name)
    if raw is None:
        return default
    return raw.strip().lower() not in ("0", "false", "no", "off", "")


_vectorized = _env_flag("REPRO_VECTORIZE", True)
_caches = _env_flag("REPRO_CACHES", True)


def vectorized_enabled() -> bool:
    """Whether batched/accelerated crypto dispatch is on."""
    return _vectorized


def caches_enabled() -> bool:
    """Whether the content-addressed artifact caches are on."""
    return _caches


def configure(
    vectorized: Optional[bool] = None, caches: Optional[bool] = None
) -> None:
    """Flip the global switches (``None`` leaves a switch unchanged)."""
    global _vectorized, _caches
    if vectorized is not None:
        _vectorized = bool(vectorized)
    if caches is not None:
        _caches = bool(caches)


@contextmanager
def scoped(
    vectorized: Optional[bool] = None, caches: Optional[bool] = None
) -> Iterator[None]:
    """Temporarily override the switches (tests, benchmarks)."""
    saved = (_vectorized, _caches)
    try:
        configure(vectorized, caches)
        yield
    finally:
        configure(*saved)


# -- counters ---------------------------------------------------------------

_counters: dict[str, int] = {}


def incr(name: str, amount: int = 1) -> None:
    """Bump a process-global monotonic counter."""
    _counters[name] = _counters.get(name, 0) + amount


def counters_snapshot() -> dict[str, int]:
    """A point-in-time copy of every counter (for delta accounting)."""
    return dict(_counters)


def counters_delta(baseline: dict[str, int]) -> dict[str, int]:
    """Counters that moved since ``baseline``, as positive deltas."""
    out: dict[str, int] = {}
    for name, value in _counters.items():
        delta = value - baseline.get(name, 0)
        if delta:
            out[name] = delta
    return out


def reset_counters() -> None:
    _counters.clear()


# -- bounded LRU caches ------------------------------------------------------

#: every live cache, so tests/benchmarks can clear the world at once
_cache_registry: list["LRUCache"] = []


class LRUCache:
    """A bounded LRU mapping with hit/miss counters.

    ``capacity`` bounds the entry count; ``max_weight`` (with ``weigher``)
    additionally bounds total weight — used byte-bounded for ciphertext
    and keystream caches.  Lookups count into the global counter registry
    as ``cache.<name>.hits`` / ``cache.<name>.misses``.

    ``gated=True`` (the default) makes the cache honor the global caches
    switch: with caches disabled it neither serves nor stores, so a
    disabled run behaves exactly like an empty-cache run.  The build
    caches that predate this layer use ``gated=False``.
    """

    def __init__(
        self,
        name: str,
        capacity: int = 256,
        max_weight: Optional[int] = None,
        weigher: Optional[Callable[[Any], int]] = None,
        gated: bool = True,
    ):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.name = name
        self.capacity = capacity
        self.max_weight = max_weight
        self.weigher = weigher
        self.gated = gated
        self._data: OrderedDict[Any, Any] = OrderedDict()
        self._weight = 0
        _cache_registry.append(self)

    # -- switch handling ---------------------------------------------------

    def _active(self) -> bool:
        return caches_enabled() if self.gated else True

    # -- mapping operations ------------------------------------------------

    def get(self, key: Any, default: Any = None) -> Any:
        if not self._active():
            return default
        try:
            value = self._data[key]
        except KeyError:
            incr(f"cache.{self.name}.misses")
            return default
        self._data.move_to_end(key)
        incr(f"cache.{self.name}.hits")
        return value

    def put(self, key: Any, value: Any) -> None:
        if not self._active():
            return
        if key in self._data:
            self._weight -= self._weigh(self._data[key])
            del self._data[key]
        self._data[key] = value
        self._weight += self._weigh(value)
        self._evict()

    def get_or_compute(self, key: Any, compute: Callable[[], Any]) -> Any:
        """Serve ``key`` or compute, store, and return it.

        With caches disabled this is exactly ``compute()``.
        """
        sentinel = object()
        value = self.get(key, sentinel)
        if value is sentinel:
            value = compute()
            self.put(key, value)
        return value

    def clear(self) -> None:
        self._data.clear()
        self._weight = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Any) -> bool:
        return key in self._data

    # -- internals ---------------------------------------------------------

    def _weigh(self, value: Any) -> int:
        if self.weigher is None:
            return 0
        return self.weigher(value)

    def _evict(self) -> None:
        while len(self._data) > self.capacity:
            self._pop_oldest()
        if self.max_weight is not None:
            while self._weight > self.max_weight and len(self._data) > 1:
                self._pop_oldest()

    def _pop_oldest(self) -> None:
        _key, value = self._data.popitem(last=False)
        self._weight -= self._weigh(value)
        incr(f"cache.{self.name}.evictions")

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict[str, int]:
        return {
            "entries": len(self._data),
            "weight": self._weight,
            "hits": _counters.get(f"cache.{self.name}.hits", 0),
            "misses": _counters.get(f"cache.{self.name}.misses", 0),
            "evictions": _counters.get(f"cache.{self.name}.evictions", 0),
        }


def clear_all_caches() -> None:
    """Empty every registered cache (tests and cold-start benchmarks)."""
    for cache in _cache_registry:
        cache.clear()


def cache_stats() -> dict[str, dict[str, int]]:
    """Per-cache statistics for every registered cache."""
    return {cache.name: cache.stats() for cache in _cache_registry}
