"""Cryptographic substrate, implemented from scratch.

Every primitive the SEV boot path depends on is implemented here on top of
plain Python integers / ``bytes`` (no third-party crypto libraries):

- :mod:`repro.crypto.sha2` — SHA-256 / SHA-384 / SHA-512 (FIPS 180-4).
- :mod:`repro.crypto.hmacmod` — HMAC (RFC 2104) and HKDF (RFC 5869).
- :mod:`repro.crypto.aes` — AES-128 block cipher (FIPS 197).
- :mod:`repro.crypto.memenc` — XEX-mode memory encryption with a
  physical-address tweak, modelling the SEV AES engine in the memory
  controller.
- :mod:`repro.crypto.ecdsa` — ECDSA over NIST P-256, used for
  VCEK-style attestation-report signatures.
- :mod:`repro.crypto.lz4` — LZ4 block-format codec, used for bzImage
  payload compression.
- :mod:`repro.crypto.gzipcodec` — DEFLATE comparator codec (wraps the
  stdlib, used only as the *slow decompression* baseline in Fig. 5).

Where bulk data makes the pure-Python implementations too slow for test
suites (hashing a multi-megabyte kernel), functions accept
``accelerated=True`` to dispatch to the stdlib implementation of the *same*
algorithm; property tests in ``tests/crypto`` pin the two implementations
together.
"""

from repro.crypto.sha2 import sha256, sha384, sha512
from repro.crypto.hmacmod import hkdf_expand, hkdf_extract, hmac_sha256
from repro.crypto.aes import AES128
from repro.crypto.memenc import MemoryEncryptionEngine
from repro.crypto.lz4 import lz4_compress, lz4_decompress

__all__ = [
    "AES128",
    "MemoryEncryptionEngine",
    "hkdf_expand",
    "hkdf_extract",
    "hmac_sha256",
    "lz4_compress",
    "lz4_decompress",
    "sha256",
    "sha384",
    "sha512",
]
