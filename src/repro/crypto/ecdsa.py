"""ECDSA over NIST P-256, implemented from scratch.

The PSP signs attestation reports with a chip-unique key (the VCEK).  We
model that with deterministic ECDSA (RFC 6979 nonces, so simulation runs
are reproducible) over P-256 with SHA-256.

The *reference* scalar multiplication uses Jacobian coordinates with a
simple double-and-add ladder — plenty fast for the handful of signatures
a boot performs.  The guest-owner verification service, however, chews
through thousands of report verifications per benchmark run, so the
vectorized dispatch (``perf.vectorized_enabled()``) adds three
algorithmic levers on top, all bit-identical to the reference:

- **shared precomputed base-point tables** — a fixed-base comb table for
  ``G`` built once per process and reused by every ``sign`` (``k*G``)
  and every verification (``u1*G``);
- **Shamir double-scalar multiplication** — a single verify computes
  ``u1*G + u2*Q`` on one interleaved doubling chain (windowed Strauss)
  instead of two independent ladders;
- **:func:`verify_batch`** — amortizes per-key table construction
  across a batch: each distinct public key gets one windowed (or, for
  hot keys, comb) table, cached in an LRU so a fleet's handful of VCEKs
  pay table setup once, ever.  Verdicts are computed per item, so a
  batch with one forged signature pinpoints exactly that item.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional, Sequence

from repro import perf
from repro.crypto.hmacmod import hmac_sha256

#: RFC 6979 signing is deterministic: (secret, digest) fully determines
#: the signature, so repeated report/certificate signatures across a
#: boot fleet are pure cache hits.  Verification likewise memoizes its
#: boolean verdict keyed by (public point, digest, signature).
_SIGN_CACHE = perf.LRUCache("ecdsa.sign", capacity=4096)
_VERIFY_CACHE = perf.LRUCache("ecdsa.verify", capacity=4096)

# NIST P-256 domain parameters (FIPS 186-4, D.1.2.3).
P = 0xFFFFFFFF00000001000000000000000000000000FFFFFFFFFFFFFFFFFFFFFFFF
A = P - 3
B = 0x5AC635D8AA3A93E7B3EBBD55769886BC651D06B0CC53B0F63BCE3C3E27D2604B
N = 0xFFFFFFFF00000000FFFFFFFFFFFFFFFFBCE6FAADA7179E84F3B9CAC2FC632551
GX = 0x6B17D1F2E12C4247F8BCE6E563A440F277037D812DEB33A0F4A13945D898C296
GY = 0x4FE342E2FE1A7F9B8EE7EB4A7C0F9E162BCE33576B315ECECBB6406837BF51F5


def _inv_mod(a: int, m: int) -> int:
    if a == 0:
        raise ZeroDivisionError("inverse of zero")
    return pow(a, -1, m)


# Points are (X, Y, Z) in Jacobian coordinates; Z == 0 is the identity.
_JacPoint = tuple[int, int, int]
_IDENTITY: _JacPoint = (1, 1, 0)


def _jac_double(pt: _JacPoint) -> _JacPoint:
    x, y, z = pt
    if z == 0 or y == 0:
        return _IDENTITY
    ysq = (y * y) % P
    s = (4 * x * ysq) % P
    m = (3 * x * x + A * pow(z, 4, P)) % P
    nx = (m * m - 2 * s) % P
    ny = (m * (s - nx) - 8 * ysq * ysq) % P
    nz = (2 * y * z) % P
    return (nx, ny, nz)


def _jac_add(p1: _JacPoint, p2: _JacPoint) -> _JacPoint:
    x1, y1, z1 = p1
    x2, y2, z2 = p2
    if z1 == 0:
        return p2
    if z2 == 0:
        return p1
    z1sq = (z1 * z1) % P
    z2sq = (z2 * z2) % P
    u1 = (x1 * z2sq) % P
    u2 = (x2 * z1sq) % P
    s1 = (y1 * z2sq * z2) % P
    s2 = (y2 * z1sq * z1) % P
    if u1 == u2:
        if s1 != s2:
            return _IDENTITY
        return _jac_double(p1)
    h = (u2 - u1) % P
    r = (s2 - s1) % P
    hsq = (h * h) % P
    hcu = (hsq * h) % P
    u1hsq = (u1 * hsq) % P
    nx = (r * r - hcu - 2 * u1hsq) % P
    ny = (r * (u1hsq - nx) - s1 * hcu) % P
    nz = (h * z1 * z2) % P
    return (nx, ny, nz)


def _jac_mul(k: int, pt: _JacPoint) -> _JacPoint:
    result = _IDENTITY
    addend = pt
    while k:
        if k & 1:
            result = _jac_add(result, addend)
        addend = _jac_double(addend)
        k >>= 1
    return result


def _to_affine(pt: _JacPoint) -> tuple[int, int]:
    x, y, z = pt
    if z == 0:
        raise ValueError("identity point has no affine form")
    zinv = _inv_mod(z, P)
    zinv2 = (zinv * zinv) % P
    return (x * zinv2) % P, (y * zinv2 * zinv) % P


def _on_curve(x: int, y: int) -> bool:
    return (y * y - (x * x * x + A * x + B)) % P == 0


_G: _JacPoint = (GX, GY, 1)


# -- precomputed tables -------------------------------------------------------
#
# Window widths: the comb tables trade one-time build cost for add-only
# scalar multiplication (no doublings at all); 8 bits for the process-
# global G table (built once), 6 bits for per-key tables (built once per
# *key*, amortized across a batch and LRU-cached across batches).

_SHAMIR_WINDOW = 4
_COMB_WIDTH_G = 8
_COMB_WIDTH_KEY = 6
#: batch items sharing a key before a comb table beats per-item Shamir
_COMB_THRESHOLD = 8

#: per-key precomputed tables; VCEKs recur across every report a chip
#: signs, so in steady state table construction is a pure cache hit
_KEY_TABLE_CACHE = perf.LRUCache("ecdsa.keytables", capacity=128)


def _window_table(pt: _JacPoint, width: int = _SHAMIR_WINDOW) -> list:
    """``[identity, 1*pt .. (2^width - 1)*pt]`` for windowed multiplication."""
    table = [_IDENTITY, pt]
    for _ in range(2, 1 << width):
        table.append(_jac_add(table[-1], pt))
    return table


def _comb_table(pt: _JacPoint, width: int) -> list:
    """Fixed-base comb: ``rows[j][d] == d * 2^(width*j) * pt``.

    Turns ``k*pt`` into pure additions (one table row per ``width``-bit
    digit of ``k``), eliminating the doubling chain entirely — the right
    trade for a base point multiplied thousands of times.
    """
    rows = []
    base = pt
    for _ in range((256 + width - 1) // width):
        rows.append(_window_table(base, width))
        for _ in range(width):
            base = _jac_double(base)
    return rows


def _comb_mul(k: int, rows: list, width: int) -> _JacPoint:
    result = _IDENTITY
    j = 0
    mask = (1 << width) - 1
    while k:
        digit = k & mask
        if digit:
            result = _jac_add(result, rows[j][digit])
        k >>= width
        j += 1
    return result


_G_COMB: Optional[list] = None
_G_WINDOW: Optional[list] = None


def _g_comb() -> list:
    """The shared fixed-base table for G (sign and every verify)."""
    global _G_COMB
    if _G_COMB is None:
        _G_COMB = _comb_table(_G, _COMB_WIDTH_G)
    return _G_COMB


def _g_window() -> list:
    """The shared width-4 G table the Shamir verify interleaves with."""
    global _G_WINDOW
    if _G_WINDOW is None:
        _G_WINDOW = _window_table(_G, _SHAMIR_WINDOW)
    return _G_WINDOW


def _shamir_mul(u1: int, table_g: list, u2: int, table_q: list) -> _JacPoint:
    """``u1*G + u2*Q`` on one interleaved doubling chain (Strauss-Shamir).

    Both scalars share the 256 doublings a naive pair of ladders would
    run twice; each ``_SHAMIR_WINDOW``-bit digit costs at most one add
    per scalar from its precomputed table.
    """
    bits = max(u1.bit_length(), u2.bit_length())
    windows = max(1, (bits + _SHAMIR_WINDOW - 1) // _SHAMIR_WINDOW)
    mask = (1 << _SHAMIR_WINDOW) - 1
    result = _IDENTITY
    for i in range(windows - 1, -1, -1):
        if result[2] != 0:
            for _ in range(_SHAMIR_WINDOW):
                result = _jac_double(result)
        shift = i * _SHAMIR_WINDOW
        d1 = (u1 >> shift) & mask
        if d1:
            result = _jac_add(result, table_g[d1])
        d2 = (u2 >> shift) & mask
        if d2:
            result = _jac_add(result, table_q[d2])
    return result


@dataclass(frozen=True)
class PublicKey:
    """An affine public-key point."""

    x: int
    y: int

    def to_bytes(self) -> bytes:
        return b"\x04" + self.x.to_bytes(32, "big") + self.y.to_bytes(32, "big")

    @classmethod
    def from_bytes(cls, data: bytes) -> "PublicKey":
        if len(data) != 65 or data[0] != 0x04:
            raise ValueError("expected 65-byte uncompressed point")
        x = int.from_bytes(data[1:33], "big")
        y = int.from_bytes(data[33:65], "big")
        if not _on_curve(x, y):
            raise ValueError("point not on P-256")
        return cls(x, y)


@dataclass(frozen=True)
class Signature:
    r: int
    s: int

    def to_bytes(self) -> bytes:
        return self.r.to_bytes(32, "big") + self.s.to_bytes(32, "big")

    @classmethod
    def from_bytes(cls, data: bytes) -> "Signature":
        if len(data) != 64:
            raise ValueError("expected 64-byte raw signature")
        return cls(int.from_bytes(data[:32], "big"), int.from_bytes(data[32:], "big"))


class SigningKey:
    """ECDSA P-256 signing key with RFC 6979 deterministic nonces."""

    def __init__(self, secret: int):
        if not 1 <= secret < N:
            raise ValueError("secret scalar out of range")
        self.secret = secret
        self.public = PublicKey(*_to_affine(_jac_mul(secret, _G)))

    @classmethod
    def from_seed(cls, seed: bytes) -> "SigningKey":
        """Derive a key from arbitrary seed bytes (chip-unique secret)."""
        counter = 0
        while True:
            candidate = int.from_bytes(
                hashlib.sha256(seed + counter.to_bytes(4, "big")).digest(), "big"
            )
            if 1 <= candidate < N:
                return cls(candidate)
            counter += 1

    def _rfc6979_nonce(self, digest: bytes) -> int:
        h1 = digest
        x = self.secret.to_bytes(32, "big")
        v = b"\x01" * 32
        k = b"\x00" * 32
        k = hmac_sha256(k, v + b"\x00" + x + h1)
        v = hmac_sha256(k, v)
        k = hmac_sha256(k, v + b"\x01" + x + h1)
        v = hmac_sha256(k, v)
        while True:
            v = hmac_sha256(k, v)
            candidate = int.from_bytes(v, "big")
            if 1 <= candidate < N:
                return candidate
            k = hmac_sha256(k, v + b"\x00")
            v = hmac_sha256(k, v)

    def sign(self, message: bytes) -> Signature:
        digest = hashlib.sha256(message).digest()
        cached = _SIGN_CACHE.get((self.secret, digest))
        if cached is not None:
            return cached
        sig = self._sign_digest(digest)
        _SIGN_CACHE.put((self.secret, digest), sig)
        return sig

    def _sign_digest(self, digest: bytes) -> Signature:
        z = int.from_bytes(digest, "big") % N
        while True:
            k = self._rfc6979_nonce(digest)
            if perf.vectorized_enabled():
                kg = _comb_mul(k, _g_comb(), _COMB_WIDTH_G)
            else:
                kg = _jac_mul(k, _G)
            x, _y = _to_affine(kg)
            r = x % N
            if r == 0:
                digest = hashlib.sha256(digest).digest()
                continue
            s = (_inv_mod(k, N) * (z + r * self.secret)) % N
            if s == 0:
                digest = hashlib.sha256(digest).digest()
                continue
            return Signature(r, s)


def verify(public: PublicKey, message: bytes, sig: Signature) -> bool:
    """Verify an ECDSA P-256/SHA-256 signature.  Returns False on any defect."""
    key = (public.x, public.y, hashlib.sha256(message).digest(), sig.r, sig.s)
    cached = _VERIFY_CACHE.get(key)
    if cached is not None:
        return cached
    ok = _verify_uncached(public, message, sig)
    _VERIFY_CACHE.put(key, ok)
    return ok


def _verify_uncached(public: PublicKey, message: bytes, sig: Signature) -> bool:
    digest = hashlib.sha256(message).digest()
    if perf.vectorized_enabled():
        return _verify_digest_fast(public, digest, sig)
    return _verify_digest_reference(public, digest, sig)


def _verify_digest_reference(
    public: PublicKey, digest: bytes, sig: Signature
) -> bool:
    """The seed implementation: two independent double-and-add ladders."""
    if not (1 <= sig.r < N and 1 <= sig.s < N):
        return False
    if not _on_curve(public.x, public.y):
        return False
    z = int.from_bytes(digest, "big") % N
    w = _inv_mod(sig.s, N)
    u1 = (z * w) % N
    u2 = (sig.r * w) % N
    pt = _jac_add(_jac_mul(u1, _G), _jac_mul(u2, (public.x, public.y, 1)))
    if pt[2] == 0:
        return False
    x, _y = _to_affine(pt)
    return x % N == sig.r


def _verify_digest_fast(
    public: PublicKey,
    digest: bytes,
    sig: Signature,
    key_table: Optional[tuple[str, list]] = None,
) -> bool:
    """One verification on the precomputed-table paths.

    ``key_table`` is ``("comb", rows)`` or ``("window", table)`` for the
    public key; ``None`` builds a throwaway Shamir window (the single-
    verify case).  Identical verdicts to the reference ladder.
    """
    if not (1 <= sig.r < N and 1 <= sig.s < N):
        return False
    if not _on_curve(public.x, public.y):
        return False
    z = int.from_bytes(digest, "big") % N
    w = _inv_mod(sig.s, N)
    u1 = (z * w) % N
    u2 = (sig.r * w) % N
    if key_table is not None and key_table[0] == "comb":
        pt = _jac_add(
            _comb_mul(u1, _g_comb(), _COMB_WIDTH_G),
            _comb_mul(u2, key_table[1], _COMB_WIDTH_KEY),
        )
    else:
        if key_table is not None:
            table_q = key_table[1]
        else:
            table_q = _window_table((public.x, public.y, 1))
        pt = _shamir_mul(u1, _g_window(), u2, table_q)
    if pt[2] == 0:
        return False
    x, _y = _to_affine(pt)
    return x % N == sig.r


def _key_table(public: PublicKey, batch_count: int) -> tuple[str, list]:
    """The precomputed table for one batch key, LRU-cached.

    A cached comb is always best.  Otherwise: keys signing at least
    ``_COMB_THRESHOLD`` items in this batch repay a comb build (which
    then persists in the cache for every later batch — the steady state
    for a fleet's VCEKs); colder keys get a cheap Shamir window.
    """
    cache_key = (public.x, public.y)
    cached = _KEY_TABLE_CACHE.get(cache_key)
    if cached is not None:
        return cached
    jac = (public.x, public.y, 1)
    if batch_count >= _COMB_THRESHOLD:
        table = ("comb", _comb_table(jac, _COMB_WIDTH_KEY))
    else:
        table = ("window", _window_table(jac))
    _KEY_TABLE_CACHE.put(cache_key, table)
    return table


def verify_batch(
    items: Sequence[tuple[PublicKey, bytes, Signature]]
) -> list[bool]:
    """Verify many ``(public, message, signature)`` triples at once.

    Returns one verdict per item, in order — exactly what the scalar
    ``[verify(*item) for item in items]`` loop returns, so a batch with
    one forged signature still pinpoints it.  The batch amortizes the
    per-key precomputed tables (one per distinct public key) and serves
    repeated triples from the verify cache.  With vectorized dispatch
    disabled this *is* the scalar loop.
    """
    if not perf.vectorized_enabled():
        return [verify(public, message, sig) for public, message, sig in items]
    verdicts: list[Optional[bool]] = [None] * len(items)
    pending: dict[tuple[int, int], list[tuple[int, bytes, Signature]]] = {}
    digests: list[bytes] = []
    for i, (public, message, sig) in enumerate(items):
        digest = hashlib.sha256(message).digest()
        digests.append(digest)
        cached = _VERIFY_CACHE.get((public.x, public.y, digest, sig.r, sig.s))
        if cached is not None:
            verdicts[i] = cached
        else:
            pending.setdefault((public.x, public.y), []).append((i, digest, sig))
    for (_x, _y), work in pending.items():
        public = items[work[0][0]][0]
        if not _on_curve(public.x, public.y):
            table = None  # verdicts are False without any table work
        else:
            table = _key_table(public, len(work))
        for i, digest, sig in work:
            if table is None:
                ok = False
            else:
                ok = _verify_digest_fast(public, digest, sig, table)
            verdicts[i] = ok
            _VERIFY_CACHE.put((public.x, public.y, digest, sig.r, sig.s), ok)
    perf.incr("crypto.ecdsa.batch_verifies")
    perf.incr("crypto.ecdsa.batch_items", len(items))
    return verdicts  # type: ignore[return-value]
