"""AES-128 block cipher (FIPS 197), implemented from scratch.

This is the cipher behind :mod:`repro.crypto.memenc`, our model of the AES
engine embedded in the EPYC memory controller.  The S-box is computed from
the GF(2^8) inverse at import time rather than pasted in, so the table
itself is verified by construction.

Two execution paths share the same key schedule:

- the scalar path (:meth:`AES128.encrypt_block` / ``decrypt_block``) is
  the readable FIPS 197 reference, one 16-byte block at a time;
- the batch path (:meth:`AES128.encrypt_blocks` / ``decrypt_blocks``)
  runs *all* blocks of a region in lock-step per round over numpy uint8
  arrays using the classic 32-bit T-table formulation.  Property tests
  pin the two paths byte-identical; :mod:`repro.perf` switches select
  between them at runtime.
"""

from __future__ import annotations

import sys

from repro import perf

try:  # the batch path needs numpy; the scalar path never does
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is baked into the toolchain
    _np = None

#: The T-table layout packs column bytes into little-endian uint32 words,
#: so the batch path is only wired up on little-endian hosts (everything
#: we run on); big-endian hosts silently keep the scalar reference.
_BATCH_OK = _np is not None and sys.byteorder == "little"


def _gf_mul(a: int, b: int) -> int:
    """Multiply in GF(2^8) with the AES polynomial x^8+x^4+x^3+x+1."""
    result = 0
    for _ in range(8):
        if b & 1:
            result ^= a
        carry = a & 0x80
        a = (a << 1) & 0xFF
        if carry:
            a ^= 0x1B
        b >>= 1
    return result


def _gf_inv(a: int) -> int:
    """Multiplicative inverse in GF(2^8) (0 maps to 0)."""
    if a == 0:
        return 0
    # a^(254) = a^-1 in GF(2^8)
    result = 1
    power = a
    exponent = 254
    while exponent:
        if exponent & 1:
            result = _gf_mul(result, power)
        power = _gf_mul(power, power)
        exponent >>= 1
    return result


def _build_sbox() -> tuple[bytes, bytes]:
    sbox = bytearray(256)
    inv = bytearray(256)
    for x in range(256):
        b = _gf_inv(x)
        # Affine transformation.
        y = 0
        for bit in range(8):
            y |= (
                ((b >> bit) & 1)
                ^ ((b >> ((bit + 4) % 8)) & 1)
                ^ ((b >> ((bit + 5) % 8)) & 1)
                ^ ((b >> ((bit + 6) % 8)) & 1)
                ^ ((b >> ((bit + 7) % 8)) & 1)
                ^ ((0x63 >> bit) & 1)
            ) << bit
        sbox[x] = y
        inv[y] = x
    return bytes(sbox), bytes(inv)


_SBOX, _INV_SBOX = _build_sbox()
_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]

# Precomputed GF multiplication tables for MixColumns.
_MUL2 = bytes(_gf_mul(x, 2) for x in range(256))
_MUL3 = bytes(_gf_mul(x, 3) for x in range(256))
_MUL9 = bytes(_gf_mul(x, 9) for x in range(256))
_MUL11 = bytes(_gf_mul(x, 11) for x in range(256))
_MUL13 = bytes(_gf_mul(x, 13) for x in range(256))
_MUL14 = bytes(_gf_mul(x, 14) for x in range(256))


# ---------------------------------------------------------------------------
# Batch path: 32-bit T-tables over numpy lanes
# ---------------------------------------------------------------------------
#
# The state is (N, 4, 4) uint8 with state[n, j, i] = byte 4j+i of block n
# (column j, row i — FIPS 197's column-major byte order).  A column is a
# little-endian uint32 word whose byte ``i`` is row ``i``; each encryption
# round is then four 256-entry table gathers and three XORs per column,
# identical across all N lanes:
#
#   col'_j = Te0[s(0,j)] ^ Te1[s(1,j+1)] ^ Te2[s(2,j+2)] ^ Te3[s(3,j+3)] ^ rk_j
#
# which folds SubBytes, ShiftRows, and MixColumns into the tables.  The
# decryption tables bake InvSubBytes + InvMixColumns the same way, using
# the equivalent inverse cipher (round keys pass through InvMixColumns).

_T_TABLES = None


def _pack_word(b0: int, b1: int, b2: int, b3: int) -> int:
    return b0 | (b1 << 8) | (b2 << 16) | (b3 << 24)


def _build_t_tables():
    te = [_np.empty(256, dtype=_np.uint32) for _ in range(4)]
    td = [_np.empty(256, dtype=_np.uint32) for _ in range(4)]
    for x in range(256):
        y = _SBOX[x]
        # MixColumns matrix rows, rotated per input-row position.
        te[0][x] = _pack_word(_MUL2[y], y, y, _MUL3[y])
        te[1][x] = _pack_word(_MUL3[y], _MUL2[y], y, y)
        te[2][x] = _pack_word(y, _MUL3[y], _MUL2[y], y)
        te[3][x] = _pack_word(y, y, _MUL3[y], _MUL2[y])
        z = _INV_SBOX[x]
        td[0][x] = _pack_word(_MUL14[z], _MUL9[z], _MUL13[z], _MUL11[z])
        td[1][x] = _pack_word(_MUL11[z], _MUL14[z], _MUL9[z], _MUL13[z])
        td[2][x] = _pack_word(_MUL13[z], _MUL11[z], _MUL14[z], _MUL9[z])
        td[3][x] = _pack_word(_MUL9[z], _MUL13[z], _MUL11[z], _MUL14[z])
    sbox = _np.frombuffer(_SBOX, dtype=_np.uint8)
    inv_sbox = _np.frombuffer(_INV_SBOX, dtype=_np.uint8)
    return te, td, sbox, inv_sbox


def _t_tables():
    global _T_TABLES
    if _T_TABLES is None:
        _T_TABLES = _build_t_tables()
    return _T_TABLES


class AES128:
    """AES with a 128-bit key; 10 rounds; single-block encrypt/decrypt."""

    BLOCK_SIZE = 16

    def __init__(self, key: bytes):
        if len(key) != 16:
            raise ValueError("AES-128 requires a 16-byte key")
        self._round_keys = self._expand_key(key)
        self._batch_keys = None  #: lazily-built numpy round-key words

    @staticmethod
    def _expand_key(key: bytes) -> list[bytes]:
        words = [key[i : i + 4] for i in range(0, 16, 4)]
        for i in range(4, 44):
            temp = words[i - 1]
            if i % 4 == 0:
                rotated = temp[1:] + temp[:1]
                temp = bytes(_SBOX[b] for b in rotated)
                temp = bytes([temp[0] ^ _RCON[i // 4 - 1]]) + temp[1:]
            words.append(bytes(a ^ b for a, b in zip(words[i - 4], temp)))
        return [b"".join(words[4 * r : 4 * r + 4]) for r in range(11)]

    # -- state helpers (state is a 16-byte column-major array) -----------

    @staticmethod
    def _add_round_key(state: bytearray, round_key: bytes) -> None:
        for i in range(16):
            state[i] ^= round_key[i]

    @staticmethod
    def _sub_bytes(state: bytearray, box: bytes) -> None:
        for i in range(16):
            state[i] = box[state[i]]

    @staticmethod
    def _shift_rows(state: bytearray) -> None:
        # Row r of the state is bytes r, r+4, r+8, r+12; shift left by r.
        for r in range(1, 4):
            row = [state[r + 4 * c] for c in range(4)]
            row = row[r:] + row[:r]
            for c in range(4):
                state[r + 4 * c] = row[c]

    @staticmethod
    def _inv_shift_rows(state: bytearray) -> None:
        for r in range(1, 4):
            row = [state[r + 4 * c] for c in range(4)]
            row = row[-r:] + row[:-r]
            for c in range(4):
                state[r + 4 * c] = row[c]

    @staticmethod
    def _mix_columns(state: bytearray) -> None:
        for c in range(4):
            col = state[4 * c : 4 * c + 4]
            state[4 * c + 0] = _MUL2[col[0]] ^ _MUL3[col[1]] ^ col[2] ^ col[3]
            state[4 * c + 1] = col[0] ^ _MUL2[col[1]] ^ _MUL3[col[2]] ^ col[3]
            state[4 * c + 2] = col[0] ^ col[1] ^ _MUL2[col[2]] ^ _MUL3[col[3]]
            state[4 * c + 3] = _MUL3[col[0]] ^ col[1] ^ col[2] ^ _MUL2[col[3]]

    @staticmethod
    def _inv_mix_columns(state: bytearray) -> None:
        for c in range(4):
            col = state[4 * c : 4 * c + 4]
            state[4 * c + 0] = _MUL14[col[0]] ^ _MUL11[col[1]] ^ _MUL13[col[2]] ^ _MUL9[col[3]]
            state[4 * c + 1] = _MUL9[col[0]] ^ _MUL14[col[1]] ^ _MUL11[col[2]] ^ _MUL13[col[3]]
            state[4 * c + 2] = _MUL13[col[0]] ^ _MUL9[col[1]] ^ _MUL14[col[2]] ^ _MUL11[col[3]]
            state[4 * c + 3] = _MUL11[col[0]] ^ _MUL13[col[1]] ^ _MUL9[col[2]] ^ _MUL14[col[3]]

    # -- public block operations -----------------------------------------

    def encrypt_block(self, plaintext: bytes) -> bytes:
        if len(plaintext) != 16:
            raise ValueError("AES block must be 16 bytes")
        state = bytearray(plaintext)
        self._add_round_key(state, self._round_keys[0])
        for rnd in range(1, 10):
            self._sub_bytes(state, _SBOX)
            self._shift_rows(state)
            self._mix_columns(state)
            self._add_round_key(state, self._round_keys[rnd])
        self._sub_bytes(state, _SBOX)
        self._shift_rows(state)
        self._add_round_key(state, self._round_keys[10])
        return bytes(state)

    def decrypt_block(self, ciphertext: bytes) -> bytes:
        if len(ciphertext) != 16:
            raise ValueError("AES block must be 16 bytes")
        state = bytearray(ciphertext)
        self._add_round_key(state, self._round_keys[10])
        for rnd in range(9, 0, -1):
            self._inv_shift_rows(state)
            self._sub_bytes(state, _INV_SBOX)
            self._add_round_key(state, self._round_keys[rnd])
            self._inv_mix_columns(state)
        self._inv_shift_rows(state)
        self._sub_bytes(state, _INV_SBOX)
        self._add_round_key(state, self._round_keys[0])
        return bytes(state)

    # -- batch block operations (all blocks in lock-step per round) -------

    #: below this many blocks the numpy dispatch overhead beats the win
    _BATCH_THRESHOLD = 4

    def _batch_round_keys(self):
        """Round keys as little-endian uint32 column words, both ciphers.

        The equivalent inverse cipher needs InvMixColumns applied to the
        inner round keys; the scalar helper does that on the raw bytes.
        """
        if self._batch_keys is None:
            enc = _np.frombuffer(
                b"".join(self._round_keys), dtype="<u4"
            ).reshape(11, 4)
            dec_bytes = []
            for rnd, rk in enumerate(self._round_keys):
                if 1 <= rnd <= 9:
                    mixed = bytearray(rk)
                    self._inv_mix_columns(mixed)
                    dec_bytes.append(bytes(mixed))
                else:
                    dec_bytes.append(rk)
            dec = _np.frombuffer(b"".join(dec_bytes), dtype="<u4").reshape(11, 4)
            self._batch_keys = (enc, dec)
        return self._batch_keys

    @staticmethod
    def _batch_usable(n_blocks: int) -> bool:
        return (
            _BATCH_OK
            and perf.vectorized_enabled()
            and n_blocks >= AES128._BATCH_THRESHOLD
        )

    def encrypt_blocks(self, data: bytes) -> bytes:
        """Encrypt ``len(data) // 16`` independent blocks.

        Bit-identical to calling :meth:`encrypt_block` per block; the
        batch path runs every block through each round simultaneously.
        """
        n = self._check_batch(data)
        if not self._batch_usable(n):
            return b"".join(
                self.encrypt_block(data[i : i + 16]) for i in range(0, len(data), 16)
            )
        te, _td, sbox, _inv = _t_tables()
        rk_enc, _rk_dec = self._batch_round_keys()
        perf.incr("crypto.aes.batch_blocks", n)
        state = _np.frombuffer(data, dtype="<u4").reshape(n, 4) ^ rk_enc[0]
        for rnd in range(1, 10):
            b = state.view(_np.uint8).reshape(n, 4, 4)
            state = (
                te[0][b[:, :, 0]]
                ^ te[1][_np.roll(b[:, :, 1], -1, axis=1)]
                ^ te[2][_np.roll(b[:, :, 2], -2, axis=1)]
                ^ te[3][_np.roll(b[:, :, 3], -3, axis=1)]
                ^ rk_enc[rnd]
            )
        b = state.view(_np.uint8).reshape(n, 4, 4)
        out = _np.empty((n, 4, 4), dtype=_np.uint8)
        for row in range(4):
            out[:, :, row] = sbox[_np.roll(b[:, :, row], -row, axis=1)]
        out = out.reshape(n, 16).view("<u4") ^ rk_enc[10]
        return out.tobytes()

    def decrypt_blocks(self, data: bytes) -> bytes:
        """Inverse of :meth:`encrypt_blocks` (equivalent inverse cipher)."""
        n = self._check_batch(data)
        if not self._batch_usable(n):
            return b"".join(
                self.decrypt_block(data[i : i + 16]) for i in range(0, len(data), 16)
            )
        _te, td, _sbox, inv_sbox = _t_tables()
        _rk_enc, rk_dec = self._batch_round_keys()
        perf.incr("crypto.aes.batch_blocks", n)
        state = _np.frombuffer(data, dtype="<u4").reshape(n, 4) ^ rk_dec[10]
        for rnd in range(9, 0, -1):
            b = state.view(_np.uint8).reshape(n, 4, 4)
            state = (
                td[0][b[:, :, 0]]
                ^ td[1][_np.roll(b[:, :, 1], 1, axis=1)]
                ^ td[2][_np.roll(b[:, :, 2], 2, axis=1)]
                ^ td[3][_np.roll(b[:, :, 3], 3, axis=1)]
                ^ rk_dec[rnd]
            )
        b = state.view(_np.uint8).reshape(n, 4, 4)
        out = _np.empty((n, 4, 4), dtype=_np.uint8)
        for row in range(4):
            out[:, :, row] = inv_sbox[_np.roll(b[:, :, row], row, axis=1)]
        out = out.reshape(n, 16).view("<u4") ^ rk_dec[0]
        return out.tobytes()

    @staticmethod
    def _check_batch(data: bytes) -> int:
        if len(data) % 16 != 0:
            raise ValueError("batch length must be a multiple of 16")
        return len(data) // 16
