"""AES-128 block cipher (FIPS 197), implemented from scratch.

This is the cipher behind :mod:`repro.crypto.memenc`, our model of the AES
engine embedded in the EPYC memory controller.  The S-box is computed from
the GF(2^8) inverse at import time rather than pasted in, so the table
itself is verified by construction.
"""

from __future__ import annotations


def _gf_mul(a: int, b: int) -> int:
    """Multiply in GF(2^8) with the AES polynomial x^8+x^4+x^3+x+1."""
    result = 0
    for _ in range(8):
        if b & 1:
            result ^= a
        carry = a & 0x80
        a = (a << 1) & 0xFF
        if carry:
            a ^= 0x1B
        b >>= 1
    return result


def _gf_inv(a: int) -> int:
    """Multiplicative inverse in GF(2^8) (0 maps to 0)."""
    if a == 0:
        return 0
    # a^(254) = a^-1 in GF(2^8)
    result = 1
    power = a
    exponent = 254
    while exponent:
        if exponent & 1:
            result = _gf_mul(result, power)
        power = _gf_mul(power, power)
        exponent >>= 1
    return result


def _build_sbox() -> tuple[bytes, bytes]:
    sbox = bytearray(256)
    inv = bytearray(256)
    for x in range(256):
        b = _gf_inv(x)
        # Affine transformation.
        y = 0
        for bit in range(8):
            y |= (
                ((b >> bit) & 1)
                ^ ((b >> ((bit + 4) % 8)) & 1)
                ^ ((b >> ((bit + 5) % 8)) & 1)
                ^ ((b >> ((bit + 6) % 8)) & 1)
                ^ ((b >> ((bit + 7) % 8)) & 1)
                ^ ((0x63 >> bit) & 1)
            ) << bit
        sbox[x] = y
        inv[y] = x
    return bytes(sbox), bytes(inv)


_SBOX, _INV_SBOX = _build_sbox()
_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]

# Precomputed GF multiplication tables for MixColumns.
_MUL2 = bytes(_gf_mul(x, 2) for x in range(256))
_MUL3 = bytes(_gf_mul(x, 3) for x in range(256))
_MUL9 = bytes(_gf_mul(x, 9) for x in range(256))
_MUL11 = bytes(_gf_mul(x, 11) for x in range(256))
_MUL13 = bytes(_gf_mul(x, 13) for x in range(256))
_MUL14 = bytes(_gf_mul(x, 14) for x in range(256))


class AES128:
    """AES with a 128-bit key; 10 rounds; single-block encrypt/decrypt."""

    BLOCK_SIZE = 16

    def __init__(self, key: bytes):
        if len(key) != 16:
            raise ValueError("AES-128 requires a 16-byte key")
        self._round_keys = self._expand_key(key)

    @staticmethod
    def _expand_key(key: bytes) -> list[bytes]:
        words = [key[i : i + 4] for i in range(0, 16, 4)]
        for i in range(4, 44):
            temp = words[i - 1]
            if i % 4 == 0:
                rotated = temp[1:] + temp[:1]
                temp = bytes(_SBOX[b] for b in rotated)
                temp = bytes([temp[0] ^ _RCON[i // 4 - 1]]) + temp[1:]
            words.append(bytes(a ^ b for a, b in zip(words[i - 4], temp)))
        return [b"".join(words[4 * r : 4 * r + 4]) for r in range(11)]

    # -- state helpers (state is a 16-byte column-major array) -----------

    @staticmethod
    def _add_round_key(state: bytearray, round_key: bytes) -> None:
        for i in range(16):
            state[i] ^= round_key[i]

    @staticmethod
    def _sub_bytes(state: bytearray, box: bytes) -> None:
        for i in range(16):
            state[i] = box[state[i]]

    @staticmethod
    def _shift_rows(state: bytearray) -> None:
        # Row r of the state is bytes r, r+4, r+8, r+12; shift left by r.
        for r in range(1, 4):
            row = [state[r + 4 * c] for c in range(4)]
            row = row[r:] + row[:r]
            for c in range(4):
                state[r + 4 * c] = row[c]

    @staticmethod
    def _inv_shift_rows(state: bytearray) -> None:
        for r in range(1, 4):
            row = [state[r + 4 * c] for c in range(4)]
            row = row[-r:] + row[:-r]
            for c in range(4):
                state[r + 4 * c] = row[c]

    @staticmethod
    def _mix_columns(state: bytearray) -> None:
        for c in range(4):
            col = state[4 * c : 4 * c + 4]
            state[4 * c + 0] = _MUL2[col[0]] ^ _MUL3[col[1]] ^ col[2] ^ col[3]
            state[4 * c + 1] = col[0] ^ _MUL2[col[1]] ^ _MUL3[col[2]] ^ col[3]
            state[4 * c + 2] = col[0] ^ col[1] ^ _MUL2[col[2]] ^ _MUL3[col[3]]
            state[4 * c + 3] = _MUL3[col[0]] ^ col[1] ^ col[2] ^ _MUL2[col[3]]

    @staticmethod
    def _inv_mix_columns(state: bytearray) -> None:
        for c in range(4):
            col = state[4 * c : 4 * c + 4]
            state[4 * c + 0] = _MUL14[col[0]] ^ _MUL11[col[1]] ^ _MUL13[col[2]] ^ _MUL9[col[3]]
            state[4 * c + 1] = _MUL9[col[0]] ^ _MUL14[col[1]] ^ _MUL11[col[2]] ^ _MUL13[col[3]]
            state[4 * c + 2] = _MUL13[col[0]] ^ _MUL9[col[1]] ^ _MUL14[col[2]] ^ _MUL11[col[3]]
            state[4 * c + 3] = _MUL11[col[0]] ^ _MUL13[col[1]] ^ _MUL9[col[2]] ^ _MUL14[col[3]]

    # -- public block operations -----------------------------------------

    def encrypt_block(self, plaintext: bytes) -> bytes:
        if len(plaintext) != 16:
            raise ValueError("AES block must be 16 bytes")
        state = bytearray(plaintext)
        self._add_round_key(state, self._round_keys[0])
        for rnd in range(1, 10):
            self._sub_bytes(state, _SBOX)
            self._shift_rows(state)
            self._mix_columns(state)
            self._add_round_key(state, self._round_keys[rnd])
        self._sub_bytes(state, _SBOX)
        self._shift_rows(state)
        self._add_round_key(state, self._round_keys[10])
        return bytes(state)

    def decrypt_block(self, ciphertext: bytes) -> bytes:
        if len(ciphertext) != 16:
            raise ValueError("AES block must be 16 bytes")
        state = bytearray(ciphertext)
        self._add_round_key(state, self._round_keys[10])
        for rnd in range(9, 0, -1):
            self._inv_shift_rows(state)
            self._sub_bytes(state, _INV_SBOX)
            self._add_round_key(state, self._round_keys[rnd])
            self._inv_mix_columns(state)
        self._inv_shift_rows(state)
        self._sub_bytes(state, _INV_SBOX)
        self._add_round_key(state, self._round_keys[0])
        return bytes(state)
