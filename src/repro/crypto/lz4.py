"""LZ4 block-format codec, implemented from scratch.

The paper's central compression result (Fig. 5, §4.4) is that an LZ4
bzImage minimizes measured-direct-boot time: LZ4 trades a slightly worse
ratio than DEFLATE for an order-of-magnitude faster decompressor.  The
boot verifier's bzImage loader *actually runs* this decompressor on the
synthetic kernel payloads, so a corrupted payload really fails to boot.

Format (https://github.com/lz4/lz4/blob/dev/doc/lz4_Block_format.md):

- a sequence is ``token | [lit-len ext] | literals | offset(2, LE) |
  [match-len ext]``;
- token high nibble = literal length (15 ⇒ extension bytes follow),
  low nibble = match length − 4 (15 ⇒ extension bytes follow);
- the final sequence is literals-only; the last 5 bytes of the input are
  always literals and a match may not start within the last 12 bytes.
"""

from __future__ import annotations

_MIN_MATCH = 4
_LAST_LITERALS = 5
_MF_LIMIT = 12
_MAX_OFFSET = 0xFFFF


class LZ4Error(ValueError):
    """Raised when a block fails to decode."""


def _write_length(base: int, value: int, out: bytearray) -> None:
    """Append the 255-run extension bytes for a length field."""
    if value < 15:
        return
    value -= 15
    while value >= 255:
        out.append(255)
        value -= 255
    out.append(value)


def lz4_compress(data: bytes) -> bytes:
    """Compress ``data`` into a raw LZ4 block."""
    n = len(data)
    out = bytearray()
    if n == 0:
        out.append(0)  # single empty literals-only sequence
        return bytes(out)
    if n < _MF_LIMIT + 1:
        _emit_literals(data, 0, n, out)
        return bytes(out)

    table: dict[bytes, int] = {}
    anchor = 0
    pos = 0
    match_limit = n - _LAST_LITERALS
    search_limit = n - _MF_LIMIT
    step_counter = 1 << 6  # LZ4-style acceleration on incompressible data
    step = 1

    while pos <= search_limit:
        key = data[pos : pos + 4]
        candidate = table.get(key)
        table[key] = pos
        if candidate is not None and pos - candidate <= _MAX_OFFSET:
            # Extend the match forward.
            match_len = 4
            limit = match_limit - pos
            while (
                match_len < limit
                and data[candidate + match_len] == data[pos + match_len]
            ):
                match_len += 1
            # Extend backward over pending literals.
            while (
                pos > anchor
                and candidate > 0
                and data[candidate - 1] == data[pos - 1]
            ):
                pos -= 1
                candidate -= 1
                match_len += 1
            _emit_sequence(data, anchor, pos, pos - candidate, match_len, out)
            pos += match_len
            anchor = pos
            step_counter = 1 << 6
            step = 1
        else:
            step_counter -= 1
            if step_counter == 0:
                step_counter = 1 << 6
                step += 1
            pos += step

    _emit_literals(data, anchor, n - anchor, out)
    return bytes(out)


def _emit_literals(data: bytes, start: int, count: int, out: bytearray) -> None:
    token = min(count, 15) << 4
    out.append(token)
    _write_length(15, count, out)
    out += data[start : start + count]


def _emit_sequence(
    data: bytes, anchor: int, pos: int, offset: int, match_len: int, out: bytearray
) -> None:
    lit_len = pos - anchor
    ml_code = match_len - _MIN_MATCH
    token = (min(lit_len, 15) << 4) | min(ml_code, 15)
    out.append(token)
    _write_length(15, lit_len, out)
    out += data[anchor:pos]
    out.append(offset & 0xFF)
    out.append(offset >> 8)
    _write_length(15, ml_code, out)


def _read_length(block: bytes, pos: int, initial: int) -> tuple[int, int]:
    length = initial
    if initial == 15:
        while True:
            if pos >= len(block):
                raise LZ4Error("truncated length extension")
            byte = block[pos]
            pos += 1
            length += byte
            if byte != 255:
                break
    return length, pos


def lz4_decompress(block: bytes, max_output: int | None = None) -> bytes:
    """Decompress a raw LZ4 block.

    ``max_output`` bounds the output size (the boot verifier passes the
    bzImage header's declared uncompressed size) so a malicious block
    cannot blow up memory.
    """
    out = bytearray()
    pos = 0
    n = len(block)
    if n == 0:
        raise LZ4Error("empty block")
    while pos < n:
        token = block[pos]
        pos += 1
        lit_len, pos = _read_length(block, pos, token >> 4)
        if pos + lit_len > n:
            raise LZ4Error("literal run past end of block")
        out += block[pos : pos + lit_len]
        pos += lit_len
        if max_output is not None and len(out) > max_output:
            raise LZ4Error("output exceeds declared size")
        if pos == n:
            break  # final literals-only sequence
        if pos + 2 > n:
            raise LZ4Error("truncated match offset")
        offset = block[pos] | (block[pos + 1] << 8)
        pos += 2
        if offset == 0 or offset > len(out):
            raise LZ4Error(f"invalid match offset {offset}")
        match_len, pos = _read_length(block, pos, token & 0x0F)
        match_len += _MIN_MATCH
        if max_output is not None and len(out) + match_len > max_output:
            raise LZ4Error("output exceeds declared size")
        start = len(out) - offset
        if offset >= match_len:
            out += out[start : start + match_len]
        else:
            # Overlapping copy: byte-at-a-time semantics (RLE-style).
            for i in range(match_len):
                out.append(out[start + i])
    return bytes(out)
