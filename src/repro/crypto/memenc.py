"""Model of the SEV memory-encryption engine.

AMD SEV embeds an AES engine in the memory controller that encrypts VM
memory with a per-guest key, *tweaked by the physical address* so that
identical plaintext at different physical locations yields different
ciphertext (the paper leans on this property in §6.2 and §7.1: pages
cannot be deduplicated, and KVM must pin guest pages).

Two interchangeable modes implement that contract:

- ``"xex"`` — AES-128 XEX with an address-derived tweak, entirely on our
  from-scratch AES.  This is the reference mode, used by default for the
  small regions on the boot path (boot verifier, boot data structures).
- ``"ctr-fast"`` — an address-tweaked keystream built from SHA-256 in
  counter mode (stdlib-accelerated) for bulk guest memory in large-scale
  benchmark runs.  It preserves the same observable properties
  (key-dependence, address-dependence, determinism); tests assert the
  contract for both modes.

Both modes are length-preserving over 16-byte-aligned regions.
"""

from __future__ import annotations

import hashlib
import struct

from repro.crypto.aes import AES128

BLOCK_SIZE = 16


class MemoryEncryptionEngine:
    """Per-guest memory encryption with a physical-address tweak."""

    def __init__(self, key: bytes, mode: str = "xex"):
        if len(key) != 16:
            raise ValueError("memory encryption key must be 16 bytes")
        if mode not in ("xex", "ctr-fast"):
            raise ValueError(f"unknown memory encryption mode: {mode}")
        self.mode = mode
        self._key = key
        if mode == "xex":
            self._data_cipher = AES128(key)
            # Independent tweak key, derived so a single input key suffices.
            self._tweak_cipher = AES128(hashlib.sha256(b"tweak" + key).digest()[:16])

    # -- XEX mode ---------------------------------------------------------

    def _xex_tweak(self, block_index: int) -> bytes:
        return self._tweak_cipher.encrypt_block(struct.pack(">QQ", 0, block_index))

    def _xex_apply(self, pa: int, data: bytes, encrypt: bool) -> bytes:
        out = bytearray(len(data))
        base_block = pa // BLOCK_SIZE
        for i in range(0, len(data), BLOCK_SIZE):
            tweak = self._xex_tweak(base_block + i // BLOCK_SIZE)
            block = bytes(a ^ b for a, b in zip(data[i : i + BLOCK_SIZE], tweak))
            if encrypt:
                block = self._data_cipher.encrypt_block(block)
            else:
                block = self._data_cipher.decrypt_block(block)
            out[i : i + BLOCK_SIZE] = bytes(a ^ b for a, b in zip(block, tweak))
        return bytes(out)

    # -- fast tweaked-keystream mode ---------------------------------------

    def _keystream(self, pa: int, length: int) -> bytes:
        chunks = []
        # One SHA-256 call yields 32 keystream bytes bound to (key, address).
        for off in range(0, length, 32):
            block = hashlib.sha256(
                self._key + struct.pack(">Q", pa + off)
            ).digest()
            chunks.append(block)
        return b"".join(chunks)[:length]

    # -- public API ---------------------------------------------------------

    def _check(self, pa: int, data: bytes) -> None:
        if pa % BLOCK_SIZE != 0:
            raise ValueError(f"physical address {pa:#x} not 16-byte aligned")
        if len(data) % BLOCK_SIZE != 0:
            raise ValueError(f"region length {len(data)} not a multiple of 16")

    def encrypt(self, pa: int, plaintext: bytes) -> bytes:
        """Encrypt ``plaintext`` as if it resided at physical address ``pa``."""
        self._check(pa, plaintext)
        if self.mode == "xex":
            return self._xex_apply(pa, plaintext, encrypt=True)
        stream = self._keystream(pa, len(plaintext))
        return bytes(a ^ b for a, b in zip(plaintext, stream))

    def decrypt(self, pa: int, ciphertext: bytes) -> bytes:
        """Decrypt ``ciphertext`` that resides at physical address ``pa``."""
        self._check(pa, ciphertext)
        if self.mode == "xex":
            return self._xex_apply(pa, ciphertext, encrypt=False)
        stream = self._keystream(pa, len(ciphertext))
        return bytes(a ^ b for a, b in zip(ciphertext, stream))
