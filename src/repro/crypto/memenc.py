"""Model of the SEV memory-encryption engine.

AMD SEV embeds an AES engine in the memory controller that encrypts VM
memory with a per-guest key, *tweaked by the physical address* so that
identical plaintext at different physical locations yields different
ciphertext (the paper leans on this property in §6.2 and §7.1: pages
cannot be deduplicated, and KVM must pin guest pages).

Two interchangeable modes implement that contract:

- ``"xex"`` — AES-128 XEX with an address-derived tweak, entirely on our
  from-scratch AES.  This is the reference mode, used by default for the
  small regions on the boot path (boot verifier, boot data structures).
- ``"ctr-fast"`` — an address-tweaked keystream built from SHA-256 in
  counter mode (stdlib-accelerated) for bulk guest memory in large-scale
  benchmark runs.  It preserves the same observable properties
  (key-dependence, address-dependence, determinism); tests assert the
  contract for both modes.

Both modes are length-preserving over 16-byte-aligned regions.

Wall-clock execution has a scalar and a vectorized path per mode, pinned
byte-identical by the property tests:

- XEX vectorized: the tweak sequence for the whole region is produced by
  one batch-AES call, the data blocks by another, and the two whitening
  XORs are single numpy operations — no per-block Python loop.
- ctr-fast vectorized: the SHA-256 keystream stays on the stdlib (one
  digest per 32 bytes is already C code; numpy lanes measure *slower*),
  but the XOR is one vectorized pass and keystream/tweak sequences are
  cached content-addressed by ``(key, pa, length)`` — they depend only
  on key and address, so repeated boots of the same image reuse them.

:mod:`repro.perf` switches (``REPRO_VECTORIZE``, ``REPRO_CACHES``)
select the paths at runtime; see docs/PERFORMANCE.md.
"""

from __future__ import annotations

import hashlib
import struct

from repro import perf
from repro.crypto.aes import AES128

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is baked into the toolchain
    _np = None

BLOCK_SIZE = 16

#: keystream/tweak sequences for hot regions, shared across engines (and
#: therefore across the fresh-machine-per-boot pattern of Fig. 9 fleets)
_KEYSTREAM_CACHE = perf.LRUCache(
    "memenc.keystream",
    capacity=4096,
    max_weight=64 * 1024 * 1024,
    weigher=len,
)
_TWEAK_CACHE = perf.LRUCache(
    "memenc.tweaks",
    capacity=4096,
    max_weight=32 * 1024 * 1024,
    weigher=len,
)


class MemoryEncryptionEngine:
    """Per-guest memory encryption with a physical-address tweak."""

    def __init__(self, key: bytes, mode: str = "xex"):
        if len(key) != 16:
            raise ValueError("memory encryption key must be 16 bytes")
        if mode not in ("xex", "ctr-fast"):
            raise ValueError(f"unknown memory encryption mode: {mode}")
        self.mode = mode
        self._key = key
        if mode == "xex":
            self._data_cipher = AES128(key)
            # Independent tweak key, derived so a single input key suffices.
            self._tweak_cipher = AES128(hashlib.sha256(b"tweak" + key).digest()[:16])

    @property
    def key_id(self) -> tuple[str, bytes]:
        """Content-address of this engine's keying material.

        Two engines with equal ``key_id`` produce identical ciphertext
        for identical (address, plaintext) inputs — the invariant the
        launch-page ciphertext cache keys on.
        """
        return (self.mode, self._key)

    # -- XEX mode ---------------------------------------------------------

    def _xex_tweak(self, block_index: int) -> bytes:
        return self._tweak_cipher.encrypt_block(struct.pack(">QQ", 0, block_index))

    def _xex_tweaks(self, pa: int, length: int) -> bytes:
        """The concatenated tweak blocks covering ``[pa, pa+length)``.

        One batch-AES call over the packed block counters; cached by
        (tweak key, base block, count) since tweaks are data-independent.
        """
        base_block = pa // BLOCK_SIZE
        n = length // BLOCK_SIZE
        key = (self._key, base_block, n)
        cached = _TWEAK_CACHE.get(key)
        if cached is not None:
            return cached
        counters = b"".join(
            struct.pack(">QQ", 0, base_block + i) for i in range(n)
        )
        tweaks = self._tweak_cipher.encrypt_blocks(counters)
        _TWEAK_CACHE.put(key, tweaks)
        return tweaks

    def _xex_apply_scalar(self, pa: int, data: bytes, encrypt: bool) -> bytes:
        """The per-block reference implementation (kept as the oracle)."""
        out = bytearray(len(data))
        base_block = pa // BLOCK_SIZE
        for i in range(0, len(data), BLOCK_SIZE):
            tweak = self._xex_tweak(base_block + i // BLOCK_SIZE)
            block = bytes(a ^ b for a, b in zip(data[i : i + BLOCK_SIZE], tweak))
            if encrypt:
                block = self._data_cipher.encrypt_block(block)
            else:
                block = self._data_cipher.decrypt_block(block)
            out[i : i + BLOCK_SIZE] = bytes(a ^ b for a, b in zip(block, tweak))
        return bytes(out)

    def _xex_apply(self, pa: int, data: bytes, encrypt: bool) -> bytes:
        if _np is None or not perf.vectorized_enabled():
            perf.incr("crypto.memenc.scalar_bytes", len(data))
            return self._xex_apply_scalar(pa, data, encrypt)
        perf.incr("crypto.memenc.vector_bytes", len(data))
        tweaks = _np.frombuffer(self._xex_tweaks(pa, len(data)), dtype=_np.uint8)
        whitened = (_np.frombuffer(data, dtype=_np.uint8) ^ tweaks).tobytes()
        if encrypt:
            mixed = self._data_cipher.encrypt_blocks(whitened)
        else:
            mixed = self._data_cipher.decrypt_blocks(whitened)
        return (_np.frombuffer(mixed, dtype=_np.uint8) ^ tweaks).tobytes()

    # -- fast tweaked-keystream mode ---------------------------------------

    def _keystream_scalar(self, pa: int, length: int) -> bytes:
        """The reference keystream: one SHA-256 per 32 bytes of output.

        Chunks are bound to *absolute* 32-byte-aligned addresses, so the
        stream is a pure function of (key, address) — any two operations
        covering the same byte agree, which the partial-block
        read-modify-write path in :mod:`repro.hw.memory` depends on.
        """
        chunk_base = pa - pa % 32
        skip = pa - chunk_base
        chunks = []
        # One SHA-256 call yields 32 keystream bytes bound to (key, address).
        for off in range(0, skip + length, 32):
            block = hashlib.sha256(
                self._key + struct.pack(">Q", chunk_base + off)
            ).digest()
            chunks.append(block)
        return b"".join(chunks)[skip : skip + length]

    def _keystream(self, pa: int, length: int) -> bytes:
        key = (self._key, pa, length)
        cached = _KEYSTREAM_CACHE.get(key)
        if cached is not None:
            return cached
        chunk_base = pa - pa % 32
        skip = pa - chunk_base
        prefix = self._key
        pack = struct.Struct(">Q").pack
        digest = hashlib.sha256
        stream = b"".join(
            digest(prefix + pack(chunk_base + off)).digest()
            for off in range(0, skip + length, 32)
        )[skip : skip + length]
        _KEYSTREAM_CACHE.put(key, stream)
        return stream

    def _ctr_apply(self, pa: int, data: bytes) -> bytes:
        stream = self._keystream(pa, len(data))
        if _np is None or not perf.vectorized_enabled():
            perf.incr("crypto.memenc.scalar_bytes", len(data))
            return bytes(a ^ b for a, b in zip(data, stream))
        perf.incr("crypto.memenc.vector_bytes", len(data))
        return (
            _np.frombuffer(data, dtype=_np.uint8)
            ^ _np.frombuffer(stream, dtype=_np.uint8)
        ).tobytes()

    # -- public API ---------------------------------------------------------

    def _check(self, pa: int, data: bytes) -> None:
        if pa % BLOCK_SIZE != 0:
            raise ValueError(f"physical address {pa:#x} not 16-byte aligned")
        if len(data) % BLOCK_SIZE != 0:
            raise ValueError(f"region length {len(data)} not a multiple of 16")

    def encrypt(self, pa: int, plaintext: bytes) -> bytes:
        """Encrypt ``plaintext`` as if it resided at physical address ``pa``."""
        self._check(pa, plaintext)
        if self.mode == "xex":
            return self._xex_apply(pa, plaintext, encrypt=True)
        return self._ctr_apply(pa, plaintext)

    def decrypt(self, pa: int, ciphertext: bytes) -> bytes:
        """Decrypt ``ciphertext`` that resides at physical address ``pa``."""
        self._check(pa, ciphertext)
        if self.mode == "xex":
            return self._xex_apply(pa, ciphertext, encrypt=False)
        return self._ctr_apply(pa, ciphertext)
