"""HMAC (RFC 2104) and HKDF (RFC 5869) on top of our SHA-256.

Used to derive per-guest memory-encryption keys from the platform's chip
secret (mirroring the PSP's key hierarchy) and to wrap secrets sent by the
guest owner after attestation.
"""

from __future__ import annotations

from repro import perf
from repro.crypto.sha2 import sha256

_BLOCK_SIZE = 64


def hmac_sha256(key: bytes, message: bytes) -> bytes:
    """HMAC-SHA256 of ``message`` under ``key``.

    Dispatches to the accelerated SHA-256 (pinned bit-identical to the
    from-scratch one by tests/crypto) when vectorized crypto is enabled —
    HMAC is the inner loop of both HKDF and RFC 6979 nonce generation.
    """
    fast = perf.vectorized_enabled()
    if len(key) > _BLOCK_SIZE:
        key = sha256(key, accelerated=fast)
    key = key.ljust(_BLOCK_SIZE, b"\x00")
    o_pad = bytes(b ^ 0x5C for b in key)
    i_pad = bytes(b ^ 0x36 for b in key)
    return sha256(o_pad + sha256(i_pad + message, accelerated=fast), accelerated=fast)


def hkdf_extract(salt: bytes, ikm: bytes) -> bytes:
    """HKDF-Extract: PRK = HMAC(salt, IKM)."""
    if not salt:
        salt = b"\x00" * 32
    return hmac_sha256(salt, ikm)


def hkdf_expand(prk: bytes, info: bytes, length: int) -> bytes:
    """HKDF-Expand to ``length`` bytes of output keying material."""
    if length > 255 * 32:
        raise ValueError("HKDF-Expand output too long")
    okm = b""
    block = b""
    counter = 1
    while len(okm) < length:
        block = hmac_sha256(prk, block + info + bytes([counter]))
        okm += block
        counter += 1
    return okm[:length]


def derive_key(master: bytes, label: str, length: int = 16) -> bytes:
    """Single-call KDF: extract-then-expand with a string label."""
    prk = hkdf_extract(b"sev-repro", master)
    return hkdf_expand(prk, label.encode(), length)
