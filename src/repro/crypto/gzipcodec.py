"""DEFLATE comparator codec.

Fig. 5 contrasts LZ4 against the slower, denser compressor Linux uses by
default (gzip/DEFLATE).  Implementing DEFLATE from scratch is out of scope
for the contribution being reproduced — the paper treats gzip purely as a
comparator with a known (ratio, decompression-throughput) point — so this
module wraps the stdlib codec behind the same interface as
:mod:`repro.crypto.lz4` and the cost model supplies the paper-calibrated
throughput.  DESIGN.md records this substitution.
"""

from __future__ import annotations

import zlib


class GzipError(ValueError):
    """Raised when a DEFLATE stream fails to decode."""


def gzip_compress(data: bytes, level: int = 6) -> bytes:
    """Compress with DEFLATE at the kernel-default effort level."""
    return zlib.compress(data, level)


def gzip_decompress(block: bytes, max_output: int | None = None) -> bytes:
    """Decompress a DEFLATE stream, optionally bounding the output size."""
    try:
        out = zlib.decompress(block)
    except zlib.error as exc:
        raise GzipError(str(exc)) from exc
    if max_output is not None and len(out) > max_output:
        raise GzipError("output exceeds declared size")
    return out
