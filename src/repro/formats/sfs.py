"""SFS — a minimal read-only root filesystem for /dev/vda.

The default command line mounts ``root=/dev/vda ro`` (§6.1); on real
systems that is an ext4 image.  SFS is the smallest filesystem that lets
the simulated kernel *actually mount the root device through virtio
sector reads*: a superblock, a contiguous inode table, and contiguous
file extents.

On-disk layout (512-byte sectors):

- sector 0 — superblock: magic ``ROOTFS42`` (shared with the probe),
  version, file count, inode-table start/size;
- inode table — 64-byte records: NUL-padded path (40), mode u32,
  size u32, first data sector u32, sector count u32, reserved;
- data — each file's bytes in contiguous sectors.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable, Mapping

SECTOR = 512
MAGIC = b"ROOTFS42"
VERSION = 1

_SUPER_FMT = "<8sIIII"  # magic, version, file count, inode start, inode sectors
_INODE_FMT = "<40sIIII8x"
_INODE_SIZE = struct.calcsize(_INODE_FMT)  # 64
_INODES_PER_SECTOR = SECTOR // _INODE_SIZE

ReadSector = Callable[[int], bytes]


class SfsError(ValueError):
    """Malformed filesystem."""


@dataclass(frozen=True)
class SfsFile:
    path: str
    mode: int
    size: int
    first_sector: int
    sector_count: int


def build_image(files: Mapping[str, bytes], modes: Mapping[str, int] | None = None) -> bytes:
    """Assemble an SFS disk image from ``{path: contents}``."""
    modes = modes or {}
    paths = sorted(files)
    for path in paths:
        if len(path.encode()) > 40:
            raise SfsError(f"path too long for SFS: {path!r}")

    inode_sectors = -(-len(paths) // _INODES_PER_SECTOR) or 1
    inode_start = 1
    data_start = inode_start + inode_sectors

    inodes = bytearray()
    data = bytearray()
    next_sector = data_start
    for path in paths:
        contents = files[path]
        sector_count = -(-len(contents) // SECTOR) or 1
        inodes += struct.pack(
            _INODE_FMT,
            path.encode(),
            modes.get(path, 0o100644),
            len(contents),
            next_sector,
            sector_count,
        )
        data += contents
        data += b"\x00" * (sector_count * SECTOR - len(contents))
        next_sector += sector_count

    super_block = struct.pack(
        _SUPER_FMT, MAGIC, VERSION, len(paths), inode_start, inode_sectors
    ).ljust(SECTOR, b"\x00")
    inode_area = bytes(inodes).ljust(inode_sectors * SECTOR, b"\x00")
    return super_block + inode_area + bytes(data)


class SfsReader:
    """Mounts an SFS through a sector-read callable (the virtio path)."""

    def __init__(self, read_sector: ReadSector):
        self._read_sector = read_sector
        raw = read_sector(0)
        magic, version, count, inode_start, inode_sectors = struct.unpack_from(
            _SUPER_FMT, raw, 0
        )
        if magic != MAGIC:
            raise SfsError("bad superblock magic")
        if version != VERSION:
            raise SfsError(f"unsupported SFS version {version}")
        self.files: dict[str, SfsFile] = {}
        table = b"".join(
            read_sector(inode_start + i) for i in range(inode_sectors)
        )
        for index in range(count):
            name_raw, mode, size, first, sectors = struct.unpack_from(
                _INODE_FMT, table, index * _INODE_SIZE
            )
            path = name_raw.rstrip(b"\x00").decode()
            self.files[path] = SfsFile(
                path=path,
                mode=mode,
                size=size,
                first_sector=first,
                sector_count=sectors,
            )

    def list(self) -> list[str]:
        return sorted(self.files)

    def read(self, path: str) -> bytes:
        try:
            inode = self.files[path]
        except KeyError as exc:
            raise SfsError(f"no such file: {path}") from exc
        raw = b"".join(
            self._read_sector(inode.first_sector + i)
            for i in range(inode.sector_count)
        )
        return raw[: inode.size]
