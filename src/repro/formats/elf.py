"""ELF64 reader/writer for vmlinux-style executables.

A vmlinux is an ELF64 executable whose PT_LOAD segments the VMM (direct
boot) or the boot verifier (measured direct boot via the fw_cfg protocol,
§5) copies to their run addresses.  This module implements just enough of
the ELF64 spec for that: the file header, program headers, and loadable
segments — plus strict validation, since the boot verifier must reject a
malformed kernel rather than jump into garbage.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

EI_NIDENT = 16
ELF_MAGIC = b"\x7fELF"
ELFCLASS64 = 2
ELFDATA2LSB = 1
EV_CURRENT = 1
ET_EXEC = 2
EM_X86_64 = 62
PT_LOAD = 1
PF_X = 1
PF_W = 2
PF_R = 4

_EHDR_FMT = "<16sHHIQQQIHHHHHH"
_EHDR_SIZE = struct.calcsize(_EHDR_FMT)  # 64
_PHDR_FMT = "<IIQQQQQQ"
_PHDR_SIZE = struct.calcsize(_PHDR_FMT)  # 56


class ElfError(ValueError):
    """Raised when an ELF image fails validation."""


@dataclass
class ElfSegment:
    """A loadable segment: ``data`` goes to physical address ``paddr``.

    ``memsz`` may exceed ``len(data)`` (.bss-style zero fill).
    """

    paddr: int
    data: bytes
    flags: int = PF_R | PF_X
    memsz: int = -1
    vaddr: int = -1

    def __post_init__(self) -> None:
        if self.memsz < 0:
            self.memsz = len(self.data)
        if self.memsz < len(self.data):
            raise ElfError("segment memsz smaller than file size")
        if self.vaddr < 0:
            self.vaddr = self.paddr

    @property
    def filesz(self) -> int:
        return len(self.data)


@dataclass
class ElfFile:
    """An ELF64 executable with PT_LOAD segments."""

    entry: int
    segments: list[ElfSegment] = field(default_factory=list)

    # -- serialization ----------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize: ehdr, phdrs, then segment data 16-byte aligned."""
        phnum = len(self.segments)
        offset = _EHDR_SIZE + phnum * _PHDR_SIZE
        phdrs = []
        payloads = []
        for seg in self.segments:
            offset = (offset + 15) & ~15
            phdrs.append(
                struct.pack(
                    _PHDR_FMT,
                    PT_LOAD,
                    seg.flags,
                    offset,
                    seg.vaddr,
                    seg.paddr,
                    seg.filesz,
                    seg.memsz,
                    16,
                )
            )
            payloads.append((offset, seg.data))
            offset += seg.filesz

        ident = ELF_MAGIC + bytes(
            [ELFCLASS64, ELFDATA2LSB, EV_CURRENT, 0]
        ) + b"\x00" * 8
        ehdr = struct.pack(
            _EHDR_FMT,
            ident,
            ET_EXEC,
            EM_X86_64,
            EV_CURRENT,
            self.entry,
            _EHDR_SIZE,  # e_phoff: phdrs directly follow the ehdr
            0,  # e_shoff: no section headers
            0,  # e_flags
            _EHDR_SIZE,
            _PHDR_SIZE,
            phnum,
            0,
            0,
            0,
        )
        blob = bytearray(ehdr)
        blob += b"".join(phdrs)
        for off, data in payloads:
            if len(blob) < off:
                blob += b"\x00" * (off - len(blob))
            blob += data
        return bytes(blob)

    @classmethod
    def from_bytes(cls, raw: bytes) -> "ElfFile":
        """Parse and validate an ELF64 executable."""
        if len(raw) < _EHDR_SIZE:
            raise ElfError("file shorter than ELF header")
        fields = struct.unpack_from(_EHDR_FMT, raw, 0)
        (
            ident,
            e_type,
            e_machine,
            e_version,
            e_entry,
            e_phoff,
            _e_shoff,
            _e_flags,
            _e_ehsize,
            e_phentsize,
            e_phnum,
            _e_shentsize,
            _e_shnum,
            _e_shstrndx,
        ) = fields
        if ident[:4] != ELF_MAGIC:
            raise ElfError("bad ELF magic")
        if ident[4] != ELFCLASS64:
            raise ElfError("not a 64-bit ELF")
        if ident[5] != ELFDATA2LSB:
            raise ElfError("not little-endian")
        if e_type != ET_EXEC:
            raise ElfError(f"not an executable (e_type={e_type})")
        if e_machine != EM_X86_64:
            raise ElfError(f"not x86-64 (e_machine={e_machine})")
        if e_version != EV_CURRENT:
            raise ElfError("bad ELF version")
        if e_phentsize != _PHDR_SIZE:
            raise ElfError(f"unexpected phentsize {e_phentsize}")

        segments = []
        for i in range(e_phnum):
            off = e_phoff + i * _PHDR_SIZE
            if off + _PHDR_SIZE > len(raw):
                raise ElfError("program header past end of file")
            (
                p_type,
                p_flags,
                p_offset,
                p_vaddr,
                p_paddr,
                p_filesz,
                p_memsz,
                _p_align,
            ) = struct.unpack_from(_PHDR_FMT, raw, off)
            if p_type != PT_LOAD:
                continue
            if p_offset + p_filesz > len(raw):
                raise ElfError("segment data past end of file")
            segments.append(
                ElfSegment(
                    paddr=p_paddr,
                    data=raw[p_offset : p_offset + p_filesz],
                    flags=p_flags,
                    memsz=p_memsz,
                    vaddr=p_vaddr,
                )
            )
        return cls(entry=e_entry, segments=segments)

    # -- helpers -----------------------------------------------------------

    @property
    def load_size(self) -> int:
        """Total in-memory footprint of all loadable segments."""
        return sum(seg.memsz for seg in self.segments)

    def header_bytes(self) -> bytes:
        """The ELF header alone (fw_cfg protocol step 1, §5)."""
        return self.to_bytes()[:_EHDR_SIZE]

    def phdr_bytes(self) -> bytes:
        """The program-header table alone (fw_cfg protocol step 3, §5)."""
        raw = self.to_bytes()
        return raw[_EHDR_SIZE : _EHDR_SIZE + len(self.segments) * _PHDR_SIZE]
