"""Synthetic guest kernels matching the paper's three configurations.

Fig. 8 of the paper fixes the workload: three kernel configs with known
vmlinux and LZ4-bzImage sizes.

============  =============  ==============
config        vmlinux size   bzImage size
============  =============  ==============
Lupine        23M            3.3M
AWS           43M            7.1M
Ubuntu        61M            15M
============  =============  ==============

We cannot ship real kernels, so this module *builds* ELF64 vmlinux images
out of synthetic segment content whose LZ4 compression ratio is calibrated
(by binary search against our own codec) to land on the paper's bzImage
sizes.  Images may be built at a reduced ``scale`` so the suite stays
fast; blobs carry the paper's nominal sizes for the cost model (see
:class:`repro.common.Blob`).

The attestation initrd (kernel module + scripts + tools, §2.6) is a real
CPIO newc archive with the same treatment.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro import perf
from repro.common import Blob, KiB, MiB
from repro.crypto.lz4 import lz4_compress
from repro.formats.bzimage import BzImage, CompressionAlgo
from repro.formats.cpio import CpioArchive
from repro.formats.elf import ElfFile, ElfSegment, PF_R, PF_W, PF_X

#: Default build scale: 1/256 of the paper's sizes.  Timing is charged at
#: nominal size regardless, so scale only affects functional byte counts.
DEFAULT_SCALE = 1.0 / 256.0

KERNEL_LOAD_ADDR = 0x0100_0000  # 16 MiB, the traditional x86-64 load address


#: Kernel config options every paper kernel is built with (§6.1): SEV
#: support, the attestation-report device, and the Firecracker virtio
#: drivers.  Dropping one makes the corresponding boot step fail, which
#: the failure-injection tests exercise.
DEFAULT_KERNEL_FEATURES = frozenset(
    {"AMD_MEM_ENCRYPT", "SEV_GUEST", "VIRTIO_BLK", "VIRTIO_NET"}
)


@dataclass(frozen=True)
class KernelConfig:
    """A guest kernel configuration (one row of Fig. 8)."""

    name: str
    vmlinux_size: int  #: nominal ELF file size (bytes)
    bzimage_size: int  #: nominal LZ4 bzImage size (bytes)
    linux_boot_ms: float  #: non-SEV "Linux Boot" phase (kernel entry -> init)
    has_network: bool  #: Lupine ships without networking => no attestation
    description: str = ""
    #: CONFIG_* options compiled in (§6.1)
    features: frozenset = DEFAULT_KERNEL_FEATURES

    def has_feature(self, name: str) -> bool:
        return name in self.features


LUPINE = KernelConfig(
    name="lupine",
    vmlinux_size=23 * MiB,
    bzimage_size=int(3.3 * MiB),
    linux_boot_ms=22.0,
    has_network=False,
    description="lupine-base: smallest general-purpose Linux (Lupine Linux)",
    features=DEFAULT_KERNEL_FEATURES - {"VIRTIO_NET"},
)

AWS = KernelConfig(
    name="aws",
    vmlinux_size=43 * MiB,
    bzimage_size=int(7.1 * MiB),
    linux_boot_ms=27.0,
    has_network=True,
    description="Firecracker's AWS microVM configuration",
)

UBUNTU = KernelConfig(
    name="ubuntu",
    vmlinux_size=61 * MiB,
    bzimage_size=15 * MiB,
    linux_boot_ms=55.0,
    has_network=True,
    description="Ubuntu 5.15 generic configuration rebased to 6.4",
)

KERNEL_CONFIGS: dict[str, KernelConfig] = {
    cfg.name: cfg for cfg in (LUPINE, AWS, UBUNTU)
}


def custom_kernel_config(
    vmlinux_mib: float,
    lz4_ratio: float = 6.0,
    linux_boot_ms: float | None = None,
    has_network: bool = True,
) -> KernelConfig:
    """A synthetic kernel config of arbitrary size, for scaling sweeps.

    ``linux_boot_ms`` defaults to a linear interpolation over the three
    paper configs (bigger kernels initialize more subsystems).
    """
    if vmlinux_mib <= 0:
        raise ValueError("kernel size must be positive")
    if lz4_ratio < 1.0:
        raise ValueError("compression ratio must be >= 1")
    if linux_boot_ms is None:
        # Fit through (23 MiB, 22 ms) and (61 MiB, 55 ms).
        linux_boot_ms = 22.0 + (vmlinux_mib - 23.0) * (55.0 - 22.0) / (61.0 - 23.0)
        linux_boot_ms = max(5.0, linux_boot_ms)
    return KernelConfig(
        name=f"custom-{vmlinux_mib:g}M",
        vmlinux_size=int(vmlinux_mib * MiB),
        bzimage_size=max(64 * KiB, int(vmlinux_mib * MiB / lz4_ratio)),
        linux_boot_ms=linux_boot_ms,
        has_network=has_network,
        description=f"synthetic {vmlinux_mib:g} MiB kernel (ratio {lz4_ratio:g})",
    )

#: Nominal attestation-initrd size (uncompressed CPIO).  §4.3/§6.2 imply a
#: kernel-independent initrd; the verification-time arithmetic in Fig. 10
#: (20.4/24.7/33.0 ms for the three kernels) pins kernel+initrd at
#: ~15.3/19.1/27 MiB, i.e. a ~12 MiB initrd.
INITRD_SIZE = 12 * MiB

#: LZ4 ratio of the initrd contents at full scale.  Compiled, stripped
#: binaries (busybox, the sev-guest module, the attest tool) compress
#: poorly — which is why Fig. 5 finds the raw initrd cheaper: the
#: copy+hash saving of a ~1.4x ratio is below the decompression cost.
INITRD_LZ4_RATIO = 1.4


# ---------------------------------------------------------------------------
# Synthetic content with a calibrated LZ4 ratio
# ---------------------------------------------------------------------------

_CHUNK = 4096


def _stub_size(scale: float) -> int:
    """Bootstrap-stub size, scaled with the build (16 KiB at full scale)."""
    return max(512, int(16 * KiB * scale))


def _compressible_chunk(rng: random.Random, pattern: bytes) -> bytes:
    """A code-like chunk: a tiled pattern with sparse byte substitutions."""
    chunk = bytearray((pattern * (_CHUNK // len(pattern) + 1))[:_CHUNK])
    for _ in range(8):
        chunk[rng.randrange(_CHUNK)] = rng.randrange(256)
    return bytes(chunk)


def _mixture(size: int, random_fraction: float, seed: int) -> bytes:
    """``size`` bytes with exactly ``random_fraction`` incompressible chunks.

    Random chunks are spread evenly through the buffer (deterministic
    interleaving), so small buffers hit the requested fraction exactly.
    """
    rng = random.Random(seed)
    pattern = bytes(rng.randrange(256) for _ in range(64))
    out = bytearray()
    index = 0
    acc = 0.0
    while len(out) < size:
        acc += random_fraction
        if acc >= 1.0:
            acc -= 1.0
            out += rng.randbytes(_CHUNK)
        else:
            out += _compressible_chunk(rng, pattern)
        index += 1
    return bytes(out[:size])


def synthetic_bytes(size: int, target_lz4_ratio: float, seed: int = 0) -> bytes:
    """Generate ``size`` bytes whose LZ4 ratio ≈ ``target_lz4_ratio``.

    Calibration is analytic: measure the per-byte compressed cost of the
    pure-compressible and pure-random generators on a probe buffer, solve
    for the mixing fraction, then refine once against the actual mixture.
    """
    if size <= 0:
        return b""
    if target_lz4_ratio < 1.0:
        raise ValueError("LZ4 cannot expand to below ratio 1.0 on this generator")
    probe_size = min(max(size, 32 * KiB), 128 * KiB)
    r_comp = len(lz4_compress(_mixture(probe_size, 0.0, seed))) / probe_size
    r_rand = len(lz4_compress(_mixture(probe_size, 1.0, seed))) / probe_size
    target_cost = 1.0 / target_lz4_ratio

    def solve(comp_cost: float, rand_cost: float) -> float:
        if rand_cost <= comp_cost:
            return 0.0
        return min(1.0, max(0.0, (target_cost - comp_cost) / (rand_cost - comp_cost)))

    fraction = solve(r_comp, r_rand)
    # One refinement step: measure the mixture itself and adjust linearly.
    probe = _mixture(probe_size, fraction, seed)
    measured_cost = len(lz4_compress(probe)) / probe_size
    if measured_cost > 0:
        error = target_cost - measured_cost
        span = r_rand - r_comp
        if span > 0:
            fraction = min(1.0, max(0.0, fraction + error / span))
    return _mixture(size, fraction, seed)


# ---------------------------------------------------------------------------
# Kernel / initrd builders
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class KernelArtifacts:
    """Everything a boot needs for one kernel config at one build scale."""

    config: KernelConfig
    scale: float
    vmlinux: Blob  #: raw ELF bytes; nominal = config.vmlinux_size
    bzimage: Blob  #: bzImage bytes for ``algo``; nominal per algo (see build)
    algo: CompressionAlgo

    @property
    def elf(self) -> ElfFile:
        return ElfFile.from_bytes(self.vmlinux.data)

    @property
    def uncompressed_nominal(self) -> int:
        """Nominal size the bootstrap loader produces when decompressing."""
        return self.vmlinux.nominal_size


# Build caches, content-addressed by the full (hashable, frozen)
# KernelConfig rather than just its name, and LRU-bounded so scaling
# sweeps over many synthetic configs cannot grow without bound.  These
# predate the repro.perf switches and stay on even with caches disabled
# (gated=False): they are build-system memoization, not launch-path
# crypto, and several tests construct artifacts assuming it.
_ARTIFACT_CACHE = perf.LRUCache("kernels.artifacts", capacity=64, gated=False)
_VMLINUX_CACHE = perf.LRUCache("kernels.vmlinux", capacity=64, gated=False)
_INITRD_CACHE = perf.LRUCache("kernels.initrd", capacity=16, gated=False)


def _build_vmlinux(config: KernelConfig, scale: float) -> bytes:
    key = (config, scale)
    cached = _VMLINUX_CACHE.get(key)
    if cached is not None:
        return cached

    total = max(8 * KiB, int(config.vmlinux_size * scale))
    # Calibrate content so that LZ4(vmlinux) ~= bzimage_size * scale after
    # the bzImage's constant parts (setup sectors + bootstrap stub) are
    # subtracted; at small scales those parts would otherwise dominate.
    setup_size = (4 + 1) * 512
    bz_target = max(1.0, config.bzimage_size * scale - setup_size - _stub_size(scale))
    target_ratio = max(1.05, total / bz_target)
    seed = sum(config.name.encode())

    # Segment split loosely mirroring a kernel: text / rodata / data (+bss).
    text_size = int(total * 0.62)
    rodata_size = int(total * 0.18)
    data_size = total - text_size - rodata_size
    blob = synthetic_bytes(text_size + rodata_size + data_size, target_ratio, seed)
    text = blob[:text_size]
    rodata = blob[text_size : text_size + rodata_size]
    data = blob[text_size + rodata_size :]

    elf = ElfFile(
        entry=KERNEL_LOAD_ADDR,
        segments=[
            ElfSegment(paddr=KERNEL_LOAD_ADDR, data=text, flags=PF_R | PF_X),
            ElfSegment(
                paddr=KERNEL_LOAD_ADDR + len(text), data=rodata, flags=PF_R
            ),
            ElfSegment(
                paddr=KERNEL_LOAD_ADDR + len(text) + len(rodata),
                data=data,
                flags=PF_R | PF_W,
                memsz=len(data) + len(data) // 4,  # trailing .bss
            ),
        ],
    )
    raw = elf.to_bytes()
    _VMLINUX_CACHE.put(key, raw)
    return raw


def build_kernel(
    config: KernelConfig,
    scale: float = DEFAULT_SCALE,
    algo: CompressionAlgo = CompressionAlgo.LZ4,
) -> KernelArtifacts:
    """Build (or fetch from cache) the artifacts for one kernel config.

    Nominal sizes: the vmlinux blob always charges ``config.vmlinux_size``.
    The bzImage blob charges ``config.bzimage_size`` for LZ4 (the paper's
    number); for other compressors the nominal is the actual compressed
    size rescaled, preserving relative ratios.
    """
    cache_key = (config, scale, algo.value)
    cached = _ARTIFACT_CACHE.get(cache_key)
    if cached is not None:
        return cached

    raw_vmlinux = _build_vmlinux(config, scale)
    vmlinux_blob = Blob(
        raw_vmlinux,
        max(len(raw_vmlinux), config.vmlinux_size),
        f"vmlinux-{config.name}",
    )

    image = BzImage.build(raw_vmlinux, algo=algo, stub_size=_stub_size(scale))
    if algo is CompressionAlgo.LZ4:
        nominal = config.bzimage_size
    else:
        nominal = int(len(image.raw) / max(vmlinux_blob.scale, 1e-12))
    bz_blob = Blob(
        image.raw,
        max(len(image.raw), nominal),
        f"bzimage-{config.name}-{algo.value}",
    )

    artifacts = KernelArtifacts(
        config=config,
        scale=scale,
        vmlinux=vmlinux_blob,
        bzimage=bz_blob,
        algo=algo,
    )
    _ARTIFACT_CACHE.put(cache_key, artifacts)
    return artifacts


def build_initrd(scale: float = DEFAULT_SCALE) -> Blob:
    """Build the attestation initrd: a real CPIO archive of synthetic files.

    Contents mirror §2.6: an init script, the sev-guest kernel module, the
    attestation tooling, and CA material.  None of it contains secrets.
    """
    cached = _INITRD_CACHE.get(scale)
    if cached is not None:
        return cached

    total = max(16 * KiB, int(INITRD_SIZE * scale))
    archive = CpioArchive()
    archive.add_directory("bin")
    archive.add_directory("lib")
    archive.add_directory("lib/modules")
    archive.add_directory("etc")
    archive.add(
        "init",
        b"#!/bin/sh\n"
        b"insmod /lib/modules/sev-guest.ko\n"
        b"/bin/attest --server $GUEST_OWNER --report /dev/sev-guest\n"
        b"exec /bin/sh\n",
        mode=0o100755,
    )
    # Size budget for the synthetic binaries (module, busybox, attest tool).
    overhead = sum(len(e.data) for e in archive.entries) + 4 * KiB
    body = max(0, total - overhead)
    module_size = body // 6
    tools_size = body - module_size
    archive.add(
        "lib/modules/sev-guest.ko",
        synthetic_bytes(module_size, INITRD_LZ4_RATIO, seed=7),
    )
    archive.add(
        "bin/attest",
        synthetic_bytes(tools_size // 2, INITRD_LZ4_RATIO, seed=11),
        mode=0o100755,
    )
    archive.add(
        "bin/busybox",
        synthetic_bytes(tools_size - tools_size // 2, INITRD_LZ4_RATIO, seed=13),
        mode=0o100755,
    )
    archive.add("etc/ca.pem", b"-----BEGIN CERTIFICATE-----\nSIMULATED AMD ROOT\n")

    raw = archive.to_bytes()
    blob = Blob(raw, max(len(raw), INITRD_SIZE), "initrd")
    _INITRD_CACHE.put(scale, blob)
    return blob


def clear_caches() -> None:
    """Drop all build caches (used by tests that tweak build parameters)."""
    _ARTIFACT_CACHE.clear()
    _VMLINUX_CACHE.clear()
    _INITRD_CACHE.clear()
