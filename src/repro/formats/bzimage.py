"""The bzImage container: setup stub + bootstrap loader + compressed kernel.

A bzImage is a small real-mode setup stub plus a protected-mode part that
carries the bootstrap decompressor and a compressed vmlinux payload
(§2.1).  This module implements a faithful subset of the x86 Linux boot
protocol header:

- boot-sector magic ``0xAA55`` at offset 0x1FE,
- the ``HdrS`` signature at 0x202 and protocol version at 0x206,
- ``setup_sects`` (0x1F1) and ``syssize`` (0x1F4),
- ``payload_offset``/``payload_length`` (0x248/0x24C) locating the
  compressed payload inside the protected-mode part,
- ``init_size`` (0x260): memory the uncompressed kernel needs.

The payload is prefixed by a compression magic exactly the way the kernel
detects its own compressor (LZ4 legacy/frame magic, gzip ``\\x1f\\x8b``),
and decompression really runs our codecs, so a corrupt payload fails to
boot in the simulation just as it would on hardware.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

from repro.crypto.gzipcodec import gzip_compress, gzip_decompress
from repro.crypto.lz4 import lz4_compress, lz4_decompress

SECTOR = 512
BOOT_FLAG = 0xAA55
HDR_SIGNATURE = b"HdrS"
PROTOCOL_VERSION = 0x020F

_OFF_SETUP_SECTS = 0x1F1
_OFF_SYSSIZE = 0x1F4
_OFF_BOOT_FLAG = 0x1FE
_OFF_HDR_SIG = 0x202
_OFF_VERSION = 0x206
_OFF_CMDLINE_SIZE = 0x238
_OFF_PAYLOAD_OFFSET = 0x248
_OFF_PAYLOAD_LENGTH = 0x24C
_OFF_INIT_SIZE = 0x260

DEFAULT_SETUP_SECTS = 4
DEFAULT_CMDLINE_SIZE = 4096


class BzImageError(ValueError):
    """Raised when a bzImage fails validation or decompression."""


class CompressionAlgo(enum.Enum):
    """Payload compressors the bootstrap loader understands."""

    NONE = "none"
    LZ4 = "lz4"
    GZIP = "gzip"

    @property
    def magic(self) -> bytes:
        return {
            CompressionAlgo.NONE: b"RAW0",
            CompressionAlgo.LZ4: b"\x04\x22\x4d\x18",
            CompressionAlgo.GZIP: b"\x1f\x8b\x08\x00",
        }[self]

    def compress(self, data: bytes) -> bytes:
        if self is CompressionAlgo.NONE:
            return data
        if self is CompressionAlgo.LZ4:
            return lz4_compress(data)
        return gzip_compress(data)

    def decompress(self, data: bytes, max_output: int | None = None) -> bytes:
        if self is CompressionAlgo.NONE:
            return data
        if self is CompressionAlgo.LZ4:
            return lz4_decompress(data, max_output=max_output)
        return gzip_decompress(data, max_output=max_output)

    @classmethod
    def detect(cls, payload: bytes) -> "CompressionAlgo":
        for algo in cls:
            if payload.startswith(algo.magic):
                return algo
        raise BzImageError("unknown payload compression magic")


def _bootstrap_stub(size: int, seed: int = 0x1F2B) -> bytes:
    """Deterministic pseudo-code bytes standing in for the decompressor stub."""
    out = bytearray()
    state = seed
    while len(out) < size:
        state = (state * 6364136223846793005 + 1442695040888963407) & (2**64 - 1)
        out += state.to_bytes(8, "little")
    return bytes(out[:size])


@dataclass
class BzImage:
    """A parsed (or freshly built) bzImage."""

    raw: bytes
    setup_sects: int
    algo: CompressionAlgo
    payload: bytes
    init_size: int
    cmdline_size: int

    # -- construction -------------------------------------------------------

    @classmethod
    def build(
        cls,
        vmlinux: bytes,
        algo: CompressionAlgo = CompressionAlgo.LZ4,
        setup_sects: int = DEFAULT_SETUP_SECTS,
        stub_size: int = 16 * 1024,
        cmdline_size: int = DEFAULT_CMDLINE_SIZE,
    ) -> "BzImage":
        """Assemble a bzImage around ``vmlinux`` (raw ELF bytes)."""
        compressed = algo.magic + algo.compress(vmlinux)
        setup_size = (setup_sects + 1) * SECTOR

        header = bytearray(setup_size)
        header[_OFF_SETUP_SECTS] = setup_sects
        struct.pack_into("<H", header, _OFF_BOOT_FLAG, BOOT_FLAG)
        header[_OFF_HDR_SIG : _OFF_HDR_SIG + 4] = HDR_SIGNATURE
        struct.pack_into("<H", header, _OFF_VERSION, PROTOCOL_VERSION)
        struct.pack_into("<I", header, _OFF_CMDLINE_SIZE, cmdline_size)

        stub = _bootstrap_stub(stub_size)
        payload_offset = len(stub)
        struct.pack_into("<I", header, _OFF_PAYLOAD_OFFSET, payload_offset)
        struct.pack_into("<I", header, _OFF_PAYLOAD_LENGTH, len(compressed))
        struct.pack_into("<I", header, _OFF_INIT_SIZE, len(vmlinux))

        protected_mode = stub + compressed
        # syssize: protected-mode size in 16-byte paragraphs, rounded up.
        struct.pack_into("<I", header, _OFF_SYSSIZE, (len(protected_mode) + 15) // 16)

        raw = bytes(header) + protected_mode
        return cls(
            raw=raw,
            setup_sects=setup_sects,
            algo=algo,
            payload=compressed,
            init_size=len(vmlinux),
            cmdline_size=cmdline_size,
        )

    @classmethod
    def from_bytes(cls, raw: bytes) -> "BzImage":
        """Parse and validate a bzImage the way the bzImage loader does."""
        if len(raw) < 2 * SECTOR:
            raise BzImageError("image shorter than boot sector + setup")
        (boot_flag,) = struct.unpack_from("<H", raw, _OFF_BOOT_FLAG)
        if boot_flag != BOOT_FLAG:
            raise BzImageError(f"bad boot flag {boot_flag:#06x}")
        if raw[_OFF_HDR_SIG : _OFF_HDR_SIG + 4] != HDR_SIGNATURE:
            raise BzImageError("missing HdrS signature")
        (version,) = struct.unpack_from("<H", raw, _OFF_VERSION)
        if version < 0x0200:
            raise BzImageError(f"boot protocol too old: {version:#06x}")
        setup_sects = raw[_OFF_SETUP_SECTS] or 4
        setup_size = (setup_sects + 1) * SECTOR
        if len(raw) < setup_size:
            raise BzImageError("truncated setup area")
        (payload_offset,) = struct.unpack_from("<I", raw, _OFF_PAYLOAD_OFFSET)
        (payload_length,) = struct.unpack_from("<I", raw, _OFF_PAYLOAD_LENGTH)
        (init_size,) = struct.unpack_from("<I", raw, _OFF_INIT_SIZE)
        (cmdline_size,) = struct.unpack_from("<I", raw, _OFF_CMDLINE_SIZE)
        start = setup_size + payload_offset
        end = start + payload_length
        if end > len(raw):
            raise BzImageError("payload extends past end of image")
        payload = raw[start:end]
        algo = CompressionAlgo.detect(payload)
        return cls(
            raw=raw,
            setup_sects=setup_sects,
            algo=algo,
            payload=payload,
            init_size=init_size,
            cmdline_size=cmdline_size,
        )

    # -- operations ----------------------------------------------------------

    def decompress_payload(self) -> bytes:
        """Run the bootstrap decompressor; returns the vmlinux bytes."""
        body = self.payload[len(self.algo.magic) :]
        out = self.algo.decompress(body, max_output=self.init_size)
        if len(out) != self.init_size:
            raise BzImageError(
                f"decompressed size {len(out)} != declared init_size {self.init_size}"
            )
        return out

    @property
    def size(self) -> int:
        return len(self.raw)
