"""Boot-image formats: ELF64 (vmlinux), bzImage, CPIO (initrd), kernels.

All formats are written and parsed from scratch so the boot verifier and
the VMM exercise the same parsing code paths the paper's components do:

- :mod:`repro.formats.elf` — ELF64 executables: the uncompressed vmlinux.
- :mod:`repro.formats.bzimage` — the bzImage container (setup stub +
  bootstrap loader + compressed payload) and its header fields.
- :mod:`repro.formats.cpio` — CPIO *newc* archives for the initrd.
- :mod:`repro.formats.kernels` — synthetic kernel builders matching the
  paper's three configurations (Fig. 8) in size and compression ratio.
"""

from repro.formats.elf import ElfFile, ElfSegment
from repro.formats.bzimage import BzImage, CompressionAlgo
from repro.formats.cpio import CpioArchive, CpioEntry
from repro.formats.kernels import (
    AWS,
    KERNEL_CONFIGS,
    LUPINE,
    UBUNTU,
    KernelArtifacts,
    KernelConfig,
    build_initrd,
    build_kernel,
)

__all__ = [
    "AWS",
    "BzImage",
    "CompressionAlgo",
    "CpioArchive",
    "CpioEntry",
    "ElfFile",
    "ElfSegment",
    "KERNEL_CONFIGS",
    "KernelArtifacts",
    "KernelConfig",
    "LUPINE",
    "UBUNTU",
    "build_initrd",
    "build_kernel",
]
