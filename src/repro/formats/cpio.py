"""CPIO *newc* archives — the initrd container.

Linux initrds are CPIO archives in the SVR4 "newc" format: each entry is
a 110-byte ASCII-hex header, the NUL-terminated file name padded to a
4-byte boundary, then the data padded to a 4-byte boundary, ending with a
``TRAILER!!!`` entry.  The attestation initrd the paper ships (kernel
module + scripts + command-line tools, §2.6) is modelled as an archive of
synthetic files built by :mod:`repro.formats.kernels`.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

MAGIC = b"070701"
TRAILER = "TRAILER!!!"

_HEADER_FIELDS = 13  # 13 8-char hex fields after the 6-byte magic
_HEADER_SIZE = 6 + 8 * _HEADER_FIELDS  # 110

_S_IFREG = 0o100000
_S_IFDIR = 0o040000


class CpioError(ValueError):
    """Raised when an archive fails to parse."""


@dataclass
class CpioEntry:
    """A single file in the archive."""

    name: str
    data: bytes = b""
    mode: int = _S_IFREG | 0o644
    ino: int = 0
    uid: int = 0
    gid: int = 0
    mtime: int = 0

    @property
    def is_dir(self) -> bool:
        return (self.mode & 0o170000) == _S_IFDIR

    @classmethod
    def directory(cls, name: str, mode: int = 0o755) -> "CpioEntry":
        return cls(name=name, mode=_S_IFDIR | mode)


def _pad4(n: int) -> int:
    return (4 - n % 4) % 4


def _encode_entry(entry: CpioEntry, ino: int) -> bytes:
    name_bytes = entry.name.encode() + b"\x00"
    header = MAGIC + b"".join(
        f"{value:08X}".encode()
        for value in (
            ino,  # c_ino
            entry.mode,  # c_mode
            entry.uid,  # c_uid
            entry.gid,  # c_gid
            1,  # c_nlink
            entry.mtime,  # c_mtime
            len(entry.data),  # c_filesize
            0,  # c_devmajor
            0,  # c_devminor
            0,  # c_rdevmajor
            0,  # c_rdevminor
            len(name_bytes),  # c_namesize
            0,  # c_check
        )
    )
    out = bytearray(header)
    out += name_bytes
    out += b"\x00" * _pad4(_HEADER_SIZE + len(name_bytes))
    out += entry.data
    out += b"\x00" * _pad4(len(entry.data))
    return bytes(out)


@dataclass
class CpioArchive:
    """A CPIO newc archive: ordered list of entries."""

    entries: list[CpioEntry] = field(default_factory=list)

    def add(self, name: str, data: bytes, mode: int = _S_IFREG | 0o644) -> None:
        self.entries.append(CpioEntry(name=name, data=data, mode=mode))

    def add_directory(self, name: str) -> None:
        self.entries.append(CpioEntry.directory(name))

    def find(self, name: str) -> CpioEntry | None:
        for entry in self.entries:
            if entry.name == name:
                return entry
        return None

    @property
    def names(self) -> list[str]:
        return [entry.name for entry in self.entries]

    def to_bytes(self) -> bytes:
        out = bytearray()
        for i, entry in enumerate(self.entries, start=1):
            out += _encode_entry(entry, ino=i)
        out += _encode_entry(CpioEntry(name=TRAILER, mode=0), ino=0)
        # Initrd images are traditionally padded to a 512-byte boundary.
        out += b"\x00" * ((512 - len(out) % 512) % 512)
        return bytes(out)

    @classmethod
    def from_bytes(cls, raw: bytes) -> "CpioArchive":
        entries: list[CpioEntry] = []
        pos = 0
        while True:
            if pos + _HEADER_SIZE > len(raw):
                raise CpioError("archive ended without trailer")
            if raw[pos : pos + 6] != MAGIC:
                raise CpioError(f"bad entry magic at offset {pos}")
            fields = []
            for i in range(_HEADER_FIELDS):
                start = pos + 6 + 8 * i
                try:
                    fields.append(int(raw[start : start + 8], 16))
                except ValueError as exc:
                    raise CpioError(f"bad hex field at offset {start}") from exc
            (
                _ino,
                mode,
                uid,
                gid,
                _nlink,
                mtime,
                filesize,
                _devmaj,
                _devmin,
                _rdevmaj,
                _rdevmin,
                namesize,
                _check,
            ) = fields
            name_start = pos + _HEADER_SIZE
            name = raw[name_start : name_start + namesize - 1].decode()
            data_start = name_start + namesize + _pad4(_HEADER_SIZE + namesize)
            if name == TRAILER:
                break
            data = raw[data_start : data_start + filesize]
            if len(data) != filesize:
                raise CpioError(f"truncated data for {name!r}")
            entries.append(
                CpioEntry(name=name, data=data, mode=mode, uid=uid, gid=gid, mtime=mtime)
            )
            pos = data_start + filesize + _pad4(filesize)
        return cls(entries=entries)

    @property
    def total_data_size(self) -> int:
        return sum(len(entry.data) for entry in self.entries)
