"""The virtual-time cost model, calibrated to the paper's measurements.

Every constant below traces to a number in the paper (section references
inline).  The experiments then *derive* their results from the simulated
protocol — which components get pre-encrypted, how many bytes cross the
measured-direct-boot path, how many VMs contend on the PSP — rather than
hard-coding the figures.

All durations are in **milliseconds**, sizes in bytes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.common import HUGE_PAGE_SIZE, MiB, PAGE_SIZE


@dataclass
class CostModel:
    """Calibrated latency/throughput constants for the simulated EPYC host."""

    #: Relative run-to-run noise applied by :meth:`sample` (the paper's
    #: error bars / CDF spread come from real measurement variance; 0
    #: keeps the simulation fully deterministic, which tests rely on).
    jitter_rel: float = 0.0
    jitter_seed: int = 0

    # -- PSP (SEV firmware) ------------------------------------------------
    #: LAUNCH_UPDATE_DATA per-byte cost.  Fig. 4: pre-encryption is linear
    #: in size; 23 MiB vmlinux -> 5.65 s and 1 MiB OVMF -> 256.65 ms give a
    #: slope of ~240-250 ms/MiB.
    psp_encrypt_ms_per_mib: float = 240.0
    #: LAUNCH_UPDATE_DATA per-4K-page measurement overhead.
    psp_measure_ms_per_page: float = 0.05
    #: Fixed mailbox/doorbell latency per PSP command.  Together these fit
    #: all the paper's pre-encryption anchors within ~10%: 1 MiB -> 253 ms
    #: (256.65), 23 MiB -> 5.81 s (5.65), 3.3 MiB -> 794 ms (840), 12 MiB
    #: -> 3.03 s (2.85), SEVeriFast's five components -> 8.0 ms (8.1-8.2).
    psp_command_latency_ms: float = 0.5
    #: LAUNCH_START: platform init + per-guest key generation (§6.2 notes
    #: "the other SEV launch commands" add VMM-side overhead).
    psp_launch_start_ms: float = 18.0
    #: LAUNCH_FINISH: finalize the launch digest.
    psp_launch_finish_ms: float = 4.0
    #: Attestation-report generation (signing on the PSP's slow core).
    psp_report_ms: float = 35.0
    #: DF_FLUSH: write-back-invalidate every core's caches plus a data
    #: fabric flush before retired ASID slots can be reused.  A global,
    #: relatively expensive command — comparable to the LAUNCH_START
    #: platform work (WBINVD across 16 Zen3 cores dominates), and it
    #: occupies the single PSP mailbox like any other command.
    psp_df_flush_ms: float = 15.0

    # -- guest CPU ----------------------------------------------------------
    #: Plain-text -> encrypted memory copy throughput (GB/s).
    memcpy_gbps: float = 3.0
    #: SHA-256 hashing throughput with x86 SHA extensions (GB/s).  Together
    #: with memcpy this fits §6.2's boot verification times: 20.4/24.7/33.0
    #: ms for 15.3/19.1/27 MiB of kernel+initrd ("we pay twice per byte").
    cpu_hash_gbps: float = 1.1
    #: LZ4 decompression throughput on *decompressed* bytes (GB/s).
    lz4_decompress_gbps: float = 2.0
    #: DEFLATE (gzip) decompression throughput on decompressed bytes (GB/s).
    gzip_decompress_gbps: float = 0.30
    #: ELF parse cost for direct boot (per loadable segment).
    elf_parse_ms_per_segment: float = 0.02

    # -- SNP paging ----------------------------------------------------------
    #: pvalidate cost per page.  §6.1: 256 MiB of 4 KiB pages ~60 ms
    #: (=> ~0.92 us/page); with 2 MiB huge pages "<1 ms".
    pvalidate_us_per_page: float = 0.92
    #: Page-table initialization in the boot verifier (C-bit setup).
    pagetable_setup_ms: float = 0.2
    #: KVM RMP initialization cost per GiB of guest memory at launch.
    rmp_init_ms_per_gib: float = 40.0
    #: KVM page-pinning cost per GiB (encrypted pages cannot move, §6.2).
    page_pin_ms_per_gib: float = 20.0

    # -- VMM process ----------------------------------------------------------
    #: Firecracker process start + VM setup, non-SEV (§3.1: a full stock
    #: boot is ~40 ms; the VMM segment of Fig. 11 is a small slice).
    firecracker_base_ms: float = 7.0
    #: QEMU process start + machine setup (heavier device model).
    qemu_base_ms: float = 95.0
    #: Host file-system/buffer-cache read throughput for boot images
    #: (warm cache, §6.1 methodology).
    image_read_gbps: float = 8.0
    #: Host-side bulk load of ELF segments into guest memory (streaming
    #: copy on the big cores; fits stock Firecracker's ~40 ms total boot).
    host_load_gbps: float = 10.0

    # -- guest kernel ----------------------------------------------------------
    #: Multiplier on the Linux Boot phase under SEV-SNP (§6.2: "Linux Boot
    #: takes about 2.3x longer" from #VC exits and RMP-checked accesses).
    sev_linux_boot_factor: float = 2.3
    #: The same multiplier for SEV-ES guests: #VC exits but no RMP checks.
    sev_es_linux_boot_factor: float = 1.7
    #: Base SEV: encryption only (no #VC handling, no RMP); small overhead
    #: from encrypted-memory latency.
    sev_base_linux_boot_factor: float = 1.25
    #: bzImage real-mode/setup stub overhead before decompression starts.
    bzimage_setup_ms: float = 0.3

    # -- OVMF (QEMU baseline) ---------------------------------------------------
    #: PI-phase durations fitted to Fig. 3 (total firmware ~3.1-3.2 s with
    #: the boot verifier a small slice on top).
    ovmf_sec_ms: float = 55.0
    ovmf_pei_ms: float = 420.0
    ovmf_dxe_ms: float = 1900.0
    ovmf_bds_ms: float = 760.0
    #: OVMF firmware volume size (smallest supported build, §3.1).
    ovmf_volume_size: int = 1 * MiB

    # -- attestation ----------------------------------------------------------
    #: Guest-owner round trip: report transfer + validation + secret wrap
    #: (§6.1: end-to-end attestation ~200 ms, of which the PSP's report
    #: generation is psp_report_ms).
    attestation_network_ms: float = 165.0
    #: Owner-side ARK->ASK->VCEK chain walk (three ECDSA verifies plus
    #: certificate parsing) when a restored guest re-attests against an
    #: owner that has not yet pinned this chip's VCEK (SNPGuard §IV).
    cert_chain_verify_ms: float = 2.5
    #: Abbreviated re-attestation exchange for a *repeat* tenant: the
    #: owner already proved this chip's VCEK and holds a session key, so
    #: the round trip skips the chain walk and the full TLS-like
    #: handshake (session resumption, e-vTPM §5 / SNPGuard §IV).
    reattest_resume_ms: float = 12.0

    # -- guest-owner verification service (repro.sev.verifier) ---------------
    #: Scalar ECDSA verify of one report on the owner's CPU (two point
    #: multiplications; the serial per-report baseline).
    report_verify_ms: float = 1.4
    #: Per-report verify cost inside a batch: the batch shares the
    #: precomputed windowed base-point tables and the per-key comb, so
    #: each report pays roughly one interleaved ladder's marginal work.
    report_verify_batched_ms: float = 0.35
    #: Fixed per-batch cost of a service step (request framing, table
    #: residency, response fan-out) — amortized across the batch.
    verify_batch_overhead_ms: float = 0.6
    #: Session-resumption ticket check: one MAC, no ECDSA at all.
    ticket_verify_ms: float = 0.05

    # -- snapshot restore (§7.1) ----------------------------------------------
    #: Content-addressed snapshot-store lookup (index probe + metadata
    #: read; the page payload is charged separately by the restore path).
    snapshot_lookup_ms: float = 0.8
    #: Arming a copy-on-write mapping over the snapshot file, per GiB of
    #: nominal guest memory (VMA setup + page-table population).
    cow_map_ms_per_gib: float = 6.0
    #: Host fault-in overhead per 4 KiB page actually written after a CoW
    #: restore (fault entry/exit around the private-page copy).
    cow_fault_us_per_page: float = 1.0
    #: Fraction of guest memory a restored function touches (and so
    #: privatizes) before it is ready to serve — the working set of a
    #: snapshot-restored microVM is far smaller than its footprint.
    cow_touched_fraction: float = 0.25

    # -- derived helpers ----------------------------------------------------

    def __post_init__(self) -> None:
        self._rng = random.Random(self.jitter_seed)

    def sample(self, duration: float) -> float:
        """Apply measurement noise to a modelled duration.

        Gaussian with relative stddev ``jitter_rel``, truncated at ±3σ so
        durations stay positive and outliers stay physical.
        """
        if self.jitter_rel <= 0.0 or duration <= 0.0:
            return duration
        factor = self._rng.gauss(1.0, self.jitter_rel)
        low, high = 1.0 - 3 * self.jitter_rel, 1.0 + 3 * self.jitter_rel
        return duration * min(max(factor, low), high)

    def psp_update_data_ms(
        self, nominal_size: int, has_rmp: bool = True, huge_pages: bool = False
    ) -> float:
        """Duration of one LAUNCH_UPDATE_DATA over ``nominal_size`` bytes.

        §6.1: enabling huge pages decreases pre-encryption time with base
        SEV and SEV-ES (fewer page-granular measurement steps) but has no
        effect with SEV-SNP (the RMP forces 4 KiB bookkeeping).
        """
        page = HUGE_PAGE_SIZE if (huge_pages and not has_rmp) else PAGE_SIZE
        pages = max(1, -(-nominal_size // page))
        return (
            self.psp_command_latency_ms
            + pages * self.psp_measure_ms_per_page
            + (nominal_size / MiB) * self.psp_encrypt_ms_per_mib
        )

    def copy_ms(self, nominal_size: int) -> float:
        """Plain-text -> encrypted memory copy."""
        return nominal_size / (self.memcpy_gbps * 1e6)

    def hash_ms(self, nominal_size: int) -> float:
        """SHA-256 over ``nominal_size`` bytes on the guest CPU."""
        return nominal_size / (self.cpu_hash_gbps * 1e6)

    def linux_boot_factor(self, mode) -> float:
        """Linux Boot slowdown multiplier for an SEV mode (None = no SEV)."""
        if mode is None:
            return 1.0
        name = getattr(mode, "value", mode)
        return {
            "sev": self.sev_base_linux_boot_factor,
            "sev-es": self.sev_es_linux_boot_factor,
            "sev-snp": self.sev_linux_boot_factor,
        }[name]

    def decompress_ms(self, algo: str, uncompressed_nominal: int) -> float:
        """Decompression cost, charged on the *output* bytes."""
        if algo == "none":
            return 0.0
        if algo == "lz4":
            return uncompressed_nominal / (self.lz4_decompress_gbps * 1e6)
        if algo == "gzip":
            return uncompressed_nominal / (self.gzip_decompress_gbps * 1e6)
        raise ValueError(f"unknown compression algo {algo!r}")

    def pvalidate_ms(self, nominal_memory: int, huge_pages: bool) -> float:
        """Validate all of guest memory with pvalidate (§6.1)."""
        page = HUGE_PAGE_SIZE if huge_pages else PAGE_SIZE
        pages = max(1, nominal_memory // page)
        return pages * self.pvalidate_us_per_page / 1000.0

    def image_read_ms(self, nominal_size: int) -> float:
        """Read a boot image from the (warm) host buffer cache."""
        return nominal_size / (self.image_read_gbps * 1e6)

    def host_load_ms(self, nominal_size: int) -> float:
        """VMM-side bulk copy into guest memory (direct-boot ELF load)."""
        return nominal_size / (self.host_load_gbps * 1e6)

    def rmp_init_ms(self, nominal_memory: int) -> float:
        return (nominal_memory / (1024 * MiB)) * self.rmp_init_ms_per_gib

    def cow_map_ms(self, nominal_memory: int) -> float:
        """Arm a copy-on-write mapping over a whole snapshot."""
        return (nominal_memory / (1024 * MiB)) * self.cow_map_ms_per_gib

    def cow_fault_ms(self, touched_bytes: int) -> float:
        """Privatize ``touched_bytes`` of a CoW restore: per-page fault
        overhead plus the actual page copies."""
        pages = max(1, -(-touched_bytes // PAGE_SIZE)) if touched_bytes > 0 else 0
        return pages * self.cow_fault_us_per_page / 1000.0 + self.copy_ms(
            touched_bytes
        )

    def page_pin_ms(self, nominal_memory: int) -> float:
        return (nominal_memory / (1024 * MiB)) * self.page_pin_ms_per_gib


#: The default, paper-calibrated cost model instance.
DEFAULT_COST_MODEL = CostModel()
