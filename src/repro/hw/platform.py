"""The host machine: clock, cost model, PSP, and guest factories.

One :class:`Machine` models the paper's testbed (Dell R6515, EPYC 7313P,
SEV-SNP host kernel).  VMM instances attach to a machine; all their SEV
launches share its single PSP, which is what makes the Fig. 12 experiment
meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common import MiB
from repro.hw.costmodel import CostModel
from repro.hw.memory import GuestMemory
from repro.hw.psp import PlatformSecurityProcessor
from repro.hw.rmp import ReverseMapTable
from repro.sev.api import GuestSevContext
from repro.sev.policy import GuestPolicy, SevMode
from repro.sim import Simulator

DEFAULT_GUEST_MEMORY = 256 * MiB  # §6.1: each VM has 1 vCPU and 256 MB


@dataclass
class Machine:
    """A host capable of launching (SEV) microVMs."""

    sim: Simulator = field(default_factory=Simulator)
    cost: CostModel = field(default_factory=CostModel)
    #: §6.1: all experiments run with transparent huge pages enabled.
    huge_pages: bool = True
    #: memory-encryption engine mode ("ctr-fast" or the reference "xex")
    engine_mode: str = "ctr-fast"
    #: PSP cores (1 on real hardware; >1 is the §6.2 future-work what-if)
    psp_parallelism: int = 1
    #: chip-unique key seed.  ``None`` (the default) draws a fresh seed
    #: from the monotone counter — every machine is a distinct physical
    #: host and nothing chip-keyed (cert hierarchies, prepared boots,
    #: launch-page ciphertext) is shared between them.  Pass an explicit
    #: seed to model repeat boots on the *same* host, e.g. the paper's
    #: single testbed machine: chip-keyed caches then hit across
    #: machines.  Launch digests do not depend on the chip seed.
    chip_seed: bytes | None = None
    #: display label for this machine in trace exports (e.g. a fleet
    #: host ID like ``c0:host-2``).  Empty (the default) keeps all
    #: trace track names exactly as before; when set, the PSP's span
    #: track and resource rows are prefixed so merged multi-host traces
    #: stay unambiguous.  Never affects metrics labels.
    label: str = ""
    psp: PlatformSecurityProcessor = field(init=False)

    #: monotone counter giving every machine a distinct (but reproducible
    #: within a process) chip-unique key, like distinct physical hosts.
    _chip_counter = 0

    def __post_init__(self) -> None:
        Machine._chip_counter += 1
        if self.chip_seed is None:
            self.chip_seed = f"repro-epyc-7313p-{Machine._chip_counter}".encode()
        self.psp = PlatformSecurityProcessor(
            self.sim,
            cost=self.cost,
            chip_seed=self.chip_seed,
            engine_mode=self.engine_mode,
            huge_pages=self.huge_pages,
            parallelism=self.psp_parallelism,
            label=self.label,
        )

    def new_sev_context(self, policy: GuestPolicy | None = None) -> GuestSevContext:
        return GuestSevContext(
            asid=self.psp.allocate_asid(), policy=policy or GuestPolicy()
        )

    def new_guest_memory(
        self,
        size: int = DEFAULT_GUEST_MEMORY,
        sev_ctx: GuestSevContext | None = None,
    ) -> GuestMemory:
        """Guest memory, with an RMP when the guest policy is SEV-SNP."""
        rmp = None
        if sev_ctx is not None and sev_ctx.policy.mode is SevMode.SEV_SNP:
            rmp = ReverseMapTable(asid=sev_ctx.asid, num_pages=size // 4096)
        return GuestMemory(size=size, rmp=rmp, faults=self.sim.faults)
