"""A 16550-style UART: the guest's serial console.

Firecracker exposes one serial port (``console=ttyS0`` in the default
command line) and microVM kernels log boot progress there.  Each byte
written is a port I/O — under SEV-ES/SNP that means a #VC exit per
``outb`` unless the guest batches through the GHCB, so the console is
both an observability channel (the boot log lands in
:class:`repro.vmm.timeline.BootResult`) and a world-switch counter.

Registers modelled (offsets from the base port, 0x3F8 for ttyS0):

- THR (0): transmit holding — bytes written appear on the console;
- LSR (5): line status — THR-empty is always set (we never backpressure).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.hw.ghcb import GhcbProtocol

COM1_BASE = 0x3F8
_THR = 0
_LSR = 5
_LSR_THRE = 0x20  # transmit holding register empty


@dataclass
class Uart16550:
    """Host-side serial device: collects console output."""

    base_port: int = COM1_BASE
    output: bytearray = field(default_factory=bytearray)
    writes: int = 0

    def io_write(self, port: int, value: int) -> None:
        if port == self.base_port + _THR:
            self.output.append(value & 0xFF)
            self.writes += 1

    def io_read(self, port: int) -> int:
        if port == self.base_port + _LSR:
            return _LSR_THRE
        return 0

    @property
    def text(self) -> str:
        return self.output.decode(errors="replace")

    @property
    def lines(self) -> list[str]:
        return [line for line in self.text.split("\n") if line]


@dataclass
class SerialConsole:
    """Guest-side console driver.

    With a :class:`GhcbProtocol` attached (SEV-ES/SNP), every byte goes
    through a #VC exit; without one (non-SEV / base SEV), ``outb`` is a
    plain intercepted instruction.
    """

    uart: Uart16550
    ghcb: Optional[GhcbProtocol] = None
    bytes_written: int = 0

    def putc(self, byte: int) -> None:
        if self.ghcb is not None:
            self.ghcb.outb(self.uart.base_port + _THR, byte)
        self.uart.io_write(self.uart.base_port + _THR, byte)
        self.bytes_written += 1

    def write(self, text: str) -> None:
        """Write a string; batched into one #VC exit under SEV-ES/SNP.

        Real SNP guests avoid a world switch per byte by passing whole
        buffers through the GHCB; we model that batching (one exit per
        write call) while ``putc`` keeps the per-byte worst case.
        """
        data = text.encode()
        if not data:
            return
        if self.ghcb is not None:
            self.ghcb.outb(self.uart.base_port + _THR, data[-1])
            self.uart.output.extend(data)
            self.uart.writes += 1
            self.bytes_written += len(data)
            return
        for byte in data:
            self.putc(byte)

    def writeln(self, text: str) -> None:
        self.write(text + "\n")

    @property
    def vc_exits(self) -> int:
        return self.ghcb.total_exits if self.ghcb is not None else 0
