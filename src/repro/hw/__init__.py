"""Hardware model: memory, page tables, RMP, PSP, and the cost model.

This package models the AMD SEV-SNP machine the paper runs on (an EPYC
7313P host):

- :mod:`repro.hw.costmodel` — the virtual-time cost model, calibrated to
  the paper's published measurements (see DESIGN.md §4).
- :mod:`repro.hw.memory` — sparse guest physical memory with a pluggable
  per-guest encryption engine and host/guest access paths.
- :mod:`repro.hw.pagetable` — x86-64 long-mode page tables with the SEV
  C-bit, built *inside guest memory* exactly as the boot verifier does.
- :mod:`repro.hw.rmp` — the SEV-SNP Reverse Map Table: page ownership,
  ``pvalidate``, and #VC semantics.
- :mod:`repro.hw.psp` — the Platform Security Processor: a single-server
  FIFO device executing SEV launch commands and signing reports.
- :mod:`repro.hw.platform` — assembles the above into a Machine.
"""

from repro.hw.costmodel import CostModel
from repro.hw.memory import GuestMemory, MemoryAccessError
from repro.hw.pagetable import PageTableBuilder, translate
from repro.hw.rmp import ReverseMapTable, RmpViolation, VmmCommunicationException
from repro.hw.ghcb import GhcbPage, GhcbProtocol, VmgExitCode
from repro.hw.psp import PlatformSecurityProcessor
from repro.hw.platform import Machine

__all__ = [
    "CostModel",
    "GhcbPage",
    "GhcbProtocol",
    "VmgExitCode",
    "GuestMemory",
    "Machine",
    "MemoryAccessError",
    "PageTableBuilder",
    "PlatformSecurityProcessor",
    "ReverseMapTable",
    "RmpViolation",
    "VmmCommunicationException",
    "translate",
]
