"""x86-64 long-mode page tables with the SEV C-bit.

The boot verifier (or, for the pre-encrypted alternative in Fig. 7, the
VMM) builds an identity map of the first gigabyte with 2 MiB pages and the
enCryption bit set in every entry (§2.4, §4.1).  The table really lives in
guest memory: three 4 KiB pages (PML4, PDPT, one PD per GiB) written
through whichever access path the builder is given, and the walker reads
them back the same way — so tests can verify that a table built in
encrypted memory is unreadable to the host.

The C-bit position is discovered via (simulated) ``cpuid`` 0x8000001F,
exactly as the paper's modified rust-hypervisor-firmware does (§5).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable, Optional

from repro.common import GiB, HUGE_PAGE_SIZE, PAGE_SIZE

PTE_PRESENT = 1 << 0
PTE_WRITE = 1 << 1
PTE_PS = 1 << 7  # huge/large page

#: C-bit position reported by CPUID 0x8000001F:EBX[5:0] on EPYC Milan.
DEFAULT_C_BIT = 51

_ENTRY_SIZE = 8
_ENTRIES_PER_TABLE = 512

Writer = Callable[[int, bytes], None]
Reader = Callable[[int, int], bytes]


class PageTableError(Exception):
    """Malformed table or unmapped address during a walk."""


def cpuid_c_bit_position(sev_enabled: bool) -> Optional[int]:
    """Simulated CPUID 0x8000001F:EBX[5:0] — None when SEV is off."""
    return DEFAULT_C_BIT if sev_enabled else None


@dataclass
class PageTableBuilder:
    """Builds a 2 MiB-page identity map with the C-bit in every entry."""

    base_pa: int  #: physical address of the PML4 (tables follow contiguously)
    map_size: int = 1 * GiB
    c_bit: Optional[int] = DEFAULT_C_BIT

    def __post_init__(self) -> None:
        if self.base_pa % PAGE_SIZE != 0:
            raise PageTableError("table base must be page-aligned")
        if self.map_size % HUGE_PAGE_SIZE != 0:
            raise PageTableError("map size must be a multiple of 2 MiB")

    @property
    def num_pds(self) -> int:
        return -(-self.map_size // GiB)

    @property
    def table_bytes(self) -> int:
        """Total size of the generated tables (PML4 + PDPT + PDs)."""
        return (2 + self.num_pds) * PAGE_SIZE

    def _encode(self, pa: int, flags: int) -> bytes:
        entry = pa | flags
        if self.c_bit is not None:
            entry |= 1 << self.c_bit
        return struct.pack("<Q", entry)

    def build(self, write: Writer) -> int:
        """Write the tables through ``write(pa, bytes)``; returns PML4 PA."""
        pml4_pa = self.base_pa
        pdpt_pa = self.base_pa + PAGE_SIZE
        pd_base = self.base_pa + 2 * PAGE_SIZE

        pml4 = bytearray(PAGE_SIZE)
        pml4[0:_ENTRY_SIZE] = self._encode(pdpt_pa, PTE_PRESENT | PTE_WRITE)
        write(pml4_pa, bytes(pml4))

        pdpt = bytearray(PAGE_SIZE)
        for i in range(self.num_pds):
            pd_pa = pd_base + i * PAGE_SIZE
            pdpt[i * _ENTRY_SIZE : (i + 1) * _ENTRY_SIZE] = self._encode(
                pd_pa, PTE_PRESENT | PTE_WRITE
            )
        write(pdpt_pa, bytes(pdpt))

        remaining = self.map_size
        for i in range(self.num_pds):
            pd = bytearray(PAGE_SIZE)
            for j in range(min(_ENTRIES_PER_TABLE, -(-remaining // HUGE_PAGE_SIZE))):
                frame = i * GiB + j * HUGE_PAGE_SIZE
                pd[j * _ENTRY_SIZE : (j + 1) * _ENTRY_SIZE] = self._encode(
                    frame, PTE_PRESENT | PTE_WRITE | PTE_PS
                )
            remaining -= GiB
            write(pd_base + i * PAGE_SIZE, bytes(pd))
        return pml4_pa


def translate(
    read: Reader, pml4_pa: int, va: int, c_bit: Optional[int] = DEFAULT_C_BIT
) -> tuple[int, bool]:
    """Walk the tables; returns ``(physical_address, encrypted)``.

    ``read(pa, n)`` must return *decrypted* table bytes (i.e. the guest's
    view); the walk fails loudly on non-present entries, which is what a
    host reading ciphertext tables would hit.
    """

    def entry_at(table_pa: int, index: int) -> int:
        raw = read(table_pa + index * _ENTRY_SIZE, _ENTRY_SIZE)
        return struct.unpack("<Q", raw)[0]

    def split(entry: int) -> tuple[int, bool]:
        encrypted = bool(c_bit is not None and entry & (1 << c_bit))
        addr = entry & 0x000F_FFFF_FFFF_F000
        if c_bit is not None:
            addr &= ~(1 << c_bit)
        return addr, encrypted

    pml4_index = (va >> 39) & 0x1FF
    pdpt_index = (va >> 30) & 0x1FF
    pd_index = (va >> 21) & 0x1FF

    pml4e = entry_at(pml4_pa, pml4_index)
    if not pml4e & PTE_PRESENT:
        raise PageTableError(f"PML4 entry {pml4_index} not present for {va:#x}")
    pdpt_pa, _ = split(pml4e)

    pdpte = entry_at(pdpt_pa, pdpt_index)
    if not pdpte & PTE_PRESENT:
        raise PageTableError(f"PDPT entry {pdpt_index} not present for {va:#x}")
    pd_pa, _ = split(pdpte)

    pde = entry_at(pd_pa, pd_index)
    if not pde & PTE_PRESENT:
        raise PageTableError(f"PD entry {pd_index} not present for {va:#x}")
    if not pde & PTE_PS:
        raise PageTableError("4 KiB leaf tables are not used by this identity map")
    frame, encrypted = split(pde)
    return frame + (va & (HUGE_PAGE_SIZE - 1)), encrypted
