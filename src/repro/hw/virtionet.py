"""virtio-net: the guest's network device, and the attestation wire.

The AWS/Ubuntu kernels carry CONFIG_VIRTIO_NET because attestation needs
a network (§6.1 runs an nginx attestation server).  This module models a
virtio-net device with TX/RX queue pairs built on the same split rings
as :mod:`repro.hw.virtio`; the host side delivers TX frames to a
pluggable endpoint (the guest owner) and queues its responses for RX.

Framing is a minimal length-prefixed datagram — enough to carry an
attestation report out and a wrapped secret back through *shared* guest
memory, keeping the whole Fig. 1 message flow on simulated hardware.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.hw.memory import GuestMemory
from repro.hw.virtio import VRING_DESC_F_WRITE, Virtqueue, VirtioError

#: Handler the host delivers TX frames to; its return value (if any) is
#: queued as an RX frame for the guest.
Endpoint = Callable[[bytes], Optional[bytes]]

_MAX_FRAME = 2048


@dataclass
class VirtioNetDevice:
    """Host side: consumes TX descriptors, fills posted RX buffers."""

    memory: GuestMemory
    tx_queue_base: int
    rx_queue_base: int
    endpoint: Optional[Endpoint] = None
    queue_size: int = 64
    frames_sent: int = 0  #: guest -> network
    frames_delivered: int = 0  #: network -> guest
    _tx_used: int = 0
    _rx_used: int = 0
    _pending_rx: list[bytes] = field(default_factory=list)

    # -- ring plumbing (host view) ------------------------------------------

    def _ring(self, base: int):
        desc = base
        avail = base + self.queue_size * 16
        used = avail + 4 + 2 * self.queue_size
        return desc, avail, used

    def _read_desc(self, base: int, index: int):
        raw = self.memory.host_read(base + index * 16, 16)
        return struct.unpack("<QIHH", raw)

    def _pop_avail(self, base: int, used_counter: int) -> Optional[int]:
        _desc, avail, _used = self._ring(base)
        (avail_idx,) = struct.unpack("<H", self.memory.host_read(avail + 2, 2))
        if used_counter == avail_idx:
            return None
        slot = used_counter % self.queue_size
        (head,) = struct.unpack(
            "<H", self.memory.host_read(avail + 4 + 2 * slot, 2)
        )
        return head

    def _push_used(self, base: int, used_counter: int, head: int, written: int) -> int:
        _desc, _avail, used = self._ring(base)
        slot = used_counter % self.queue_size
        self.memory.host_write(used + 4 + 8 * slot, struct.pack("<II", head, written))
        used_counter = (used_counter + 1) & 0xFFFF
        self.memory.host_write(used + 2, struct.pack("<H", used_counter))
        return used_counter

    # -- processing ----------------------------------------------------------------

    def process_tx(self) -> int:
        """Consume transmitted frames; returns how many were handled."""
        handled = 0
        while True:
            head = self._pop_avail(self.tx_queue_base, self._tx_used)
            if head is None:
                return handled
            addr, length, _flags, _next = self._read_desc(self.tx_queue_base, head)
            if length > _MAX_FRAME:
                raise VirtioError(f"oversized TX frame ({length} bytes)")
            frame = self.memory.host_read(addr, length)
            self._tx_used = self._push_used(self.tx_queue_base, self._tx_used, head, 0)
            self.frames_sent += 1
            handled += 1
            if self.endpoint is not None:
                response = self.endpoint(frame)
                if response is not None:
                    self._pending_rx.append(response)
            self.process_rx()

    def process_rx(self) -> int:
        """Copy pending responses into guest-posted RX buffers."""
        delivered = 0
        while self._pending_rx:
            head = self._pop_avail(self.rx_queue_base, self._rx_used)
            if head is None:
                return delivered  # guest has not posted buffers yet
            addr, capacity, flags, _next = self._read_desc(self.rx_queue_base, head)
            if not flags & VRING_DESC_F_WRITE:
                raise VirtioError("RX buffer not device-writable")
            frame = self._pending_rx.pop(0)
            payload = struct.pack("<I", len(frame)) + frame
            if len(payload) > capacity:
                raise VirtioError("RX buffer too small for frame")
            self.memory.host_write(addr, payload)
            self._rx_used = self._push_used(
                self.rx_queue_base, self._rx_used, head, len(payload)
            )
            self.frames_delivered += 1
            delivered += 1
        return delivered


@dataclass
class VirtioNetDriver:
    """Guest side: one TX and one RX queue over shared bounce memory."""

    memory: GuestMemory
    tx_queue_base: int
    rx_queue_base: int
    tx_buffer: int
    rx_buffer: int
    shared: bool = True
    tx_queue: Virtqueue = field(init=False)
    rx_queue: Virtqueue = field(init=False)

    def __post_init__(self) -> None:
        encrypted = not self.shared
        self.tx_queue = Virtqueue(
            memory=self.memory, base_addr=self.tx_queue_base, encrypted=encrypted
        )
        self.rx_queue = Virtqueue(
            memory=self.memory, base_addr=self.rx_queue_base, encrypted=encrypted
        )

    def _write(self, addr: int, data: bytes) -> None:
        self.memory.guest_write(addr, data, c_bit=not self.shared)

    def _read(self, addr: int, length: int) -> bytes:
        return self.memory.guest_read(addr, length, c_bit=not self.shared)

    def send(self, device: VirtioNetDevice, frame: bytes) -> None:
        """Transmit one frame (synchronous kick)."""
        if len(frame) > _MAX_FRAME:
            raise VirtioError("frame too large")
        self._write(self.tx_buffer, frame)
        self.tx_queue.add_chain([(self.tx_buffer, len(frame), False)])
        device.process_tx()
        self.tx_queue.poll_used()

    def post_rx_buffer(self, device: VirtioNetDevice) -> None:
        self.rx_queue.add_chain([(self.rx_buffer, _MAX_FRAME, True)])
        device.process_rx()

    def receive(self) -> Optional[bytes]:
        """Pop one delivered frame, if any."""
        completed = self.rx_queue.poll_used()
        if not completed:
            return None
        (length,) = struct.unpack("<I", self._read(self.rx_buffer, 4))
        return self._read(self.rx_buffer + 4, length)

    def request(self, device: VirtioNetDevice, frame: bytes) -> Optional[bytes]:
        """Send one frame and collect the endpoint's response."""
        self.post_rx_buffer(device)
        self.send(device, frame)
        device.process_rx()
        return self.receive()
