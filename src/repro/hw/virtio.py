"""Virtio split virtqueues and a virtio-blk device model.

The guest kernels in the paper are built with CONFIG_VIRTIO_BLK and
CONFIG_VIRTIO_NET because that is all Firecracker offers (§6.1).  Virtio
is also where SEV's memory model bites a driver author: the device (the
*host*) reads descriptors and buffers with plain memory accesses, so a
guest that naively allocates its rings in encrypted memory hands the
device ciphertext.  Real SEV guests bounce all virtio traffic through
shared (unencrypted) pages — and the tests on this module demonstrate
both the working shared-memory path and the broken encrypted one.

Layout follows the virtio 1.x split ring: a descriptor table (16 bytes
per descriptor: addr/len/flags/next), an available ring, and a used
ring, all placed in guest physical memory by the driver.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.hw.memory import GuestMemory

DESC_SIZE = 16
VRING_DESC_F_NEXT = 1
VRING_DESC_F_WRITE = 2

# virtio-blk request types
VIRTIO_BLK_T_IN = 0  #: device -> guest (read)
VIRTIO_BLK_T_OUT = 1  #: guest -> device (write)
VIRTIO_BLK_S_OK = 0
VIRTIO_BLK_S_IOERR = 1

SECTOR_SIZE = 512


class VirtioError(Exception):
    """Protocol violation (bad descriptor chain, out-of-range sector...)."""


@dataclass
class Virtqueue:
    """Driver-side view of one split virtqueue in guest memory."""

    memory: GuestMemory
    base_addr: int
    size: int = 64  #: number of descriptors (power of two)
    encrypted: bool = False  #: True models the *broken* C-bit allocation
    _free_head: int = 0
    _avail_idx: int = 0
    _used_seen: int = 0

    def __post_init__(self) -> None:
        if self.size & (self.size - 1):
            raise VirtioError("queue size must be a power of two")
        # Zero the whole ring area through the chosen access path.
        zeros = b"\x00" * self.ring_bytes
        self.memory.guest_write(self.base_addr, zeros, c_bit=self.encrypted)

    # -- layout -----------------------------------------------------------

    @property
    def desc_addr(self) -> int:
        return self.base_addr

    @property
    def avail_addr(self) -> int:
        return self.base_addr + self.size * DESC_SIZE

    @property
    def used_addr(self) -> int:
        # avail: flags(2) + idx(2) + ring(2*size)
        return self.avail_addr + 4 + 2 * self.size

    @property
    def ring_bytes(self) -> int:
        # used: flags(2) + idx(2) + ring(8*size)
        return (self.used_addr - self.base_addr) + 4 + 8 * self.size

    # -- driver operations ----------------------------------------------------

    def _write(self, addr: int, data: bytes) -> None:
        self.memory.guest_write(addr, data, c_bit=self.encrypted)

    def _read(self, addr: int, length: int) -> bytes:
        return self.memory.guest_read(addr, length, c_bit=self.encrypted)

    def _write_desc(self, index: int, addr: int, length: int, flags: int, nxt: int) -> None:
        if not 0 <= index < self.size:
            raise VirtioError(f"descriptor index {index} out of range")
        self._write(
            self.desc_addr + index * DESC_SIZE,
            struct.pack("<QIHH", addr, length, flags, nxt),
        )

    def add_chain(self, buffers: list[tuple[int, int, bool]]) -> int:
        """Post a descriptor chain.

        ``buffers`` is a list of (guest_addr, length, device_writes)
        triples.  Returns the chain's head descriptor index.
        """
        if not buffers:
            raise VirtioError("empty descriptor chain")
        head = self._free_head
        for offset, (addr, length, device_writes) in enumerate(buffers):
            index = (head + offset) % self.size
            flags = VRING_DESC_F_WRITE if device_writes else 0
            nxt = 0
            if offset < len(buffers) - 1:
                flags |= VRING_DESC_F_NEXT
                nxt = (index + 1) % self.size
            self._write_desc(index, addr, length, flags, nxt)
        self._free_head = (head + len(buffers)) % self.size

        # Publish in the available ring and bump its index.
        slot = self._avail_idx % self.size
        self._write(self.avail_addr + 4 + 2 * slot, struct.pack("<H", head))
        self._avail_idx += 1
        self._write(self.avail_addr + 2, struct.pack("<H", self._avail_idx))
        return head

    def poll_used(self) -> list[tuple[int, int]]:
        """Collect (head, written_len) entries the device completed."""
        (used_idx,) = struct.unpack("<H", self._read(self.used_addr + 2, 2))
        completed = []
        while self._used_seen != used_idx:
            slot = self._used_seen % self.size
            head, written = struct.unpack(
                "<II", self._read(self.used_addr + 4 + 8 * slot, 8)
            )
            completed.append((head, written))
            self._used_seen = (self._used_seen + 1) & 0xFFFF
        return completed


@dataclass
class VirtioBlockDevice:
    """Host-side virtio-blk: serves requests from a byte-addressable disk.

    The device only has the *host* view of memory — ciphertext for any
    page the guest left encrypted, which is exactly how the broken
    configuration fails.
    """

    memory: GuestMemory
    queue_base: int
    queue_size: int = 64
    disk: bytearray = field(default_factory=lambda: bytearray(1024 * SECTOR_SIZE))
    requests_served: int = 0
    _used_idx: int = 0

    # -- host-side ring access --------------------------------------------------

    @property
    def desc_addr(self) -> int:
        return self.queue_base

    @property
    def avail_addr(self) -> int:
        return self.queue_base + self.queue_size * DESC_SIZE

    @property
    def used_addr(self) -> int:
        return self.avail_addr + 4 + 2 * self.queue_size

    def _read_desc(self, index: int) -> tuple[int, int, int, int]:
        raw = self.memory.host_read(self.desc_addr + index * DESC_SIZE, DESC_SIZE)
        return struct.unpack("<QIHH", raw)

    def _walk_chain(self, head: int) -> list[tuple[int, int, int]]:
        chain = []
        index = head
        for _ in range(self.queue_size + 1):
            addr, length, flags, nxt = self._read_desc(index)
            chain.append((addr, length, flags))
            if not flags & VRING_DESC_F_NEXT:
                return chain
            index = nxt
        raise VirtioError("descriptor chain loops")

    # -- request processing -------------------------------------------------------

    def process(self) -> int:
        """Serve every pending request; returns how many were handled."""
        (avail_idx,) = struct.unpack(
            "<H", self.memory.host_read(self.avail_addr + 2, 2)
        )
        handled = 0
        while self._used_idx != avail_idx:
            slot = self._used_idx % self.queue_size
            (head,) = struct.unpack(
                "<H", self.memory.host_read(self.avail_addr + 4 + 2 * slot, 2)
            )
            written = self._serve(head)
            # Publish completion in the used ring.
            self.memory.host_write(
                self.used_addr + 4 + 8 * slot, struct.pack("<II", head, written)
            )
            self._used_idx = (self._used_idx + 1) & 0xFFFF
            self.memory.host_write(self.used_addr + 2, struct.pack("<H", self._used_idx))
            handled += 1
            self.requests_served += 1
        return handled

    def _serve(self, head: int) -> int:
        chain = self._walk_chain(head)
        if len(chain) < 3:
            raise VirtioError("virtio-blk request needs header, data, status")
        header_addr, header_len, _ = chain[0]
        if header_len < 16:
            raise VirtioError("short request header")
        req_type, _reserved, sector = struct.unpack(
            "<IIQ", self.memory.host_read(header_addr, 16)
        )
        data_addr, data_len, data_flags = chain[1]
        status_addr, _status_len, _ = chain[-1]

        offset = sector * SECTOR_SIZE
        if offset + data_len > len(self.disk):
            self.memory.host_write(status_addr, bytes([VIRTIO_BLK_S_IOERR]))
            return 1

        if req_type == VIRTIO_BLK_T_IN:
            if not data_flags & VRING_DESC_F_WRITE:
                raise VirtioError("read request with a device-read-only buffer")
            self.memory.host_write(
                data_addr, bytes(self.disk[offset : offset + data_len])
            )
            self.memory.host_write(status_addr, bytes([VIRTIO_BLK_S_OK]))
            return data_len + 1
        if req_type == VIRTIO_BLK_T_OUT:
            self.disk[offset : offset + data_len] = self.memory.host_read(
                data_addr, data_len
            )
            self.memory.host_write(status_addr, bytes([VIRTIO_BLK_S_OK]))
            return 1
        self.memory.host_write(status_addr, bytes([VIRTIO_BLK_S_IOERR]))
        return 1


@dataclass
class VirtioBlkDriver:
    """Guest-side virtio-blk driver using bounce buffers.

    ``shared=True`` (correct under SEV) places rings and buffers in
    unencrypted pages; ``shared=False`` reproduces the naive encrypted
    allocation that hands the device ciphertext.
    """

    memory: GuestMemory
    queue_base: int
    buffer_base: int
    shared: bool = True
    queue: Virtqueue = field(init=False)

    def __post_init__(self) -> None:
        self.queue = Virtqueue(
            memory=self.memory, base_addr=self.queue_base, encrypted=not self.shared
        )

    def _buf_write(self, addr: int, data: bytes) -> None:
        self.memory.guest_write(addr, data, c_bit=not self.shared)

    def _buf_read(self, addr: int, length: int) -> bytes:
        return self.memory.guest_read(addr, length, c_bit=not self.shared)

    def _submit(self, req_type: int, sector: int, data: bytes | int):
        header_addr = self.buffer_base
        status_addr = self.buffer_base + 16
        data_addr = self.buffer_base + 32
        self._buf_write(header_addr, struct.pack("<IIQ", req_type, 0, sector))
        self._buf_write(status_addr, b"\xff")
        if req_type == VIRTIO_BLK_T_OUT:
            assert isinstance(data, bytes)
            self._buf_write(data_addr, data)
            data_len = len(data)
            device_writes_data = False
        else:
            assert isinstance(data, int)
            data_len = data
            device_writes_data = True
        return self.queue.add_chain(
            [
                (header_addr, 16, False),
                (data_addr, data_len, device_writes_data),
                (status_addr, 1, True),
            ]
        ), data_addr, status_addr, data_len

    def write(self, device: VirtioBlockDevice, sector: int, data: bytes) -> int:
        """Synchronous sector write; returns the status byte."""
        _head, _data_addr, status_addr, _n = self._submit(
            VIRTIO_BLK_T_OUT, sector, data
        )
        device.process()
        self.queue.poll_used()
        return self._buf_read(status_addr, 1)[0]

    def read(self, device: VirtioBlockDevice, sector: int, length: int) -> tuple[int, bytes]:
        """Synchronous sector read; returns (status, data)."""
        _head, data_addr, status_addr, _n = self._submit(
            VIRTIO_BLK_T_IN, sector, length
        )
        device.process()
        self.queue.poll_used()
        return self._buf_read(status_addr, 1)[0], self._buf_read(data_addr, length)
