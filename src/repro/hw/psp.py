"""The Platform Security Processor (PSP).

A single low-powered ARM core inside the SoC executes *every* SEV launch
command for *every* guest on the machine (§2.2).  That single-server FIFO
is the hardware bottleneck the paper uncovers in Fig. 12: concurrent
launches serialize on the PSP and average boot time grows linearly with
the number of in-flight guests.

All commands are simulation processes (``yield from psp.launch_start(...)``)
so the contention dynamics come out of the discrete-event engine rather
than a closed-form formula.  Functional effects (key derivation, in-place
encryption, measurement extension, report signing) happen while the
command holds the PSP.
"""

from __future__ import annotations

import heapq
from typing import Generator

from repro.common import PAGE_SIZE
from repro.crypto import ecdsa
from repro.crypto.hmacmod import derive_key
from repro.crypto.memenc import MemoryEncryptionEngine
from repro.crypto.sha2 import sha256
from repro.hw.costmodel import CostModel
from repro.hw.memory import GuestMemory
from repro.sev.api import (
    PAGE_CRYPTO_CACHE,
    GuestSevContext,
    SevErrorCode,
    SevLaunchError,
    SevState,
)
from repro.sev.attestation import AttestationReport
from repro.sev.policy import GuestPolicy
from repro.sim import Simulator


class PlatformSecurityProcessor:
    """The machine-wide PSP device."""

    def __init__(
        self,
        sim: Simulator,
        cost: CostModel | None = None,
        chip_seed: bytes = b"repro-epyc-7313p",
        engine_mode: str = "ctr-fast",
        huge_pages: bool = True,
        parallelism: int = 1,
        asid_capacity: int = 509,
        label: str = "",
    ):
        """``parallelism`` models the paper's future-work what-if: real
        PSPs are a single ARM core (capacity 1); raising it shows how the
        Fig. 12 slope would divide with a multi-core security processor.

        ``label`` (a host ID in fleet runs) prefixes the PSP's trace
        track and resource rows so merged multi-host traces keep each
        host's PSP distinguishable; it never touches metrics labels, so
        virtual metrics are identical with or without it.
        """
        from repro.sev.certchain import AmdKeyHierarchy

        self.sim = sim
        self.cost = cost or CostModel()
        self.huge_pages = huge_pages
        self.label = label
        #: trace display row for command spans (per-host in fleet runs)
        self.track = f"{label}/psp.commands" if label else "psp.commands"
        self.resource = sim.resource(
            capacity=parallelism,
            name="psp",
            trace_name=f"{label}/psp" if label else None,
        )
        #: the ARK->ASK->VCEK hierarchy for this chip (§6.1 attestation)
        self.key_hierarchy = AmdKeyHierarchy.generate(chip_seed)
        self.vcek = self.key_hierarchy.vcek_key
        self.cert_chain = self.key_hierarchy.chain
        self.chip_id = sha256(chip_seed)
        self.engine_mode = engine_mode
        self._chip_secret = sha256(b"chip-secret" + chip_seed)
        self._next_asid = 1
        #: ASID accounting: SEV hardware supports a fixed number of
        #: simultaneously-active encrypted guests (EPYC Milan: 509).
        self.asid_capacity = asid_capacity
        self._active_asids: set[int] = set()
        self._retired_asids: set[int] = set()
        #: flushed ASID numbers available for reuse (min-heap so the
        #: lowest free number is handed out first, like the kernel's
        #: bitmap scan)
        self._free_asids: list[int] = []
        # Per-command instrument cache for the _occupy hot path; keyed by
        # registry identity so a `use_registry` swap invalidates it.
        self._instr_registry: object | None = None
        self._instr_cache: dict = {}

    # -- helpers ------------------------------------------------------------

    def allocate_asid(self) -> int:
        """Hand out an ASID number, recycling flushed slots first.

        Numbers freed by the DEACTIVATE -> DF_FLUSH cycle are reused
        (lowest first, like the kernel's bitmap scan) before the
        never-used tail of the namespace is consumed, so a long-running
        fleet that churns guests stays within the hardware namespace
        instead of incrementing forever.  Allocation itself never fails
        — capacity is enforced at ACTIVATE, where the hypervisor can
        recover with a DF_FLUSH and retry.
        """
        if self._free_asids:
            return heapq.heappop(self._free_asids)
        asid = self._next_asid
        self._next_asid += 1
        return asid

    # -- ASID lifecycle (ACTIVATE / DEACTIVATE / DF_FLUSH) ---------------------

    @property
    def active_guests(self) -> int:
        return len(self._active_asids)

    def activate(self, ctx: GuestSevContext) -> None:
        """ACTIVATE: bind the guest's ASID to the encryption hardware.

        Fails when every ASID slot is either active or retired-awaiting-
        flush — the hypervisor must DF_FLUSH before reusing slots.
        """
        if ctx.asid in self._active_asids:
            raise SevLaunchError(
                f"ASID {ctx.asid} already active", code=SevErrorCode.ASID_OWNED
            )
        plan = self.sim.faults
        if plan is not None and plan.draw("psp.activate") is not None:
            # Injected ASID pressure: another hypervisor thread grabbed
            # the last slot between the capacity check and ACTIVATE.
            raise SevLaunchError(
                "ACTIVATE failed: ASID slots exhausted (injected)",
                code=SevErrorCode.RESOURCE_LIMIT,
            )
        if len(self._active_asids) + len(self._retired_asids) >= self.asid_capacity:
            if self._retired_asids:
                raise SevLaunchError(
                    "no free ASIDs: retired slots await DF_FLUSH",
                    code=SevErrorCode.DF_FLUSH_REQUIRED,
                )
            raise SevLaunchError(
                f"ASID capacity ({self.asid_capacity}) exhausted: "
                "deactivate a guest first",
                code=SevErrorCode.RESOURCE_LIMIT,
            )
        self._active_asids.add(ctx.asid)

    def deactivate(self, ctx: GuestSevContext) -> None:
        """DEACTIVATE: unbind the ASID.  The slot stays unusable (caches
        may hold its keyed lines) until a DF_FLUSH."""
        if ctx.asid not in self._active_asids:
            raise SevLaunchError(
                f"ASID {ctx.asid} not active", code=SevErrorCode.INACTIVE
            )
        self._active_asids.discard(ctx.asid)
        self._retired_asids.add(ctx.asid)

    def release(self, ctx: GuestSevContext) -> None:
        """Tear down a guest's ASID binding if it is still active.

        Recovery helper for abort paths: idempotent, so the VMM can call
        it without tracking how far the launch got.
        """
        if ctx.asid in self._active_asids:
            self.deactivate(ctx)
        elif (
            ctx.asid not in self._retired_asids
            and ctx.asid not in self._free_asids
            and ctx.asid < self._next_asid
        ):
            # Allocated but never ACTIVATEd (the launch died first): no
            # keyed cache lines exist, so the number is immediately
            # reusable without a DF_FLUSH.
            heapq.heappush(self._free_asids, ctx.asid)

    def df_flush(self) -> Generator:
        """DF_FLUSH: flush the data fabric; retired ASID slots become
        reusable.  A global, relatively expensive operation that occupies
        the PSP like every other command, so recycling ASID slots
        contends with in-flight launches (yield from a sim process)."""
        yield from self._occupy(None, self.cost.psp_df_flush_ms, command="DF_FLUSH")
        for asid in self._retired_asids:
            heapq.heappush(self._free_asids, asid)
        self._retired_asids.clear()

    def _occupy(
        self,
        ctx: GuestSevContext | None,
        duration: float,
        command: str = "PSP_COMMAND",
        **span_args,
    ) -> Generator:
        """Hold the PSP for ``duration`` ms (queueing behind other guests).

        When a tracer is attached, the held interval is recorded as one
        span per command on the ``psp.commands`` track, tagged with the
        guest's ASID, its VM track (``vm``), the queueing delay
        (``wait_ms`` — what the profiler's critical path splits out) and
        any extra ``span_args`` (byte counts etc.); at ``parallelism=1``
        those spans never overlap — the Fig. 12 serialization, visually.

        Independent of tracing, every command lands in the unified
        metrics registry: ``psp.commands`` / ``psp.wait_ms`` /
        ``psp.service_ms`` per command type, ``psp.faults`` per injected
        fault kind (queue depth rides on ``sim.resource.queue_depth``).

        An attached :class:`~repro.faults.plan.FaultPlan` may fault the
        command at the ``psp.command`` site.  All fault kinds raise
        *before* any functional effect (the callers mutate state only
        after ``_occupy`` returns), so a failed command leaves the
        guest's launch state untouched and is safe to retry:

        - ``busy``: the mailbox bounces the command after the doorbell
          latency (retryable, :attr:`SevErrorCode.BUSY`);
        - ``reset``: the firmware resets mid-command — half the work is
          wasted PSP occupancy (retryable ``HWERROR_PLATFORM``);
        - ``fatal``: an unsafe hardware error (``HWERROR_UNSAFE``,
          not retryable).
        """
        from repro.obs.metrics import default_registry

        duration = self.cost.sample(duration)
        plan = self.sim.faults
        fault = plan.draw("psp.command") if plan is not None else None
        requested_at = self.sim.now
        grant = yield self.resource.request()
        wait_ms = self.sim.now - requested_at
        registry = default_registry()
        if registry is not self._instr_registry:
            self._instr_registry = registry
            self._instr_cache = {}
        instr = self._instr_cache.get(command)
        if instr is None:
            instr = (
                registry.counter("psp.commands", command=command),
                registry.histogram("psp.wait_ms", command=command),
                registry.histogram("psp.service_ms", command=command),
            )
            self._instr_cache[command] = instr
        m_commands, m_wait, m_service = instr
        m_commands.value += 1
        m_wait.observe(wait_ms)
        if fault is not None:
            registry.counter("psp.faults", command=command, kind=fault.kind).inc()
        tracer = self.sim.tracer
        span = None
        if tracer is not None:
            if ctx is not None:
                span_args["asid"] = ctx.asid
                if ctx.track:
                    span_args["vm"] = ctx.track
            if fault is not None:
                span_args["fault"] = fault.kind
            if self.label:
                span_args["host"] = self.label
            span = tracer.begin(
                command, "psp", self.track, wait_ms=wait_ms, **span_args
            )
        granted_at = self.sim.now
        try:
            if fault is not None:
                if fault.kind == "busy":
                    yield self.sim.timeout(self.cost.psp_command_latency_ms)
                    raise SevLaunchError(
                        f"{command}: PSP mailbox busy (injected)",
                        code=SevErrorCode.BUSY,
                    )
                if fault.kind == "reset":
                    yield self.sim.timeout(duration / 2.0)
                    raise SevLaunchError(
                        f"{command}: PSP reset mid-command (injected)",
                        code=SevErrorCode.HWERROR_PLATFORM,
                    )
                yield self.sim.timeout(self.cost.psp_command_latency_ms)
                raise SevLaunchError(
                    f"{command}: unsafe hardware error (injected)",
                    code=SevErrorCode.HWERROR_UNSAFE,
                )
            yield self.sim.timeout(duration)
            if ctx is not None:
                ctx.psp_occupancy_ms += duration
        finally:
            m_service.observe(self.sim.now - granted_at)
            if span is not None:
                tracer.end(span)
            self.resource.release(grant)

    # -- SEV launch commands (Fig. 1) ------------------------------------------

    def launch_start(
        self, ctx: GuestSevContext, policy: GuestPolicy | None = None
    ) -> Generator:
        """LAUNCH_START: platform init + new memory-encryption key (step 1)."""
        ctx.require_state(SevState.UNINIT, "LAUNCH_START")
        if policy is not None:
            ctx.policy = policy
        yield from self._occupy(ctx, self.cost.psp_launch_start_ms, command="LAUNCH_START")
        self.activate(ctx)
        key = derive_key(self._chip_secret, f"guest-key-{ctx.asid}")
        ctx.engine = MemoryEncryptionEngine(key, mode=self.engine_mode)
        ctx.state = SevState.LAUNCH_STARTED

    def launch_update_data(
        self,
        ctx: GuestSevContext,
        memory: GuestMemory,
        gpa: int,
        length: int,
        nominal_size: int | None = None,
    ) -> Generator:
        """LAUNCH_UPDATE_DATA: measure + encrypt one region (step 2).

        ``length`` is the actual byte count in (possibly scaled) memory;
        ``nominal_size`` is what the cost model charges (defaults to
        ``length``, i.e. an unscaled region).
        """
        ctx.require_state(SevState.LAUNCH_STARTED, "LAUNCH_UPDATE_DATA")
        nominal = length if nominal_size is None else nominal_size
        yield from self._occupy(
            ctx,
            self.cost.psp_update_data_ms(
                nominal,
                has_rmp=ctx.policy.mode.has_rmp,
                huge_pages=self.huge_pages,
            ),
            command="LAUNCH_UPDATE_DATA",
            gpa=gpa,
            bytes=length,
            nominal_bytes=nominal,
        )
        if memory.engine is None:
            memory.engine = ctx.engine
        plaintext = memory.psp_encrypt_in_place(
            gpa, length, cipher_cache=PAGE_CRYPTO_CACHE
        )
        if memory.rmp is not None:
            first = gpa // PAGE_SIZE
            last = (gpa + max(length, 1) - 1) // PAGE_SIZE
            for page in range(first, last + 1):
                memory.rmp.firmware_validate(page)
        ctx.measurement.extend(gpa, plaintext, nominal)

    def launch_finish(self, ctx: GuestSevContext) -> Generator:
        """LAUNCH_FINISH: freeze the launch digest (step 3)."""
        ctx.require_state(SevState.LAUNCH_STARTED, "LAUNCH_FINISH")
        yield from self._occupy(
            ctx, self.cost.psp_launch_finish_ms, command="LAUNCH_FINISH"
        )
        ctx.launch_digest = ctx.measurement.finalize()
        ctx.state = SevState.LAUNCH_FINISHED

    # -- legacy (pre-SNP) launch attestation ----------------------------------------

    def launch_measure(self, ctx: GuestSevContext) -> Generator:
        """LAUNCH_MEASURE: the legacy SEV/SEV-ES attestation point.

        Before SNP's in-guest reports, the guest owner verified the
        launch measurement *before* the guest ran: the PSP returns an
        HMAC over the running digest keyed by a transport key derived
        from the chip secret.  Value: (measurement_mac, nonce).
        """
        from repro.crypto.hmacmod import derive_key, hmac_sha256

        ctx.require_state(SevState.LAUNCH_STARTED, "LAUNCH_MEASURE")
        if ctx.policy.mode.has_rmp:
            raise SevLaunchError(
                "LAUNCH_MEASURE is the legacy flow; SNP guests attest via "
                "in-guest reports",
                code=SevErrorCode.INVALID_COMMAND,
            )
        yield from self._occupy(
            ctx, self.cost.psp_launch_finish_ms, command="LAUNCH_MEASURE"
        )
        nonce = sha256(b"measure-nonce" + ctx.asid.to_bytes(8, "little"))[:16]
        tik = derive_key(self._chip_secret, f"tik-{ctx.asid}", 32)
        mac = hmac_sha256(tik, ctx.measurement.digest + nonce)
        return mac, nonce

    def launch_secret(
        self,
        ctx: GuestSevContext,
        memory: GuestMemory,
        gpa: int,
        secret: bytes,
    ) -> Generator:
        """LAUNCH_SECRET: inject a guest-owner secret before LAUNCH_FINISH.

        The secret lands directly in encrypted guest memory and is *not*
        folded into the measurement — the owner only calls this after
        verifying LAUNCH_MEASURE.  Refused for SNP guests (the command
        was dropped; secrets flow through post-boot attestation instead).
        """
        ctx.require_state(SevState.LAUNCH_STARTED, "LAUNCH_SECRET")
        if ctx.policy.mode.has_rmp:
            raise SevLaunchError(
                "LAUNCH_SECRET is not part of the SNP API",
                code=SevErrorCode.INVALID_COMMAND,
            )
        if gpa % PAGE_SIZE != 0:
            raise SevLaunchError(
                "LAUNCH_SECRET requires a page-aligned target",
                code=SevErrorCode.INVALID_ADDRESS,
            )
        yield from self._occupy(
            ctx,
            self.cost.psp_command_latency_ms,
            command="LAUNCH_SECRET",
            bytes=len(secret),
        )
        assert ctx.engine is not None
        if memory.engine is None:
            memory.engine = ctx.engine
        padded = secret + b"\x00" * ((-len(secret)) % 16)
        memory._raw_write(gpa, ctx.engine.encrypt(gpa, padded))
        memory._encrypted_pages.update(
            range(gpa // PAGE_SIZE, (gpa + len(padded) - 1) // PAGE_SIZE + 1)
        )

    # -- attestation (steps 5-6) --------------------------------------------------

    def attestation_report(
        self, ctx: GuestSevContext, report_data: bytes
    ) -> Generator:
        """Generate a signed report; the value of the process is the report."""
        ctx.require_state(SevState.LAUNCH_FINISHED, "REPORT_REQUEST")
        assert ctx.launch_digest is not None
        yield from self._occupy(ctx, self.cost.psp_report_ms, command="REPORT_REQUEST")
        report = AttestationReport.sign(
            self.vcek,
            policy=ctx.policy.to_bytes(),
            measurement=ctx.launch_digest,
            report_data=report_data,
            chip_id=self.chip_id,
        )
        return report
