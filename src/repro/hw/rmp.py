"""The SEV-SNP Reverse Map Table (RMP).

The RMP tracks, for every system physical page, which guest (ASID) owns it
and whether the guest has validated it with ``pvalidate`` (§2.2).  The two
enforcement rules the paper relies on:

- a host write to a guest-owned page is blocked (RMP violation);
- if the hypervisor changes a mapping, the valid bit is cleared and the
  guest's next access raises the VMM Communication Exception (#VC).

Guest memory is hundreds of megabytes while the bytes actually touched in
a boot are few, so the table stores *bulk* assignment/validation flags for
the guest's whole range plus a sparse per-page override map.  Semantics
are identical to a fully populated table; only the representation is
compressed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common import PAGE_SIZE

HOST_ASID = 0


class RmpViolation(Exception):
    """A host access hit a guest-owned page (blocked by hardware)."""


class VmmCommunicationException(Exception):
    """#VC: the guest touched a page whose RMP entry is not valid."""


@dataclass
class RmpEntry:
    asid: int = HOST_ASID
    validated: bool = False
    gpa: int = 0
    immutable: bool = False


@dataclass
class ReverseMapTable:
    """RMP state for one guest's memory range."""

    asid: int
    num_pages: int
    enabled: bool = True  #: False models plain SEV / SEV-ES (no RMP)
    bulk_assigned: bool = False
    bulk_validated: bool = False
    _overrides: dict[int, RmpEntry] = field(default_factory=dict)

    # -- hypervisor-side operations -----------------------------------------

    def assign_all(self) -> None:
        """KVM assigns the guest's whole range at launch (RMP init)."""
        self.bulk_assigned = True
        self.bulk_validated = False
        self._overrides.clear()

    def rmpupdate(self, page: int, asid: int, assigned: bool) -> None:
        """Hypervisor updates one page's RMP entry.

        Any update clears the valid bit — this is the hardware behaviour
        the #VC tamper-detection relies on.
        """
        self._check_page(page)
        self._overrides[page] = RmpEntry(
            asid=asid if assigned else HOST_ASID, validated=False
        )

    def firmware_validate(self, page: int) -> None:
        """The PSP validates a launch page during LAUNCH_UPDATE_DATA.

        Pre-encrypted pages are guest-owned and valid before the guest
        runs — the guest's entry point must be executable without a #VC.
        """
        self._check_page(page)
        self._overrides[page] = RmpEntry(asid=self.asid, validated=True, immutable=True)

    def remap(self, page: int) -> None:
        """The hypervisor changed this page's mapping: valid bit cleared."""
        self._check_page(page)
        entry = self._entry(page)
        entry.validated = False
        self._overrides[page] = entry

    # -- guest-side operations ------------------------------------------------

    def pvalidate(self, page: int) -> None:
        """Guest validates one page.  Only the guest itself can do this."""
        if not self.enabled:
            return
        self._check_page(page)
        entry = self._entry(page)
        if entry.asid != self.asid:
            raise VmmCommunicationException(
                f"pvalidate of page {page:#x} not assigned to ASID {self.asid}"
            )
        entry.validated = True
        self._overrides[page] = entry

    def pvalidate_all(self) -> None:
        """Guest validates its entire range (the boot verifier's sweep)."""
        if not self.enabled:
            return
        if not self.bulk_assigned:
            raise VmmCommunicationException("guest range not assigned before pvalidate")
        self.bulk_validated = True
        self._overrides.clear()

    def share(self, page: int) -> None:
        """Guest-initiated page-state change: convert a page to *shared*.

        The guest asks the hypervisor to flip ownership back to the host
        so devices can DMA into the page (GHCB, virtqueues, bounce
        buffers).  Shared pages are host-owned and accessed without the
        C-bit; the RMP no longer protects them — by design.
        """
        if not self.enabled:
            return
        self._check_page(page)
        self._overrides[page] = RmpEntry(asid=HOST_ASID, validated=False)

    # -- hardware checks ---------------------------------------------------------

    def check_host_write(self, page: int) -> None:
        """Raise :class:`RmpViolation` if the page is guest-owned."""
        if not self.enabled:
            return
        self._check_page(page)
        if self._entry(page).asid == self.asid:
            raise RmpViolation(
                f"host write to guest-owned page {page:#x} (ASID {self.asid})"
            )

    def check_guest_access(self, page: int) -> None:
        """Raise #VC if the guest touches an unvalidated/foreign page."""
        if not self.enabled:
            return
        self._check_page(page)
        entry = self._entry(page)
        if entry.asid != self.asid or not entry.validated:
            raise VmmCommunicationException(
                f"guest access to page {page:#x}: asid={entry.asid} "
                f"validated={entry.validated}"
            )

    # -- helpers --------------------------------------------------------------

    def _entry(self, page: int) -> RmpEntry:
        override = self._overrides.get(page)
        if override is not None:
            return override
        return RmpEntry(
            asid=self.asid if self.bulk_assigned else HOST_ASID,
            validated=self.bulk_validated,
        )

    def _check_page(self, page: int) -> None:
        if not 0 <= page < self.num_pages:
            raise ValueError(f"page {page:#x} outside guest range")

    @staticmethod
    def page_of(pa: int) -> int:
        return pa // PAGE_SIZE
