"""The Guest-Hypervisor Communication Block (GHCB) and #VC exits.

Under SEV-ES/SNP the hypervisor can no longer read guest registers, so
every intercepted operation (``outb``, ``cpuid``, MSR access...) raises
the VMM Communication Exception (#VC); the guest's #VC handler copies
exactly the registers it wants to expose into a *shared* (unencrypted)
GHCB page and executes VMGEXIT.  §6.2 attributes most of the SEV "Linux
Boot" slowdown to these exits, and §6.1's methodology leans on the GHCB
MSR protocol for early-boot debug events (before a #VC handler exists,
magic values written to the GHCB MSR are always intercepted).

This module models both paths functionally:

- :class:`GhcbPage` — the shared page layout (exit code, exit info,
  selected register state) with strict serialization;
- :class:`GhcbProtocol` — guest-side helpers that perform an exit and
  count them, so boots can report how many world switches they cost.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field

from repro.common import PAGE_SIZE
from repro.hw.memory import GuestMemory


class GhcbError(Exception):
    """Malformed GHCB contents."""


class VmgExitCode(enum.Enum):
    """Exit reasons the boot path uses (SVM exit codes, abridged)."""

    IOIO = 0x7B  #: port I/O (outb to the debug port)
    CPUID = 0x72
    MSR = 0x7C
    VMMCALL = 0x81


_GHCB_MAGIC = b"GHCB"
_HEADER_FMT = "<4sIQQQQQ"  # magic, exit code, exit info 1/2, rax, rbx, rcx


@dataclass
class GhcbPage:
    """The guest's view of its GHCB: a few exposed registers + exit info."""

    exit_code: VmgExitCode = VmgExitCode.VMMCALL
    exit_info_1: int = 0
    exit_info_2: int = 0
    rax: int = 0
    rbx: int = 0
    rcx: int = 0

    def to_bytes(self) -> bytes:
        packed = struct.pack(
            _HEADER_FMT,
            _GHCB_MAGIC,
            self.exit_code.value,
            self.exit_info_1,
            self.exit_info_2,
            self.rax,
            self.rbx,
            self.rcx,
        )
        return packed.ljust(PAGE_SIZE, b"\x00")

    @classmethod
    def from_bytes(cls, raw: bytes) -> "GhcbPage":
        if len(raw) < struct.calcsize(_HEADER_FMT):
            raise GhcbError("GHCB shorter than header")
        magic, code, info1, info2, rax, rbx, rcx = struct.unpack_from(
            _HEADER_FMT, raw, 0
        )
        if magic != _GHCB_MAGIC:
            raise GhcbError("bad GHCB magic")
        try:
            exit_code = VmgExitCode(code)
        except ValueError as exc:
            raise GhcbError(f"unknown exit code {code:#x}") from exc
        return cls(
            exit_code=exit_code,
            exit_info_1=info1,
            exit_info_2=info2,
            rax=rax,
            rbx=rbx,
            rcx=rcx,
        )


@dataclass
class GhcbProtocol:
    """Guest-side #VC/VMGEXIT driver over a shared page in guest memory.

    The host reads the GHCB through its normal (unencrypted) access path:
    only the registers the guest chose to expose are visible — the
    "guest decides which register state to expose" behaviour of §6.2.
    """

    memory: GuestMemory
    ghcb_addr: int
    exit_counts: dict[VmgExitCode, int] = field(default_factory=dict)
    #: events delivered via the GHCB *MSR* (pre-handler early boot)
    msr_writes: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.ghcb_addr % PAGE_SIZE != 0:
            raise GhcbError("GHCB must be page-aligned")

    @property
    def total_exits(self) -> int:
        return sum(self.exit_counts.values())

    def vmgexit(self, page: GhcbPage) -> GhcbPage:
        """Guest writes the GHCB (shared!), exits, host reads it back.

        Returns the page as the *host* sees it — tests assert that this
        equals what the guest exposed and nothing more.
        """
        # The GHCB must be shared: written without the C-bit.
        self.memory.guest_write(self.ghcb_addr, page.to_bytes(), c_bit=False)
        self.exit_counts[page.exit_code] = self.exit_counts.get(page.exit_code, 0) + 1
        host_view = self.memory.host_read(self.ghcb_addr, PAGE_SIZE)
        return GhcbPage.from_bytes(host_view)

    def outb(self, port: int, value: int) -> GhcbPage:
        """Port I/O via #VC: expose only RAX (the byte) and the port."""
        return self.vmgexit(
            GhcbPage(
                exit_code=VmgExitCode.IOIO,
                exit_info_1=(port << 16) | 0x10,  # 8-bit OUT encoding (abridged)
                rax=value & 0xFF,
            )
        )

    def cpuid(self, leaf: int) -> GhcbPage:
        return self.vmgexit(GhcbPage(exit_code=VmgExitCode.CPUID, rax=leaf))

    def ghcb_msr_write(self, value: int) -> None:
        """Early-boot path: no #VC handler yet, write the GHCB MSR."""
        self.msr_writes.append(value)
