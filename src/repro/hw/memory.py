"""Sparse guest physical memory with SEV encryption semantics.

The full nominal address space (e.g. 256 MiB per microVM) is addressable,
but pages are materialized lazily, so memory cost is proportional to the
bytes a boot actually touches.

Access paths model the hardware:

- **host** accesses bypass the encryption engine: a host read of an
  encrypted page returns ciphertext; a host write to a guest-owned page
  trips the RMP (SNP).
- **guest** accesses with the C-bit go through the per-guest encryption
  engine: writes store ciphertext, reads decrypt.  A guest C-bit read of
  a page the host wrote in plain text decrypts garbage — exactly the
  property that forces the boot verifier to *copy* components into
  encrypted memory before using them (§2.5 step 4).
- the **PSP**'s pre-encryption reads the plain text (for measurement) and
  replaces it with ciphertext in place (LAUNCH_UPDATE_DATA).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.common import PAGE_SIZE
from repro.crypto.memenc import BLOCK_SIZE, MemoryEncryptionEngine
from repro.hw.rmp import ReverseMapTable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.plan import FaultPlan


class MemoryAccessError(Exception):
    """Out-of-range or misaligned access."""


@dataclass
class GuestMemory:
    """Sparse physical memory for one guest."""

    size: int  #: nominal guest-physical size in bytes
    engine: MemoryEncryptionEngine | None = None
    rmp: ReverseMapTable | None = None
    #: attached fault plan (``mem.host_tamper`` site); ``None`` = no faults
    faults: "FaultPlan | None" = None
    #: set once any host-side tampering (injected or explicit) touched
    #: this guest's memory — the VMM checks it to account tamper
    #: detection (no tampered boot may ever complete)
    host_tampered: bool = False
    _pages: dict[int, bytearray] = field(default_factory=dict)
    _encrypted_pages: set[int] = field(default_factory=set)

    # -- raw storage ------------------------------------------------------

    def _check_range(self, pa: int, length: int) -> None:
        if pa < 0 or length < 0 or pa + length > self.size:
            raise MemoryAccessError(
                f"access [{pa:#x}, {pa + length:#x}) outside {self.size:#x}"
            )

    def _raw_read(self, pa: int, length: int) -> bytes:
        # Preallocated (zeroed) so unmaterialized pages cost nothing and
        # large multi-page reads avoid quadratic bytearray growth.
        out = bytearray(length)
        pos = 0
        while pos < length:
            page, offset = divmod(pa + pos, PAGE_SIZE)
            take = min(length - pos, PAGE_SIZE - offset)
            backing = self._pages.get(page)
            if backing is not None:
                out[pos : pos + take] = backing[offset : offset + take]
            pos += take
        return bytes(out)

    def _raw_write(self, pa: int, data: bytes) -> None:
        pos = 0
        while pos < len(data):
            page, offset = divmod(pa + pos, PAGE_SIZE)
            take = min(len(data) - pos, PAGE_SIZE - offset)
            backing = self._pages.get(page)
            if backing is None:
                backing = bytearray(PAGE_SIZE)
                self._pages[page] = backing
            backing[offset : offset + take] = data[pos : pos + take]
            pos += take

    @staticmethod
    def _pages_of(pa: int, length: int):
        first = pa // PAGE_SIZE
        last = (pa + max(length, 1) - 1) // PAGE_SIZE
        return range(first, last + 1)

    # -- host access paths ---------------------------------------------------

    def host_write(self, pa: int, data: bytes) -> None:
        """Hypervisor writes plain text (shared) data into guest memory.

        An attached fault plan may tamper the written bytes at the
        ``mem.host_tamper`` site (a malicious or faulty host flipping a
        bit on its way into shared staging pages); the flip is derived
        from the fault's salt, so the corruption is deterministic and
        always changes the data.
        """
        self._check_range(pa, len(data))
        if self.rmp is not None:
            for page in self._pages_of(pa, len(data)):
                self.rmp.check_host_write(page)
        if self.faults is not None:
            event = self.faults.draw("mem.host_tamper", size=len(data))
            if event is not None:
                from repro.faults.plan import flip_bit

                data = flip_bit(data, event.salt)
                self.mark_tampered()
        self._raw_write(pa, data)
        self._encrypted_pages.difference_update(self._pages_of(pa, len(data)))

    def mark_tampered(self) -> None:
        """Record that the host tampered with this guest's memory.

        Counted once per guest in the fault plan's ``tampered_boots``
        counter; the chaos report's detection rate is computed against
        it.
        """
        if not self.host_tampered:
            self.host_tampered = True
            if self.faults is not None:
                self.faults.note("tampered_boots")

    def tamper_bitflip(self, pa: int, length: int, salt: int = 0) -> None:
        """Flip one bit in ``[pa, pa+length)`` via the host's raw access.

        Models a DMA-capable attacker bypassing the CPU access paths
        (and hence the RMP); used by chaos scenarios and attack tests to
        corrupt guest pages in a deterministic, salt-addressed way.
        """
        from repro.faults.plan import flip_bit

        self._check_range(pa, length)
        self._raw_write(pa, flip_bit(self._raw_read(pa, length), salt))
        self.mark_tampered()

    def host_read(self, pa: int, length: int) -> bytes:
        """Hypervisor reads raw bytes — ciphertext for encrypted pages."""
        self._check_range(pa, length)
        return self._raw_read(pa, length)

    # -- guest access paths -----------------------------------------------------

    def _require_engine(self) -> MemoryEncryptionEngine:
        if self.engine is None:
            raise MemoryAccessError("guest C-bit access without an encryption key")
        return self.engine

    def _guest_check(self, pa: int, length: int, c_bit: bool) -> None:
        # The RMP protects *private* (C-bit) accesses: a private touch of
        # an unvalidated/foreign page raises #VC.  Shared accesses go
        # through ordinary nested paging — that is how guests reach the
        # GHCB and virtio rings after converting them to shared.
        if self.rmp is not None and c_bit:
            for page in self._pages_of(pa, length):
                self.rmp.check_guest_access(page)

    def guest_write(self, pa: int, data: bytes, c_bit: bool = True) -> None:
        """Guest write; with the C-bit the stored bytes are ciphertext."""
        self._check_range(pa, len(data))
        self._guest_check(pa, len(data), c_bit)
        if not c_bit:
            self._raw_write(pa, data)
            self._encrypted_pages.difference_update(self._pages_of(pa, len(data)))
            return
        engine = self._require_engine()
        start = pa - (pa % BLOCK_SIZE)
        end = pa + len(data)
        end += (-end) % BLOCK_SIZE
        head_pad = pa - start
        tail_pad = end - (pa + len(data))
        if head_pad or tail_pad:
            # Read-modify-write: only the *partial* head/tail blocks need
            # their existing plaintext — the fully overwritten middle of
            # the span must not be decrypted just to be thrown away.
            span = bytearray(end - start)
            span[head_pad : head_pad + len(data)] = data
            if head_pad:
                first = engine.decrypt(start, self._raw_read(start, BLOCK_SIZE))
                span[:head_pad] = first[:head_pad]
            if tail_pad:
                last_pa = end - BLOCK_SIZE
                last = engine.decrypt(last_pa, self._raw_read(last_pa, BLOCK_SIZE))
                span[len(span) - tail_pad :] = last[BLOCK_SIZE - tail_pad :]
            data = bytes(span)
            pa = start
        self._raw_write(pa, engine.encrypt(pa, data))
        self._encrypted_pages.update(self._pages_of(pa, len(data)))

    def guest_read(self, pa: int, length: int, c_bit: bool = True) -> bytes:
        """Guest read; with the C-bit the engine decrypts whatever is there."""
        self._check_range(pa, length)
        self._guest_check(pa, length, c_bit)
        if not c_bit:
            return self._raw_read(pa, length)
        engine = self._require_engine()
        start = pa - (pa % BLOCK_SIZE)
        end = pa + length
        end += (-end) % BLOCK_SIZE
        raw = self._raw_read(start, end - start)
        plain = engine.decrypt(start, raw)
        return plain[pa - start : pa - start + length]

    def guest_share_region(self, pa: int, length: int) -> None:
        """Guest page-state change: convert a region to shared (host-owned).

        Clears any stale ciphertext so the host sees zeroed plain pages.
        """
        if self.rmp is not None:
            for page in self._pages_of(pa, length):
                self.rmp.share(page)
        start = pa - (pa % PAGE_SIZE)
        end = pa + length
        end += (-end) % PAGE_SIZE
        self._raw_write(start, b"\x00" * (end - start))
        self._encrypted_pages.difference_update(self._pages_of(pa, length))

    # -- PSP access path (LAUNCH_UPDATE_DATA) --------------------------------------

    def psp_encrypt_in_place(self, pa: int, length: int, cipher_cache=None) -> bytes:
        """Encrypt a plain-text region in place; returns the plain text.

        The returned plain text is what the PSP hashes into the launch
        measurement before encrypting (§2.4).  ``cipher_cache`` (an object
        with ``encrypt(engine, pa, plaintext)``, e.g.
        :class:`repro.sev.api.PageCryptoCache`) serves content-addressed
        ciphertext for repeated identical launches.
        """
        if pa % PAGE_SIZE != 0:
            raise MemoryAccessError("pre-encryption must be page-aligned")
        self._check_range(pa, length)
        engine = self._require_engine()
        padded = length + (-length) % BLOCK_SIZE
        plain = self._raw_read(pa, padded)
        if cipher_cache is None:
            ciphertext = engine.encrypt(pa, plain)
        else:
            ciphertext = cipher_cache.encrypt(engine, pa, plain)
        self._raw_write(pa, ciphertext)
        self._encrypted_pages.update(self._pages_of(pa, padded))
        return plain[:length]

    # -- introspection -------------------------------------------------------------

    def is_encrypted(self, pa: int) -> bool:
        return pa // PAGE_SIZE in self._encrypted_pages

    @property
    def resident_bytes(self) -> int:
        """Bytes actually materialized (for §6.3 footprint accounting)."""
        return len(self._pages) * PAGE_SIZE

    def resident_pages(self):
        """Iterate ``(page_index, page_bytes)`` over materialized pages.

        Pages come out in ascending page-index order as immutable
        ``bytes`` copies, so callers (snapshot capture, debug dumps) get
        a stable view that survives later guest writes — and survives a
        change of the backing representation, which ``_pages`` does not
        promise.
        """
        for index in sorted(self._pages):
            yield index, bytes(self._pages[index])
