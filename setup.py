"""Legacy setup shim.

The execution environment has no network and no ``wheel`` package, so the
PEP 517 editable-install path is unavailable; ``pip install -e .
--no-use-pep517`` (or ``python setup.py develop``) uses this shim instead.
All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
