"""Empty-plan transparency: injecting a fault plan that never fires must
be observationally identical to not having the faults layer at all.

This is the property that makes the subsystem safe to keep wired into
the hot paths: draws at unconfigured sites consume no randomness and no
virtual time, so digests, timelines, and fleet statistics are
byte-identical.
"""

from __future__ import annotations

import pytest

from repro.core.config import VmConfig
from repro.core.severifast import SEVeriFast
from repro.faults.plan import FaultPlan, FaultSpec
from repro.formats.kernels import AWS, LUPINE
from repro.hw.platform import Machine
from repro.serverless.platform import ServerlessPlatform
from repro.serverless.trace import synthesize_trace
from repro.vmm.firecracker import FirecrackerVMM


def _boot_observables(result):
    return {
        "boot_ms": result.boot_ms,
        "total_ms": result.total_ms,
        "breakdown": result.timeline.breakdown(),
        "events": result.timeline.events,
        "launch_digest": result.launch_digest,
        "resident_bytes": result.resident_bytes,
        "psp_occupancy_ms": result.psp_occupancy_ms,
        "console_log": result.console_log,
        "aborted": result.aborted,
        "launch_retries": result.launch_retries,
    }


def _cold_boot(config, plan):
    machine = Machine()
    if plan is not None:
        machine.sim.inject(plan)
    sf = SEVeriFast(machine=machine)
    return sf.cold_boot(config, machine=machine)


EMPTY_PLANS = [
    pytest.param(None, id="no-plan"),
    pytest.param(FaultPlan(seed=99), id="no-specs"),
    pytest.param(
        FaultPlan(
            seed=99,
            specs=(
                FaultSpec("psp.command", 0.0),
                FaultSpec("image.stage", 0.0),
                FaultSpec("mem.host_tamper", 0.0, min_bytes=8192),
            ),
        ),
        id="rate-zero-specs",
    ),
]


class TestColdBootTransparency:
    @pytest.mark.parametrize("plan", EMPTY_PLANS[1:])
    @pytest.mark.parametrize("kernel", [AWS, LUPINE], ids=["aws", "lupine"])
    def test_empty_plan_identical_to_absent(self, plan, kernel):
        config = VmConfig(kernel=kernel, scale=1 / 1024, attest=False)
        baseline = _boot_observables(_cold_boot(config, None))
        with_plan = _boot_observables(_cold_boot(config, plan))
        assert with_plan == baseline
        assert plan.injected == 0
        assert plan.events == []

    def test_attested_boot_digest_unaffected(self):
        config = VmConfig(kernel=AWS, scale=1 / 1024, attest=True)
        baseline = _cold_boot(config, None)
        with_plan = _cold_boot(config, FaultPlan(seed=1))
        assert with_plan.launch_digest == baseline.launch_digest
        assert with_plan.secret == baseline.secret
        assert with_plan.boot_ms == pytest.approx(baseline.boot_ms)
        assert with_plan.total_ms == pytest.approx(baseline.total_ms)

    def test_retry_policy_alone_adds_no_time(self):
        """A retry-capable VMM with no faults behaves identically."""
        config = VmConfig(kernel=AWS, scale=1 / 1024, attest=False)

        def run(with_retry: bool):
            from repro.faults.retry import RetryPolicy

            machine = Machine()
            sf = SEVeriFast(machine=machine)
            prepared = sf.prepare(config, machine)
            vmm = FirecrackerVMM(
                machine,
                retry=RetryPolicy(max_attempts=4) if with_retry else None,
            )
            return machine.sim.run_process(
                vmm.boot_severifast(
                    config,
                    prepared.artifacts,
                    prepared.initrd,
                    hashes=prepared.hashes,
                )
            )

        assert _boot_observables(run(True)) == _boot_observables(run(False))


class TestFleetTransparency:
    def _run_fleet(self, plan):
        machine = Machine()
        if plan is not None:
            machine.sim.inject(plan)
        config = VmConfig(kernel=AWS, scale=1 / 1024, attest=False)
        sf = SEVeriFast(machine=machine)
        prepared = sf.prepare(config, machine)
        vmm = FirecrackerVMM(machine)

        def boot():
            result = yield from vmm.boot_severifast(
                config,
                prepared.artifacts,
                prepared.initrd,
                hashes=prepared.hashes,
            )
            return result

        platform = ServerlessPlatform(machine.sim, boot)
        trace = synthesize_trace(
            num_functions=4, horizon_ms=8000.0, mean_rate_per_s=2.0, seed=7
        )
        return platform.run(trace)

    @pytest.mark.parametrize("plan", EMPTY_PLANS[1:])
    def test_fleet_stats_identical(self, plan):
        baseline = self._run_fleet(None)
        with_plan = self._run_fleet(plan)
        assert with_plan.outcomes == baseline.outcomes
        assert with_plan.failed_invocations == 0
        assert plan.injected == 0
