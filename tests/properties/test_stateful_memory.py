"""Stateful property tests: random interleavings of memory/RMP operations.

A hypothesis rule machine drives host writes, guest private/shared
accesses, PSP pre-encryption, page-state changes, and hostile remaps in
random order, checking the SEV memory contract at every step:

- the guest's private view always equals the reference model;
- the host never observes plaintext the guest wrote privately;
- RMP violations and #VC fire exactly when the spec says they must.
"""

from __future__ import annotations

import pytest
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.common import PAGE_SIZE
from repro.crypto.memenc import MemoryEncryptionEngine
from repro.hw.memory import GuestMemory
from repro.hw.rmp import ReverseMapTable, RmpViolation, VmmCommunicationException

_PAGES = 8
_SIZE = _PAGES * PAGE_SIZE

_page_indexes = st.integers(min_value=0, max_value=_PAGES - 1)
_offsets = st.integers(min_value=0, max_value=PAGE_SIZE - 64)
_payloads = st.binary(min_size=1, max_size=64)


class MemoryMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.rmp = ReverseMapTable(asid=1, num_pages=_PAGES)
        self.memory = GuestMemory(
            size=_SIZE, engine=MemoryEncryptionEngine(b"k" * 16), rmp=self.rmp
        )
        self.rmp.assign_all()
        self.rmp.pvalidate_all()
        # Reference model of the guest's private view.
        self.private_ref: dict[int, bytes] = {}
        # Pages currently shared / invalidated.
        self.shared_pages: set[int] = set()
        self.invalid_pages: set[int] = set()
        # Every byte string the guest ever wrote privately.
        self.secrets: list[bytes] = []

    # -- reference-model helpers ---------------------------------------------

    def _drop_overlapping(self, pa: int, length: int, block_blast: bool) -> None:
        """Forget private entries a write may have affected.

        ``block_blast=True`` extends the range to 16-byte AES blocks: a
        *plain* write into a block mixes plaintext into ciphertext and
        garbles the whole block on private reads — true on hardware too.
        """
        start, end = pa, pa + length
        if block_blast:
            start = start - (start % 16)
            end = end + (-end) % 16
        for entry_pa in list(self.private_ref):
            entry_end = entry_pa + len(self.private_ref[entry_pa])
            if entry_pa < end and start < entry_end:
                del self.private_ref[entry_pa]

    # -- operations ------------------------------------------------------

    @rule(page=_page_indexes, offset=_offsets, data=_payloads)
    def guest_private_write(self, page, offset, data):
        pa = page * PAGE_SIZE + offset
        try:
            self.memory.guest_write(pa, data, c_bit=True)
        except VmmCommunicationException:
            assert page in self.shared_pages or page in self.invalid_pages
            return
        assert page not in self.shared_pages and page not in self.invalid_pages
        # The RMW preserves other bytes in the block, so only truly
        # overlapped entries go stale.
        self._drop_overlapping(pa, len(data), block_blast=False)
        self.private_ref[pa] = data
        self.secrets.append(data)

    @rule(page=_page_indexes, offset=_offsets, data=_payloads)
    def guest_shared_write(self, page, offset, data):
        pa = page * PAGE_SIZE + offset
        self.memory.guest_write(pa, data, c_bit=False)
        # Plaintext lands in the block: private reads of it garble.
        self._drop_overlapping(pa, len(data), block_blast=True)

    @rule(page=_page_indexes, data=_payloads)
    def host_write(self, page, data):
        pa = page * PAGE_SIZE
        try:
            self.memory.host_write(pa, data)
        except RmpViolation:
            assert page not in self.shared_pages  # guest-owned, correctly blocked
            return
        assert page in self.shared_pages
        self._drop_overlapping(pa, len(data), block_blast=True)

    @rule(page=_page_indexes)
    def guest_share(self, page):
        self.memory.guest_share_region(page * PAGE_SIZE, PAGE_SIZE)
        self.shared_pages.add(page)
        self.invalid_pages.discard(page)
        # Sharing zeroes the page; private data there is gone.
        for pa in list(self.private_ref):
            if pa // PAGE_SIZE == page:
                del self.private_ref[pa]

    @rule(page=_page_indexes)
    def guest_revalidate(self, page):
        """Guest reclaims a page: host assigns it back, guest pvalidates."""
        self.rmp.rmpupdate(page, asid=1, assigned=True)
        self.rmp.pvalidate(page)
        self.shared_pages.discard(page)
        self.invalid_pages.discard(page)

    @rule(page=_page_indexes)
    def hostile_remap(self, page):
        self.rmp.remap(page)
        if page not in self.shared_pages:
            self.invalid_pages.add(page)

    # -- invariants -------------------------------------------------------------

    @invariant()
    def private_view_matches_reference(self):
        for pa, data in self.private_ref.items():
            page = pa // PAGE_SIZE
            if page in self.shared_pages or page in self.invalid_pages:
                continue
            assert self.memory.guest_read(pa, len(data), c_bit=True) == data

    @invariant()
    def host_never_sees_private_plaintext(self):
        for pa, data in self.private_ref.items():
            if len(data) >= 8:  # avoid trivial collisions on short strings
                assert self.memory.host_read(pa, len(data)) != data

    @invariant()
    def invalid_pages_fault_on_private_access(self):
        for page in self.invalid_pages:
            with pytest.raises(VmmCommunicationException):
                self.memory.guest_read(page * PAGE_SIZE, 16, c_bit=True)


TestMemoryMachine = MemoryMachine.TestCase
TestMemoryMachine.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
