"""Cross-module property tests (hypothesis).

These pin down invariants that span subsystem boundaries: the launch
digest's single source of truth, memory-encryption through the full
memory model, page-table walks against the identity oracle, and parser
robustness against adversarial bytes.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import Blob, MiB, PAGE_SIZE
from repro.core.config import VmConfig
from repro.core.digest_tool import compute_expected_digest
from repro.core.oob_hash import HashesFile, hash_boot_components
from repro.crypto.memenc import MemoryEncryptionEngine
from repro.formats.bzimage import BzImage, BzImageError
from repro.formats.cpio import CpioArchive, CpioError
from repro.formats.elf import ElfError, ElfFile
from repro.formats.kernels import AWS
from repro.guest.bootverifier import verifier_binary
from repro.hw.memory import GuestMemory
from repro.hw.pagetable import PageTableBuilder, translate
from repro.sev.measurement import expected_digest


# -- digest single source of truth ------------------------------------------------


@given(st.binary(min_size=1, max_size=64), st.binary(min_size=1, max_size=64))
@settings(max_examples=25, deadline=None)
def test_digest_differs_whenever_components_differ(kernel_bytes, other_bytes):
    config = VmConfig(kernel=AWS)
    initrd = Blob(b"initrd")
    a = compute_expected_digest(
        config, verifier_binary(), hash_boot_components(Blob(kernel_bytes), initrd)
    )
    b = compute_expected_digest(
        config, verifier_binary(), hash_boot_components(Blob(other_bytes), initrd)
    )
    assert (a == b) == (kernel_bytes == other_bytes)


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2**30),
            st.binary(min_size=1, max_size=64),
        ),
        min_size=1,
        max_size=5,
    )
)
@settings(max_examples=25, deadline=None)
def test_digest_chain_injective_under_permutation(regions):
    spec = [(gpa, data, None) for gpa, data in regions]
    rotated = spec[1:] + spec[:1]
    if spec != rotated:
        assert expected_digest(spec) != expected_digest(rotated)
    else:
        assert expected_digest(spec) == expected_digest(rotated)


# -- memory model as a reference dictionary ------------------------------------------


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=(1 * MiB) - 256),
            st.binary(min_size=1, max_size=256),
        ),
        max_size=12,
    )
)
@settings(max_examples=30, deadline=None)
def test_guest_memory_matches_flat_reference(writes):
    """Sparse paged memory + encryption behaves like one flat buffer."""
    memory = GuestMemory(size=1 * MiB, engine=MemoryEncryptionEngine(b"k" * 16))
    reference = bytearray(1 * MiB)
    for pa, data in writes:
        memory.guest_write(pa, data, c_bit=True)
        reference[pa : pa + len(data)] = data
    for pa, data in writes:
        got = memory.guest_read(pa, len(data), c_bit=True)
        assert got == bytes(reference[pa : pa + len(data)])


@given(
    st.integers(min_value=0, max_value=(1 * MiB) // 16 - 8).map(lambda b: b * 16),
    st.binary(min_size=16, max_size=64).filter(lambda b: len(b) % 16 == 0),
)
@settings(max_examples=30, deadline=None)
def test_host_never_sees_guest_plaintext(pa, data):
    memory = GuestMemory(size=1 * MiB, engine=MemoryEncryptionEngine(b"k" * 16))
    memory.guest_write(pa, data, c_bit=True)
    assert memory.host_read(pa, len(data)) != data


# -- page tables vs the identity oracle ---------------------------------------------


@given(st.integers(min_value=0, max_value=1024 * MiB - 1))
@settings(max_examples=40, deadline=None)
def test_identity_map_is_identity(va):
    store = {}
    builder = PageTableBuilder(base_pa=0xA000)
    builder.build(lambda pa, data: store.__setitem__(pa, data))

    def read(pa, n):
        base = pa & ~(PAGE_SIZE - 1)
        return store[base][pa - base : pa - base + n]

    translated, encrypted = translate(read, 0xA000, va)
    assert translated == va
    assert encrypted


# -- adversarial parser inputs ----------------------------------------------------------


@given(st.binary(max_size=600))
@settings(max_examples=60, deadline=None)
def test_elf_parser_never_crashes(garbage):
    try:
        ElfFile.from_bytes(garbage)
    except ElfError:
        pass


@given(st.binary(max_size=2048))
@settings(max_examples=60, deadline=None)
def test_bzimage_parser_never_crashes(garbage):
    try:
        BzImage.from_bytes(garbage)
    except BzImageError:
        pass


@given(st.binary(max_size=1024))
@settings(max_examples=60, deadline=None)
def test_cpio_parser_never_crashes(garbage):
    try:
        CpioArchive.from_bytes(garbage)
    except CpioError:
        pass


@given(st.binary(max_size=160))
@settings(max_examples=40, deadline=None)
def test_hashes_page_parser_never_crashes(prefix):
    from repro.core.oob_hash import HashesFileError

    page = prefix.ljust(PAGE_SIZE, b"\x00")
    try:
        HashesFile.from_page(page)
    except HashesFileError:
        pass


# -- engines agree across modes ---------------------------------------------------------


@given(
    st.binary(min_size=16, max_size=16),
    st.integers(min_value=0, max_value=2**20).map(lambda b: b * 16),
    st.binary(min_size=1, max_size=8).map(lambda b: (b * 16)[: (len(b) * 16 // 16) * 16]),
)
@settings(max_examples=25, deadline=None)
def test_both_engine_modes_satisfy_the_sev_contract(key, pa, block):
    block = block.ljust(16, b"\x00")
    for mode in ("xex", "ctr-fast"):
        engine = MemoryEncryptionEngine(key, mode=mode)
        ct = engine.encrypt(pa, block)
        assert engine.decrypt(pa, ct) == block
        assert ct != block or block == engine.decrypt(pa, block)  # non-identity
        other_pa = pa + 16
        assert engine.encrypt(other_pa, block) != ct


# -- SVBL bytecode ---------------------------------------------------------


@given(
    st.lists(
        st.tuples(
            st.sampled_from(
                [
                    "CPUID",
                    "PVALIDATE",
                    "PGTABLES",
                    "RDHASHES",
                    "COPYK",
                    "HASHK",
                    "CMPK",
                    "COPYI",
                    "HASHI",
                    "CMPI",
                    "DONE",
                ]
            ),
            st.integers(min_value=0, max_value=2**32 - 1),
            st.integers(min_value=0, max_value=2**32 - 1),
        ),
        max_size=40,
    )
)
@settings(max_examples=40, deadline=None)
def test_svbl_assembly_roundtrip(instr_specs):
    from repro.guest.svbl import Instr, Op, assemble, disassemble

    program = [Instr(Op[name], a, b) for name, a, b in instr_specs]
    assert disassemble(assemble(program)) == program


@given(st.binary(max_size=200))
@settings(max_examples=40, deadline=None)
def test_svbl_disassembler_never_crashes(garbage):
    from repro.guest.bootverifier import VerificationError
    from repro.guest.svbl import disassemble

    try:
        disassemble(garbage)
    except VerificationError:
        pass
