"""Property tests pinning vectorized == scalar and cached == uncached.

The wall-clock performance layer (batch AES, vectorized memenc paths,
content-addressed caches) must be invisible in every output byte: these
tests drive random keys/addresses/sizes through both dispatch paths and
assert byte-for-byte equality, which is the contract that keeps all
virtual-time results (launch digests, ciphertext, timelines) identical
whether the optimizations are on or off.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import perf
from repro.crypto.aes import AES128
from repro.crypto.memenc import MemoryEncryptionEngine
from repro.sev.api import PageCryptoCache
from repro.sev.measurement import expected_digest

keys = st.binary(min_size=16, max_size=16)
modes = st.sampled_from(["xex", "ctr-fast"])
#: 16-byte-aligned physical addresses across a large space
aligned_pa = st.integers(min_value=0, max_value=2**26).map(lambda n: n * 16)


def _pad16(raw: bytes) -> bytes:
    return raw + b"\x00" * ((-len(raw)) % 16)


# -- batch AES == scalar block API -------------------------------------------------


@given(keys, st.binary(min_size=0, max_size=48 * 16))
@settings(max_examples=40, deadline=None)
def test_batch_aes_matches_scalar_blocks(key, raw):
    data = _pad16(raw)
    cipher = AES128(key)
    expect_ct = b"".join(
        cipher.encrypt_block(data[i : i + 16]) for i in range(0, len(data), 16)
    )
    with perf.scoped(vectorized=True):
        assert cipher.encrypt_blocks(data) == expect_ct
        assert cipher.decrypt_blocks(expect_ct) == data
    with perf.scoped(vectorized=False):
        assert cipher.encrypt_blocks(data) == expect_ct
        assert cipher.decrypt_blocks(expect_ct) == data


# -- vectorized memenc == scalar memenc ---------------------------------------------


@given(keys, modes, aligned_pa, st.binary(min_size=1, max_size=4096))
@settings(max_examples=30, deadline=None)
def test_memenc_vectorized_matches_scalar(key, mode, pa, raw):
    data = _pad16(raw)
    engine = MemoryEncryptionEngine(key, mode)
    with perf.scoped(vectorized=False, caches=False):
        ct_scalar = engine.encrypt(pa, data)
        assert engine.decrypt(pa, ct_scalar) == data
    with perf.scoped(vectorized=True, caches=True):
        assert engine.encrypt(pa, data) == ct_scalar
        assert engine.encrypt(pa, data) == ct_scalar  # warm-cache pass
        assert engine.decrypt(pa, ct_scalar) == data
    # the retained scalar oracles agree with the dispatching public API
    if mode == "xex":
        assert engine._xex_apply_scalar(pa, data, True) == ct_scalar
    else:
        with perf.scoped(caches=False):
            assert engine._keystream_scalar(pa, len(data)) == engine._keystream(
                pa, len(data)
            )


@given(keys, aligned_pa, st.binary(min_size=1, max_size=1024))
@settings(max_examples=20, deadline=None)
def test_ctr_fast_keystream_is_address_local(key, pa, raw):
    """Keystream bytes depend only on the absolute address, not on how an
    operation is chunked — the invariant partial-block RMW relies on."""
    data = _pad16(raw)
    engine = MemoryEncryptionEngine(key, "ctr-fast")
    with perf.scoped(caches=False):
        whole = engine._keystream_scalar(pa, len(data))
        split = b"".join(
            engine._keystream_scalar(pa + off, 16) for off in range(0, len(data), 16)
        )
    assert whole == split


# -- cached launch digests == uncached, order-sensitivity preserved ------------------

regions_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2**20).map(lambda n: n * 4096),
        st.binary(min_size=1, max_size=256),
        st.one_of(st.none(), st.integers(min_value=1, max_value=2**24)),
    ),
    min_size=1,
    max_size=6,
    unique_by=lambda region: region,
)


@given(regions_strategy, st.randoms(use_true_random=False))
@settings(max_examples=25, deadline=None)
def test_cached_digest_equals_uncached_for_permuted_orders(regions, rnd):
    permuted = list(regions)
    rnd.shuffle(permuted)
    with perf.scoped(vectorized=False, caches=False):
        base = expected_digest(regions)
        base_permuted = expected_digest(permuted)
    perf.clear_all_caches()
    with perf.scoped(vectorized=True, caches=True):
        assert expected_digest(regions) == base  # cold caches
        assert expected_digest(regions) == base  # warm caches
        assert expected_digest(permuted) == base_permuted
    # the chain stays order-sensitive: distinct orders => distinct digests
    if permuted != regions:
        assert base_permuted != base


# -- content-addressed page ciphertext == engine output ------------------------------


@given(keys, modes, aligned_pa, st.binary(min_size=1, max_size=512))
@settings(max_examples=25, deadline=None)
def test_page_crypto_cache_matches_engine(key, mode, pa, raw):
    data = _pad16(raw)
    engine = MemoryEncryptionEngine(key, mode)
    cache = PageCryptoCache()
    with perf.scoped(vectorized=True, caches=False):
        expect = engine.encrypt(pa, data)
    with perf.scoped(vectorized=True, caches=True):
        assert cache.encrypt(engine, pa, data) == expect  # miss path
        assert cache.encrypt(engine, pa, data) == expect  # hit path
    with perf.scoped(caches=False):
        assert cache.encrypt(engine, pa, data) == expect  # gate off => engine
    # a different key never shares entries
    other = MemoryEncryptionEngine(bytes(16), mode)
    if other.key_id != engine.key_id:
        with perf.scoped(vectorized=True, caches=True):
            assert cache.encrypt(other, pa, data) != expect
