"""Sharding core: stable ordering, worker-count-independent seeds."""

import pytest

from repro.parallel import ShardSpec, shard_units, unit_seed


def test_shard_units_partition_every_index_once():
    for units in (0, 1, 7, 100):
        for shards in (1, 2, 3, 8, 13):
            plan = shard_units(units, shards)
            assert len(plan) == shards
            flat = sorted(i for shard in plan for i in shard)
            assert flat == list(range(units))


def test_shard_units_round_robin():
    assert shard_units(7, 3) == [(0, 3, 6), (1, 4), (2, 5)]


def test_shard_units_rejects_bad_counts():
    with pytest.raises(ValueError):
        shard_units(4, 0)
    with pytest.raises(ValueError):
        shard_units(-1, 2)


def test_unit_seed_is_stable_and_distinct():
    seen = {unit_seed(42, i) for i in range(200)}
    assert len(seen) == 200  # no collisions across a sweep
    assert unit_seed(42, 7) == unit_seed(42, 7)
    assert unit_seed(42, 7) != unit_seed(43, 7)
    assert unit_seed(42, 7) != unit_seed(42, 8)
    assert unit_seed(42, 7, salt="chaos") != unit_seed(42, 7)
    # pinned: derivation is sha256-based, never Python hash(), so the
    # value is identical in every process and interpreter
    assert unit_seed(0, 0) == 17764798517795504141


def test_spec_plan_seed_independent_of_worker_count():
    """The invariant everything rests on: a unit's seed never depends
    on which shard it landed in."""
    for workers in (1, 2, 3, 5):
        for spec in ShardSpec.plan(20, workers, seed=9):
            for index in spec.unit_indices:
                assert spec.unit_seed(index) == unit_seed(9, index)
