"""The worker pool: in-process fallback, process workers, merged output.

Unit functions here are module-level so they pickle under any start
method; the suite runs the real multiprocessing path (2 workers) with
tiny units, so it stays fast even on one core.
"""

import pytest

from repro.obs.metrics import default_registry
from repro.parallel import run_sharded
from repro.parallel.pool import resolve_workers


def _square_unit(index, seed, payload):
    registry = default_registry()
    registry.counter("units.run").inc()
    registry.counter("units.by_parity", parity=index % 2).inc()
    registry.histogram("units.value", buckets=(10.0, 100.0)).observe(index)
    registry.gauge("units.last_index").set(index)
    return {"index": index, "square": index * index, "seed": seed}


def _prime(payload):
    default_registry().counter("primed").inc()


def _boom_unit(index, seed, payload):
    raise RuntimeError(f"unit {index} exploded")


def test_resolve_workers():
    assert resolve_workers(None) == 1
    assert resolve_workers(0) == 1
    assert resolve_workers(-3) == 1
    assert resolve_workers(4) == 4


def test_in_process_fallback_at_one_worker():
    run = run_sharded(_square_unit, 5, seed=3, workers=1)
    assert run.workers == 1
    assert [r["square"] for r in run.results] == [0, 1, 4, 9, 16]
    assert run.metrics["counters"]["units.run"] == 5


def test_results_ordered_by_unit_index_across_workers():
    serial = run_sharded(_square_unit, 9, seed=3, workers=1)
    parallel = run_sharded(_square_unit, 9, seed=3, workers=2)
    assert parallel.workers == 2
    assert parallel.results == serial.results  # same values, same order


def test_merged_counters_equal_serial():
    serial = run_sharded(_square_unit, 8, seed=1, workers=1)
    parallel = run_sharded(_square_unit, 8, seed=1, workers=3)
    assert parallel.metrics["counters"] == serial.metrics["counters"]
    assert parallel.metrics["histograms"] == serial.metrics["histograms"]
    assert parallel.metrics["counters"]["units.run"] == 8
    assert parallel.metrics["counters"]['units.by_parity{parity="0"}'] == 4


def test_unit_seeds_worker_count_independent():
    runs = [
        run_sharded(_square_unit, 6, seed=11, workers=w) for w in (1, 2, 3)
    ]
    seeds = [[r["seed"] for r in run.results] for run in runs]
    assert seeds[0] == seeds[1] == seeds[2]


def test_prime_runs_once_per_worker():
    serial = run_sharded(_square_unit, 4, seed=0, workers=1, prime=_prime)
    parallel = run_sharded(_square_unit, 4, seed=0, workers=2, prime=_prime)
    assert serial.metrics["counters"]["primed"] == 1
    assert parallel.metrics["counters"]["primed"] == 2


def test_worker_registries_do_not_leak_into_parent():
    before = default_registry().value("units.run")
    run_sharded(_square_unit, 3, seed=0, workers=1)
    assert default_registry().value("units.run") == before


def test_workers_clamped_to_unit_count():
    run = run_sharded(_square_unit, 2, seed=0, workers=8)
    assert run.workers == 2


def test_unit_exception_propagates():
    with pytest.raises(RuntimeError, match="exploded"):
        run_sharded(_boom_unit, 3, seed=0, workers=1)
    with pytest.raises(Exception):
        run_sharded(_boom_unit, 3, seed=0, workers=2)
