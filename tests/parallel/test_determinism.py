"""The acceptance invariant: parallel == serial, bit for bit.

Same-seed runs at different worker counts must produce identical launch
digests, identical chaos rows/detection_rate, and exactly-equal merged
counters.  Sizes are kept small; the property is about equality, not
scale.
"""

import pytest

from repro.faults.chaos import run_chaos_sweep
from repro.parallel.runners import run_boot_fleet, run_chaos_sweep_parallel
from repro.serverless.bulk import run_bulk_traffic

#: wall-clock perf counters (cache hits, vectorized crypto bytes) track
#: *process-local* work, which legitimately depends on worker count and
#: fork-inherited cache warmth; the determinism contract covers the
#: virtual-time series only (docs/PARALLELISM.md)
WALLCLOCK_PREFIXES = ("cache.", "crypto.")


def _virtual(series: dict) -> dict:
    return {
        k: v
        for k, v in series.items()
        if not k.startswith(WALLCLOCK_PREFIXES)
    }


def test_boot_fleet_parallel_matches_serial():
    serial = run_boot_fleet(6, seed=5, workers=1)
    parallel = run_boot_fleet(6, seed=5, workers=2)
    assert [r["digest"] for r in serial.results] == [
        r["digest"] for r in parallel.results
    ]
    assert [r["boot_ms"] for r in serial.results] == [
        r["boot_ms"] for r in parallel.results
    ]
    assert _virtual(serial.metrics["counters"]) == _virtual(
        parallel.metrics["counters"]
    )
    # histogram bucket counts are integer-exact; sums may differ by an
    # ulp because float addition is not associative across shard order
    sh, ph = serial.metrics["histograms"], parallel.metrics["histograms"]
    assert set(sh) == set(ph)
    for name in sh:
        assert sh[name]["buckets"] == ph[name]["buckets"], name
        assert sh[name]["count"] == ph[name]["count"], name
        assert sh[name]["sum"] == pytest.approx(ph[name]["sum"], rel=1e-12)


def test_boot_fleet_identical_image_identical_digest():
    run = run_boot_fleet(4, seed=9, workers=2)
    digests = {r["digest"] for r in run.results}
    assert len(digests) == 1  # one image, one measurement
    assert digests != {""}


def test_chaos_parallel_matches_serial_sweep():
    kwargs = dict(
        seed=777, functions=3, horizon_s=4.0, rate_per_s=2.0
    )
    rates = (0.0, 0.1)
    serial = run_chaos_sweep(rates, **kwargs)
    parallel = run_chaos_sweep_parallel(rates, workers=2, **kwargs)
    assert parallel["detection_rate"] == serial["detection_rate"]
    assert parallel["sweep"] == serial["sweep"]  # byte-identical rows
    assert parallel == serial


def test_bulk_traffic_worker_count_invariant():
    serial = run_bulk_traffic(4, seed=3, workers=1, horizon_s=3.0)
    parallel = run_bulk_traffic(4, seed=3, workers=2, horizon_s=3.0)
    for key in (
        "invocations",
        "cold_starts",
        "warm_starts",
        "failed_invocations",
        "p50_start_delay_ms",
        "p99_start_delay_ms",
        "p50_cold_boot_ms",
        "p99_cold_boot_ms",
        "segment_rows",
    ):
        assert parallel[key] == serial[key], key
    assert parallel["workers"] == 2


def test_boot_fleet_trace_streams_merge():
    from repro.obs.profiler import profile
    from repro.sim.trace import merge_span_streams

    run = run_boot_fleet(3, seed=2, workers=2, trace=True)
    assert len(run.trace_streams) == 3
    merged = merge_span_streams(run.trace_streams, offsets="overlay")
    prof = profile(merged)
    assert len(prof.tracks) == 3  # one VM track per boot, prefixed
    for track in prof.tracks:
        assert prof.vm(track).phase_ms()  # phases attributed per shard
