"""Shared fixtures for the test suite.

Images are built once per session at the default (reduced) scale; the
build cache in :mod:`repro.formats.kernels` makes repeated fixture use
cheap.  Timing assertions always refer to nominal (paper-scale) sizes.
"""

from __future__ import annotations

import pytest

from repro.core.config import VmConfig
from repro.obs.metrics import reset_default_registry
from repro.core.severifast import SEVeriFast
from repro.formats.kernels import AWS, LUPINE, UBUNTU, build_initrd, build_kernel
from repro.hw.platform import Machine


@pytest.fixture(autouse=True)
def _reset_observability():
    """A fresh default metrics registry for every test.

    The registry (which also backs the :mod:`repro.perf` counter shim)
    is process-global; without this, counter state would depend on test
    execution order.  Content-addressed caches are deliberately *not*
    cleared — session-scoped fixtures rely on them staying warm.
    """
    reset_default_registry()
    yield


@pytest.fixture
def machine() -> Machine:
    return Machine()


@pytest.fixture
def sf() -> SEVeriFast:
    return SEVeriFast()


@pytest.fixture
def aws_config() -> VmConfig:
    return VmConfig(kernel=AWS)


@pytest.fixture
def lupine_config() -> VmConfig:
    return VmConfig(kernel=LUPINE)


@pytest.fixture
def ubuntu_config() -> VmConfig:
    return VmConfig(kernel=UBUNTU)


@pytest.fixture(scope="session")
def aws_artifacts():
    return build_kernel(AWS)


@pytest.fixture(scope="session")
def initrd_blob():
    return build_initrd()
