"""Batch/Shamir ECDSA verification agrees exactly with the scalar path.

The batched guest-owner verify path is only a *throughput* change: for
any mix of valid and defective ``(key, message, signature)`` triples,
:func:`repro.crypto.ecdsa.verify_batch` must accept and reject exactly
the same items as a scalar ``verify`` loop — including pinpointing a
single forged signature hiding in an otherwise valid batch.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import perf
from repro.crypto.ecdsa import (
    _COMB_THRESHOLD,
    N,
    Signature,
    SigningKey,
    verify,
    verify_batch,
)


def _scalar_verdicts(items):
    """The reference answer: the pure double-and-add ladder, uncached."""
    with perf.scoped(vectorized=False, caches=False):
        return [verify(public, message, sig) for public, message, sig in items]


def _batch_verdicts(items):
    with perf.scoped(vectorized=True, caches=True):
        perf.clear_all_caches()
        return verify_batch(items)


def _make_item(seed: bytes, message: bytes, defect: str):
    """One triple with a chosen defect (or none)."""
    key = SigningKey.from_seed(seed)
    sig = key.sign(message)
    if defect == "message":
        message = message + b"!"
    elif defect == "signature":
        sig = Signature(sig.r, (sig.s % (N - 2)) + 1 if sig.s != 1 else 2)
    elif defect == "wrong-key":
        key = SigningKey.from_seed(seed + b"-other")
    return key.public, message, sig


@given(
    defects=st.lists(
        st.sampled_from(["ok", "message", "signature", "wrong-key"]),
        min_size=1,
        max_size=12,
    ),
    keys=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=20, deadline=None)
def test_batch_matches_scalar_on_any_mix(defects, keys):
    """Property: identical accept/reject sets for arbitrary defect mixes."""
    items = [
        _make_item(b"batch-key-%d" % (i % keys), b"report body %d" % i, defect)
        for i, defect in enumerate(defects)
    ]
    assert _batch_verdicts(items) == _scalar_verdicts(items)


@given(forged_at=st.integers(min_value=0, max_value=9))
@settings(max_examples=10, deadline=None)
def test_batch_pinpoints_single_forgery(forged_at):
    """One forged signature in a valid batch is located, not smeared."""
    items = [
        _make_item(
            b"fleet-vcek",
            b"attestation report %d" % i,
            "signature" if i == forged_at else "ok",
        )
        for i in range(10)
    ]
    verdicts = _batch_verdicts(items)
    assert verdicts == [i != forged_at for i in range(10)]


def test_batch_above_comb_threshold_matches_scalar():
    """The comb-table path (hot key signing many items) stays exact."""
    count = _COMB_THRESHOLD + 4
    items = [
        _make_item(b"hot-vcek", b"report %d" % i, "ok") for i in range(count)
    ]
    items[count // 2] = _make_item(b"hot-vcek", b"report x", "signature")
    verdicts = _batch_verdicts(items)
    assert verdicts == _scalar_verdicts(items)
    assert verdicts.count(False) == 1


def test_empty_batch():
    assert verify_batch([]) == []


def test_shamir_single_verify_matches_reference():
    """The fast single-verify path (Shamir window) agrees with the
    reference ladder on both accepting and rejecting inputs."""
    key = SigningKey.from_seed(b"shamir-check")
    good = key.sign(b"measurement")
    bad = Signature(good.r ^ 1, good.s)
    for sig, expected in ((good, True), (bad, False)):
        with perf.scoped(vectorized=True, caches=False):
            fast = verify(key.public, b"measurement", sig)
        with perf.scoped(vectorized=False, caches=False):
            slow = verify(key.public, b"measurement", sig)
        assert fast == slow == expected


def test_batch_with_vectorization_off_is_the_scalar_loop():
    """REPRO_VECTORIZE=0 must not change verify_batch's answers."""
    items = [
        _make_item(b"k%d" % i, b"m%d" % i, "ok" if i % 2 else "message")
        for i in range(6)
    ]
    with perf.scoped(vectorized=False, caches=False):
        off = verify_batch(items)
    assert off == _batch_verdicts(items)


def test_out_of_range_and_off_curve_items_rejected_in_batch():
    """Degenerate signatures get per-item False, never an exception."""
    key = SigningKey.from_seed(b"degenerate")
    good = key.sign(b"m")
    items = [
        (key.public, b"m", good),
        (key.public, b"m", Signature(0, 1)),
        (key.public, b"m", Signature(N, 1)),
        (key.public, b"m", Signature(1, 0)),
    ]
    assert _batch_verdicts(items) == [True, False, False, False]
    assert _scalar_verdicts(items) == [True, False, False, False]


@pytest.mark.parametrize("repeats", [2, 5])
def test_repeated_triples_served_consistently(repeats):
    """The same triple many times in one batch: one verdict, repeated."""
    item = _make_item(b"dup", b"dup message", "ok")
    forged = _make_item(b"dup", b"dup message", "signature")
    items = [item] * repeats + [forged] + [item] * repeats
    verdicts = _batch_verdicts(items)
    assert verdicts == [True] * repeats + [False] + [True] * repeats
