"""DEFLATE comparator codec."""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.gzipcodec import GzipError, gzip_compress, gzip_decompress


def test_roundtrip():
    data = b"kernel code " * 1000
    assert gzip_decompress(gzip_compress(data)) == data


def test_denser_than_input_on_text():
    data = b"the quick brown fox " * 500
    assert len(gzip_compress(data)) < len(data) // 5


def test_max_output_enforced():
    data = b"a" * 10_000
    with pytest.raises(GzipError):
        gzip_decompress(gzip_compress(data), max_output=100)


def test_garbage_rejected():
    with pytest.raises(GzipError):
        gzip_decompress(b"\x00\x01\x02\x03")


def test_level_affects_size():
    data = os.urandom(64) * 200
    fast = gzip_compress(data, level=1)
    best = gzip_compress(data, level=9)
    assert len(best) <= len(fast)
    assert gzip_decompress(best) == data


@given(st.binary(max_size=4096))
@settings(max_examples=40, deadline=None)
def test_roundtrip_property(data):
    assert gzip_decompress(gzip_compress(data)) == data
