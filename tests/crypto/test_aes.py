"""AES-128 against FIPS 197 / NIST SP 800-38A vectors."""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import AES128, _SBOX, _INV_SBOX, _gf_inv, _gf_mul


def test_fips197_appendix_c1():
    key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
    plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
    expected = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
    cipher = AES128(key)
    assert cipher.encrypt_block(plaintext) == expected
    assert cipher.decrypt_block(expected) == plaintext


@pytest.mark.parametrize(
    "plaintext,expected",
    [
        ("6bc1bee22e409f96e93d7e117393172a", "3ad77bb40d7a3660a89ecaf32466ef97"),
        ("ae2d8a571e03ac9c9eb76fac45af8e51", "f5d3d58503b9699de785895a96fdbaaf"),
        ("30c81c46a35ce411e5fbc1191a0a52ef", "43b1cd7f598ece23881b00e3ed030688"),
        ("f69f2445df4f9b17ad2b417be66c3710", "7b0c785e27e8ad3f8223207104725dd4"),
    ],
)
def test_sp800_38a_ecb_vectors(plaintext, expected):
    key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    cipher = AES128(key)
    assert cipher.encrypt_block(bytes.fromhex(plaintext)).hex() == expected


def test_sbox_is_a_permutation():
    assert sorted(_SBOX) == list(range(256))
    assert all(_INV_SBOX[_SBOX[x]] == x for x in range(256))


def test_sbox_known_entries():
    # Spot-check against the published table.
    assert _SBOX[0x00] == 0x63
    assert _SBOX[0x01] == 0x7C
    assert _SBOX[0x53] == 0xED
    assert _SBOX[0xFF] == 0x16


def test_gf_arithmetic():
    # x * x^-1 == 1 for all non-zero field elements.
    for a in range(1, 256):
        assert _gf_mul(a, _gf_inv(a)) == 1
    assert _gf_inv(0) == 0


def test_key_length_enforced():
    with pytest.raises(ValueError):
        AES128(b"short")


def test_block_length_enforced():
    cipher = AES128(b"k" * 16)
    with pytest.raises(ValueError):
        cipher.encrypt_block(b"x" * 15)
    with pytest.raises(ValueError):
        cipher.decrypt_block(b"x" * 17)


def test_different_keys_different_ciphertext():
    block = os.urandom(16)
    assert AES128(b"a" * 16).encrypt_block(block) != AES128(b"b" * 16).encrypt_block(block)


@given(st.binary(min_size=16, max_size=16), st.binary(min_size=16, max_size=16))
@settings(max_examples=40, deadline=None)
def test_roundtrip_property(key, block):
    cipher = AES128(key)
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block
