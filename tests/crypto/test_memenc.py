"""The memory-encryption engine's SEV contract, in both modes."""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.memenc import BLOCK_SIZE, MemoryEncryptionEngine

MODES = ["xex", "ctr-fast"]


@pytest.fixture(params=MODES)
def engine(request):
    return MemoryEncryptionEngine(b"k" * 16, mode=request.param)


def test_roundtrip(engine):
    plaintext = os.urandom(256)
    ciphertext = engine.encrypt(0x1000, plaintext)
    assert ciphertext != plaintext
    assert engine.decrypt(0x1000, ciphertext) == plaintext


def test_address_tweak(engine):
    """Identical plaintext at different PAs has different ciphertext —
    the property that breaks page deduplication under SEV (§7.1)."""
    plaintext = b"\xab" * 64
    assert engine.encrypt(0x1000, plaintext) != engine.encrypt(0x2000, plaintext)


def test_per_block_tweak(engine):
    """Even adjacent identical blocks within one region differ."""
    plaintext = b"\xcd" * BLOCK_SIZE * 4
    ciphertext = engine.encrypt(0x0, plaintext)
    blocks = [
        ciphertext[i : i + BLOCK_SIZE] for i in range(0, len(ciphertext), BLOCK_SIZE)
    ]
    assert len(set(blocks)) == len(blocks)


def test_key_dependence():
    for mode in MODES:
        e1 = MemoryEncryptionEngine(b"1" * 16, mode=mode)
        e2 = MemoryEncryptionEngine(b"2" * 16, mode=mode)
        plaintext = b"secret data here" * 4
        assert e1.encrypt(0x0, plaintext) != e2.encrypt(0x0, plaintext)


def test_wrong_key_garbles(engine):
    other = MemoryEncryptionEngine(os.urandom(16), mode=engine.mode)
    plaintext = b"p" * 64
    assert other.decrypt(0x0, engine.encrypt(0x0, plaintext)) != plaintext


def test_wrong_address_garbles(engine):
    """Decryption at a remapped address fails — the host cannot relocate
    encrypted pages (replay/remap protection intuition)."""
    plaintext = b"p" * 64
    ciphertext = engine.encrypt(0x1000, plaintext)
    assert engine.decrypt(0x3000, ciphertext) != plaintext


def test_alignment_enforced(engine):
    with pytest.raises(ValueError):
        engine.encrypt(0x1001, b"x" * 16)
    with pytest.raises(ValueError):
        engine.encrypt(0x1000, b"x" * 15)


def test_bad_key_and_mode():
    with pytest.raises(ValueError):
        MemoryEncryptionEngine(b"short")
    with pytest.raises(ValueError):
        MemoryEncryptionEngine(b"k" * 16, mode="cbc")


def test_determinism(engine):
    plaintext = b"d" * 128
    assert engine.encrypt(0x4000, plaintext) == engine.encrypt(0x4000, plaintext)


@given(
    st.binary(min_size=16, max_size=16),
    st.integers(min_value=0, max_value=2**30).map(lambda v: v * 16),
    st.binary(min_size=1, max_size=20).map(lambda b: b * 16),
)
@settings(max_examples=30, deadline=None)
def test_roundtrip_property(key, pa, plaintext):
    for mode in MODES:
        engine = MemoryEncryptionEngine(key, mode=mode)
        assert engine.decrypt(pa, engine.encrypt(pa, plaintext)) == plaintext
