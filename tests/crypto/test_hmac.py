"""HMAC/HKDF against RFC vectors and the stdlib oracle."""

import hashlib
import hmac as stdlib_hmac

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.hmacmod import derive_key, hkdf_expand, hkdf_extract, hmac_sha256


def test_rfc4231_case_1():
    key = b"\x0b" * 20
    assert hmac_sha256(key, b"Hi There").hex() == (
        "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    )


def test_rfc4231_case_2():
    assert hmac_sha256(b"Jefe", b"what do ya want for nothing?").hex() == (
        "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    )


def test_rfc4231_long_key():
    # Keys longer than the block size are hashed first.
    key = b"\xaa" * 131
    message = b"Test Using Larger Than Block-Size Key - Hash Key First"
    assert hmac_sha256(key, message).hex() == (
        "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
    )


def test_rfc5869_case_1():
    ikm = b"\x0b" * 22
    salt = bytes(range(13))
    info = bytes(range(0xF0, 0xFA))
    prk = hkdf_extract(salt, ikm)
    assert prk.hex() == (
        "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
    )
    okm = hkdf_expand(prk, info, 42)
    assert okm.hex() == (
        "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
        "34007208d5b887185865"
    )


def test_hkdf_empty_salt_defaults_to_zeros():
    assert hkdf_extract(b"", b"ikm") == hkdf_extract(b"\x00" * 32, b"ikm")


def test_hkdf_expand_length_limit():
    prk = hkdf_extract(b"salt", b"ikm")
    with pytest.raises(ValueError):
        hkdf_expand(prk, b"", 255 * 32 + 1)


def test_derive_key_distinct_labels():
    master = b"m" * 32
    assert derive_key(master, "guest-1") != derive_key(master, "guest-2")
    assert len(derive_key(master, "guest-1")) == 16
    assert derive_key(master, "guest-1", 32) != derive_key(master, "guest-1", 16) + b""


@given(st.binary(max_size=200), st.binary(max_size=500))
@settings(max_examples=60, deadline=None)
def test_matches_stdlib_hmac(key, message):
    expected = stdlib_hmac.new(key, message, hashlib.sha256).digest()
    assert hmac_sha256(key, message) == expected
