"""SHA-2 against FIPS vectors and the stdlib oracle."""

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.sha2 import sha256, sha384, sha512

# FIPS 180-4 example vectors.
_VECTORS_256 = {
    b"": "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
    b"abc": "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
    b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq": (
        "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    ),
}

_VECTORS_384 = {
    b"abc": (
        "cb00753f45a35e8bb5a03d699ac65007272c32ab0eded1631a8b605a43ff5bed"
        "8086072ba1e7cc2358baeca134c825a7"
    ),
}

_VECTORS_512 = {
    b"abc": (
        "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a"
        "2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f"
    ),
}


@pytest.mark.parametrize("message,expected", sorted(_VECTORS_256.items()))
def test_sha256_fips_vectors(message, expected):
    assert sha256(message).hex() == expected


@pytest.mark.parametrize("message,expected", sorted(_VECTORS_384.items()))
def test_sha384_fips_vectors(message, expected):
    assert sha384(message).hex() == expected


@pytest.mark.parametrize("message,expected", sorted(_VECTORS_512.items()))
def test_sha512_fips_vectors(message, expected):
    assert sha512(message).hex() == expected


def test_million_a_sha256():
    # The classic long-message vector.
    assert (
        sha256(b"a" * 1_000_000, accelerated=False).hex()
        == "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    )


@pytest.mark.parametrize("length", [0, 1, 55, 56, 57, 63, 64, 65, 127, 128, 129, 1000])
def test_padding_boundaries_match_stdlib(length):
    data = bytes(range(256)) * (length // 256 + 1)
    data = data[:length]
    assert sha256(data) == hashlib.sha256(data).digest()
    assert sha384(data) == hashlib.sha384(data).digest()
    assert sha512(data) == hashlib.sha512(data).digest()


@given(st.binary(max_size=2048))
@settings(max_examples=60, deadline=None)
def test_sha256_matches_stdlib(data):
    assert sha256(data) == hashlib.sha256(data).digest()


@given(st.binary(max_size=2048))
@settings(max_examples=40, deadline=None)
def test_sha384_matches_stdlib(data):
    assert sha384(data) == hashlib.sha384(data).digest()


@given(st.binary(max_size=1024))
@settings(max_examples=30, deadline=None)
def test_accelerated_path_identical(data):
    assert sha256(data, accelerated=True) == sha256(data, accelerated=False)
    assert sha512(data, accelerated=True) == sha512(data, accelerated=False)
