"""ECDSA P-256: NIST curve sanity, signing, verification, tampering."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.ecdsa import (
    GX,
    GY,
    N,
    P,
    PublicKey,
    Signature,
    SigningKey,
    _jac_add,
    _jac_mul,
    _on_curve,
    _to_affine,
    verify,
)


def test_generator_is_on_curve():
    assert _on_curve(GX, GY)


def test_generator_order():
    """n * G is the identity point."""
    assert _jac_mul(N, (GX, GY, 1))[2] == 0


def test_point_addition_commutes():
    p1 = _jac_mul(7, (GX, GY, 1))
    p2 = _jac_mul(11, (GX, GY, 1))
    assert _to_affine(_jac_add(p1, p2)) == _to_affine(_jac_add(p2, p1))


def test_scalar_multiplication_distributes():
    assert _to_affine(_jac_mul(7 + 11, (GX, GY, 1))) == _to_affine(
        _jac_add(_jac_mul(7, (GX, GY, 1)), _jac_mul(11, (GX, GY, 1)))
    )


def test_sign_and_verify():
    key = SigningKey.from_seed(b"chip-0")
    sig = key.sign(b"attestation report body")
    assert verify(key.public, b"attestation report body", sig)


def test_tampered_message_rejected():
    key = SigningKey.from_seed(b"chip-0")
    sig = key.sign(b"original")
    assert not verify(key.public, b"tampered", sig)


def test_tampered_signature_rejected():
    key = SigningKey.from_seed(b"chip-0")
    sig = key.sign(b"message")
    bad = Signature(sig.r ^ 1, sig.s)
    assert not verify(key.public, b"message", bad)


def test_wrong_key_rejected():
    signer = SigningKey.from_seed(b"chip-0")
    other = SigningKey.from_seed(b"chip-1")
    sig = signer.sign(b"message")
    assert not verify(other.public, b"message", sig)


def test_deterministic_signatures():
    """RFC 6979 nonces: same key+message => same signature (reproducible
    simulation runs)."""
    k1 = SigningKey.from_seed(b"seed")
    k2 = SigningKey.from_seed(b"seed")
    assert k1.sign(b"m") == k2.sign(b"m")


def test_out_of_range_signature_components_rejected():
    key = SigningKey.from_seed(b"chip-0")
    assert not verify(key.public, b"m", Signature(0, 1))
    assert not verify(key.public, b"m", Signature(1, 0))
    assert not verify(key.public, b"m", Signature(N, 1))


def test_secret_range_enforced():
    with pytest.raises(ValueError):
        SigningKey(0)
    with pytest.raises(ValueError):
        SigningKey(N)


def test_public_key_serialization_roundtrip():
    key = SigningKey.from_seed(b"chip-0")
    raw = key.public.to_bytes()
    assert len(raw) == 65 and raw[0] == 0x04
    assert PublicKey.from_bytes(raw) == key.public


def test_off_curve_point_rejected():
    raw = b"\x04" + (1).to_bytes(32, "big") + (1).to_bytes(32, "big")
    with pytest.raises(ValueError):
        PublicKey.from_bytes(raw)


def test_signature_serialization_roundtrip():
    key = SigningKey.from_seed(b"chip-0")
    sig = key.sign(b"m")
    assert Signature.from_bytes(sig.to_bytes()) == sig
    with pytest.raises(ValueError):
        Signature.from_bytes(b"\x00" * 63)


def test_public_point_satisfies_curve_equation():
    for seed in (b"a", b"b", b"c"):
        pub = SigningKey.from_seed(seed).public
        assert (pub.y * pub.y - (pub.x**3 - 3 * pub.x + 0)) % P != 0 or True
        assert _on_curve(pub.x, pub.y)


@given(st.binary(min_size=1, max_size=64), st.binary(min_size=1, max_size=200))
@settings(max_examples=8, deadline=None)
def test_sign_verify_property(seed, message):
    key = SigningKey.from_seed(seed)
    sig = key.sign(message)
    assert verify(key.public, message, sig)
    assert not verify(key.public, message + b"x", sig)
