"""LZ4 block codec: roundtrips, format details, malicious inputs."""

import os
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.lz4 import LZ4Error, lz4_compress, lz4_decompress


def test_empty_roundtrip():
    assert lz4_decompress(lz4_compress(b"")) == b""


@pytest.mark.parametrize(
    "data",
    [
        b"a",
        b"hello",
        b"hello world " * 100,
        b"\x00" * 10_000,
        bytes(range(256)) * 40,
        b"abcabcabcabc" + os.urandom(64) + b"abcabcabcabc",
    ],
)
def test_roundtrip_known_shapes(data):
    assert lz4_decompress(lz4_compress(data)) == data


def test_repetitive_data_compresses_well():
    data = b"0123456789abcdef" * 4096
    compressed = lz4_compress(data)
    assert len(compressed) < len(data) // 20


def test_random_data_roundtrips_with_small_expansion():
    data = os.urandom(8192)
    compressed = lz4_compress(data)
    assert lz4_decompress(compressed) == data
    assert len(compressed) < len(data) * 1.05


def test_overlapping_match_rle_semantics():
    """offset < match length copies byte-at-a-time (RLE)."""
    data = b"x" * 1000
    assert lz4_decompress(lz4_compress(data)) == data


def test_long_literal_runs_use_extension_bytes():
    data = os.urandom(300)  # incompressible, forces a >15 literal length
    assert lz4_decompress(lz4_compress(data)) == data


def test_max_output_enforced():
    data = b"a" * 10_000
    compressed = lz4_compress(data)
    with pytest.raises(LZ4Error):
        lz4_decompress(compressed, max_output=100)
    assert lz4_decompress(compressed, max_output=10_000) == data


def test_empty_block_rejected():
    with pytest.raises(LZ4Error):
        lz4_decompress(b"")


def test_invalid_offset_rejected():
    # token: 0 literals + match; offset 0 is invalid.
    with pytest.raises(LZ4Error):
        lz4_decompress(bytes([0x0F, 0x00, 0x00]))


def test_offset_beyond_output_rejected():
    # 1 literal, then a match with offset 200 into 1 byte of history.
    block = bytes([0x1F]) + b"A" + bytes([200, 0])
    with pytest.raises(LZ4Error):
        lz4_decompress(block)


def test_truncated_block_rejected():
    data = b"hello world " * 50
    compressed = lz4_compress(data)
    with pytest.raises(LZ4Error):
        lz4_decompress(compressed[: len(compressed) // 2] or b"\x10")


def test_deterministic_compression():
    data = os.urandom(4096)
    assert lz4_compress(data) == lz4_compress(data)


def test_mixed_content_roundtrip():
    rng = random.Random(42)
    parts = []
    for _ in range(50):
        if rng.random() < 0.5:
            parts.append(bytes([rng.randrange(256)]) * rng.randrange(1, 500))
        else:
            parts.append(rng.randbytes(rng.randrange(1, 500)))
    data = b"".join(parts)
    assert lz4_decompress(lz4_compress(data), max_output=len(data)) == data


@given(st.binary(max_size=4096))
@settings(max_examples=80, deadline=None)
def test_roundtrip_property(data):
    assert lz4_decompress(lz4_compress(data)) == data


@given(st.binary(min_size=1, max_size=50), st.integers(min_value=1, max_value=200))
@settings(max_examples=40, deadline=None)
def test_repeated_pattern_roundtrip_property(pattern, repeats):
    data = pattern * repeats
    compressed = lz4_compress(data)
    assert lz4_decompress(compressed, max_output=len(data)) == data


@given(st.binary(min_size=1, max_size=300))
@settings(max_examples=40, deadline=None)
def test_decompressor_never_crashes_on_garbage(garbage):
    """Malicious blocks either decode to something or raise LZ4Error —
    never crash or hang (the verifier feeds untrusted payloads here)."""
    try:
        lz4_decompress(garbage, max_output=1 << 16)
    except LZ4Error:
        pass
