"""RetryPolicy: backoff arithmetic, recovery hooks, virtual-time cost."""

from __future__ import annotations

import pytest

from repro.faults.plan import FaultPlan, FaultSpec
from repro.faults.retry import RetryPolicy, psp_command, sev_retryable
from repro.hw.platform import Machine
from repro.sev.api import SevErrorCode, SevLaunchError
from repro.sim import Simulator


class TestRetryableClassification:
    def test_busy_is_retryable(self):
        assert sev_retryable(SevLaunchError("x", code=SevErrorCode.BUSY))

    def test_fatal_is_not(self):
        assert not sev_retryable(
            SevLaunchError("x", code=SevErrorCode.HWERROR_UNSAFE)
        )

    def test_codeless_error_is_not(self):
        assert not sev_retryable(SevLaunchError("legacy, no code"))
        assert not sev_retryable(ValueError("unrelated"))

    def test_flush_codes_marked(self):
        assert SevErrorCode.DF_FLUSH_REQUIRED.needs_df_flush
        assert SevErrorCode.RESOURCE_LIMIT.needs_df_flush
        assert not SevErrorCode.BUSY.needs_df_flush


class TestBackoff:
    def test_exponential_with_cap(self):
        policy = RetryPolicy(
            max_attempts=10, base_delay_ms=5.0, multiplier=2.0, max_delay_ms=30.0
        )
        assert [policy.delay_ms(i) for i in range(4)] == [5.0, 10.0, 20.0, 30.0]

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_ms=-1.0)


class TestRun:
    def _flaky(self, failures: int, code=SevErrorCode.BUSY):
        state = {"left": failures, "attempts": 0}

        def factory():
            state["attempts"] += 1
            if state["left"] > 0:
                state["left"] -= 1
                raise SevLaunchError("injected", code=code)
            return "ok"
            yield  # pragma: no cover - makes factory a generator

        return factory, state

    def test_retries_until_success(self):
        sim = Simulator()
        factory, state = self._flaky(2)
        policy = RetryPolicy(max_attempts=3, base_delay_ms=1.0)
        result = sim.run_process(policy.run(sim, factory, label="t"))
        assert result == "ok"
        assert state["attempts"] == 3

    def test_exhausted_attempts_raise(self):
        sim = Simulator()
        factory, _state = self._flaky(5)
        policy = RetryPolicy(max_attempts=3, base_delay_ms=1.0)
        with pytest.raises(SevLaunchError, match="injected"):
            sim.run_process(policy.run(sim, factory, label="t"))

    def test_non_retryable_fails_fast(self):
        sim = Simulator()
        factory, state = self._flaky(1, code=SevErrorCode.HWERROR_UNSAFE)
        policy = RetryPolicy(max_attempts=5, base_delay_ms=1.0)
        with pytest.raises(SevLaunchError):
            sim.run_process(policy.run(sim, factory, label="t"))
        assert state["attempts"] == 1

    def test_backoff_consumes_virtual_time(self):
        sim = Simulator()
        factory, _state = self._flaky(2)
        policy = RetryPolicy(
            max_attempts=3, base_delay_ms=5.0, multiplier=2.0
        )
        sim.run_process(policy.run(sim, factory, label="t"))
        assert sim.now == pytest.approx(5.0 + 10.0)

    def test_on_retry_hook_sees_each_failure(self):
        sim = Simulator()
        factory, _state = self._flaky(2)
        seen = []
        policy = RetryPolicy(max_attempts=3, base_delay_ms=1.0)
        sim.run_process(
            policy.run(
                sim,
                factory,
                label="t",
                on_retry=lambda exc, attempt: seen.append(attempt),
            )
        )
        assert seen == [0, 1]

    def test_retries_noted_in_fault_plan(self):
        sim = Simulator()
        plan = sim.inject(FaultPlan(seed=0))
        factory, _state = self._flaky(2)
        policy = RetryPolicy(max_attempts=3, base_delay_ms=1.0)
        sim.run_process(policy.run(sim, factory, label="op"))
        assert plan.stats["retried"] == 2
        assert plan.stats["retried:op"] == 2


class TestPspCommand:
    def test_df_flush_recovery_recycles_asids(self):
        """RESOURCE_LIMIT at ACTIVATE -> DF_FLUSH between attempts."""
        machine = Machine()
        machine.psp.asid_capacity = 1
        sim = machine.sim

        # Occupy, then retire the only slot: ACTIVATE must fail until a
        # DF_FLUSH recycles it.
        first = machine.new_sev_context()
        machine.psp.activate(first)
        machine.psp.deactivate(first)

        second = machine.new_sev_context()
        policy = RetryPolicy(max_attempts=3, base_delay_ms=1.0)

        def attempt():
            machine.psp.activate(second)
            return "activated"
            yield  # pragma: no cover - generator marker

        result = sim.run_process(
            psp_command(sim, machine.psp, policy, attempt, "ACTIVATE")
        )
        assert result == "activated"
        assert machine.psp.active_guests == 1


class TestElapsedBudget:
    """max_elapsed_ms: a virtual-time budget across the whole run."""

    def _always_busy(self):
        state = {"attempts": 0}

        def factory():
            state["attempts"] += 1
            raise SevLaunchError("injected", code=SevErrorCode.BUSY)
            yield  # pragma: no cover - generator marker

        return factory, state

    def test_budget_exhaustion_raises_original_error(self):
        sim = Simulator()
        factory, state = self._always_busy()
        # delays 10, 20, 40, ... — a 25ms budget admits only the first
        # retry (10ms); the second would land at 30ms > 25ms.
        policy = RetryPolicy(
            max_attempts=10, base_delay_ms=10.0, multiplier=2.0,
            max_elapsed_ms=25.0,
        )
        with pytest.raises(SevLaunchError, match="injected"):
            sim.run_process(policy.run(sim, factory, label="t"))
        assert state["attempts"] == 2
        assert sim.now <= 25.0

    def test_budget_admits_success_within_window(self):
        sim = Simulator()
        factory, state = self._flaky_for_budget(2)
        policy = RetryPolicy(
            max_attempts=10, base_delay_ms=5.0, max_elapsed_ms=100.0
        )
        result = sim.run_process(policy.run(sim, factory, label="t"))
        assert result == "ok"
        assert state["attempts"] == 3

    def test_no_budget_means_attempt_bound_only(self):
        sim = Simulator()
        factory, state = self._always_busy()
        policy = RetryPolicy(max_attempts=4, base_delay_ms=1.0)
        with pytest.raises(SevLaunchError):
            sim.run_process(policy.run(sim, factory, label="t"))
        assert state["attempts"] == 4

    def test_budget_counts_from_run_start_not_sim_zero(self):
        sim = Simulator()
        factory, state = self._always_busy()
        policy = RetryPolicy(
            max_attempts=10, base_delay_ms=10.0, multiplier=2.0,
            max_elapsed_ms=25.0,
        )

        def late():
            yield sim.timeout(500.0)
            yield from policy.run(sim, factory, label="t")

        with pytest.raises(SevLaunchError):
            sim.run_process(late())
        # same two attempts as at t=0: the budget is relative
        assert state["attempts"] == 2

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_elapsed_ms=-1.0)

    def _flaky_for_budget(self, failures: int):
        state = {"left": failures, "attempts": 0}

        def factory():
            state["attempts"] += 1
            if state["left"] > 0:
                state["left"] -= 1
                raise SevLaunchError("injected", code=SevErrorCode.BUSY)
            return "ok"
            yield  # pragma: no cover - generator marker

        return factory, state
