"""FaultPlan: determinism, per-site isolation, payload helpers."""

from __future__ import annotations

import pytest

from repro.faults.plan import (
    FaultEvent,
    FaultPlan,
    FaultSpec,
    flip_bit,
    truncate_tail,
)
from repro.sim import Simulator


def _drain(plan: FaultPlan, site: str, draws: int, **kw) -> list[FaultEvent]:
    return [e for e in (plan.draw(site, **kw) for _ in range(draws)) if e]


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        a = FaultPlan(seed=7, specs=(FaultSpec("psp.command", 0.3),))
        b = FaultPlan(seed=7, specs=(FaultSpec("psp.command", 0.3),))
        ea = _drain(a, "psp.command", 200)
        eb = _drain(b, "psp.command", 200)
        assert [(e.seq, e.kind, e.salt) for e in ea] == [
            (e.seq, e.kind, e.salt) for e in eb
        ]
        assert ea  # the schedule is non-trivial at rate 0.3

    def test_different_seeds_differ(self):
        a = FaultPlan(seed=1, specs=(FaultSpec("psp.command", 0.3),))
        b = FaultPlan(seed=2, specs=(FaultSpec("psp.command", 0.3),))
        assert [e.salt for e in _drain(a, "psp.command", 200)] != [
            e.salt for e in _drain(b, "psp.command", 200)
        ]

    def test_sites_use_independent_streams(self):
        """Draws at one site never shift another site's schedule."""
        solo = FaultPlan(seed=3, specs=(FaultSpec("image.stage", 0.5),))
        expected = [e.salt for e in _drain(solo, "image.stage", 100)]

        mixed = FaultPlan(
            seed=3,
            specs=(FaultSpec("image.stage", 0.5), FaultSpec("psp.command", 0.5)),
        )
        got = []
        for _ in range(100):
            mixed.draw("psp.command")  # interleaved traffic at another site
            event = mixed.draw("image.stage")
            if event:
                got.append(event.salt)
        assert got == expected


class TestDrawSemantics:
    def test_unconfigured_site_consumes_no_randomness(self):
        plan = FaultPlan(seed=0, specs=(FaultSpec("psp.command", 0.5),))
        for _ in range(50):
            assert plan.draw("mem.host_tamper") is None
        assert "mem.host_tamper" not in plan._streams

    def test_rate_zero_never_fires(self):
        plan = FaultPlan(seed=0, specs=(FaultSpec("psp.command", 0.0),))
        assert _drain(plan, "psp.command", 500) == []
        assert plan.injected == 0

    def test_rate_one_always_fires(self):
        plan = FaultPlan(seed=0, specs=(FaultSpec("psp.command", 1.0),))
        assert len(_drain(plan, "psp.command", 20)) == 20

    def test_min_bytes_filters_small_writes(self):
        plan = FaultPlan(
            seed=0,
            specs=(FaultSpec("mem.host_tamper", 1.0, min_bytes=8192),),
        )
        assert plan.draw("mem.host_tamper", size=4096) is None
        assert plan.draw("mem.host_tamper", size=8192) is not None

    def test_max_fires_disarms_site(self):
        plan = FaultPlan(
            seed=0, specs=(FaultSpec("psp.command", 1.0, max_fires=2),)
        )
        assert len(_drain(plan, "psp.command", 10)) == 2

    def test_kind_weights_respected(self):
        plan = FaultPlan(
            seed=0,
            specs=(
                FaultSpec(
                    "psp.command", 1.0, kinds=(("busy", 3.0), ("fatal", 1.0))
                ),
            ),
        )
        kinds = [e.kind for e in _drain(plan, "psp.command", 400)]
        assert set(kinds) == {"busy", "fatal"}
        assert kinds.count("busy") > kinds.count("fatal")

    def test_events_timestamped_with_sim_clock(self):
        sim = Simulator()
        plan = sim.inject(FaultPlan(seed=0, specs=(FaultSpec("s", 1.0),)))

        def proc():
            yield sim.timeout(25.0)
            plan.draw("s")

        sim.run_process(proc())
        assert plan.events[0].at_ms == pytest.approx(25.0)

    def test_counters_accumulate(self):
        plan = FaultPlan(seed=0, specs=(FaultSpec("s", 1.0),))
        plan.draw("s")
        plan.note("retried")
        summary = plan.summary()
        assert summary["injected"] == 1
        assert summary["injected:s"] == 1
        assert summary["retried"] == 1


class TestSpecValidation:
    def test_rate_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="rate"):
            FaultSpec("s", 1.5)

    def test_duplicate_site_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            FaultPlan(specs=(FaultSpec("s", 0.1), FaultSpec("s", 0.2)))

    def test_empty_kinds_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            FaultSpec("s", 0.1, kinds=())


class TestPayloadHelpers:
    def test_flip_bit_always_changes_data(self):
        data = bytes(range(256))
        for salt in range(0, 2**20, 65537):
            assert flip_bit(data, salt) != data
            assert len(flip_bit(data, salt)) == len(data)

    def test_flip_bit_flips_exactly_one_bit(self):
        data = b"\x00" * 64
        flipped = flip_bit(data, 123456789)
        diff = [a ^ b for a, b in zip(data, flipped)]
        assert sum(bin(d).count("1") for d in diff) == 1

    def test_truncate_tail_always_changes_data(self):
        data = bytes(range(1, 200))
        for salt in (0, 1, 99, 2**40):
            assert truncate_tail(data, salt) != data

    def test_truncate_tail_zero_tail_falls_back_to_flip(self):
        data = b"\xaa" * 10 + b"\x00" * 90  # any tail cut lands in zeros
        assert truncate_tail(data, 5) != data

    def test_empty_data_passthrough(self):
        assert flip_bit(b"", 1) == b""
        assert truncate_tail(b"", 1) == b""
