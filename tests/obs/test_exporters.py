"""Exporter format and determinism.

The acceptance bar: two identical seeded runs dump byte-identical
Prometheus text and JSON.  Caches are cleared between runs (a warm cache
changes hit/miss counters, which is real — and really different — work).
"""

from repro import perf
from repro.core.config import VmConfig
from repro.core.severifast import SEVeriFast
from repro.formats.kernels import AWS
from repro.hw.platform import Machine
from repro.obs.metrics import MetricsRegistry, use_registry


def test_prometheus_text_format():
    reg = MetricsRegistry()
    reg.counter("psp.commands", help="PSP commands issued", command="LAUNCH_START").inc(2)
    reg.gauge("queue.depth").set(3)
    reg.histogram("svc_ms", buckets=(1.0, 10.0), help="service time").observe(0.5)
    text = reg.to_prometheus_text()
    assert text.splitlines() == [
        "# HELP psp_commands PSP commands issued",
        "# TYPE psp_commands counter",
        'psp_commands{command="LAUNCH_START"} 2',
        "# TYPE queue_depth gauge",
        "queue_depth 3",
        "# HELP svc_ms service time",
        "# TYPE svc_ms histogram",
        'svc_ms_bucket{le="1"} 1',
        'svc_ms_bucket{le="10"} 1',
        'svc_ms_bucket{le="+Inf"} 1',
        "svc_ms_sum 0.5",
        "svc_ms_count 1",
    ]
    assert text.endswith("\n")


def test_prometheus_label_escaping():
    reg = MetricsRegistry()
    reg.counter("c", path='a"b\\c').inc()
    assert 'path="a\\"b\\\\c"' in reg.to_prometheus_text()


def test_json_snapshot_shape():
    reg = MetricsRegistry()
    reg.counter("c", k="v").inc(2)
    reg.histogram("h", buckets=(1.0,)).observe(0.2)
    snap = reg.snapshot()
    assert snap["schema"] == "repro-metrics-v1"
    assert snap["counters"] == {'c{k="v"}': 2}
    assert snap["histograms"]["h"] == {
        "buckets": [["1", 1], ["+Inf", 1]],
        "sum": 0.2,
        "count": 1,
    }


def _instrumented_boot() -> MetricsRegistry:
    """One seeded cold boot against a cold cache, in a fresh registry."""
    perf.clear_all_caches()
    registry = MetricsRegistry()
    with use_registry(registry):
        machine = Machine()
        sf = SEVeriFast(machine=machine)
        sf.cold_boot(VmConfig(kernel=AWS), machine=machine)
    return registry


def test_identical_runs_export_identically():
    first = _instrumented_boot()
    second = _instrumented_boot()
    assert first.to_prometheus_text() == second.to_prometheus_text()
    assert first.to_json() == second.to_json()
    # And the dump is not trivially empty.
    assert "psp_commands" in first.to_prometheus_text()
    assert "boot_phase_ms" in first.to_prometheus_text()


def test_merge_then_export_is_deterministic():
    a = _instrumented_boot()
    b = _instrumented_boot()
    merged_ab = MetricsRegistry()
    merged_ab.merge(a)
    merged_ab.merge(b)
    merged_ba = MetricsRegistry()
    merged_ba.merge(b)
    merged_ba.merge(a)
    assert merged_ab.to_prometheus_text() == merged_ba.to_prometheus_text()
    # Counters doubled relative to a single run.
    assert merged_ab.value("sim.events_dispatched") == 2 * a.value(
        "sim.events_dispatched"
    )
