"""The benchmark regression gate, including the CLI exit status."""

import copy
import json

import pytest

from repro.cli import main
from repro.obs.regress import (
    CHAOS_RULES,
    Tolerance,
    compare_documents,
    detect_kind,
    flatten_numeric,
    rules_for_document,
)


def test_tolerance_two_sided():
    t = Tolerance(rel=0.1)
    assert t.judge(100.0, 105.0) == "ok"
    assert t.judge(100.0, 115.0) == "regressed"
    assert t.judge(100.0, 85.0) == "regressed"  # "both": any big move fails


def test_tolerance_directions():
    higher = Tolerance(rel=0.1, direction="higher_is_better")
    assert higher.judge(100.0, 150.0) == "improved"
    assert higher.judge(100.0, 50.0) == "regressed"
    lower = Tolerance(rel=0.1, direction="lower_is_better")
    assert lower.judge(100.0, 50.0) == "improved"
    assert lower.judge(100.0, 150.0) == "regressed"
    with pytest.raises(ValueError):
        Tolerance(direction="sideways")


def test_tolerance_abs_floor():
    t = Tolerance(rel=0.1, abs_tol=5.0)
    assert t.judge(2.0, 6.0) == "ok"  # |delta|=4 <= abs_tol even though rel tiny
    assert t.judge(2.0, 8.0) == "regressed"


def test_flatten_numeric_paths():
    doc = {"a": {"b": 1}, "list": [2.5, {"c": 3}], "flag": True, "s": "x"}
    assert flatten_numeric(doc) == {"a.b": 1, "list.0": 2.5, "list.1.c": 3}


def test_missing_metric_fails_gate():
    base = {"experiment": "chaos", "detection_rate": 1.0}
    cur = {"experiment": "chaos"}
    _kind, rules = rules_for_document(base)
    report = compare_documents(base, cur, rules)
    assert not report.ok
    assert report.regressions[0].status == "missing"


def test_detect_kind():
    assert detect_kind({"schema": "repro-perfbench-v1"}) == "wallclock"
    assert detect_kind({"schema": "repro-perfbench-v2"}) == "wallclock"
    assert detect_kind({"experiment": "chaos"}) == "chaos"
    assert detect_kind({"anything": 1}) == "generic"


def test_wallclock_v2_parallel_bands():
    """The v2 parallel leaves get their own (widest) bands; elapsed_s
    and run configuration are never compared."""
    base = {
        "schema": "repro-perfbench-v2",
        "workers": 4,
        "host_cpus": 8,
        "workloads": {
            "engine_events": {"dispatched": 60050, "events_s": 700000.0},
            "fig9_parallel": {
                "boots": 100,
                "workers": 4,
                "parallel_boots_s": 400.0,
                "parallel_speedup": 3.0,
                "elapsed_s": 0.25,
            },
        },
    }
    _kind, rules = rules_for_document(base)
    cur = copy.deepcopy(base)
    # halved parallel scaling stays inside the 75% band; a slow CI host
    # must not fail the gate on scheduling noise alone
    cur["workloads"]["fig9_parallel"]["parallel_boots_s"] = 150.0
    cur["workloads"]["fig9_parallel"]["parallel_speedup"] = 1.1
    cur["workloads"]["fig9_parallel"]["elapsed_s"] = 9.9
    assert compare_documents(base, cur, rules).ok
    # but an engine-throughput collapse beyond 50% is a regression
    cur["workloads"]["engine_events"]["events_s"] = 100000.0
    report = compare_documents(base, cur, rules)
    assert not report.ok
    assert report.regressions[0].path == "workloads.engine_events.events_s"


def test_parallel_gate_bound_reads_recorded_flag():
    from repro.obs.regress import parallel_gate_bound

    doc = {
        "host_cpus": 1,
        "workloads": {"fig9_parallel": {"workers": 4, "gate_bound": False}},
    }
    assert parallel_gate_bound(doc) is False
    doc["workloads"]["fig9_parallel"]["gate_bound"] = True
    assert parallel_gate_bound(doc) is True
    # Legacy documents without the flag fall back to cpus vs workers.
    legacy = {"host_cpus": 8, "workloads": {"fig9_parallel": {"workers": 4}}}
    assert parallel_gate_bound(legacy) is True
    legacy["host_cpus"] = 2
    assert parallel_gate_bound(legacy) is False
    assert parallel_gate_bound({"workloads": {}}) is None


def test_unbound_baseline_skips_parallel_scaling_bands():
    """A baseline recorded on an oversubscribed host must not gate
    parallel speedup: the number is scheduling noise, not a bound."""
    base = {
        "schema": "repro-perfbench-v2",
        "workers": 4,
        "host_cpus": 2,  # oversubscribed recorder
        "workloads": {
            "fig9_parallel": {
                "boots": 100,
                "workers": 4,
                "gate_bound": False,
                "parallel_boots_s": 400.0,
                "parallel_speedup": 3.0,
            },
        },
    }
    _kind, rules = rules_for_document(base)
    cur = copy.deepcopy(base)
    cur["workloads"]["fig9_parallel"]["parallel_speedup"] = 0.1
    cur["workloads"]["fig9_parallel"]["parallel_boots_s"] = 1.0
    assert compare_documents(base, cur, rules).ok
    # A bound baseline keeps the band: the same collapse regresses.
    bound = copy.deepcopy(base)
    bound["host_cpus"] = 8
    bound["workloads"]["fig9_parallel"]["gate_bound"] = True
    _kind, rules = rules_for_document(bound)
    report = compare_documents(bound, cur, rules)
    assert not report.ok


def test_restore_metrics_have_bands():
    """The restore series is gated: hit rate and latencies get bands."""
    base = {
        "schema": "repro-perfbench-v2",
        "workers": 1,
        "host_cpus": 8,
        "workloads": {
            "serverless_restore": {
                "invocations": 100,
                "restored_starts": 8,
                "restore_hit_rate": 0.2,
                "p50_restore_ms": 82.0,
                "p50_full_cold_boot_ms": 160.0,
                "restore_digest_ok": True,
            },
        },
    }
    _kind, rules = rules_for_document(base)
    cur = copy.deepcopy(base)
    cur["workloads"]["serverless_restore"]["restore_hit_rate"] = 0.0
    report = compare_documents(base, cur, rules)
    assert not report.ok  # losing all restores is a regression
    cur["workloads"]["serverless_restore"]["restore_hit_rate"] = 0.2
    cur["workloads"]["serverless_restore"]["p50_restore_ms"] = 40.0
    assert compare_documents(base, cur, rules).ok  # faster restores: fine


def test_attest_speedup_floor_survives_rebanding():
    """The batched-verify 3x floor is absolute: a baseline recorded at
    13x cannot be walked down below 3x even with --rel-tol 0.75."""
    base = {
        "schema": "repro-perfbench-v3",
        "workers": 1,
        "host_cpus": 8,
        "workloads": {
            "attest_throughput": {
                "reports": 160,
                "rejected": 14,
                "serial_reports_s": 54.0,
                "batched_reports_s": 715.0,
                "speedup": 13.2,
                "serial_virtual_ms": 624.0,
                "batched_virtual_ms": 29.3,
                "virtual_speedup": 21.3,
            },
        },
    }
    _kind, rules = rules_for_document(base, rel_tol=0.75)
    cur = copy.deepcopy(base)
    cur["workloads"]["attest_throughput"]["speedup"] = 2.9
    cur["workloads"]["attest_throughput"]["batched_reports_s"] = 160.0
    report = compare_documents(base, cur, rules)
    assert not report.ok
    assert any(
        d.path == "workloads.attest_throughput.speedup"
        and d.status == "regressed"
        for d in report.deltas
    )
    # within the band and above the floor: fine (machines vary)
    cur["workloads"]["attest_throughput"]["speedup"] = 7.0
    cur["workloads"]["attest_throughput"]["batched_reports_s"] = 400.0
    assert compare_documents(base, cur, rules).ok
    # run-configuration leaves are ignored, never "missing"
    del cur["workloads"]["attest_throughput"]["reports"]
    assert compare_documents(base, cur, rules).ok
    # but rejected-count drift would mean verdicts changed: gated
    cur["workloads"]["attest_throughput"]["rejected"] = 13
    assert not compare_documents(base, cur, rules).ok


def test_rel_tol_override_preserves_direction_and_ignores():
    base = {"experiment": "chaos", "detection_rate": 1.0, "p99_boot_ms": 100.0}
    _kind, rules = rules_for_document(base, rel_tol=0.5)
    report = compare_documents(
        base, {"detection_rate": 1.0, "p99_boot_ms": 60.0}, rules
    )
    # p99 falling is the good direction; the widened band still applies
    # and the detection invariant keeps its zero band.
    assert report.ok
    report = compare_documents(
        base, {"detection_rate": 0.9, "p99_boot_ms": 100.0}, rules
    )
    assert not report.ok


def test_detection_rate_may_never_drop():
    base = {"experiment": "chaos", "detection_rate": 1.0}
    report = compare_documents(
        base, {"detection_rate": 0.999999}, CHAOS_RULES
    )
    assert not report.ok


def test_render_mentions_gate_verdict():
    base = {"experiment": "chaos", "p99_boot_ms": 100.0}
    _kind, rules = rules_for_document(base)
    good = compare_documents(base, {"p99_boot_ms": 101.0}, rules)
    assert "gate: PASS" in good.render()
    bad = compare_documents(base, {"p99_boot_ms": 300.0}, rules)
    assert "gate: FAIL" in bad.render()
    assert "!!" in bad.render()


# -- the CLI gate (acceptance criterion) -------------------------------------


@pytest.fixture
def chaos_baseline(tmp_path):
    doc = {
        "experiment": "chaos",
        "detection_rate": 1.0,
        "sweep": [
            {
                "fault_rate": 0.05,
                "p50_boot_ms": 160.0,
                "p99_boot_ms": 190.0,
                "success_rate": 0.97,
                "boot_success_rate": 0.92,
                "detection_rate": 1.0,
                "undetected_tampered_boots": 0,
                "cold_starts": 13,
                "invocations": 42,
            }
        ],
    }
    path = tmp_path / "BENCH_chaos.json"
    path.write_text(json.dumps(doc))
    return path, doc


def test_cli_regress_self_compare_passes(chaos_baseline, capsys):
    path, _doc = chaos_baseline
    rc = main(
        ["regress", "--baseline", str(path), "--current", str(path)]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert "gate: PASS" in out


def test_cli_regress_perturbed_beyond_tolerance_exits_nonzero(
    chaos_baseline, tmp_path, capsys
):
    path, doc = chaos_baseline
    perturbed = copy.deepcopy(doc)
    perturbed["sweep"][0]["p99_boot_ms"] = 190.0 * 1.5  # > the 10% band
    cur = tmp_path / "current.json"
    cur.write_text(json.dumps(perturbed))
    rc = main(["regress", "--baseline", str(path), "--current", str(cur)])
    out = capsys.readouterr().out
    assert rc == 1
    assert "gate: FAIL" in out
    assert "p99_boot_ms" in out


def test_cli_regress_detection_drop_exits_nonzero(
    chaos_baseline, tmp_path, capsys
):
    path, doc = chaos_baseline
    perturbed = copy.deepcopy(doc)
    perturbed["detection_rate"] = 0.99
    cur = tmp_path / "current.json"
    cur.write_text(json.dumps(perturbed))
    rc = main(["regress", "--baseline", str(path), "--current", str(cur)])
    assert rc == 1


def test_cli_regress_missing_baseline_file(tmp_path, capsys):
    rc = main(["regress", "--baseline", str(tmp_path / "nope.json")])
    assert rc == 2
