"""Burn-rate alerting: window math, latching, flight recorder, fleet runs."""

from __future__ import annotations

import json

import pytest

from repro.fleet.experiment import fleet_trace_doc, run_fleet
from repro.obs.alerts import (
    ALERTS_SCHEMA,
    AlertEngine,
    BurnRateRule,
    FlightRecorder,
    evaluate_trace_doc,
    rule_by_name,
    slo_events,
)
from repro.obs.metrics import MetricsRegistry, use_registry


def _inv(index, end_ms, **kw):
    rec = {
        "trace_id": f"t{index:04d}",
        "index": index,
        "function": "fn-0",
        "arrival_ms": max(0.0, end_ms - 10.0),
        "end_ms": end_ms,
        "host": "c0:host-0",
        "cold": False,
        "restored": False,
        "degraded": False,
        "boot_ms": 0.0,
        "failovers": 0,
        "failed": False,
        "tamper_detected": False,
    }
    rec.update(kw)
    return rec


def _cell(invocations, cell=0):
    return {"cell": cell, "seed": 0, "invocations": invocations, "stream": {}}


#: a permissive rule for unit tests: 10% budget, burn 1x fires
RULE = BurnRateRule(
    name="failover-burn",
    budget=0.1,
    long_window_ms=100.0,
    short_window_ms=20.0,
    threshold=1.0,
    min_events=2,
)


class TestEventProjection:
    def test_failover_burn_counts_failovers_and_failures(self):
        invs = [
            _inv(0, 10.0),
            _inv(1, 20.0, failovers=2),
            _inv(2, 30.0, failed=True),
        ]
        events = slo_events("failover-burn", invs)
        assert [e.ok for e in events] == [True, False, False]

    def test_restore_miss_only_cold(self):
        invs = [
            _inv(0, 10.0),  # warm: not an event
            _inv(1, 20.0, cold=True, restored=True),
            _inv(2, 30.0, cold=True),
        ]
        events = slo_events("restore-miss", invs)
        assert [e.ok for e in events] == [True, False]

    def test_boot_latency_against_slo(self):
        invs = [
            _inv(0, 10.0, cold=True, boot_ms=100.0),
            _inv(1, 20.0, cold=True, boot_ms=900.0),
        ]
        events = slo_events("boot-latency", invs, boot_slo_ms=400.0)
        assert [e.ok for e in events] == [True, False]

    def test_tamper_burn(self):
        invs = [_inv(0, 10.0), _inv(1, 20.0, tamper_detected=True, failed=True)]
        events = slo_events("tamper-burn", invs)
        assert [e.ok for e in events] == [True, False]

    def test_unknown_rule_raises(self):
        with pytest.raises(KeyError):
            slo_events("nope", [])
        with pytest.raises(KeyError):
            rule_by_name("nope")

    def test_events_sorted_by_time(self):
        invs = [_inv(0, 30.0), _inv(1, 10.0), _inv(2, 20.0)]
        events = slo_events("failover-burn", invs)
        assert [e.at_ms for e in events] == [10.0, 20.0, 30.0]


class TestEngine:
    def test_fires_when_both_windows_burn(self):
        invs = [
            _inv(0, 10.0),
            _inv(1, 15.0, failovers=1),
            _inv(2, 18.0, failovers=1),
        ]
        engine = AlertEngine([RULE])
        firings = engine.evaluate_cell(_cell(invs))
        assert len(firings) == 1
        f = firings[0]
        assert f["rule"] == "failover-burn"
        assert f["at_ms"] == 15.0
        assert f["burn_long"] >= 1.0 and f["burn_short"] >= 1.0
        assert f["trace_id"] == "t0001"

    def test_min_events_suppresses_tiny_windows(self):
        invs = [_inv(0, 10.0, failovers=1)]
        firings = AlertEngine([RULE]).evaluate_cell(_cell(invs))
        assert firings == []

    def test_short_window_gates_old_spikes(self):
        # errors long ago, healthy now: long window still burns but the
        # short window has recovered -> no new firing at the late event
        invs = [
            _inv(0, 10.0, failovers=1),
            _inv(1, 12.0, failovers=1),
            _inv(2, 90.0),
            _inv(3, 95.0),
        ]
        firings = AlertEngine([RULE]).evaluate_cell(_cell(invs))
        assert [f["at_ms"] for f in firings] == [12.0]

    def test_latches_until_clear_then_refires(self):
        invs = [
            _inv(0, 10.0, failovers=1),
            _inv(1, 12.0, failovers=1),  # fires here
            _inv(2, 14.0, failovers=1),  # still breaching: latched
            # burn clears (a run of healthy events outside short window)
            _inv(3, 200.0),
            _inv(4, 210.0),
            _inv(5, 220.0),
            # breach again -> second firing (at 402: the 400 event alone
            # cannot satisfy min_events in the long window)
            _inv(6, 400.0, failovers=1),
            _inv(7, 402.0, failovers=1),
        ]
        firings = AlertEngine([RULE]).evaluate_cell(_cell(invs))
        assert [f["at_ms"] for f in firings] == [12.0, 402.0]

    def test_firing_carries_flight_recorder_dump(self):
        invs = [
            _inv(0, 10.0),
            _inv(1, 15.0, failovers=1),
            _inv(2, 18.0, failovers=1),
        ]
        engine = AlertEngine([RULE], recorder_capacity=2)
        f = engine.evaluate_cell(_cell(invs))[0]
        dump = f["flight_recorder"]
        assert dump["capacity"] == 2
        assert len(dump["records"]) <= 2
        # the ring holds the most recent terminals before the breach
        assert dump["records"][-1]["trace_id"] == "t0001"

    def test_evaluation_is_pure(self):
        invs = [
            _inv(0, 10.0),
            _inv(1, 15.0, failovers=1),
            _inv(2, 18.0, failovers=1),
        ]
        engine = AlertEngine([RULE])
        a = engine.evaluate_cell(_cell(invs))
        b = engine.evaluate_cell(_cell(invs))
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


class TestFlightRecorder:
    def test_bounded_ring(self):
        rec = FlightRecorder(capacity=3)
        for i in range(10):
            rec.record({"i": i})
        snap = rec.snapshot()
        assert snap["recorded"] == 10
        assert [r["i"] for r in snap["records"]] == [7, 8, 9]

    def test_snapshot_copies(self):
        rec = FlightRecorder(capacity=2)
        rec.record({"i": 0})
        snap = rec.snapshot()
        snap["records"][0]["i"] = 99
        assert rec.snapshot()["records"][0]["i"] == 0

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)


class TestFleetIntegration:
    @pytest.fixture(scope="class")
    def alert_docs(self):
        """Alert documents from identical fleet runs at 1/2/4 workers."""
        out = {}
        for workers in (1, 2, 4):
            with use_registry(MetricsRegistry()):
                doc = run_fleet(
                    cells=2,
                    seed=7,
                    workers=workers,
                    hosts=4,
                    fault_rate=0.12,
                    crash_hosts=1,
                    rate_per_s=4.0,
                    otrace=True,
                )
            out[workers] = evaluate_trace_doc(fleet_trace_doc(doc))
        return out

    def test_deterministic_across_workers(self, alert_docs):
        dumps = [
            json.dumps(doc, sort_keys=True) for doc in alert_docs.values()
        ]
        assert dumps[0] == dumps[1] == dumps[2]

    def test_failover_rule_fires_on_crashy_fleet(self, alert_docs):
        report = alert_docs[1]
        assert report["schema"] == ALERTS_SCHEMA
        assert "failover-burn" in report["fired_rules"]
        for f in report["firings"]:
            assert f["flight_recorder"]["records"]
            assert f["trace_id"]

    def test_firings_ordered(self, alert_docs):
        firings = alert_docs[1]["firings"]
        keys = [(f["cell"], f["at_ms"], f["rule"]) for f in firings]
        assert keys == sorted(keys)
