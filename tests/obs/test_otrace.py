"""Per-invocation tracing: IDs, propagation, explain, and byte-identity."""

from __future__ import annotations

import json

import pytest

from repro.fleet.experiment import fleet_trace_doc, run_fleet_cell
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.otrace import (
    TRACE_SCHEMA,
    TraceContext,
    build_span_tree,
    derive_trace_id,
    explain,
    explain_stream,
    iter_invocations,
    list_trace_ids,
    propagate,
    verify_failovers,
)
from repro.obs.profiler import profile
from repro.sim.trace import merge_span_streams

#: the explain-smoke shape: one cell, one forced crash, chaos mix on
SMOKE = dict(hosts=4, fault_rate=0.12, crash_hosts=1, rate_per_s=4.0)


def _cell(seed: int = 1, **kw):
    with use_registry(MetricsRegistry()):
        return run_fleet_cell(0, seed, **{**SMOKE, **kw, "otrace": True})


@pytest.fixture(scope="module")
def crashy():
    """One traced chaos cell with real failover hops, plus its artifact."""
    row = _cell(seed=1)
    doc = {
        "schema": TRACE_SCHEMA,
        "seed": 1,
        "cells": [row["otrace"]],
    }
    return row, doc


class TestTraceIds:
    def test_deterministic(self):
        assert derive_trace_id(7, 0, 3) == derive_trace_id(7, 0, 3)
        assert len(derive_trace_id(7, 0, 3)) == 16

    def test_distinct_across_seed_cell_index(self):
        ids = {
            derive_trace_id(s, c, i)
            for s in (0, 1)
            for c in (0, 1)
            for i in (0, 1, 2)
        }
        assert len(ids) == 12

    def test_every_outcome_has_unique_id(self, crashy):
        row, _doc = crashy
        records = row["otrace"]["invocations"]
        ids = [r["trace_id"] for r in records]
        assert len(set(ids)) == len(ids) == row["invocations"]
        for r in records:
            assert r["trace_id"] == derive_trace_id(1, 0, r["index"])


class TestPropagate:
    class _FakeTracer:
        def __init__(self):
            self.context = None
            self.seen = []

    def test_context_active_only_inside_frame(self):
        tracer = self._FakeTracer()
        ctx = TraceContext(trace_id="abc")

        def gen():
            tracer.seen.append(tracer.context)
            got = yield "first"
            tracer.seen.append(tracer.context)
            return got

        wrapped = propagate(tracer, ctx, gen())
        item = wrapped.send(None)
        assert item == "first"
        # suspended: previous context (None) restored
        assert tracer.context is None
        with pytest.raises(StopIteration) as stop:
            wrapped.send("value")
        assert stop.value.value == "value"
        assert tracer.seen == [ctx, ctx]

    def test_throw_is_forwarded(self):
        tracer = self._FakeTracer()
        ctx = TraceContext(trace_id="abc")

        def gen():
            try:
                yield "x"
            except KeyError:
                tracer.seen.append(tracer.context)
                return "handled"

        wrapped = propagate(tracer, ctx, gen())
        wrapped.send(None)
        with pytest.raises(StopIteration) as stop:
            wrapped.throw(KeyError("boom"))
        assert stop.value.value == "handled"
        assert tracer.seen == [ctx]

    def test_nested_contexts_restore(self):
        tracer = self._FakeTracer()
        outer = TraceContext(trace_id="outer")
        tracer.context = outer

        def gen():
            yield "x"

        wrapped = propagate(tracer, TraceContext(trace_id="inner"), gen())
        wrapped.send(None)
        assert tracer.context is outer


class TestSpanTree:
    def test_containment_nesting(self):
        spans = [
            ("parent", "a", "t", 0.0, 10.0, {}),
            ("child", "b", "t", 1.0, 4.0, {}),
            ("grandchild", "c", "t", 2.0, 3.0, {}),
            ("sibling", "b", "t", 5.0, 9.0, {}),
            ("next-root", "a", "t", 11.0, 12.0, {}),
        ]
        roots = build_span_tree(spans)
        assert [r.name for r in roots] == ["parent", "next-root"]
        parent = roots[0]
        assert [c.name for c in parent.children] == ["child", "sibling"]
        assert parent.children[0].children[0].name == "grandchild"


class TestExplain:
    def test_every_invocation_explains(self, crashy):
        row, doc = crashy
        for _cell_entry, inv in iter_invocations(doc):
            exp = explain(doc, inv["trace_id"])
            assert exp.roots, f"no spans for {inv['trace_id']}"
            # the root invocation span covers arrival -> terminal
            top = [n for n in exp.spans if n.category == "fleet.invocation"]
            assert len(top) == 1
            assert top[0].start == pytest.approx(inv["arrival_ms"], abs=1e-6)
            assert top[0].end == pytest.approx(inv["end_ms"], abs=1e-6)

    def test_unknown_trace_id_raises(self, crashy):
        _row, doc = crashy
        with pytest.raises(KeyError):
            explain(doc, "no-such-trace")

    def test_bad_schema_rejected(self):
        with pytest.raises(ValueError):
            list(iter_invocations({"schema": "bogus", "cells": []}))

    def test_failed_over_chains_resolve(self, crashy):
        row, doc = crashy
        failed_over = [
            r for r in row["otrace"]["invocations"] if r["failovers"] > 0
        ]
        assert failed_over, "smoke shape must produce failovers"
        assert verify_failovers(doc) == []
        for rec in failed_over:
            exp = explain(doc, rec["trace_id"])
            hops = exp.hops()
            assert len(hops) >= rec["failovers"] + (
                1 if not rec["failed"] else 0
            )
            assert any(
                h.get("outcome") == "failover" or "crashed_host" in h
                for h in hops
            ) or exp.faults

    def test_verify_catches_missing_spans(self, crashy):
        row, _doc = crashy
        cell = dict(row["otrace"])
        cell["stream"] = {"spans": [], "instants": []}
        broken = {"schema": TRACE_SCHEMA, "seed": 1, "cells": [cell]}
        problems = verify_failovers(broken)
        assert problems and "no spans" in problems[0]

    def test_list_trace_ids_sorted(self, crashy):
        _row, doc = crashy
        rows = list_trace_ids(doc)
        assert [r["index"] for r in rows] == sorted(r["index"] for r in rows)
        assert all("cell" in r for r in rows)

    def test_render_mentions_chain_and_faults(self, crashy):
        row, doc = crashy
        rec = next(
            r for r in row["otrace"]["invocations"] if r["failovers"] > 0
        )
        text = explain(doc, rec["trace_id"]).render()
        assert rec["trace_id"] in text
        assert "causal chain:" in text
        assert "phase split" in text

    def test_phase_split_buckets(self, crashy):
        row, doc = crashy
        cold = next(
            r
            for r in row["otrace"]["invocations"]
            if r["cold"] and not r["failed"] and not r["restored"]
        )
        split = explain(doc, cold["trace_id"]).phase_split()
        assert split.get("psp.exec", 0.0) > 0.0
        assert any(k.startswith("boot.") for k in split)

    def test_restored_invocation_has_crypto_or_network(self, crashy):
        row, doc = crashy
        restored = [
            r for r in row["otrace"]["invocations"] if r["restored"]
        ]
        assert restored, "smoke shape must produce restores"
        split = explain(doc, restored[0]["trace_id"]).phase_split()
        assert split.get("crypto", 0.0) > 0.0 or split.get("network", 0.0) > 0.0


class TestPhaseSumsMatchProfiler:
    def test_within_one_percent(self, crashy):
        """Explain's per-boot phase totals agree with the boot profiler
        (same spans, independent reconstruction)."""
        row, doc = crashy
        stream = row["otrace"]["stream"]
        merged = merge_span_streams(
            [stream], offsets="overlay", track_prefix=None
        )
        prof = profile(merged)
        checked = 0
        for _cell_entry, inv in iter_invocations(doc):
            exp = explain(doc, inv["trace_id"])
            for track in exp.boot_tracks():
                if track not in prof.vms:
                    continue
                prof_phases = prof.vm(track).phase_ms()
                exp_phases = {
                    name: ms
                    for name, ms in (
                        (n.name, n.total_ms)
                        for n in exp.spans
                        if n.category == "boot.phase" and n.track == track
                    )
                }
                # fold duplicates (a track's phases within one boot)
                folded: dict[str, float] = {}
                for n in exp.spans:
                    if n.category == "boot.phase" and n.track == track:
                        folded[n.name] = folded.get(n.name, 0.0) + n.total_ms
                exp_phases = folded
                for name, ms in exp_phases.items():
                    assert prof_phases[name] == pytest.approx(ms, rel=0.01)
                checked += 1
        assert checked > 0


class TestByteIdentity:
    def test_tracing_off_rows_identical(self):
        """otrace=True changes nothing but the otrace block itself."""
        with use_registry(MetricsRegistry()):
            plain = run_fleet_cell(0, 1, **SMOKE)
        traced = _cell(seed=1)
        traced = dict(traced)
        traced.pop("otrace")
        assert json.dumps(plain, sort_keys=True) == json.dumps(
            traced, sort_keys=True
        )

    def test_stream_carries_cell_labels(self, crashy):
        row, _doc = crashy
        assert row["otrace"]["stream"]["labels"] == {"cell": "0", "seed": "1"}

    def test_merge_folds_labels_into_spans(self, crashy):
        row, _doc = crashy
        merged = merge_span_streams([row["otrace"]["stream"]])
        assert merged.spans
        assert all(s.args.get("cell") == "0" for s in merged.spans)


class TestArtifactAssembly:
    def test_fleet_trace_doc_shape(self, crashy):
        row, _doc = crashy
        doc = fleet_trace_doc({"seed": 1, "cells_detail": [row]})
        assert doc["schema"] == TRACE_SCHEMA
        assert len(doc["cells"]) == 1
        assert doc["cells"][0]["invocations"]

    def test_explain_stream_ignores_other_traces(self, crashy):
        row, _doc = crashy
        stream = row["otrace"]["stream"]
        records = row["otrace"]["invocations"]
        a, b = records[0], records[1]
        exp = explain_stream(stream, a["trace_id"], a)
        for node in exp.spans:
            assert node.args.get("trace_id") == a["trace_id"]
        assert b["trace_id"] not in {
            n.args.get("trace_id") for n in exp.spans
        }
