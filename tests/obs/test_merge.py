"""Mergeability of the observability stack (repro.parallel's substrate).

The satellite property: splitting a serial workload into shards, letting
each shard record into its own registry, and merging the shard snapshots
back reproduces the serial registry exactly — for counters, gauges (last
write), and histograms, across label cardinality.
"""

import random

from repro.obs.metrics import (
    MetricsRegistry,
    default_registry,
    flat_name,
    parse_flat_name,
    reset_default_registry,
)
from repro.sim.engine import Simulator
from repro.sim.trace import merge_span_streams

# -- flat-name round trip -----------------------------------------------------


def test_parse_flat_name_round_trip():
    cases = [
        ("plain", ()),
        ("psp.commands", (("command", "LAUNCH_START"),)),
        (
            "psp.faults",
            (("command", "DF_FLUSH"), ("kind", "busy")),
        ),
        ("cache.hits", (("name", "severifast.prepared"),)),
    ]
    for name, items in cases:
        flat = flat_name(name, items)
        assert parse_flat_name(flat) == (name, items)


# -- the split/merge property -------------------------------------------------


def _record(registry: MetricsRegistry, op) -> None:
    kind, name, labels, value = op
    if kind == "counter":
        registry.counter(name, **labels).inc(value)
    elif kind == "gauge":
        registry.gauge(name, **labels).set(value)
    else:
        registry.histogram(name, **labels).observe(value)


def _random_ops(seed: int, n: int = 400):
    """A deterministic op stream exercising label cardinality."""
    rng = random.Random(seed)
    names = ["alpha", "beta.gamma", "delta"]
    label_sets = [
        {},
        {"command": "LAUNCH_START"},
        {"command": "LAUNCH_UPDATE_DATA"},
        {"command": "DF_FLUSH", "kind": "busy"},
        {"vm": "vm#3", "phase": "firmware"},
    ]
    ops = []
    for _ in range(n):
        kind = rng.choice(["counter", "gauge", "histogram"])
        name = f"{kind[0]}.{rng.choice(names)}"
        labels = rng.choice(label_sets)
        if kind == "counter":
            value = rng.randrange(0, 10)
        elif kind == "gauge":
            value = rng.randrange(-5, 50)
        else:
            # dyadic rationals: binary-exact, so summation order cannot
            # perturb histogram sums and strict equality is fair
            value = rng.randrange(1, 1 << 19) / 64.0
        ops.append((kind, name, labels, value))
    return ops


def test_merge_of_split_equals_serial():
    """merge(split(serial)) == serial, via in-memory Registry.merge."""
    ops = _random_ops(seed=7)
    serial = MetricsRegistry()
    for op in ops:
        _record(serial, op)

    for workers in (1, 2, 3, 4, 7):
        shards = [MetricsRegistry() for _ in range(workers)]
        # round-robin in op order: shard i gets ops i, i+w, i+2w, ...
        # Gauges are last-write, so merging shards in order must replay
        # the final writer last; sharding by contiguous blocks keeps
        # that true for this stream (merge order == op order for the
        # last touch of each gauge).  Use contiguous blocks:
        per = (len(ops) + workers - 1) // workers
        for i, shard in enumerate(shards):
            for op in ops[i * per : (i + 1) * per]:
                _record(shard, op)
        merged = MetricsRegistry()
        for shard in shards:
            merged.merge(shard)
        assert merged.snapshot() == serial.snapshot(), f"workers={workers}"


def test_merge_snapshot_of_split_equals_serial():
    """Same property through the JSON-safe snapshot path (the one
    worker processes actually use)."""
    ops = _random_ops(seed=13)
    serial = MetricsRegistry()
    for op in ops:
        _record(serial, op)

    for workers in (2, 4):
        shards = [MetricsRegistry() for _ in range(workers)]
        per = (len(ops) + workers - 1) // workers
        for i, shard in enumerate(shards):
            for op in ops[i * per : (i + 1) * per]:
                _record(shard, op)
        merged = MetricsRegistry()
        for shard in shards:
            merged.merge_snapshot(shard.snapshot())
        assert merged.snapshot() == serial.snapshot(), f"workers={workers}"


def test_merge_snapshot_counters_are_exact():
    """Counter merge is integer-exact — the acceptance invariant."""
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("boots", stack="severifast").inc(61)
    b.counter("boots", stack="severifast").inc(39)
    b.counter("boots", stack="qemu").inc(5)
    merged = MetricsRegistry()
    merged.merge_snapshot(a.snapshot())
    merged.merge_snapshot(b.snapshot())
    assert merged.value("boots", stack="severifast") == 100
    assert merged.value("boots", stack="qemu") == 5


def test_merge_snapshot_histogram_buckets_de_cumulate():
    a = MetricsRegistry()
    h = a.histogram("svc_ms", buckets=(1.0, 5.0, 10.0))
    for v in (0.5, 0.5, 3.0, 7.0, 100.0):
        h.observe(v)
    merged = MetricsRegistry()
    merged.merge_snapshot(a.snapshot())
    merged.merge_snapshot(a.snapshot())
    out = merged.histogram("svc_ms", buckets=(1.0, 5.0, 10.0))
    assert out.bucket_counts == [4, 2, 2, 2]
    assert out.count == 10
    assert out.sum == 2 * sum((0.5, 0.5, 3.0, 7.0, 100.0))


def test_autouse_fixture_gives_fresh_default_registry():
    """The autouse reset means this test sees no other test's metrics."""
    assert default_registry().families() == []
    default_registry().counter("leaky").inc()
    fresh = reset_default_registry()
    assert fresh is default_registry()
    assert fresh.families() == []


# -- restore metrics through the sharded runner -------------------------------


def test_restore_metrics_survive_parallel_merge():
    """Restore-path metrics land in the merged default registry, and the
    workload itself is worker-count invariant (virtual time unchanged)."""
    from repro.serverless.bulk import run_bulk_traffic

    kwargs = dict(segments=2, seed=3, functions=3, horizon_s=5.0, restore=True)
    serial = run_bulk_traffic(workers=1, **kwargs)
    assert serial["restored_starts"] > 0
    assert serial["restore_digest_ok"]
    reg = default_registry()
    assert (
        reg.histogram("serverless.restore_ms").count == serial["restored_starts"]
    )
    # Every restore re-attests exactly once.
    assert reg.histogram("sev.reattest_ms").count == serial["restored_starts"]
    assert reg.value("snapshot.store.lookups", result="hit") >= serial[
        "restored_starts"
    ]

    reset_default_registry()
    parallel = run_bulk_traffic(workers=2, **kwargs)
    assert parallel["restored_starts"] == serial["restored_starts"]
    assert parallel["restore_hit_rate"] == serial["restore_hit_rate"]
    assert parallel["p50_restore_ms"] == serial["p50_restore_ms"]
    merged = default_registry()
    assert (
        merged.histogram("serverless.restore_ms").count
        == parallel["restored_starts"]
    )
    assert merged.histogram("sev.reattest_ms").count == parallel["restored_starts"]


# -- span-stream merging ------------------------------------------------------


def _traced_run(n_spans: int):
    sim = Simulator()
    tracer = sim.trace()

    def proc(sim):
        for k in range(n_spans):
            span = tracer.begin(f"step{k}", "boot.phase", "vm#0")
            yield sim.timeout(2.0)
            tracer.end(span)

    sim.process(proc(sim))
    sim.run()
    return tracer


def test_merge_span_streams_concat_offsets():
    t1 = _traced_run(2)  # clock ends at 4.0
    t2 = _traced_run(3)  # clock ends at 6.0
    merged = merge_span_streams([t1.export_spans(), t2.export_spans()])
    assert merged.now == 10.0
    tracks = {s.track for s in merged.spans if s.category == "boot.phase"}
    assert tracks == {"shard0/vm#0", "shard1/vm#0"}
    shard1 = [s for s in merged.spans if s.track == "shard1/vm#0"]
    assert min(s.start for s in shard1) == 4.0  # offset by shard 0's clock


def test_merge_span_streams_overlay_and_profile():
    from repro.obs.profiler import profile

    t1 = _traced_run(2)
    t2 = _traced_run(2)
    merged = merge_span_streams(
        [t1.export_spans(), t2.export_spans()], offsets="overlay"
    )
    assert merged.now == 4.0
    prof = profile(merged)  # duck-typed: profiler accepts merged traces
    assert set(prof.tracks) == {"shard0/vm#0", "shard1/vm#0"}
    for track in prof.tracks:
        assert sum(prof.vm(track).phase_ms().values()) == 4.0


def test_merge_span_streams_chrome_export_is_valid():
    from repro.sim.trace import validate_chrome_trace

    t1 = _traced_run(1)
    merged = merge_span_streams([t1.export_spans(), t1.export_spans()])
    assert validate_chrome_trace(merged.to_chrome_trace()) == []
