"""Exemplars, label-value escaping, and collector/observe_n merge."""

from __future__ import annotations

import pytest

from repro.obs.metrics import (
    EXEMPLAR_LIMIT,
    MetricsRegistry,
    flat_name,
    parse_flat_name,
)


class TestLabelEscaping:
    """Satellite: Prometheus/flat-name escaping for hostile label values."""

    CASES = [
        'plain',
        'with "quotes"',
        "back\\slash",
        "new\nline",
        'all \\ of "them"\ntogether',
        '\\"',
        "trailing backslash \\",
    ]

    @pytest.mark.parametrize("value", CASES)
    def test_flat_name_round_trips(self, value):
        flat = flat_name("m", (("site", value),))
        name, items = parse_flat_name(flat)
        assert name == "m"
        assert dict(items) == {"site": value}

    def test_multiple_labels_round_trip(self):
        labels = (("a", 'x"y'), ("b", "p\\q"), ("c", "r\ns"))
        name, items = parse_flat_name(flat_name("m", labels))
        assert items == labels

    @pytest.mark.parametrize("value", CASES)
    def test_snapshot_merge_round_trips(self, value):
        src = MetricsRegistry()
        src.counter("faults", site=value).inc(3)
        src.histogram("lat_ms", buckets=(1.0, 10.0), site=value).observe(5.0)
        dst = MetricsRegistry()
        dst.merge_snapshot(src.snapshot())
        assert dst.counter("faults", site=value).value == 3
        assert dst.histogram("lat_ms", buckets=(1.0, 10.0), site=value).count == 1

    def test_prometheus_text_escapes_values_and_help(self):
        reg = MetricsRegistry()
        reg.counter(
            "faults", help="counts \\ injected\nfaults", site='a"b\\c\nd'
        ).inc()
        text = reg.to_prometheus_text()
        assert '# HELP faults counts \\\\ injected\\nfaults' in text
        assert 'site="a\\"b\\\\c\\nd"' in text
        assert "\nd\"" not in text  # no raw newline leaks into a label

    def test_snapshot_label_order_deterministic(self):
        a = MetricsRegistry()
        a.counter("c", x="1", y="2").inc()
        b = MetricsRegistry()
        b.counter("c", y="2", x="1").inc()
        assert a.snapshot() == b.snapshot()


class TestExemplars:
    def test_observe_ex_keeps_last_n(self):
        reg = MetricsRegistry()
        hist = reg.histogram("h", buckets=(10.0, 100.0))
        for i in range(EXEMPLAR_LIMIT + 3):
            hist.observe_ex(5.0, f"trace-{i}")
        by_le = hist.exemplars_by_le()
        assert list(by_le) == ["10"]
        assert len(by_le["10"]) == EXEMPLAR_LIMIT
        assert by_le["10"][-1] == [f"trace-{EXEMPLAR_LIMIT + 2}", 5.0]

    def test_empty_trace_id_not_kept(self):
        reg = MetricsRegistry()
        hist = reg.histogram("h", buckets=(10.0,))
        hist.observe_ex(5.0, "")
        assert hist.count == 1
        assert hist.exemplars is None

    def test_no_exemplars_means_identical_snapshot(self):
        """Histograms that never saw an exemplar snapshot exactly as
        before the feature existed (byte-identity guarantee)."""
        plain = MetricsRegistry()
        plain.histogram("h", buckets=(10.0,)).observe(5.0)
        snap = plain.snapshot()
        assert "exemplars" not in snap["histograms"]["h"]

    def test_snapshot_merge_carries_exemplars(self):
        src = MetricsRegistry()
        src.histogram("h", buckets=(10.0, 100.0)).observe_ex(50.0, "tid-1")
        dst = MetricsRegistry()
        dst.merge_snapshot(src.snapshot())
        hist = dst.histogram("h", buckets=(10.0, 100.0))
        assert hist.exemplars_by_le() == {"100": [["tid-1", 50.0]]}
        assert hist.count == 1

    def test_prometheus_bucket_line_carries_exemplar(self):
        reg = MetricsRegistry()
        reg.histogram("h", buckets=(10.0,)).observe_ex(5.0, "tid-9")
        text = reg.to_prometheus_text()
        assert '# {trace_id="tid-9"} 5' in text

    def test_merge_registries_folds_exemplars(self):
        a = MetricsRegistry()
        a.histogram("h", buckets=(10.0,)).observe_ex(1.0, "tid-a")
        b = MetricsRegistry()
        b.histogram("h", buckets=(10.0,)).observe_ex(2.0, "tid-b")
        a.merge(b)
        by_le = a.histogram("h", buckets=(10.0,)).exemplars_by_le()
        assert by_le == {"10": [["tid-a", 1.0], ["tid-b", 2.0]]}


class TestCollectorObserveNMerge:
    """Satellite: observe_n + register_collector under snapshot merge."""

    @staticmethod
    def _shard(observations, flushes):
        """A registry whose histogram is fed lazily via a collector
        (the engine's deferred-flush pattern: tally first, fold on read)."""
        reg = MetricsRegistry()
        pending = list(observations)

        def collector():
            flushes.append(1)
            if not pending:
                return
            hist = reg.histogram("wait_ms", buckets=(1.0, 10.0, 100.0))
            tally: dict[float, int] = {}
            for value in pending:
                tally[value] = tally.get(value, 0) + 1
            for value, n in sorted(tally.items()):
                hist.observe_n(value, n)
            pending.clear()

        reg.register_collector(collector)
        return reg

    def test_collector_flushed_exactly_once_per_export(self):
        flushes: list[int] = []
        reg = self._shard([5.0, 5.0, 50.0], flushes)
        snap1 = reg.snapshot()
        assert len(flushes) == 1
        snap2 = reg.snapshot()
        assert len(flushes) == 2
        # idempotent between updates: second export sees the same totals
        assert snap1 == snap2
        assert snap1["histograms"]["wait_ms"]["count"] == 3

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_counts_identical_across_worker_counts(self, workers):
        values = [0.5, 5.0, 5.0, 50.0, 50.0, 50.0, 500.0, 5.0]
        shards = [values[i::workers] for i in range(workers)]
        flushes: list[int] = []
        merged = MetricsRegistry()
        for shard_values in shards:
            merged.merge_snapshot(
                self._shard(shard_values, flushes).snapshot()
            )
        assert len(flushes) == workers  # one flush per shard export
        hist = merged.histogram("wait_ms", buckets=(1.0, 10.0, 100.0))
        assert hist.count == len(values)
        assert hist.sum == pytest.approx(sum(values))
        assert hist.cumulative() == [
            ("1", 1),
            ("10", 4),
            ("100", 7),
            ("+Inf", 8),
        ]

    def test_observe_n_matches_sequential_observes(self):
        a = MetricsRegistry()
        ha = a.histogram("h", buckets=(1.0, 10.0))
        ha.observe_n(5.0, 3)
        b = MetricsRegistry()
        hb = b.histogram("h", buckets=(1.0, 10.0))
        for _ in range(3):
            hb.observe(5.0)
        assert ha.bucket_counts == hb.bucket_counts
        assert ha.count == hb.count
        assert ha.sum == pytest.approx(hb.sum)
