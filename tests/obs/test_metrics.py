"""The metrics registry: instruments, labels, lifecycle, perf shim."""

import pytest

from repro import perf
from repro.obs.metrics import (
    DEFAULT_MS_BUCKETS,
    MetricError,
    MetricsRegistry,
    default_registry,
    flat_name,
    prom_name,
    reset_default_registry,
    use_registry,
)


# -- instruments -------------------------------------------------------------


def test_counter_monotonic():
    reg = MetricsRegistry()
    c = reg.counter("psp.commands", command="LAUNCH_START")
    c.inc()
    c.inc(4)
    assert reg.value("psp.commands", command="LAUNCH_START") == 5
    with pytest.raises(MetricError):
        c.inc(-1)


def test_gauge_moves_both_ways():
    reg = MetricsRegistry()
    g = reg.gauge("queue.depth")
    g.set(3)
    g.inc()
    g.dec(2)
    assert reg.value("queue.depth") == 2


def test_histogram_buckets_and_cumulative():
    reg = MetricsRegistry()
    h = reg.histogram("svc_ms", buckets=(1.0, 10.0, 100.0))
    for v in (0.5, 5.0, 5.0, 50.0, 5000.0):
        h.observe(v)
    assert h.count == 5
    assert h.sum == pytest.approx(5060.5)
    # Cumulative counts per upper bound, +Inf catches the tail.
    assert h.cumulative() == [("1", 1), ("10", 3), ("100", 4), ("+Inf", 5)]


def test_histogram_bounds_validation():
    with pytest.raises(MetricError):
        MetricsRegistry().histogram("bad", buckets=())
    with pytest.raises(MetricError):
        MetricsRegistry().histogram("bad", buckets=(2.0, 1.0))
    with pytest.raises(MetricError):
        MetricsRegistry().histogram("bad", buckets=(1.0, 1.0))


def test_label_sets_are_distinct_children():
    reg = MetricsRegistry()
    reg.counter("cmds", command="A").inc()
    reg.counter("cmds", command="B").inc(2)
    reg.counter("cmds").inc(10)
    assert reg.value("cmds", command="A") == 1
    assert reg.value("cmds", command="B") == 2
    assert reg.value("cmds") == 10
    # Same labels -> same child, independent of kwarg order.
    assert reg.counter("xy", a=1, b=2) is reg.counter("xy", b=2, a=1)


def test_kind_conflicts_rejected():
    reg = MetricsRegistry()
    reg.counter("thing")
    with pytest.raises(MetricError):
        reg.gauge("thing")
    reg.histogram("h", buckets=(1.0, 2.0))
    with pytest.raises(MetricError):
        reg.histogram("h", buckets=(5.0,))


def test_flat_and_prom_names():
    assert flat_name("a.b", (("k", "v"),)) == 'a.b{k="v"}'
    assert flat_name("a.b") == "a.b"
    assert prom_name("psp.service_ms") == "psp_service_ms"
    assert prom_name("9lives") == "_9lives"


# -- lifecycle ---------------------------------------------------------------


def test_reset_zeroes_but_keeps_families():
    reg = MetricsRegistry()
    reg.counter("c").inc(5)
    reg.gauge("g").set(7)
    h = reg.histogram("h", buckets=(1.0,))
    h.observe(0.5)
    reg.reset()
    assert reg.value("c") == 0
    assert reg.value("g") == 0
    assert h.count == 0 and h.sum == 0.0
    assert reg.families() == ["c", "g", "h"]


def test_reset_counters_leaves_gauges():
    reg = MetricsRegistry()
    reg.counter("c").inc(5)
    reg.gauge("g").set(7)
    reg.reset_counters()
    assert reg.value("c") == 0
    assert reg.value("g") == 7


def test_merge_adds_counters_and_histograms():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("c", k="x").inc(1)
    b.counter("c", k="x").inc(2)
    b.counter("c", k="y").inc(3)
    a.gauge("g").set(1)
    b.gauge("g").set(9)
    for reg, v in ((a, 0.5), (b, 1.5)):
        reg.histogram("h", buckets=(1.0, 2.0)).observe(v)
    a.merge(b)
    assert a.value("c", k="x") == 3
    assert a.value("c", k="y") == 3
    assert a.value("g") == 9  # gauges: last write wins
    h = a.histogram("h", buckets=(1.0, 2.0))
    assert h.count == 2
    assert h.cumulative() == [("1", 1), ("2", 2), ("+Inf", 2)]


def test_merge_rejects_mismatched_buckets():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.histogram("h", buckets=(1.0,)).observe(0.5)
    b.histogram("h", buckets=(2.0,)).observe(0.5)
    with pytest.raises(MetricError):
        a.merge(b)


def test_use_registry_scopes_the_default():
    outer = default_registry()
    scoped = MetricsRegistry()
    with use_registry(scoped):
        assert default_registry() is scoped
        default_registry().counter("in_scope").inc()
    assert default_registry() is outer
    assert scoped.value("in_scope") == 1
    assert outer.value("in_scope") == 0


def test_reset_default_registry_installs_fresh():
    default_registry().counter("stale").inc()
    fresh = reset_default_registry()
    assert default_registry() is fresh
    assert fresh.value("stale") == 0


# -- the repro.perf compat shim ---------------------------------------------


def test_perf_shim_is_registry_backed():
    perf.incr("crypto.bulk_calls")
    perf.incr("crypto.bytes", 4096)
    assert default_registry().value("crypto.bulk_calls") == 1
    snap = perf.counters_snapshot()
    assert snap["crypto.bulk_calls"] == 1
    assert snap["crypto.bytes"] == 4096
    # And the registry view matches the shim view.
    assert default_registry().counter_values() == snap


def test_perf_counters_delta_still_works():
    base = perf.counters_snapshot()
    perf.incr("cache.demo.hits", 3)
    delta = perf.counters_delta(base)
    assert delta == {"cache.demo.hits": 3}


def test_lru_cache_stats_registry_backed():
    cache = perf.LRUCache("obs_demo", capacity=4)
    with perf.scoped(caches=True):
        cache.get_or_compute("k", lambda: 1)
        cache.get_or_compute("k", lambda: 1)
    stats = cache.stats()
    assert stats["hits"] == 1
    assert stats["misses"] == 1
    assert default_registry().value("cache.obs_demo.hits") == 1


def test_default_ms_buckets_ascending():
    assert list(DEFAULT_MS_BUCKETS) == sorted(set(DEFAULT_MS_BUCKETS))
