"""The virtual-time profiler vs the timeline's own accounting.

Acceptance criterion for the observability layer: profiler-derived
phase breakdowns agree with the existing virtual-time numbers within 1%.
"""

import pytest

from repro.core.config import VmConfig
from repro.core.severifast import SEVeriFast
from repro.formats.kernels import AWS
from repro.hw.platform import Machine
from repro.obs import profile


def _traced_boot(stack: str = "severifast"):
    machine = Machine()
    tracer = machine.sim.trace()
    sf = SEVeriFast(machine=machine)
    config = VmConfig(kernel=AWS)
    if stack == "severifast":
        result = sf.cold_boot(config, machine=machine)
        extras = None
    else:
        result, extras = sf.cold_boot_qemu(config, machine=machine)
    return tracer, result, extras


def _assert_close(got: float, want: float) -> None:
    assert abs(got - want) <= 0.01 * max(abs(want), 1e-9)


def test_phase_totals_match_timeline_within_1pct():
    tracer, result, _ = _traced_boot()
    vm = profile(tracer).single_vm()
    phases = vm.phase_ms()
    breakdown = result.timeline.breakdown()
    assert set(phases) == set(breakdown)
    for name, want in breakdown.items():
        _assert_close(phases[name], want)


def test_firmware_breakdown_matches_ovmf_extras_within_1pct():
    tracer, _result, extras = _traced_boot("qemu")
    vm = profile(tracer).single_vm()
    firmware = vm.firmware_ms()
    assert set(firmware) == set(extras.ovmf_breakdown.phases)
    for name, want in extras.ovmf_breakdown.phases.items():
        _assert_close(firmware[name], want)


def test_nesting_pre_encryption_under_vmm():
    tracer, _result, _ = _traced_boot()
    vm = profile(tracer).single_vm()
    vmm = next(n for n in vm.roots if n.name == "vmm")
    assert [c.name for c in vmm.children] == ["pre_encryption"]
    # Self time excludes the nested child.
    child_ms = vmm.children[0].total_ms
    _assert_close(vmm.self_ms, vmm.total_ms - child_ms)


def test_critical_path_sums_to_phase_total():
    tracer, result, _ = _traced_boot()
    vm = profile(tracer).single_vm()
    segments = vm.critical_path()
    names = [n for n, _ in segments]
    assert names[:3] == ["vmm/psp.wait", "vmm/psp.exec", "vmm/other"]
    total = sum(ms for _, ms in segments)
    _assert_close(total, result.timeline.total_ms)


def test_psp_attribution_and_wait_under_concurrency():
    machine = Machine()
    tracer = machine.sim.trace()
    sf = SEVeriFast(machine=machine)
    results = sf.concurrent_boots(
        VmConfig(kernel=AWS, attest=False), count=4, sev=True, machine=machine
    )
    prof = profile(tracer)
    assert len(prof.vms) == 4
    # The single-core PSP serializes launches: someone queued.
    assert sum(vm.psp_wait_ms for vm in prof.vms.values()) > 0.0
    assert all(vm.psp_commands > 0 for vm in prof.vms.values())
    # Per-VM service time sums to the machine-wide command rollup.
    per_vm = sum(vm.psp_service_ms for vm in prof.vms.values())
    rollup = sum(s.service_ms for s in prof.psp.values())
    _assert_close(per_vm, rollup)
    with pytest.raises(ValueError):
        prof.single_vm()
    assert len(results) == 4


def test_folded_stacks_format():
    tracer, _result, _ = _traced_boot()
    folded = profile(tracer).folded()
    lines = folded.strip().splitlines()
    assert lines == sorted(lines)
    for line in lines:
        stack, weight = line.rsplit(" ", 1)
        assert int(weight) > 0
        assert stack
    assert any(";vmm;pre_encryption " in line for line in lines)
    assert any(line.startswith("psp;") for line in lines)


def test_report_renders():
    tracer, _result, _ = _traced_boot()
    report = profile(tracer).report()
    assert "boot profile (virtual ms)" in report
    assert "critical path:" in report
    assert "[psp commands]" in report


def test_profiler_ignores_open_spans():
    machine = Machine()
    tracer = machine.sim.trace()
    tracer.begin("dangling", "boot.phase", "vm0")
    prof = profile(tracer)
    assert prof.vms == {}
