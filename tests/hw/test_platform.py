"""Machine assembly."""

import pytest

from repro.common import MiB
from repro.hw.platform import DEFAULT_GUEST_MEMORY, Machine
from repro.sev.policy import GuestPolicy, SevMode


def test_default_guest_memory_is_papers_256mb():
    assert DEFAULT_GUEST_MEMORY == 256 * MiB


def test_machines_have_unique_chip_identities():
    a, b = Machine(), Machine()
    assert a.psp.chip_id != b.psp.chip_id
    assert a.psp.vcek.public != b.psp.vcek.public


def test_machines_share_one_amd_root():
    a, b = Machine(), Machine()
    assert (
        a.psp.key_hierarchy.ark_key.public == b.psp.key_hierarchy.ark_key.public
    )


def test_snp_guest_memory_gets_rmp():
    machine = Machine()
    ctx = machine.new_sev_context(GuestPolicy(mode=SevMode.SEV_SNP))
    memory = machine.new_guest_memory(sev_ctx=ctx)
    assert memory.rmp is not None
    assert memory.rmp.asid == ctx.asid


@pytest.mark.parametrize("mode", [SevMode.SEV, SevMode.SEV_ES])
def test_pre_snp_guest_memory_has_no_rmp(mode):
    machine = Machine()
    ctx = machine.new_sev_context(GuestPolicy(mode=mode))
    assert machine.new_guest_memory(sev_ctx=ctx).rmp is None


def test_nonsev_guest_memory_has_no_rmp():
    assert Machine().new_guest_memory().rmp is None


def test_psp_parallelism_configures_resource():
    machine = Machine(psp_parallelism=4)
    assert machine.psp.resource.capacity == 4
    assert Machine().psp.resource.capacity == 1


def test_huge_pages_flag_reaches_psp():
    assert Machine(huge_pages=False).psp.huge_pages is False
    assert Machine().psp.huge_pages is True


def test_engine_mode_propagates():
    machine = Machine(engine_mode="xex")
    ctx = machine.new_sev_context()
    mem = machine.new_guest_memory(sev_ctx=ctx)
    mem.host_write(0, b"\x90" * 4096)
    mem.rmp.assign_all()

    def launch():
        yield from machine.psp.launch_start(ctx)

    machine.sim.run_process(launch())
    assert ctx.engine.mode == "xex"
