"""ASID lifecycle under contention (exhaustion -> DF_FLUSH -> reuse).

The hardware namespace is fixed (509 on EPYC Milan): a platform that
churns guests must recycle numbers through DEACTIVATE -> DF_FLUSH, and
``allocate_asid`` must hand the flushed numbers back out instead of
incrementing forever.
"""

from __future__ import annotations

import pytest

from repro.core.config import VmConfig
from repro.core.severifast import SEVeriFast
from repro.faults.retry import RetryPolicy
from repro.formats.kernels import AWS
from repro.hw.platform import Machine
from repro.sev.api import SevErrorCode, SevLaunchError
from repro.vmm.firecracker import FirecrackerVMM


class TestAsidRecycling:
    def test_flushed_numbers_are_reused_lowest_first(self):
        machine = Machine()
        psp = machine.psp
        ctxs = [machine.new_sev_context() for _ in range(4)]
        assert [c.asid for c in ctxs] == [1, 2, 3, 4]
        for c in ctxs:
            psp.activate(c)
        for c in (ctxs[2], ctxs[0]):  # retire 3 and 1, out of order
            psp.deactivate(c)
        machine.sim.run_process(psp.df_flush())
        assert machine.new_sev_context().asid == 1
        assert machine.new_sev_context().asid == 3
        assert machine.new_sev_context().asid == 5  # fresh tail resumes

    def test_namespace_stays_bounded_under_churn(self):
        """Churning far more guests than the capacity must never grow
        the handed-out numbers beyond the namespace."""
        machine = Machine()
        psp = machine.psp
        psp.asid_capacity = 8
        seen = set()
        for _ in range(50):
            ctx = machine.new_sev_context()
            seen.add(ctx.asid)
            psp.activate(ctx)
            psp.deactivate(ctx)
            machine.sim.run_process(psp.df_flush())
        assert max(seen) <= 8
        assert psp.active_guests == 0

    def test_release_of_unactivated_asid_frees_it_immediately(self):
        """A launch that dies before ACTIVATE returns its number without
        needing a DF_FLUSH (no keyed cache lines exist)."""
        machine = Machine()
        ctx = machine.new_sev_context()
        assert ctx.asid == 1
        machine.psp.release(ctx)
        assert machine.new_sev_context().asid == 1

    def test_release_of_active_asid_retires_it(self):
        machine = Machine()
        ctx = machine.new_sev_context()
        machine.psp.activate(ctx)
        machine.psp.release(ctx)
        assert machine.psp.active_guests == 0
        # still awaiting flush: the number is not immediately reusable
        assert machine.new_sev_context().asid == 2

    def test_exhaustion_error_codes(self):
        machine = Machine()
        psp = machine.psp
        psp.asid_capacity = 1
        a = machine.new_sev_context()
        psp.activate(a)
        b = machine.new_sev_context()
        with pytest.raises(SevLaunchError) as exc:
            psp.activate(b)
        assert exc.value.code is SevErrorCode.RESOURCE_LIMIT
        psp.deactivate(a)
        with pytest.raises(SevLaunchError) as exc:
            psp.activate(b)
        assert exc.value.code is SevErrorCode.DF_FLUSH_REQUIRED
        assert exc.value.retryable


class TestFleetChurn:
    def test_fleet_larger_than_asid_capacity_boots_with_recovery(self):
        """More sequential guests than ASID slots: the VMM's retry policy
        (DF_FLUSH between attempts) plus release-on-exit keeps every
        boot succeeding."""
        machine = Machine()
        machine.psp.asid_capacity = 3
        sf = SEVeriFast(machine=machine)
        config = VmConfig(kernel=AWS, scale=1 / 1024, attest=False)
        prepared = sf.prepare(config, machine)
        vmm = FirecrackerVMM(
            machine,
            retry=RetryPolicy(max_attempts=4, base_delay_ms=1.0),
            release_on_exit=True,
        )
        results = []
        for i in range(10):
            result = machine.sim.run_process(
                vmm.boot_severifast(
                    config,
                    prepared.artifacts,
                    prepared.initrd,
                    hashes=prepared.hashes,
                ),
                name=f"churn-{i}",
            )
            results.append(result)
        assert len(results) == 10
        assert all(r.init_executed for r in results)
        # no guest left active, and the namespace never grew past capacity
        assert machine.psp.active_guests == 0

    def test_fleet_without_release_hits_capacity(self):
        """Without release-on-exit the fourth sequential boot on a
        3-slot namespace must fail with a capacity error."""
        machine = Machine()
        machine.psp.asid_capacity = 3
        sf = SEVeriFast(machine=machine)
        config = VmConfig(kernel=AWS, scale=1 / 1024, attest=False)
        prepared = sf.prepare(config, machine)
        vmm = FirecrackerVMM(machine)  # no retry, no release
        for i in range(3):
            machine.sim.run_process(
                vmm.boot_severifast(
                    config,
                    prepared.artifacts,
                    prepared.initrd,
                    hashes=prepared.hashes,
                )
            )
        with pytest.raises(SevLaunchError) as exc:
            machine.sim.run_process(
                vmm.boot_severifast(
                    config,
                    prepared.artifacts,
                    prepared.initrd,
                    hashes=prepared.hashes,
                )
            )
        assert exc.value.code is SevErrorCode.RESOURCE_LIMIT
        assert exc.value.retryable  # a retry-capable VMM could recover
