"""Cost model: calibration anchors from the paper."""

import pytest

from repro.common import KiB, MiB
from repro.hw.costmodel import CostModel


@pytest.fixture
def cost() -> CostModel:
    return CostModel()


def test_preencryption_anchor_1mib(cost):
    """§3.1: pre-encrypting the 1 MiB OVMF build adds ~256.65 ms."""
    assert cost.psp_update_data_ms(1 * MiB) == pytest.approx(256.65, rel=0.15)


def test_preencryption_anchor_23mib(cost):
    """§3.2: pre-encrypting the 23 MiB Lupine vmlinux takes ~5.65 s."""
    assert cost.psp_update_data_ms(23 * MiB) == pytest.approx(5650.0, rel=0.15)


def test_preencryption_anchor_bzimage(cost):
    """§3.2: the 3.3 MiB Lupine bzImage takes ~840 ms."""
    assert cost.psp_update_data_ms(int(3.3 * MiB)) == pytest.approx(840.0, rel=0.15)


def test_preencryption_anchor_initrd(cost):
    """§3.2: a 12 MiB compressed initrd takes ~2.85 s."""
    assert cost.psp_update_data_ms(12 * MiB) == pytest.approx(2850.0, rel=0.15)


def test_preencryption_linear(cost):
    small = cost.psp_update_data_ms(1 * MiB)
    large = cost.psp_update_data_ms(16 * MiB)
    assert large / small == pytest.approx(16.0, rel=0.05)


def test_verification_anchor(cost):
    """Fig. 10: AWS verification ~24.7 ms for 7.1+12 MiB copy+hash."""
    total_bytes = int(7.1 * MiB) + 12 * MiB
    verify_ms = cost.copy_ms(total_bytes) + cost.hash_ms(total_bytes)
    assert verify_ms == pytest.approx(24.73, rel=0.2)


def test_pvalidate_anchors(cost):
    """§6.1: 256 MiB -> ~60 ms with 4 KiB pages, <1 ms with huge pages."""
    assert cost.pvalidate_ms(256 * MiB, huge_pages=False) == pytest.approx(
        60.0, rel=0.15
    )
    assert cost.pvalidate_ms(256 * MiB, huge_pages=True) < 1.0


def test_lz4_faster_than_gzip(cost):
    size = 43 * MiB
    assert cost.decompress_ms("lz4", size) < cost.decompress_ms("gzip", size) / 4


def test_no_decompression_for_raw(cost):
    assert cost.decompress_ms("none", 64 * MiB) == 0.0
    with pytest.raises(ValueError):
        cost.decompress_ms("zstd", 1)


def test_ovmf_phase_total_matches_fig3(cost):
    """Fig. 3: OVMF's PI phases total >3 s."""
    total = cost.ovmf_sec_ms + cost.ovmf_pei_ms + cost.ovmf_dxe_ms + cost.ovmf_bds_ms
    assert 2900.0 < total < 3400.0


def test_attestation_anchor(cost):
    """§6.1: end-to-end attestation ~200 ms."""
    assert cost.psp_report_ms + cost.attestation_network_ms == pytest.approx(
        200.0, rel=0.05
    )


def test_severifast_preencryption_under_9ms(cost):
    """Fig. 10/§6.2: the SEVeriFast root of trust pre-encrypts in <9 ms."""
    components = [13 * KiB, 4 * KiB, 156, 304, 4 * KiB]
    total = sum(cost.psp_update_data_ms(size) for size in components)
    assert 6.0 < total < 9.0


def test_small_sizes_have_command_floor(cost):
    assert cost.psp_update_data_ms(16) >= cost.psp_command_latency_ms


class TestJitter:
    def test_zero_jitter_is_identity(self):
        cost = CostModel()
        assert cost.sample(42.0) == 42.0

    def test_jitter_is_seeded_and_reproducible(self):
        a = CostModel(jitter_rel=0.05, jitter_seed=7)
        b = CostModel(jitter_rel=0.05, jitter_seed=7)
        assert [a.sample(100.0) for _ in range(5)] == [
            b.sample(100.0) for _ in range(5)
        ]
        c = CostModel(jitter_rel=0.05, jitter_seed=8)
        assert a.sample(100.0) != c.sample(100.0)

    def test_jitter_bounded_at_three_sigma(self):
        cost = CostModel(jitter_rel=0.1, jitter_seed=1)
        for _ in range(500):
            value = cost.sample(100.0)
            assert 70.0 - 1e-9 <= value <= 130.0 + 1e-9

    def test_jitter_mean_near_nominal(self):
        cost = CostModel(jitter_rel=0.03, jitter_seed=2)
        samples = [cost.sample(100.0) for _ in range(2000)]
        assert abs(sum(samples) / len(samples) - 100.0) < 0.5

    def test_zero_duration_unjittered(self):
        cost = CostModel(jitter_rel=0.1, jitter_seed=3)
        assert cost.sample(0.0) == 0.0
