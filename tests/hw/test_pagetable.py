"""Page tables with the C-bit: build, walk, encryption interplay."""

import pytest

from repro.common import GiB, HUGE_PAGE_SIZE, MiB, PAGE_SIZE
from repro.crypto.memenc import MemoryEncryptionEngine
from repro.hw.memory import GuestMemory
from repro.hw.pagetable import (
    DEFAULT_C_BIT,
    PageTableBuilder,
    PageTableError,
    cpuid_c_bit_position,
    translate,
)


def _build_in_dict(builder: PageTableBuilder) -> dict[int, bytes]:
    store: dict[int, bytes] = {}

    def write(pa: int, data: bytes) -> None:
        store[pa] = data

    builder.build(write)

    def read(pa: int, n: int) -> bytes:
        base = pa & ~(PAGE_SIZE - 1)
        return store[base][pa - base : pa - base + n]

    builder._read = read  # type: ignore[attr-defined]
    return store


def test_identity_map_translates():
    builder = PageTableBuilder(base_pa=0xA000)
    _build_in_dict(builder)
    read = builder._read  # type: ignore[attr-defined]
    for va in (0x0, 0x1234, 2 * MiB + 5, 512 * MiB, GiB - 1):
        pa, encrypted = translate(read, 0xA000, va)
        assert pa == va
        assert encrypted


def test_c_bit_absent_when_disabled():
    builder = PageTableBuilder(base_pa=0xA000, c_bit=None)
    _build_in_dict(builder)
    pa, encrypted = translate(builder._read, 0xA000, 0x1000, c_bit=None)  # type: ignore[attr-defined]
    assert pa == 0x1000
    assert not encrypted


def test_table_footprint():
    builder = PageTableBuilder(base_pa=0xA000, map_size=1 * GiB)
    assert builder.num_pds == 1
    assert builder.table_bytes == 3 * PAGE_SIZE
    two_gib = PageTableBuilder(base_pa=0xA000, map_size=2 * GiB)
    assert two_gib.num_pds == 2
    assert two_gib.table_bytes == 4 * PAGE_SIZE


def test_multi_gib_map():
    builder = PageTableBuilder(base_pa=0xA000, map_size=2 * GiB)
    _build_in_dict(builder)
    pa, _ = translate(builder._read, 0xA000, GiB + 3 * MiB)  # type: ignore[attr-defined]
    assert pa == GiB + 3 * MiB


def test_unmapped_address_raises():
    builder = PageTableBuilder(base_pa=0xA000, map_size=1 * GiB)
    _build_in_dict(builder)
    with pytest.raises(PageTableError):
        translate(builder._read, 0xA000, 5 * GiB)  # type: ignore[attr-defined]


def test_alignment_validation():
    with pytest.raises(PageTableError):
        PageTableBuilder(base_pa=0xA001)
    with pytest.raises(PageTableError):
        PageTableBuilder(base_pa=0xA000, map_size=HUGE_PAGE_SIZE + 1)


def test_cpuid_probe():
    assert cpuid_c_bit_position(True) == DEFAULT_C_BIT
    assert cpuid_c_bit_position(False) is None


def test_tables_in_encrypted_memory_unreadable_by_host():
    """The verifier generates tables in C-bit memory (Fig. 7: generate);
    a host walk over the raw bytes fails, a guest walk succeeds."""
    mem = GuestMemory(size=16 * MiB, engine=MemoryEncryptionEngine(b"k" * 16))
    builder = PageTableBuilder(base_pa=0xA000, map_size=1 * GiB)
    builder.build(lambda pa, data: mem.guest_write(pa, data, c_bit=True))

    pa, encrypted = translate(
        lambda p, n: mem.guest_read(p, n, c_bit=True), 0xA000, 7 * MiB
    )
    assert pa == 7 * MiB and encrypted

    # Ciphertext entries decode to garbage: either a non-present entry
    # (PageTableError) or a pointer outside guest memory (access error).
    from repro.hw.memory import MemoryAccessError

    with pytest.raises((PageTableError, MemoryAccessError)):
        translate(lambda p, n: mem.host_read(p, n), 0xA000, 7 * MiB)


def test_c_bit_set_in_every_leaf_entry():
    builder = PageTableBuilder(base_pa=0xA000, map_size=64 * MiB)
    store = _build_in_dict(builder)
    pd = store[0xA000 + 2 * PAGE_SIZE]
    import struct

    entries = struct.unpack(f"<{PAGE_SIZE // 8}Q", pd)
    live = [e for e in entries if e & 1]
    assert len(live) == 32  # 64 MiB / 2 MiB
    assert all(e & (1 << DEFAULT_C_BIT) for e in live)
