"""GHCB page and #VC exit protocol."""

import pytest

from repro.common import MiB, PAGE_SIZE
from repro.crypto.memenc import MemoryEncryptionEngine
from repro.hw.ghcb import GhcbError, GhcbPage, GhcbProtocol, VmgExitCode
from repro.hw.memory import GuestMemory

GHCB_ADDR = 0x0000_7000


@pytest.fixture
def proto() -> GhcbProtocol:
    memory = GuestMemory(size=16 * MiB, engine=MemoryEncryptionEngine(b"k" * 16))
    return GhcbProtocol(memory=memory, ghcb_addr=GHCB_ADDR)


def test_page_roundtrip():
    page = GhcbPage(
        exit_code=VmgExitCode.IOIO, exit_info_1=0x80 << 16, rax=0x42, rbx=7
    )
    parsed = GhcbPage.from_bytes(page.to_bytes())
    assert parsed == page
    assert len(page.to_bytes()) == PAGE_SIZE


def test_bad_magic_rejected():
    with pytest.raises(GhcbError, match="magic"):
        GhcbPage.from_bytes(b"XXXX" + b"\x00" * 100)


def test_unknown_exit_code_rejected():
    raw = bytearray(GhcbPage().to_bytes())
    raw[4:8] = (0xDEAD).to_bytes(4, "little")
    with pytest.raises(GhcbError, match="exit code"):
        GhcbPage.from_bytes(bytes(raw))


def test_vmgexit_host_sees_exactly_exposed_state(proto):
    """The host reads the shared GHCB and gets what the guest exposed —
    no more (registers not copied stay zero) and no less."""
    host_view = proto.outb(0x80, 0x11)
    assert host_view.exit_code is VmgExitCode.IOIO
    assert host_view.rax == 0x11
    assert host_view.rbx == 0  # never exposed
    assert (host_view.exit_info_1 >> 16) == 0x80


def test_ghcb_is_shared_not_encrypted(proto):
    proto.outb(0x80, 0x22)
    raw = proto.memory.host_read(GHCB_ADDR, 4)
    assert raw == b"GHCB"  # plaintext: host can actually read it


def test_exit_counting(proto):
    proto.outb(0x80, 1)
    proto.outb(0x80, 2)
    proto.cpuid(0x8000001F)
    assert proto.exit_counts[VmgExitCode.IOIO] == 2
    assert proto.exit_counts[VmgExitCode.CPUID] == 1
    assert proto.total_exits == 3


def test_msr_path_no_page_traffic(proto):
    proto.ghcb_msr_write(0x10)
    assert proto.msr_writes == [0x10]
    assert proto.total_exits == 0
    assert proto.memory.resident_bytes == 0  # nothing written to memory


def test_alignment_enforced():
    memory = GuestMemory(size=MiB, engine=MemoryEncryptionEngine(b"k" * 16))
    with pytest.raises(GhcbError, match="aligned"):
        GhcbProtocol(memory=memory, ghcb_addr=0x123)
