"""UART console and #VC-batched writes."""

import pytest

from repro.common import MiB
from repro.crypto.memenc import MemoryEncryptionEngine
from repro.hw.ghcb import GhcbProtocol
from repro.hw.memory import GuestMemory
from repro.hw.uart import COM1_BASE, SerialConsole, Uart16550


@pytest.fixture
def uart() -> Uart16550:
    return Uart16550()


def test_thr_writes_accumulate(uart):
    for byte in b"ok":
        uart.io_write(COM1_BASE, byte)
    assert uart.text == "ok"
    assert uart.writes == 2


def test_lsr_reports_empty(uart):
    assert uart.io_read(COM1_BASE + 5) & 0x20


def test_writes_to_other_ports_ignored(uart):
    uart.io_write(0x80, ord("x"))
    assert uart.output == b""


def test_console_without_ghcb(uart):
    console = SerialConsole(uart=uart)
    console.writeln("hello")
    assert uart.lines == ["hello"]
    assert console.vc_exits == 0
    assert console.bytes_written == 6


def test_console_with_ghcb_batches_exits(uart):
    memory = GuestMemory(size=MiB, engine=MemoryEncryptionEngine(b"k" * 16))
    ghcb = GhcbProtocol(memory=memory, ghcb_addr=0x7000)
    console = SerialConsole(uart=uart, ghcb=ghcb)
    console.writeln("Linux version 6.4.0")
    console.writeln("Run /init as init process")
    assert len(uart.lines) == 2
    # One #VC exit per write call, not per byte.
    assert console.vc_exits == 2


def test_putc_per_byte_exits(uart):
    memory = GuestMemory(size=MiB, engine=MemoryEncryptionEngine(b"k" * 16))
    ghcb = GhcbProtocol(memory=memory, ghcb_addr=0x7000)
    console = SerialConsole(uart=uart, ghcb=ghcb)
    for byte in b"abc":
        console.putc(byte)
    assert console.vc_exits == 3
    assert uart.text == "abc"


def test_empty_write_is_free(uart):
    memory = GuestMemory(size=MiB, engine=MemoryEncryptionEngine(b"k" * 16))
    ghcb = GhcbProtocol(memory=memory, ghcb_addr=0x7000)
    console = SerialConsole(uart=uart, ghcb=ghcb)
    console.write("")
    assert console.vc_exits == 0


def test_boot_produces_console_log(sf, aws_config):
    result = sf.cold_boot(aws_config, attest=False)
    log = "\n".join(result.console_log)
    assert "Linux version" in log
    assert "SEV-SNP" in log
    assert "vda detected" in log
    assert "Run /init as init process" in log


def test_stock_boot_log_has_no_sev_banner(sf, aws_config):
    result = sf.cold_boot_stock(aws_config)
    log = "\n".join(result.console_log)
    assert "Linux version" in log
    assert "Memory Encryption" not in log
