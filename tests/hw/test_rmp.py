"""Reverse Map Table semantics."""

import pytest

from repro.hw.rmp import (
    HOST_ASID,
    ReverseMapTable,
    RmpViolation,
    VmmCommunicationException,
)


@pytest.fixture
def rmp() -> ReverseMapTable:
    return ReverseMapTable(asid=3, num_pages=1024)


def test_initially_host_owned(rmp):
    rmp.check_host_write(0)  # no exception
    with pytest.raises(VmmCommunicationException):
        rmp.check_guest_access(0)


def test_assign_all_flips_ownership(rmp):
    rmp.assign_all()
    with pytest.raises(RmpViolation):
        rmp.check_host_write(5)


def test_guest_needs_pvalidate_after_assignment(rmp):
    rmp.assign_all()
    with pytest.raises(VmmCommunicationException):
        rmp.check_guest_access(5)
    rmp.pvalidate_all()
    rmp.check_guest_access(5)  # valid now


def test_pvalidate_single_page(rmp):
    rmp.assign_all()
    rmp.pvalidate(7)
    rmp.check_guest_access(7)
    with pytest.raises(VmmCommunicationException):
        rmp.check_guest_access(8)


def test_pvalidate_unassigned_page_raises(rmp):
    with pytest.raises(VmmCommunicationException):
        rmp.pvalidate(7)


def test_pvalidate_all_requires_assignment(rmp):
    with pytest.raises(VmmCommunicationException):
        rmp.pvalidate_all()


def test_firmware_validated_pages_usable_before_sweep(rmp):
    """Launch pages (the pre-encrypted root of trust) are valid at entry."""
    rmp.assign_all()
    rmp.firmware_validate(64)
    rmp.check_guest_access(64)


def test_remap_clears_valid_bit(rmp):
    rmp.assign_all()
    rmp.pvalidate_all()
    rmp.remap(10)
    with pytest.raises(VmmCommunicationException):
        rmp.check_guest_access(10)
    rmp.check_guest_access(11)  # neighbours unaffected


def test_rmpupdate_deassign_returns_page_to_host(rmp):
    rmp.assign_all()
    rmp.pvalidate_all()
    rmp.rmpupdate(20, HOST_ASID, assigned=False)
    rmp.check_host_write(20)  # host may write again
    with pytest.raises(VmmCommunicationException):
        rmp.check_guest_access(20)


def test_disabled_rmp_is_permissive():
    """Plain SEV / SEV-ES have no RMP: no integrity checks."""
    rmp = ReverseMapTable(asid=1, num_pages=16, enabled=False)
    rmp.check_host_write(0)
    rmp.check_guest_access(0)
    rmp.pvalidate(0)


def test_page_range_enforced(rmp):
    with pytest.raises(ValueError):
        rmp.check_guest_access(1024)
    with pytest.raises(ValueError):
        rmp.pvalidate(-1)


def test_pvalidate_all_resets_overrides(rmp):
    rmp.assign_all()
    rmp.remap(3)
    rmp.pvalidate_all()
    rmp.check_guest_access(3)


def test_share_returns_page_to_host(rmp):
    """Guest-initiated page-state change: shared pages are host-owned."""
    rmp.assign_all()
    rmp.pvalidate_all()
    rmp.share(12)
    rmp.check_host_write(12)  # host may DMA into it
    with pytest.raises(VmmCommunicationException):
        rmp.check_guest_access(12)  # but it is no longer valid private memory
