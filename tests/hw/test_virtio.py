"""Virtio split rings and virtio-blk under (non-)encrypted memory."""

import pytest

from repro.common import MiB
from repro.crypto.memenc import MemoryEncryptionEngine
from repro.hw.memory import GuestMemory
from repro.hw.virtio import (
    SECTOR_SIZE,
    VIRTIO_BLK_S_IOERR,
    VIRTIO_BLK_S_OK,
    VirtioBlkDriver,
    VirtioBlockDevice,
    VirtioError,
    Virtqueue,
)

QUEUE_BASE = 0x0008_0000
BUFFER_BASE = 0x000A_0000


@pytest.fixture
def memory() -> GuestMemory:
    return GuestMemory(size=16 * MiB, engine=MemoryEncryptionEngine(b"k" * 16))


@pytest.fixture
def device(memory) -> VirtioBlockDevice:
    dev = VirtioBlockDevice(memory=memory, queue_base=QUEUE_BASE)
    dev.disk[: 2 * SECTOR_SIZE] = b"AB" * SECTOR_SIZE
    return dev


@pytest.fixture
def driver(memory) -> VirtioBlkDriver:
    return VirtioBlkDriver(
        memory=memory, queue_base=QUEUE_BASE, buffer_base=BUFFER_BASE, shared=True
    )


def test_write_then_read_roundtrip(memory, device, driver):
    payload = bytes(range(256)) * 2  # one sector
    assert driver.write(device, sector=5, data=payload) == VIRTIO_BLK_S_OK
    status, data = driver.read(device, sector=5, length=SECTOR_SIZE)
    assert status == VIRTIO_BLK_S_OK
    assert data == payload
    assert bytes(device.disk[5 * SECTOR_SIZE : 6 * SECTOR_SIZE]) == payload


def test_read_existing_disk_content(memory, device, driver):
    status, data = driver.read(device, sector=0, length=SECTOR_SIZE)
    assert status == VIRTIO_BLK_S_OK
    assert data == b"AB" * (SECTOR_SIZE // 2)


def test_out_of_range_sector_ioerr(memory, device, driver):
    status = driver.write(device, sector=10_000, data=b"x" * SECTOR_SIZE)
    assert status == VIRTIO_BLK_S_IOERR


def test_multiple_requests_in_flight(memory, device, driver):
    for sector in range(3):
        assert driver.write(device, sector, bytes([sector]) * SECTOR_SIZE) == 0
    assert device.requests_served == 3
    for sector in range(3):
        _status, data = driver.read(device, sector, SECTOR_SIZE)
        assert data == bytes([sector]) * SECTOR_SIZE


def test_encrypted_rings_break_the_device(memory, device):
    """The §SEV reality check: a driver that leaves its rings/buffers in
    C-bit memory hands the device ciphertext — requests fail or corrupt,
    they can never roundtrip cleanly.  This is why SEV guests bounce I/O
    through shared pages (swiotlb)."""
    driver = VirtioBlkDriver(
        memory=memory, queue_base=QUEUE_BASE, buffer_base=BUFFER_BASE, shared=False
    )
    payload = b"secret-block-data" * 30
    payload = payload[:SECTOR_SIZE]
    try:
        status = driver.write(device, sector=1, data=payload)
    except VirtioError:
        return  # garbage descriptors detected — also an acceptable failure
    # If the device "succeeded", it must have written ciphertext garbage.
    assert (
        status != VIRTIO_BLK_S_OK
        or bytes(device.disk[SECTOR_SIZE : 2 * SECTOR_SIZE]) != payload
    )


def test_queue_size_must_be_power_of_two(memory):
    with pytest.raises(VirtioError):
        Virtqueue(memory=memory, base_addr=QUEUE_BASE, size=48)


def test_descriptor_chain_validation(memory, device):
    with pytest.raises(VirtioError):
        Virtqueue(memory=memory, base_addr=QUEUE_BASE).add_chain([])


def test_used_ring_reports_written_lengths(memory, device, driver):
    driver.write(device, 0, b"z" * SECTOR_SIZE)
    head, data_addr, status_addr, n = driver._submit(0, 0, SECTOR_SIZE)
    device.process()
    completed = driver.queue.poll_used()
    # write completion (1 status byte) was drained inside write(); this
    # read completion reports payload + status.
    assert completed[-1][1] == SECTOR_SIZE + 1


def test_rings_visible_to_host_when_shared(memory, driver):
    raw = memory.host_read(QUEUE_BASE, 16)
    assert raw == b"\x00" * 16  # zeroed plaintext, readable as-is
